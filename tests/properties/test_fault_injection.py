"""Property-based tests (hypothesis) for failure injection and tenancy.

The load-bearing invariants: crash/recovery churn never loses or duplicates
work on any of the three serving platforms (every submitted request/sequence
is served, dropped or shed exactly once, and every served sequence emits its
full token budget), and a seeded random fault schedule makes runs
bit-identical — same seed, same churn, same metrics.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.generative import (build_disaggregated_platform,
                                   build_generative_cluster)
from repro.faults import FaultSchedule, FaultSpec
from repro.generative.sequences import GenerativeWorkload, SequenceSample
from repro.serving.cluster import ClusterPlatform
from repro.serving.hf_pipelines import VanillaTokenPolicy
from repro.serving.platform import BatchResult
from repro.serving.request import Request
from repro.serving.tfserve import TFServingPlatform
from repro.workloads.difficulty import InputSample

# Every example is a full simulated run; keep the counts modest.
SIM = settings(max_examples=15, deadline=None)


# ------------------------------------------------------------ classification

def _requests(n, gap_ms=5.0):
    return [Request(request_id=i, arrival_ms=i * gap_ms,
                    sample=InputSample(index=i, raw_difficulty=0.3,
                                       sharpness=0.05, confidence_shift=0.0),
                    slo_ms=10_000.0)
            for i in range(n)]


def _executor(batch, batch_start_ms):
    return BatchResult(gpu_time_ms=8.0, result_offsets_ms=[8.0] * len(batch))


@SIM
# crash + recovery both land inside the arrival window (last arrival at
# 595ms): the run cannot end before the replacement boots.
@given(crash_ms=st.floats(0.0, 300.0), down_ms=st.floats(50.0, 250.0),
       replicas=st.integers(2, 4))
def test_classification_conserves_requests_across_crash(crash_ms, down_ms,
                                                        replicas):
    platforms = [TFServingPlatform(max_batch_size=4) for _ in range(replicas)]
    cluster = ClusterPlatform(
        platforms, balancer="round_robin",
        faults=FaultSchedule.of(FaultSpec(crash_ms, down_ms)))
    requests = _requests(120)
    metrics = cluster.run(requests, _executor)
    responses = metrics.aggregate().responses
    assert sorted(r.request_id for r in responses) == list(range(120))
    assert metrics.crashes == 1 and metrics.recoveries == 1


@SIM
@given(mtbf_ms=st.floats(100.0, 800.0), mttr_ms=st.floats(50.0, 400.0),
       seed=st.integers(0, 2**16))
def test_classification_fault_seed_is_deterministic(mtbf_ms, mttr_ms, seed):
    schedule = FaultSchedule.poisson(mtbf_ms, mttr_ms, horizon_ms=800.0,
                                     seed=seed)

    def run():
        platforms = [TFServingPlatform(max_batch_size=4) for _ in range(3)]
        cluster = ClusterPlatform(platforms, balancer="jsq", faults=schedule,
                                  tenancy="gold:weight=3;bronze:weight=1")
        return cluster.run(_requests(100), _executor)

    first, second = run(), run()
    assert first.summary() == second.summary()
    assert first.tenant_rollups == second.tenant_rollups


# ----------------------------------------------------------------- generative

def _workload(n, tokens=6, gap_ms=40.0):
    return GenerativeWorkload(name="prop", sequences=[
        SequenceSample(sequence_id=i, arrival_ms=i * gap_ms,
                       token_difficulty=np.full(tokens, 0.25),
                       token_sharpness=np.full(tokens, 0.05),
                       prompt_tokens=32)
        for i in range(n)])


def _assert_generative_conserved(metrics, n, tokens):
    served = set(metrics.sequence_accuracy)
    shed = set(metrics.shed_sequence_ids)
    assert served | shed == set(range(n))
    assert not served & shed
    counts = {}
    for record in metrics.tokens:
        counts[record.sequence_id] = counts.get(record.sequence_id, 0) + 1
    assert counts == {seq_id: tokens for seq_id in served}


@SIM
# last arrival at 2360ms bounds crash + down: recovery fires in-window.
@given(crash_ms=st.floats(0.0, 1200.0), down_ms=st.floats(100.0, 1000.0),
       replicas=st.integers(2, 4))
def test_generative_conserves_tokens_across_crash(crash_ms, down_ms, replicas):
    cluster = build_generative_cluster(
        "t5-large", replicas, max_batch_size=4,
        faults=FaultSchedule.of(FaultSpec(crash_ms, down_ms)))
    policy = VanillaTokenPolicy()
    metrics = cluster.run(_workload(60), lambda ordinal: policy)
    agg = metrics.aggregate()
    _assert_generative_conserved(agg, 60, 6)
    assert metrics.crashes == 1 and metrics.recoveries == 1


@SIM
@given(mtbf_ms=st.floats(300.0, 2000.0), mttr_ms=st.floats(100.0, 1000.0),
       seed=st.integers(0, 2**16))
def test_generative_fault_seed_is_deterministic(mtbf_ms, mttr_ms, seed):
    schedule = FaultSchedule.poisson(mtbf_ms, mttr_ms, horizon_ms=2000.0,
                                     seed=seed)

    def run():
        cluster = build_generative_cluster(
            "t5-large", 3, max_batch_size=4, faults=schedule,
            tenancy="chat:weight=4;batch:priority=batch")
        policy = VanillaTokenPolicy()
        return cluster.run(_workload(50), lambda ordinal: policy)

    first, second = run(), run()
    assert first.summary() == second.summary()
    assert first.tenant_rollups == second.tenant_rollups


# -------------------------------------------------------------- disaggregated

@SIM
@given(pcrash_ms=st.floats(0.0, 1000.0), dcrash_ms=st.floats(0.0, 1200.0),
       down_ms=st.floats(200.0, 1000.0))
def test_disagg_conserves_tokens_across_pool_crashes(pcrash_ms, dcrash_ms,
                                                     down_ms):
    platform = build_disaggregated_platform(
        "t5-large", prefill_replicas=2, decode_replicas=3, max_batch_size=4,
        faults=FaultSchedule.of(FaultSpec(pcrash_ms, down_ms, pool="prefill"),
                                FaultSpec(dcrash_ms, down_ms, pool="decode")))
    policy = VanillaTokenPolicy()
    metrics = platform.run(_workload(60), lambda ordinal: policy)
    agg = metrics.aggregate()
    _assert_generative_conserved(agg, 60, 6)
    assert metrics.crashes == 2 and metrics.recoveries == 2
