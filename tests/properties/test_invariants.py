"""Property-based tests (hypothesis) on the core invariants Apparate relies on."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exits.evaluation import evaluate_thresholds
from repro.exits.thresholds import tune_thresholds_greedy
from repro.models.prediction import effective_difficulty, ramp_error_score
from repro.serving.cluster import ClusterPlatform, balancer_names
from repro.serving.platform import BatchResult
from repro.serving.request import Request
from repro.serving.tfserve import TFServingPlatform
from repro.utils.stats import WindowedAccuracy, summarize_latencies
from repro.workloads.arrivals import fixed_rate_arrivals, poisson_arrivals
from repro.workloads.difficulty import InputSample

# Hypothesis settings: keep examples modest so the suite stays fast.
FAST = settings(max_examples=50, deadline=None)


# ------------------------------------------------------------------ prediction

@FAST
@given(raw=st.floats(0.0, 1.0), headroom=st.floats(0.0, 1.0))
def test_effective_difficulty_stays_in_unit_interval(raw, headroom):
    d = effective_difficulty(raw, headroom)
    assert 0.0 <= d <= 1.0
    assert d >= raw * headroom - 1e-12


@FAST
@given(difficulty=st.floats(0.0, 1.0), sharpness=st.floats(0.01, 0.2),
       shift=st.floats(-0.3, 0.3),
       depth_a=st.floats(0.0, 1.0), depth_b=st.floats(0.0, 1.0))
def test_error_score_monotone_in_depth(difficulty, sharpness, shift, depth_a, depth_b):
    """Deeper ramps are never less confident for the same input."""
    lo, hi = sorted((depth_a, depth_b))
    err_lo = ramp_error_score(difficulty, lo, sharpness, shift)
    err_hi = ramp_error_score(difficulty, hi, sharpness, shift)
    assert err_hi <= err_lo + 1e-12
    assert 0.0 <= err_lo <= 1.0 and 0.0 <= err_hi <= 1.0


# ------------------------------------------------------------------ evaluation

@st.composite
def observation_window(draw):
    n = draw(st.integers(4, 40))
    num_ramps = draw(st.integers(1, 4))
    errors = draw(st.lists(st.lists(st.floats(0.0, 1.0), min_size=num_ramps,
                                    max_size=num_ramps), min_size=n, max_size=n))
    correct = draw(st.lists(st.lists(st.booleans(), min_size=num_ramps,
                                     max_size=num_ramps), min_size=n, max_size=n))
    depths = sorted(draw(st.lists(st.floats(0.05, 0.95), min_size=num_ramps,
                                  max_size=num_ramps)))
    return (np.array(errors), np.array(correct, dtype=bool), depths,
            [0.05] * num_ramps)


@FAST
@given(window=observation_window(), threshold=st.floats(0.0, 1.0))
def test_evaluation_bounds(window, threshold):
    errors, correct, depths, overheads = window
    ev = evaluate_thresholds(errors, correct, [threshold] * len(depths), depths,
                             overheads, 10.0)
    assert 0.0 <= ev.accuracy <= 1.0
    assert 0.0 <= ev.exit_rate <= 1.0
    assert ev.exit_counts.sum() <= ev.num_samples
    assert np.all(ev.ramp_savings_ms >= 0.0)
    assert np.all(ev.ramp_overhead_ms >= 0.0)


@FAST
@given(window=observation_window(), t_low=st.floats(0.0, 1.0), t_high=st.floats(0.0, 1.0))
def test_exit_rate_monotone_in_shared_threshold(window, t_low, t_high):
    """Raising every threshold never reduces the number of exits (§3.2)."""
    errors, correct, depths, overheads = window
    lo, hi = sorted((t_low, t_high))
    ev_lo = evaluate_thresholds(errors, correct, [lo] * len(depths), depths, overheads, 10.0)
    ev_hi = evaluate_thresholds(errors, correct, [hi] * len(depths), depths, overheads, 10.0)
    assert ev_hi.exit_rate >= ev_lo.exit_rate - 1e-12


@FAST
@given(window=observation_window())
def test_zero_thresholds_always_fully_accurate(window):
    errors, correct, depths, overheads = window
    ev = evaluate_thresholds(errors, correct, [0.0] * len(depths), depths, overheads, 10.0)
    assert ev.accuracy == 1.0
    assert ev.exit_rate == 0.0


# ------------------------------------------------------------ threshold tuning

@FAST
@given(window=observation_window(), constraint=st.floats(0.005, 0.2))
def test_greedy_tuning_respects_constraint_on_its_window(window, constraint):
    errors, correct, depths, overheads = window
    result = tune_thresholds_greedy(errors, correct, depths, overheads, 10.0,
                                    accuracy_constraint=constraint)
    assert result.evaluation.accuracy >= 1.0 - constraint - 1e-9
    assert all(0.0 <= t <= 1.0 for t in result.thresholds)


# -------------------------------------------------------------------- arrivals

@FAST
@given(n=st.integers(1, 500), rate=st.floats(0.5, 500.0))
def test_fixed_rate_arrivals_sorted_and_correct_length(n, rate):
    arrivals = fixed_rate_arrivals(n, rate)
    assert arrivals.shape == (n,)
    assert np.all(np.diff(arrivals) >= 0)


@FAST
@given(n=st.integers(1, 300), rate=st.floats(1.0, 200.0), seed=st.integers(0, 100))
def test_poisson_arrivals_sorted(n, rate, seed):
    arrivals = poisson_arrivals(n, rate, np.random.default_rng(seed))
    assert arrivals.shape == (n,)
    assert np.all(np.diff(arrivals) >= 0)


# --------------------------------------------------------------------- cluster

def _cluster_requests(arrival_gaps, slo_ms):
    arrivals = np.cumsum(np.asarray(arrival_gaps, dtype=float))
    return [Request(request_id=i, arrival_ms=float(arrivals[i]),
                    sample=InputSample(index=i, raw_difficulty=0.3, sharpness=0.05),
                    slo_ms=slo_ms)
            for i in range(len(arrivals))]


def _fixed_executor(gpu_time_ms):
    def executor(batch, batch_start_ms):
        return BatchResult(gpu_time_ms=gpu_time_ms,
                           result_offsets_ms=[gpu_time_ms] * len(batch))
    return executor


def _run_cluster(num_replicas, balancer, arrival_gaps, seed=0, slo_ms=1e9,
                 drop_expired=False, gpu_time_ms=5.0):
    replicas = [TFServingPlatform(max_batch_size=4, batch_timeout_ms=1.0,
                                  drop_expired=drop_expired)
                for _ in range(num_replicas)]
    cluster = ClusterPlatform(replicas, balancer=balancer, seed=seed)
    return cluster.run(_cluster_requests(arrival_gaps, slo_ms),
                       _fixed_executor(gpu_time_ms))


@FAST
@given(gaps=st.lists(st.floats(0.0, 20.0), min_size=1, max_size=60),
       num_replicas=st.integers(1, 4),
       balancer=st.sampled_from(sorted(balancer_names("classification"))),
       seed=st.integers(0, 10))
def test_cluster_conserves_requests(gaps, num_replicas, balancer, seed):
    """Every request is answered exactly once — no losses, no duplicates."""
    fleet = _run_cluster(num_replicas, balancer, gaps, seed=seed)
    responses = fleet.aggregate().responses
    assert sorted(r.request_id for r in responses) == list(range(len(gaps)))
    assert sum(fleet.dispatch_counts) == len(gaps)
    # Each replica saw a disjoint slice of the stream.
    seen = [set(r.request_id for r in m.responses) for m in fleet.replicas]
    for i in range(len(seen)):
        for j in range(i + 1, len(seen)):
            assert seen[i].isdisjoint(seen[j])


@FAST
@given(gaps=st.lists(st.floats(0.0, 5.0), min_size=1, max_size=60),
       num_replicas=st.integers(1, 4),
       balancer=st.sampled_from(sorted(balancer_names("classification"))),
       seed=st.integers(0, 10))
def test_cluster_conserves_requests_under_drops(gaps, num_replicas, balancer, seed):
    """Conservation also holds when expired requests are dropped: a request is
    either served or dropped, never both and never twice."""
    fleet = _run_cluster(num_replicas, balancer, gaps, seed=seed,
                         slo_ms=8.0, drop_expired=True, gpu_time_ms=6.0)
    agg = fleet.aggregate()
    assert sorted(r.request_id for r in agg.responses) == list(range(len(gaps)))
    dropped = {r.request_id for r in agg.dropped()}
    served = {r.request_id for r in agg.served()}
    assert dropped.isdisjoint(served)
    assert len(dropped) + len(served) == len(gaps)


@FAST
@given(gaps=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=50),
       num_replicas=st.integers(1, 4),
       balancer=st.sampled_from(sorted(balancer_names("classification"))),
       seed=st.integers(0, 10))
def test_cluster_deterministic_under_fixed_seed(gaps, num_replicas, balancer, seed):
    first = _run_cluster(num_replicas, balancer, gaps, seed=seed)
    second = _run_cluster(num_replicas, balancer, gaps, seed=seed)
    assert first.dispatch_counts == second.dispatch_counts
    assert first.makespan_ms == second.makespan_ms
    a, b = first.aggregate(), second.aggregate()
    assert [(r.request_id, r.completion_ms, r.batch_size) for r in a.responses] \
        == [(r.request_id, r.completion_ms, r.batch_size) for r in b.responses]


@FAST
@given(gaps=st.lists(st.floats(0.0, 10.0), min_size=1, max_size=50),
       num_replicas=st.integers(1, 4),
       balancer=st.sampled_from(sorted(balancer_names("classification"))))
def test_cluster_per_replica_and_aggregate_metrics_agree(gaps, num_replicas, balancer):
    fleet = _run_cluster(num_replicas, balancer, gaps)
    agg = fleet.aggregate()
    assert len(agg.responses) == sum(len(m.responses) for m in fleet.replicas)
    assert len(agg.served()) == sum(len(m.served()) for m in fleet.replicas)
    assert agg.num_batches == sum(m.num_batches for m in fleet.replicas)
    assert agg.gpu_busy_ms == pytest.approx(sum(m.gpu_busy_ms for m in fleet.replicas))
    # The fleet's clock spans every replica's run.
    assert fleet.makespan_ms >= max(m.makespan_ms for m in fleet.replicas) - 1e-9
    # Responses per replica match what the balancer dispatched there.
    for metrics, dispatched in zip(fleet.replicas, fleet.dispatch_counts):
        assert len(metrics.responses) == dispatched


# ----------------------------------------------------------------------- stats

@FAST
@given(values=st.lists(st.floats(0.0, 1e4), min_size=1, max_size=200))
def test_latency_summary_percentile_ordering(values):
    summary = summarize_latencies(values)
    assert summary["p25"] <= summary["p50"] <= summary["p95"]
    assert min(values) - 1e-9 <= summary["mean"] <= max(values) + 1e-9


@FAST
@given(flags=st.lists(st.booleans(), min_size=1, max_size=100),
       window=st.integers(1, 32))
def test_windowed_accuracy_bounds(flags, window):
    monitor = WindowedAccuracy(window=window)
    for flag in flags:
        monitor.record(flag)
    accuracy = monitor.accuracy()
    assert 0.0 <= accuracy <= 1.0
    recent = flags[-window:]
    assert accuracy == pytest.approx(sum(recent) / len(recent))
