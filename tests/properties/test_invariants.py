"""Property-based tests (hypothesis) on the core invariants Apparate relies on."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exits.evaluation import evaluate_thresholds
from repro.exits.thresholds import tune_thresholds_greedy
from repro.models.prediction import effective_difficulty, ramp_error_score
from repro.utils.stats import WindowedAccuracy, summarize_latencies
from repro.workloads.arrivals import fixed_rate_arrivals, poisson_arrivals

# Hypothesis settings: keep examples modest so the suite stays fast.
FAST = settings(max_examples=50, deadline=None)


# ------------------------------------------------------------------ prediction

@FAST
@given(raw=st.floats(0.0, 1.0), headroom=st.floats(0.0, 1.0))
def test_effective_difficulty_stays_in_unit_interval(raw, headroom):
    d = effective_difficulty(raw, headroom)
    assert 0.0 <= d <= 1.0
    assert d >= raw * headroom - 1e-12


@FAST
@given(difficulty=st.floats(0.0, 1.0), sharpness=st.floats(0.01, 0.2),
       shift=st.floats(-0.3, 0.3),
       depth_a=st.floats(0.0, 1.0), depth_b=st.floats(0.0, 1.0))
def test_error_score_monotone_in_depth(difficulty, sharpness, shift, depth_a, depth_b):
    """Deeper ramps are never less confident for the same input."""
    lo, hi = sorted((depth_a, depth_b))
    err_lo = ramp_error_score(difficulty, lo, sharpness, shift)
    err_hi = ramp_error_score(difficulty, hi, sharpness, shift)
    assert err_hi <= err_lo + 1e-12
    assert 0.0 <= err_lo <= 1.0 and 0.0 <= err_hi <= 1.0


# ------------------------------------------------------------------ evaluation

@st.composite
def observation_window(draw):
    n = draw(st.integers(4, 40))
    num_ramps = draw(st.integers(1, 4))
    errors = draw(st.lists(st.lists(st.floats(0.0, 1.0), min_size=num_ramps,
                                    max_size=num_ramps), min_size=n, max_size=n))
    correct = draw(st.lists(st.lists(st.booleans(), min_size=num_ramps,
                                     max_size=num_ramps), min_size=n, max_size=n))
    depths = sorted(draw(st.lists(st.floats(0.05, 0.95), min_size=num_ramps,
                                  max_size=num_ramps)))
    return (np.array(errors), np.array(correct, dtype=bool), depths,
            [0.05] * num_ramps)


@FAST
@given(window=observation_window(), threshold=st.floats(0.0, 1.0))
def test_evaluation_bounds(window, threshold):
    errors, correct, depths, overheads = window
    ev = evaluate_thresholds(errors, correct, [threshold] * len(depths), depths,
                             overheads, 10.0)
    assert 0.0 <= ev.accuracy <= 1.0
    assert 0.0 <= ev.exit_rate <= 1.0
    assert ev.exit_counts.sum() <= ev.num_samples
    assert np.all(ev.ramp_savings_ms >= 0.0)
    assert np.all(ev.ramp_overhead_ms >= 0.0)


@FAST
@given(window=observation_window(), t_low=st.floats(0.0, 1.0), t_high=st.floats(0.0, 1.0))
def test_exit_rate_monotone_in_shared_threshold(window, t_low, t_high):
    """Raising every threshold never reduces the number of exits (§3.2)."""
    errors, correct, depths, overheads = window
    lo, hi = sorted((t_low, t_high))
    ev_lo = evaluate_thresholds(errors, correct, [lo] * len(depths), depths, overheads, 10.0)
    ev_hi = evaluate_thresholds(errors, correct, [hi] * len(depths), depths, overheads, 10.0)
    assert ev_hi.exit_rate >= ev_lo.exit_rate - 1e-12


@FAST
@given(window=observation_window())
def test_zero_thresholds_always_fully_accurate(window):
    errors, correct, depths, overheads = window
    ev = evaluate_thresholds(errors, correct, [0.0] * len(depths), depths, overheads, 10.0)
    assert ev.accuracy == 1.0
    assert ev.exit_rate == 0.0


# ------------------------------------------------------------ threshold tuning

@FAST
@given(window=observation_window(), constraint=st.floats(0.005, 0.2))
def test_greedy_tuning_respects_constraint_on_its_window(window, constraint):
    errors, correct, depths, overheads = window
    result = tune_thresholds_greedy(errors, correct, depths, overheads, 10.0,
                                    accuracy_constraint=constraint)
    assert result.evaluation.accuracy >= 1.0 - constraint - 1e-9
    assert all(0.0 <= t <= 1.0 for t in result.thresholds)


# -------------------------------------------------------------------- arrivals

@FAST
@given(n=st.integers(1, 500), rate=st.floats(0.5, 500.0))
def test_fixed_rate_arrivals_sorted_and_correct_length(n, rate):
    arrivals = fixed_rate_arrivals(n, rate)
    assert arrivals.shape == (n,)
    assert np.all(np.diff(arrivals) >= 0)


@FAST
@given(n=st.integers(1, 300), rate=st.floats(1.0, 200.0), seed=st.integers(0, 100))
def test_poisson_arrivals_sorted(n, rate, seed):
    arrivals = poisson_arrivals(n, rate, np.random.default_rng(seed))
    assert arrivals.shape == (n,)
    assert np.all(np.diff(arrivals) >= 0)


# ----------------------------------------------------------------------- stats

@FAST
@given(values=st.lists(st.floats(0.0, 1e4), min_size=1, max_size=200))
def test_latency_summary_percentile_ordering(values):
    summary = summarize_latencies(values)
    assert summary["p25"] <= summary["p50"] <= summary["p95"]
    assert min(values) - 1e-9 <= summary["mean"] <= max(values) + 1e-9


@FAST
@given(flags=st.lists(st.booleans(), min_size=1, max_size=100),
       window=st.integers(1, 32))
def test_windowed_accuracy_bounds(flags, window):
    monitor = WindowedAccuracy(window=window)
    for flag in flags:
        monitor.record(flag)
    accuracy = monitor.accuracy()
    assert 0.0 <= accuracy <= 1.0
    recent = flags[-window:]
    assert accuracy == pytest.approx(sum(recent) / len(recent))
