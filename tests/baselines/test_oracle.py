"""Tests for the optimal-exit oracle (§2.2)."""

import numpy as np
import pytest

from repro.baselines.oracle import (
    OracleTokenPolicy,
    optimal_exit_depths,
    optimal_latencies,
    run_optimal_classification,
    run_optimal_generative,
)
from repro.core.pipeline import run_vanilla
from repro.models.prediction import PredictionModel
from repro.models.zoo import get_model
from repro.workloads.difficulty import DifficultyTrace


def test_optimal_exit_depths_pick_earliest_sufficient_ramp(resnet50_stack):
    spec, _profile, prediction, catalog, _exec = resnet50_stack
    trace = DifficultyTrace(name="t", raw_difficulty=np.array([0.0, 0.5, 1.0]),
                            sharpness=np.full(3, 0.05))
    depths = optimal_exit_depths(trace, prediction, [r.depth_fraction for r in catalog.ramps])
    required = prediction.required_depths(trace.raw_difficulty)
    assert depths[0] >= required[0]
    assert np.all(np.diff(depths) >= 0)
    assert depths[2] == pytest.approx(1.0)   # the hardest input cannot exit


def test_optimal_exit_depths_without_candidates(resnet50_stack):
    _spec, _profile, prediction, _catalog, _exec = resnet50_stack
    trace = DifficultyTrace(name="t", raw_difficulty=np.array([0.2]), sharpness=np.array([0.05]))
    assert optimal_exit_depths(trace, prediction, []).tolist() == [1.0]


def test_optimal_latencies_never_exceed_vanilla(resnet50_stack, small_video_workload):
    spec, _profile, prediction, catalog, _exec = resnet50_stack
    vanilla = run_vanilla("resnet50", small_video_workload)
    optimal = optimal_latencies(vanilla, small_video_workload.trace, prediction,
                                [r.depth_fraction for r in catalog.ramps])
    vanilla_lat = vanilla.latencies()
    assert optimal.shape == vanilla_lat.shape
    assert np.all(optimal <= vanilla_lat + 1e-9)


def test_run_optimal_classification_beats_vanilla_median(small_video_workload):
    vanilla = run_vanilla("resnet50", small_video_workload)
    optimal = run_optimal_classification("resnet50", small_video_workload)
    assert np.median(optimal) < vanilla.median_latency()


def test_oracle_token_policy_exits_correctly(resnet50_stack):
    prediction = PredictionModel(get_model("t5-large"), seed=0)
    policy = OracleTokenPolicy(prediction, [0.2, 0.5, 0.8])
    easy = policy.decide(0, 0, 0.05, 0.05)
    assert easy.exited and easy.correct
    assert easy.exit_depth in (0.2, 0.5, 0.8)
    hard = policy.decide(0, 1, 1.0, 0.05)
    assert not hard.exited


def test_run_optimal_generative_dominates_vanilla(small_generative_workload):
    from repro.core.generative import run_generative_vanilla
    vanilla = run_generative_vanilla("t5-large", small_generative_workload)
    optimal = run_optimal_generative("t5-large", small_generative_workload)
    assert optimal.median_tpt() < vanilla.median_tpt()
    assert optimal.mean_sequence_accuracy() == pytest.approx(1.0)
