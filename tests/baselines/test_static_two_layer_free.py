"""Tests for the static-EE, two-layer and FREE baselines (§4.2, §4.4)."""

import numpy as np
import pytest

from repro.baselines.free import FreeTokenPolicy, calibrate_free_policy, run_free_generative
from repro.baselines.static_ee import (
    StaticEEVariant,
    calibrate_static_thresholds,
    run_static_ee,
)
from repro.baselines.two_layer import TwoLayerSystem, run_two_layer
from repro.core.generative import generative_ramp_depths
from repro.core.pipeline import run_apparate, run_vanilla
from repro.models.prediction import PredictionModel
from repro.models.zoo import get_model


# --------------------------------------------------------------------- static


def test_static_shared_variant_uses_one_threshold(resnet50_stack, small_video_workload):
    result = run_static_ee("resnet50", small_video_workload, StaticEEVariant.SHARED)
    assert len(set(np.round(result.thresholds, 6))) == 1
    assert len(result.ramp_depths) >= 8


def test_static_per_ramp_variant_allows_distinct_thresholds(small_video_workload):
    result = run_static_ee("resnet50", small_video_workload, StaticEEVariant.PER_RAMP)
    assert len(result.thresholds) == len(result.ramp_depths)


def test_static_calibration_respects_constraint_on_calibration_data(resnet50_stack):
    spec, _profile, prediction, catalog, _exec = resnet50_stack
    from repro.workloads.video import make_video_workload
    trace = make_video_workload("urban-day", num_frames=800, seed=31).trace
    depths = [r.depth_fraction for r in catalog.ramps]
    overheads = [r.overhead_fraction * spec.bs1_latency_ms for r in catalog.ramps]
    thresholds = calibrate_static_thresholds(trace, prediction, depths, overheads,
                                             spec.bs1_latency_ms, StaticEEVariant.SHARED)
    from repro.baselines.static_ee import _observation_matrices
    from repro.exits.evaluation import evaluate_thresholds
    errors, correct = _observation_matrices(trace, prediction, depths)
    evaluation = evaluate_thresholds(errors, correct, thresholds, depths, overheads,
                                     spec.bs1_latency_ms)
    assert evaluation.accuracy >= 0.99


def test_static_ee_loses_more_accuracy_than_apparate(small_video_workload):
    """Table 2: one-time tuning degrades under drift; Apparate does not."""
    static = run_static_ee("resnet50", small_video_workload, StaticEEVariant.SHARED)
    apparate = run_apparate("resnet50", small_video_workload)
    assert apparate.metrics.accuracy() >= static.metrics.accuracy()


def test_static_oracle_variant_calibrates_on_test_stream(small_video_workload):
    oracle = run_static_ee("resnet50", small_video_workload, StaticEEVariant.ORACLE)
    shared = run_static_ee("resnet50", small_video_workload, StaticEEVariant.SHARED)
    assert oracle.metrics.accuracy() >= shared.metrics.accuracy() - 0.02


def test_static_summary_fields(small_video_workload):
    summary = run_static_ee("resnet50", small_video_workload).summary()
    assert "num_ramps" in summary and "p50_ms" in summary


# ------------------------------------------------------------------ two-layer


def test_two_layer_calibration_monotone(resnet50_stack):
    _spec, _profile, prediction, _catalog, _exec = resnet50_stack
    from repro.workloads.video import make_video_workload
    trace = make_video_workload("urban-day", num_frames=1500, seed=33).trace
    strict = TwoLayerSystem(capability_depth=0.4, runtime_fraction=0.3)
    loose = TwoLayerSystem(capability_depth=0.4, runtime_fraction=0.3)
    strict.calibrate(trace, prediction, accuracy_constraint=0.001)
    loose.calibrate(trace, prediction, accuracy_constraint=0.05)
    assert loose.confidence_threshold >= strict.confidence_threshold


def test_two_layer_latency_structure(small_video_workload):
    result = run_two_layer("resnet50", small_video_workload)
    spec = get_model("resnet50")
    compressed_time = 0.40 * spec.bs1_latency_ms
    assert result.latencies_ms.min() >= compressed_time - 1e-6
    assert 0.0 < result.escalation_rate < 1.0
    assert result.accuracy >= 0.98


def test_two_layer_escalated_inputs_slower_than_vanilla(small_nlp_workload):
    """Hard inputs pay compressed + base model time (worse tails than Apparate)."""
    vanilla = run_vanilla("bert-base", small_nlp_workload)
    two_layer = run_two_layer("bert-base", small_nlp_workload)
    assert two_layer.summary()["p95_ms"] > vanilla.p95_latency()


def test_two_layer_apparate_wins_p95(small_nlp_workload):
    apparate = run_apparate("bert-base", small_nlp_workload)
    two_layer = run_two_layer("bert-base", small_nlp_workload)
    assert apparate.metrics.p95_latency() < two_layer.summary()["p95_ms"]


# ----------------------------------------------------------------------- FREE


def test_free_calibration_returns_valid_pair(small_generative_workload):
    prediction = PredictionModel(get_model("t5-large"), seed=0)
    depths = generative_ramp_depths("t5-large")
    depth, threshold = calibrate_free_policy(prediction, small_generative_workload, depths)
    assert depth in depths or any(abs(depth - d) < 1e-9 for d in depths)
    assert 0.0 <= threshold < 1.0


def test_free_policy_never_adapts(small_generative_workload):
    prediction = PredictionModel(get_model("t5-large"), seed=0)
    policy = FreeTokenPolicy(prediction, ramp_depth=0.4, threshold=0.5)
    policy.feedback([])  # no-op by design
    before = (policy.ramp_depth, policy.threshold)
    for i in range(50):
        policy.decide(0, i, 0.9, 0.05)
    assert (policy.ramp_depth, policy.threshold) == before


def test_free_runs_and_reports_metrics(small_generative_workload):
    metrics = run_free_generative("t5-large", small_generative_workload)
    assert len(metrics.tokens) == small_generative_workload.total_tokens()
    assert 0.0 <= metrics.exit_rate() <= 1.0


def test_apparate_matches_or_beats_free_accuracy_under_trend_drift():
    """§4.4: FREE's one-time tuning degrades when the workload drifts harder."""
    from repro.core.generative import run_generative_apparate
    from repro.generative.sequences import make_generative_workload
    workload = make_generative_workload("cnn-dailymail", num_sequences=80, rate_qps=2.0,
                                        seed=17, drift_amplitude=0.35, drift_mode="trend")
    free = run_free_generative("t5-large", workload)
    apparate = run_generative_apparate("t5-large", workload)
    assert apparate.metrics.mean_sequence_accuracy() >= \
        free.mean_sequence_accuracy() - 0.005
