"""End-to-end integration tests spanning workloads, platforms and Apparate."""

import pytest

from repro.baselines.oracle import run_optimal_classification
from repro.core.apparate import Apparate
from repro.core.generative import run_generative_apparate, run_generative_vanilla
from repro.core.pipeline import run_apparate, run_vanilla
from repro.generative.sequences import make_generative_workload
from repro.workloads.nlp import make_nlp_workload
from repro.workloads.video import make_video_workload

import numpy as np


@pytest.mark.parametrize("model,scene", [("resnet18", "urban-day"), ("vgg11", "highway")])
def test_cv_end_to_end_latency_accuracy_throughput(model, scene):
    workload = make_video_workload(scene, num_frames=2500, seed=41)
    vanilla = run_vanilla(model, workload)
    apparate = run_apparate(model, workload)
    # Latency improves, accuracy within constraint, throughput preserved,
    # tail within the 2% ramp budget.
    assert apparate.metrics.median_latency() < vanilla.median_latency()
    assert apparate.metrics.accuracy() >= 0.985
    assert apparate.metrics.throughput_qps() >= vanilla.throughput_qps() * 0.97
    assert apparate.metrics.p95_latency() <= vanilla.p95_latency() * 1.05


def test_nlp_end_to_end_on_both_platforms():
    workload = make_nlp_workload("amazon", num_requests=2500, rate_qps=20, seed=42)
    for platform in ("clockwork", "tfserve"):
        vanilla = run_vanilla("bert-base", workload, platform=platform)
        apparate = run_apparate("bert-base", workload, platform=platform)
        assert apparate.metrics.median_latency() <= vanilla.median_latency()
        assert apparate.metrics.accuracy() >= 0.98


def test_apparate_between_vanilla_and_oracle():
    workload = make_video_workload("urban-day", num_frames=2500, seed=43)
    vanilla = run_vanilla("resnet50", workload)
    apparate = run_apparate("resnet50", workload)
    oracle = np.median(run_optimal_classification("resnet50", workload))
    assert oracle <= apparate.metrics.median_latency() <= vanilla.median_latency()


def test_accuracy_constraint_sweep_monotone_wins():
    """Figure 19: looser accuracy constraints never reduce latency savings."""
    workload = make_video_workload("urban-day", num_frames=2500, seed=44)
    medians = []
    for constraint in (0.01, 0.05):
        result = run_apparate("resnet50", workload, accuracy_constraint=constraint)
        medians.append(result.metrics.median_latency())
        assert result.metrics.accuracy() >= 1.0 - constraint - 0.01
    assert medians[1] <= medians[0] * 1.05


def test_ramp_budget_sweep_monotone_wins():
    """Table 3: larger ramp budgets never reduce median latency savings (much)."""
    workload = make_video_workload("urban-day", num_frames=2500, seed=45)
    small = run_apparate("resnet50", workload, ramp_budget=0.02)
    large = run_apparate("resnet50", workload, ramp_budget=0.10)
    assert large.metrics.median_latency() <= small.metrics.median_latency() * 1.10


def test_generative_end_to_end():
    # Long-output summarization gives the adaptive policy enough token
    # feedback to both activate exits and hold the accuracy constraint.
    workload = make_generative_workload("cnn-dailymail", num_sequences=90, rate_qps=2.0,
                                        seed=46)
    vanilla = run_generative_vanilla("t5-large", workload)
    apparate = run_generative_apparate("t5-large", workload)
    assert apparate.metrics.median_tpt() < vanilla.median_tpt()
    assert apparate.metrics.mean_sequence_accuracy() >= 0.98


def test_full_api_round_trip():
    """Register -> prepare -> serve -> compare, through the public API only."""
    system = Apparate(seed=7)
    workload = make_video_workload("crossroads", num_frames=2000, seed=47)
    deployment = system.register("resnet50", accuracy_constraint=0.01, ramp_budget=0.02,
                                 bootstrap_workload=workload)
    assert deployment.preparation.num_initial_ramps >= 1
    result = deployment.serve(workload)
    vanilla = deployment.serve_vanilla(workload)
    assert result.metrics.median_latency() < vanilla.median_latency()
    assert result.controller.stats.threshold_tunings > 0


def test_determinism_across_runs():
    workload = make_video_workload("urban-day", num_frames=1500, seed=48)
    a = run_apparate("resnet50", workload, seed=3)
    b = run_apparate("resnet50", workload, seed=3)
    assert a.metrics.median_latency() == pytest.approx(b.metrics.median_latency())
    assert a.metrics.accuracy() == pytest.approx(b.metrics.accuracy())
