"""Tests for Apparate's runtime controller."""

import pytest

from repro.core.controller import ApparateController
from repro.core.pipeline import model_stack
from repro.exits.adjustment import AdjustmentDecision


@pytest.fixture()
def controller():
    spec, profile, _pred, catalog, _exec = model_stack("resnet50", seed=0)
    return ApparateController(spec, catalog, profile, accuracy_constraint=0.01)


@pytest.fixture()
def executor():
    return model_stack("resnet50", seed=0)[4]


def test_initial_config_has_zero_thresholds(controller):
    ramp_ids, depths, thresholds, overheads = controller.deployed_config()
    assert len(ramp_ids) > 0
    assert all(t == 0.0 for t in thresholds)
    assert len(depths) == len(ramp_ids) == len(overheads)


def test_initial_config_within_budget(controller):
    assert controller.overhead_budget_ok()


def test_feedback_activates_exits(controller, executor):
    """After enough easy-input feedback, thresholds rise above zero."""
    for _ in range(10):
        ramp_ids, depths, thresholds, overheads = controller.deployed_config()
        execution = executor.execute_batch([0.1] * 16, [0.05] * 16, ramp_ids, depths,
                                           thresholds, overheads)
        controller.observe_batch(execution)
    assert controller.stats.threshold_tunings > 0
    assert any(t > 0 for t in controller.config.ordered_thresholds())


def test_budget_respected_throughout_adaptation(controller, executor):
    for step in range(40):
        ramp_ids, depths, thresholds, overheads = controller.deployed_config()
        difficulty = 0.1 if step < 20 else 0.6
        execution = executor.execute_batch([difficulty] * 8, [0.05] * 8, ramp_ids, depths,
                                           thresholds, overheads)
        controller.observe_batch(execution)
        assert controller.config.within_budget()
        assert controller.config.num_active() <= controller.catalog.max_active_ramps()


def test_ramp_adjustments_run_periodically(controller, executor):
    for _ in range(40):   # 40 * 8 = 320 samples > 2 adjustment periods
        ramp_ids, depths, thresholds, overheads = controller.deployed_config()
        execution = executor.execute_batch([0.2] * 8, [0.05] * 8, ramp_ids, depths,
                                           thresholds, overheads)
        controller.observe_batch(execution)
    assert controller.stats.ramp_adjustments >= 2


def test_config_history_recorded(controller):
    assert controller.stats.config_history[0][0] == 0
    assert controller.stats.config_history[0][1] == controller.config.active_ramp_ids


def test_apply_decision_threshold_update(controller):
    ramp = controller.config.active_ramp_ids[0]
    controller.apply_decision(AdjustmentDecision(action="retuned-thresholds",
                                                 new_thresholds={ramp: 0.4}))
    assert controller.config.thresholds[ramp] == pytest.approx(0.4)


def test_apply_decision_ramp_replacement(controller):
    remove = controller.config.active_ramp_ids[0]
    inactive = next(r for r in range(len(controller.catalog))
                    if r not in controller.config.active_ramp_ids)
    controller.apply_decision(AdjustmentDecision(action="replaced-negative-ramps",
                                                 ramps_to_remove=[remove],
                                                 ramps_to_add=[inactive]))
    assert remove not in controller.config.active_ramp_ids
    assert inactive in controller.config.active_ramp_ids
    # Newly added ramps start with threshold zero.
    assert controller.config.thresholds[inactive] == 0.0
    assert controller.window.ramp_ids == controller.config.active_ramp_ids


def test_tune_thresholds_noop_without_feedback(controller):
    controller.tune_thresholds()
    assert controller.stats.threshold_tunings == 0


def test_accuracy_triggered_tuning_counted(controller, executor):
    """Hard inputs misclassified after an easy phase trigger accuracy tunings."""
    for _ in range(12):
        ramp_ids, depths, thresholds, overheads = controller.deployed_config()
        execution = executor.execute_batch([0.05] * 16, [0.05] * 16, ramp_ids, depths,
                                           thresholds, overheads)
        controller.observe_batch(execution)
    # Shift to inputs that look confident (positive shift) but are hard.
    for _ in range(12):
        ramp_ids, depths, thresholds, overheads = controller.deployed_config()
        execution = executor.execute_batch([0.7] * 16, [0.05] * 16, ramp_ids, depths,
                                           thresholds, overheads,
                                           confidence_shifts=[0.35] * 16)
        controller.observe_batch(execution)
    assert controller.stats.samples_seen == 24 * 16
    assert controller.stats.threshold_tunings > 0
