"""Tests for fleet-scale EE control and the cluster pipeline entry points."""

import pytest

from repro.core.controller import ApparateController, FleetController
from repro.core.pipeline import (build_cluster, model_stack,
                                 run_apparate_cluster, run_vanilla_cluster)


@pytest.fixture(scope="module")
def stack():
    return model_stack("resnet50", seed=0)


def make_fleet(stack, num_replicas=2, mode="independent", **kwargs):
    spec, profile, _pred, catalog, _exec = stack
    return FleetController(spec, catalog, profile, num_replicas, mode=mode, **kwargs)


# ------------------------------------------------------------ FleetController

def test_independent_mode_gives_each_replica_its_own_controller(stack):
    fleet = make_fleet(stack, num_replicas=3, mode="independent")
    controllers = [fleet.replica_controller(i) for i in range(3)]
    assert all(isinstance(c, ApparateController) for c in controllers)
    assert len({id(c) for c in controllers}) == 3
    assert fleet.primary() is controllers[0]


def test_shared_mode_propagates_config_and_syncs_feedback(stack):
    _spec, _profile, _pred, _cat, executor = stack
    fleet = make_fleet(stack, num_replicas=2, mode="shared", sync_period=32)
    views = [fleet.replica_controller(i) for i in range(2)]
    # Both replicas read the same deployed configuration.
    assert views[0].deployed_config() == views[1].deployed_config()
    assert views[0].shared is fleet.primary()

    # Feedback smaller than the sync period stays buffered locally...
    ramp_ids, depths, thresholds, overheads = views[0].deployed_config()
    execution = executor.execute_batch([0.1] * 16, [0.05] * 16, ramp_ids, depths,
                                       thresholds, overheads)
    views[0].observe_batch(execution)
    assert fleet.primary().stats.samples_seen == 0
    # ...and reaches the shared controller once the period fills.
    views[0].observe_batch(execution)
    assert fleet.primary().stats.samples_seen == 32


def test_fleet_flush_drains_partial_buffers(stack):
    _spec, _profile, _pred, _cat, executor = stack
    fleet = make_fleet(stack, num_replicas=2, mode="shared", sync_period=256)
    view = fleet.replica_controller(1)
    ramp_ids, depths, thresholds, overheads = view.deployed_config()
    execution = executor.execute_batch([0.1] * 8, [0.05] * 8, ramp_ids, depths,
                                       thresholds, overheads)
    view.observe_batch(execution)
    assert fleet.primary().stats.samples_seen == 0
    fleet.flush()
    assert fleet.primary().stats.samples_seen == 8


def test_fleet_controller_validates_arguments(stack):
    with pytest.raises(ValueError):
        make_fleet(stack, num_replicas=0)
    with pytest.raises(ValueError):
        make_fleet(stack, mode="federated")
    with pytest.raises(ValueError):
        make_fleet(stack, mode="shared", sync_period=0)


def test_fleet_stats_summary_sums_controllers(stack):
    fleet = make_fleet(stack, num_replicas=3, mode="independent")
    summary = fleet.stats_summary()
    assert summary["num_controllers"] == 3.0
    shared = make_fleet(stack, num_replicas=3, mode="shared")
    assert shared.stats_summary()["num_controllers"] == 1.0


# ------------------------------------------------------------- pipeline runs

def test_build_cluster_replicates_platform(stack):
    _spec, profile, *_rest = stack
    cluster = build_cluster("clockwork", profile, replicas=3,
                            balancer="join_shortest_queue")
    assert cluster.num_replicas == 3
    assert cluster.balancer.name == "join_shortest_queue"
    assert len({id(p) for p in cluster.platforms}) == 3
    with pytest.raises(ValueError):
        build_cluster("clockwork", profile, replicas=0)


def test_run_vanilla_cluster_serves_all_requests(small_video_workload):
    fleet = run_vanilla_cluster("resnet50", small_video_workload, replicas=2,
                                balancer="round_robin", drop_expired=False)
    agg = fleet.aggregate()
    assert len(agg.served()) == len(small_video_workload)
    assert sum(fleet.dispatch_counts) == len(small_video_workload)


@pytest.mark.parametrize("fleet_mode", ["independent", "shared"])
def test_run_apparate_cluster_modes(small_video_workload, fleet_mode):
    result = run_apparate_cluster("resnet50", small_video_workload, replicas=2,
                                  balancer="join_shortest_queue",
                                  fleet_mode=fleet_mode, drop_expired=False)
    agg = result.metrics.aggregate()
    assert len(agg.served()) == len(small_video_workload)
    # Exits activate at fleet scale and the accuracy constraint holds loosely.
    assert agg.exit_rate() > 0.0
    assert agg.accuracy() >= 0.95
    summary = result.summary()
    assert summary["num_replicas"] == 2.0
    expected_controllers = 2.0 if fleet_mode == "independent" else 1.0
    assert summary["num_controllers"] == expected_controllers
    assert summary["samples_seen"] == len(small_video_workload)


def test_cluster_outscales_single_replica(small_video_workload):
    one = run_vanilla_cluster("resnet50", small_video_workload, replicas=1,
                              drop_expired=False)
    two = run_vanilla_cluster("resnet50", small_video_workload, replicas=2,
                              balancer="least_work_left", drop_expired=False)
    assert two.fleet_throughput_qps() >= one.fleet_throughput_qps() * 0.95
    assert two.aggregate().p95_latency() <= one.aggregate().p95_latency() + 1e-9
