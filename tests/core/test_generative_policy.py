"""Tests for generative serving with Apparate (§3.4)."""

import pytest

from repro.core.generative import (
    ApparateTokenPolicy,
    generative_ramp_depths,
    run_generative_apparate,
    run_generative_vanilla,
)
from repro.generative.parallel import TokenFeedback
from repro.models.prediction import PredictionModel
from repro.models.zoo import get_model


@pytest.fixture(scope="module")
def t5_prediction():
    return PredictionModel(get_model("t5-large"), seed=0)


def test_generative_ramp_depths_are_block_boundaries():
    depths = generative_ramp_depths("t5-large")
    assert len(depths) > 10
    assert all(0.0 < d < 1.0 for d in depths)
    assert depths == sorted(depths)


def test_policy_requires_candidates(t5_prediction):
    with pytest.raises(ValueError):
        ApparateTokenPolicy(t5_prediction, [])


def test_policy_starts_without_exiting(t5_prediction):
    policy = ApparateTokenPolicy(t5_prediction, generative_ramp_depths("t5-large"))
    decision = policy.decide(0, 0, 0.05, 0.05)
    assert not decision.exited
    assert policy.threshold == 0.0


def test_policy_threshold_rises_with_easy_feedback(t5_prediction):
    policy = ApparateTokenPolicy(t5_prediction, generative_ramp_depths("t5-large"),
                                 refresh_period=16)
    records = [TokenFeedback(0, i, 0.05, False, True) for i in range(160)]
    policy.feedback(records)
    assert policy.threshold > 0.0
    decision = policy.decide(0, 99, 0.05, 0.05)
    assert decision.exited


def test_policy_accuracy_violation_lowers_threshold(t5_prediction):
    policy = ApparateTokenPolicy(t5_prediction, generative_ramp_depths("t5-large"),
                                 refresh_period=16)
    policy.feedback([TokenFeedback(0, i, 0.05, False, True) for i in range(160)])
    aggressive = policy.threshold
    assert aggressive > 0.0
    # A burst of confident-but-wrong tokens must pull the threshold back down.
    policy.feedback([TokenFeedback(1, i, 0.05, True, False) for i in range(160)])
    assert policy.threshold < aggressive


def test_policy_moves_ramp_later_when_exits_are_rare(t5_prediction):
    depths = generative_ramp_depths("t5-large")
    policy = ApparateTokenPolicy(t5_prediction, depths, refresh_period=16,
                                 adjustment_period=64, initial_position=2)
    start = policy.position
    # Feedback says the ramp is never confident: errors high, agreement low.
    records = [TokenFeedback(0, i, 0.95, False, False) for i in range(256)]
    policy.feedback(records)
    assert policy.position >= start  # never moves earlier on bad evidence
    assert policy.tokens_seen == 256


def test_run_generative_vanilla_and_apparate(small_generative_workload):
    vanilla = run_generative_vanilla("t5-large", small_generative_workload)
    apparate = run_generative_apparate("t5-large", small_generative_workload)
    assert len(vanilla.tokens) == small_generative_workload.total_tokens()
    assert apparate.metrics.median_tpt() <= vanilla.median_tpt() * 1.05
    assert apparate.metrics.mean_sequence_accuracy() >= 0.97


def test_run_generative_apparate_summary(small_generative_workload):
    result = run_generative_apparate("t5-large", small_generative_workload)
    summary = result.summary()
    assert {"tpt_p50_ms", "sequence_accuracy", "ramp_depth", "threshold"} <= set(summary)


def test_generative_llama_model_runs(small_generative_workload):
    result = run_generative_apparate("llama2-7b", small_generative_workload)
    assert result.metrics.mean_sequence_accuracy() >= 0.97
    assert len(result.metrics.tokens) == small_generative_workload.total_tokens()
