"""Tests for the classification pipelines and the public Apparate API."""

import pytest

from repro.core.apparate import Apparate
from repro.core.pipeline import build_platform, model_stack, run_apparate, run_vanilla
from repro.exits.ramps import RampStyle
from repro.models.quantization import quantized_spec
from repro.models.zoo import get_model


def test_model_stack_components(resnet50_stack):
    spec, profile, prediction, catalog, executor = resnet50_stack
    assert spec.name == "resnet50"
    assert profile.total_latency_ms(1) == pytest.approx(spec.bs1_latency_ms)
    assert len(catalog) > 5
    assert executor.spec is spec


def test_build_platform_by_name(resnet50_stack):
    _spec, profile, *_rest = resnet50_stack
    assert build_platform("clockwork", profile).__class__.__name__ == "ClockworkPlatform"
    assert build_platform("tfserve", profile).__class__.__name__ == "TFServingPlatform"
    with pytest.raises(ValueError):
        build_platform("triton", profile)


def test_run_vanilla_serves_all_requests(small_video_workload):
    metrics = run_vanilla("resnet50", small_video_workload)
    assert len(metrics.served()) == len(small_video_workload)
    assert metrics.exit_rate() == 0.0
    assert metrics.accuracy() == 1.0


def test_run_apparate_improves_median_latency_cv(small_video_workload):
    vanilla = run_vanilla("resnet50", small_video_workload)
    apparate = run_apparate("resnet50", small_video_workload)
    assert apparate.metrics.median_latency() < vanilla.median_latency()
    assert apparate.metrics.exit_rate() > 0.3


def test_run_apparate_meets_accuracy_constraint(small_video_workload):
    apparate = run_apparate("resnet50", small_video_workload, accuracy_constraint=0.01)
    assert apparate.metrics.accuracy() >= 0.985


def test_run_apparate_tail_latency_within_budget(small_video_workload):
    vanilla = run_vanilla("resnet50", small_video_workload)
    apparate = run_apparate("resnet50", small_video_workload, ramp_budget=0.02)
    assert apparate.metrics.p95_latency() <= vanilla.p95_latency() * 1.05


def test_run_apparate_throughput_preserved(small_video_workload):
    """Exits release results early but never change platform throughput."""
    vanilla = run_vanilla("resnet50", small_video_workload)
    apparate = run_apparate("resnet50", small_video_workload)
    assert apparate.metrics.throughput_qps() >= vanilla.throughput_qps() * 0.97


def test_run_apparate_summary_fields(small_video_workload):
    summary = run_apparate("resnet50", small_video_workload).summary()
    assert {"p50_ms", "accuracy", "threshold_tunings", "ramp_adjustments",
            "active_ramps"} <= set(summary)


def test_run_apparate_with_ablation_switch(small_video_workload):
    result = run_apparate("resnet50", small_video_workload, ramp_adjustment_enabled=False)
    assert result.controller.stats.ramp_adjustments == 0


def test_run_apparate_alternative_ramp_style(small_nlp_workload):
    result = run_apparate("bert-base", small_nlp_workload, ramp_style=RampStyle.DEEP_POOLER)
    assert result.metrics.accuracy() >= 0.98


def test_run_apparate_on_quantized_model(small_nlp_workload):
    quantized = quantized_spec(get_model("bert-base"), register=True)
    result = run_apparate(quantized, small_nlp_workload)
    assert len(result.metrics.served()) > 0
    assert result.metrics.accuracy() >= 0.98


class TestApparateAPI:
    def test_register_and_serve(self, small_video_workload):
        system = Apparate(seed=0)
        deployment = system.register("resnet50", bootstrap_workload=small_video_workload)
        assert deployment.preparation.num_candidate_ramps > 5
        assert deployment.preparation.training is not None
        result = deployment.serve(small_video_workload)
        vanilla = deployment.serve_vanilla(small_video_workload)
        assert result.metrics.median_latency() < vanilla.median_latency()

    def test_register_without_bootstrap(self):
        system = Apparate()
        deployment = system.register("vgg11")
        assert deployment.preparation.training is None
        assert deployment.slo_ms == get_model("vgg11").default_slo_ms

    def test_registered_models_listing(self):
        system = Apparate()
        system.register("resnet18")
        system.register("vgg11")
        assert system.registered_models() == ["resnet18", "vgg11"]
        assert system.deployment("vgg11").spec.name == "vgg11"
        with pytest.raises(KeyError):
            system.deployment("bert-base")

    def test_custom_slo_and_constraints(self):
        system = Apparate()
        deployment = system.register("resnet50", slo_ms=100.0, accuracy_constraint=0.05,
                                     ramp_budget=0.05)
        assert deployment.slo_ms == 100.0
        assert deployment.accuracy_constraint == 0.05
        assert deployment.ramp_budget == 0.05
