"""Tests for the command-line interface."""

import json

import pytest

from repro.api import get_system, list_systems
from repro.cli import build_parser, main


def test_parser_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_models_command_lists_zoo(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    assert "resnet50" in out
    assert "t5-large" in out
    assert "bs=1" in out


def test_classify_command_runs_small_video_workload(capsys):
    code = main(["classify", "--model", "resnet50", "--workload", "video:urban-day",
                 "--requests", "800", "--seed", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "median latency win" in out
    assert "Apparate" in out


def test_classify_command_rejects_generative_model():
    with pytest.raises(SystemExit):
        main(["classify", "--model", "t5-large", "--requests", "100"])


def test_classify_command_rejects_unknown_workload_kind():
    with pytest.raises(SystemExit):
        main(["classify", "--model", "resnet50", "--workload", "audio:calls",
              "--requests", "100"])


def test_generate_command_runs_small_workload(capsys):
    code = main(["generate", "--model", "t5-large", "--dataset", "squad",
                 "--sequences", "30", "--seed", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "median TPT win" in out
    assert "vanilla" in out and "Apparate" in out


def test_generate_command_rejects_classification_model():
    with pytest.raises(SystemExit):
        main(["generate", "--model", "resnet50", "--sequences", "10"])


def test_classify_command_cluster_mode(capsys):
    code = main(["classify", "--model", "resnet50", "--workload", "video:urban-day",
                 "--requests", "600", "--seed", "5", "--replicas", "2",
                 "--balancer", "join_shortest_queue", "--fleet-mode", "shared"])
    assert code == 0
    out = capsys.readouterr().out
    assert "replicas=2" in out
    assert "balancer=join_shortest_queue" in out
    assert "fleet throughput" in out
    assert "replica 0" in out and "replica 1" in out
    assert "fleet controllers: " in out and "(shared)" in out


def test_classify_command_rejects_bad_replicas():
    with pytest.raises(SystemExit):
        main(["classify", "--model", "resnet50", "--requests", "100",
              "--replicas", "0"])


def test_classify_command_rejects_unknown_balancer():
    with pytest.raises(SystemExit):
        main(["classify", "--model", "resnet50", "--requests", "100",
              "--replicas", "2", "--balancer", "coin-flip"])


def test_classify_command_autoscaled_fleet(capsys):
    code = main(["classify", "--model", "resnet50", "--requests", "400",
                 "--seed", "5", "--replicas", "2", "--autoscaler", "reactive",
                 "--min-replicas", "1", "--max-replicas", "4",
                 "--systems", "vanilla", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["params"]["cluster"]["autoscaler"] == "reactive"
    assert payload["params"]["cluster"]["min_replicas"] == 1
    assert payload["params"]["cluster"]["max_replicas"] == 4
    result = payload["results"][0]
    assert result["summary"]["replica_seconds"] > 0
    assert result["details"]["fleet_timeline"][0][1] == 2


def test_classify_command_heterogeneous_profiles(capsys):
    code = main(["classify", "--model", "resnet50", "--requests", "300",
                 "--seed", "5", "--replicas", "2", "--balancer",
                 "weighted_round_robin", "--replica-profiles", "2,0.5",
                 "--systems", "vanilla", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    profiles = payload["params"]["cluster"]["profiles"]
    assert [p["speed"] for p in profiles] == [2.0, 0.5]
    counts = payload["results"][0]["details"]["dispatch_counts"]
    assert counts[0] > counts[1], "weighted RR favours the fast replica"


def test_classify_command_rejects_mismatched_profiles():
    with pytest.raises(SystemExit):
        main(["classify", "--model", "resnet50", "--requests", "100",
              "--replicas", "2", "--replica-profiles", "2,1,0.5"])


def test_classify_command_rejects_zero_fleet_bounds():
    """Regression: an explicit 0 must reach ClusterSpec validation instead of
    being dropped by truthiness."""
    with pytest.raises(SystemExit):
        main(["classify", "--model", "resnet50", "--requests", "100",
              "--max-replicas", "0"])
    with pytest.raises(SystemExit):
        main(["classify", "--model", "resnet50", "--requests", "100",
              "--min-replicas", "0"])


def test_nlp_workload_parsing(capsys):
    code = main(["classify", "--model", "distilbert-base", "--workload", "nlp:imdb",
                 "--requests", "600", "--rate", "25", "--seed", "6"])
    assert code == 0
    assert "distilbert-base" in capsys.readouterr().out


# ------------------------------------------------------------ systems / json


@pytest.mark.parametrize("system", sorted(list_systems()))
def test_every_registered_system_is_cli_reachable(system, capsys):
    """Regression guard: no registered system may be unreachable from the CLI.

    Classification-capable systems run through ``classify --systems``,
    generative-capable ones through ``generate --systems`` — every system
    supports at least one of the two.
    """
    runner = get_system(system)
    ran = False
    if runner.supports("classification"):
        assert main(["classify", "--model", "resnet50", "--requests", "120",
                     "--systems", system, "--seed", "3"]) == 0
        ran = True
    if runner.supports("generative"):
        assert main(["generate", "--model", "t5-large", "--dataset", "squad",
                     "--sequences", "8", "--systems", system, "--seed", "3"]) == 0
        ran = True
    assert ran, f"system {system!r} is reachable from no CLI subcommand"
    from repro.api.result import SYSTEM_DISPLAY_NAMES
    assert SYSTEM_DISPLAY_NAMES.get(system, system) in capsys.readouterr().out


def test_classify_rejects_unknown_system():
    with pytest.raises(SystemExit):
        main(["classify", "--requests", "50", "--systems", "warp-drive"])


def test_classify_rejects_system_without_kind_support():
    with pytest.raises(SystemExit):
        main(["classify", "--requests", "50", "--systems", "free"])


def test_classify_json_output_is_machine_readable(capsys):
    code = main(["classify", "--model", "resnet50", "--requests", "150",
                 "--seed", "4", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro.run_report/v1"
    assert [r["system"] for r in payload["results"]] == ["vanilla", "apparate"]
    assert payload["results"][0]["summary"]["num_served"] == 150.0


def test_generate_json_output(capsys):
    code = main(["generate", "--model", "t5-large", "--dataset", "squad",
                 "--sequences", "8", "--seed", "4", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert {r["kind"] for r in payload["results"]} == {"generative"}
    assert "tpt_p50_ms" in payload["results"][0]["summary"]


# ------------------------------------------------------------------- sweeps


def test_sweep_command_runs_grid(capsys):
    code = main(["sweep", "--model", "resnet50", "--requests", "150",
                 "--replicas", "1,2", "--balancer", "round_robin",
                 "--systems", "vanilla", "--seed", "4"])
    assert code == 0
    out = capsys.readouterr().out
    assert "replicas" in out and "vanilla" in out
    assert out.count("vanilla") >= 2   # one row per grid point


def test_sweep_command_json(capsys):
    code = main(["sweep", "--model", "resnet50", "--requests", "120",
                 "--replicas", "1,2", "--systems", "vanilla", "--seed", "4",
                 "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["schema"] == "repro.sweep_report/v1"
    assert [p["params"]["replicas"] for p in payload["points"]] == [1, 2]


def test_sweep_command_over_autoscalers(capsys):
    code = main(["sweep", "--model", "resnet50", "--requests", "200",
                 "--replicas", "2", "--autoscaler", "none,reactive",
                 "--max-replicas", "4", "--systems", "vanilla", "--seed", "4",
                 "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert [p["params"]["autoscaler"] for p in payload["points"]] \
        == ["none", "reactive"]
    for point in payload["points"]:
        assert point["report"]["results"][0]["summary"]["num_served"] == 200.0


def test_sweep_command_table_with_scalar_grid_values(capsys):
    """Regression: scalar grid entries (e.g. --max-replicas) must not break
    the non-JSON header, which counts grid-axis sizes."""
    code = main(["sweep", "--model", "resnet50", "--requests", "120",
                 "--replicas", "1,2", "--autoscaler", "reactive",
                 "--max-replicas", "4", "--systems", "vanilla", "--seed", "4"])
    assert code == 0
    out = capsys.readouterr().out
    assert "grid=2x1x1" in out
    assert out.count("vanilla") >= 2


def test_sweep_command_covers_generative_fleets(capsys):
    """Generative models sweep replica counts on the fleet control plane."""
    code = main(["sweep", "--model", "t5-large", "--replicas", "1,2",
                 "--requests", "10", "--systems", "vanilla", "--seed", "4"])
    assert code == 0
    out = capsys.readouterr().out
    assert "generative:cnn-dailymail" in out
    assert out.count("vanilla") >= 2   # one row per grid point


def test_generate_command_runs_cluster_with_autoscaler(capsys):
    code = main(["generate", "--model", "t5-large", "--dataset", "squad",
                 "--sequences", "30", "--rate", "40", "--replicas", "2",
                 "--balancer", "least_work_left", "--autoscaler", "reactive",
                 "--min-replicas", "2", "--max-replicas", "4", "--seed", "2",
                 "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert {r["kind"] for r in payload["results"]} == {"generative_cluster"}
    for result in payload["results"]:
        assert result["summary"]["peak_replicas"] >= 2.0
        assert result["details"]["fleet_timeline"]


def test_sweep_command_rejects_malformed_replica_list():
    with pytest.raises(SystemExit):
        main(["sweep", "--replicas", "1,two"])
