"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_a_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_models_command_lists_zoo(capsys):
    assert main(["models"]) == 0
    out = capsys.readouterr().out
    assert "resnet50" in out
    assert "t5-large" in out
    assert "bs=1" in out


def test_classify_command_runs_small_video_workload(capsys):
    code = main(["classify", "--model", "resnet50", "--workload", "video:urban-day",
                 "--requests", "800", "--seed", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "median latency win" in out
    assert "Apparate" in out


def test_classify_command_rejects_generative_model():
    with pytest.raises(SystemExit):
        main(["classify", "--model", "t5-large", "--requests", "100"])


def test_classify_command_rejects_unknown_workload_kind():
    with pytest.raises(SystemExit):
        main(["classify", "--model", "resnet50", "--workload", "audio:calls",
              "--requests", "100"])


def test_generate_command_runs_small_workload(capsys):
    code = main(["generate", "--model", "t5-large", "--dataset", "squad",
                 "--sequences", "30", "--seed", "5"])
    assert code == 0
    out = capsys.readouterr().out
    assert "median TPT win" in out
    assert "vanilla" in out and "Apparate" in out


def test_generate_command_rejects_classification_model():
    with pytest.raises(SystemExit):
        main(["generate", "--model", "resnet50", "--sequences", "10"])


def test_classify_command_cluster_mode(capsys):
    code = main(["classify", "--model", "resnet50", "--workload", "video:urban-day",
                 "--requests", "600", "--seed", "5", "--replicas", "2",
                 "--balancer", "join_shortest_queue", "--fleet-mode", "shared"])
    assert code == 0
    out = capsys.readouterr().out
    assert "replicas=2" in out
    assert "balancer=join_shortest_queue" in out
    assert "fleet throughput" in out
    assert "replica 0" in out and "replica 1" in out


def test_classify_command_rejects_bad_replicas():
    with pytest.raises(SystemExit):
        main(["classify", "--model", "resnet50", "--requests", "100",
              "--replicas", "0"])


def test_classify_command_rejects_unknown_balancer():
    with pytest.raises(SystemExit):
        main(["classify", "--model", "resnet50", "--requests", "100",
              "--replicas", "2", "--balancer", "coin-flip"])


def test_nlp_workload_parsing(capsys):
    code = main(["classify", "--model", "distilbert-base", "--workload", "nlp:imdb",
                 "--requests", "600", "--rate", "25", "--seed", "6"])
    assert code == 0
    assert "distilbert-base" in capsys.readouterr().out
