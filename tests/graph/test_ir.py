"""Tests for the dataflow IR."""

import pytest

from repro.graph.ir import ModelGraph, Node, OpCategory


def chain_graph():
    g = ModelGraph("chain")
    g.add_node(Node("input", OpCategory.INPUT))
    g.add_node(Node("a", OpCategory.CONV, flops_share=0.5, output_width=8))
    g.add_node(Node("b", OpCategory.CONV, flops_share=0.5, output_width=8))
    g.add_node(Node("output", OpCategory.OUTPUT))
    g.add_edge("input", "a")
    g.add_edge("a", "b")
    g.add_edge("b", "output")
    return g


def test_duplicate_node_rejected():
    g = ModelGraph("g")
    g.add_node(Node("x", OpCategory.CONV))
    with pytest.raises(ValueError):
        g.add_node(Node("x", OpCategory.CONV))


def test_edge_with_unknown_node_rejected():
    g = ModelGraph("g")
    g.add_node(Node("x", OpCategory.CONV))
    with pytest.raises(KeyError):
        g.add_edge("x", "missing")


def test_cycle_rejected():
    g = ModelGraph("g")
    g.add_node(Node("a", OpCategory.CONV))
    g.add_node(Node("b", OpCategory.CONV))
    g.add_edge("a", "b")
    with pytest.raises(ValueError):
        g.add_edge("b", "a")


def test_topological_order_respects_edges():
    g = chain_graph()
    order = [n.name for n in g.topological_order()]
    assert order.index("input") < order.index("a") < order.index("b") < order.index("output")


def test_input_and_output_nodes():
    g = chain_graph()
    assert [n.name for n in g.input_nodes()] == ["input"]
    assert [n.name for n in g.output_nodes()] == ["output"]


def test_validate_accepts_wellformed_graph():
    chain_graph().validate()


def test_validate_rejects_empty_graph():
    with pytest.raises(ValueError):
        ModelGraph("empty").validate()


def test_validate_rejects_multiple_outputs():
    g = ModelGraph("g")
    g.add_node(Node("input", OpCategory.INPUT))
    g.add_node(Node("a", OpCategory.CONV))
    g.add_node(Node("b", OpCategory.CONV))
    g.add_edge("input", "a")
    g.add_edge("input", "b")
    with pytest.raises(ValueError):
        g.validate()


def test_depth_fraction_monotone_along_chain():
    g = chain_graph()
    assert g.depth_fraction("a") < g.depth_fraction("b")
    assert g.depth_fraction("output") == pytest.approx(1.0)


def test_depth_fraction_unknown_node():
    with pytest.raises(KeyError):
        chain_graph().depth_fraction("missing")


def test_blocks_in_order():
    g = ModelGraph("g")
    g.add_node(Node("input", OpCategory.INPUT))
    g.add_node(Node("a", OpCategory.CONV, block="block1"))
    g.add_node(Node("b", OpCategory.CONV, block="block2"))
    g.add_node(Node("output", OpCategory.OUTPUT))
    g.add_edge("input", "a")
    g.add_edge("a", "b")
    g.add_edge("b", "output")
    assert g.blocks() == ["block1", "block2"]


def test_total_params_sums_nodes():
    g = ModelGraph("g")
    g.add_node(Node("a", OpCategory.CONV, params=10))
    g.add_node(Node("b", OpCategory.CONV, params=32))
    assert g.total_params() == 42


def test_successors_predecessors():
    g = chain_graph()
    assert g.successors("a") == ["b"]
    assert g.predecessors("b") == ["a"]
