"""Tests for the model-graph builders."""

import pytest

from repro.graph.builders import (
    build_bert,
    build_gpt,
    build_graph_for_model,
    build_llama,
    build_resnet,
    build_t5,
    build_vgg,
)
from repro.graph.ir import OpCategory
from repro.models.zoo import list_models


@pytest.mark.parametrize("depth,expected_blocks", [(18, 8), (50, 16), (101, 33)])
def test_resnet_block_counts(depth, expected_blocks):
    g = build_resnet(depth)
    adds = [n for n in g.nodes() if n.op is OpCategory.ADD]
    assert len(adds) == expected_blocks


@pytest.mark.parametrize("depth,expected_convs", [(11, 8), (13, 10), (16, 13)])
def test_vgg_conv_counts(depth, expected_convs):
    g = build_vgg(depth)
    convs = [n for n in g.nodes() if n.op is OpCategory.CONV]
    assert len(convs) == expected_convs


def test_unsupported_depths_rejected():
    with pytest.raises(ValueError):
        build_resnet(37)
    with pytest.raises(ValueError):
        build_vgg(19)


@pytest.mark.parametrize("builder,blocks", [(build_bert, 12), (build_gpt, 24)])
def test_transformer_block_counts(builder, blocks):
    g = builder(num_blocks=blocks)
    attention_nodes = [n for n in g.nodes() if n.op is OpCategory.ATTENTION]
    assert len(attention_nodes) == blocks


def test_all_builders_produce_valid_graphs():
    for graph in [build_resnet(50), build_vgg(13), build_bert(6), build_gpt(12),
                  build_t5(8), build_llama(8)]:
        graph.validate()


def test_flops_share_sums_to_about_one():
    for graph in [build_resnet(50), build_vgg(16), build_bert(12)]:
        assert graph.total_flops_share() == pytest.approx(1.0, abs=0.05)


def test_build_graph_for_model_covers_whole_zoo():
    for spec in list_models():
        graph = build_graph_for_model(spec.name)
        graph.validate()


def test_build_graph_for_model_unknown_name():
    with pytest.raises(ValueError):
        build_graph_for_model("alexnet")


def test_quantized_alias_builds_base_graph():
    graph = build_graph_for_model("bert-base-int8")
    assert graph.name == "bert-base-int8"
    graph.validate()


def test_depth_fractions_increase_through_resnet_stages():
    g = build_resnet(50)
    early = g.depth_fraction("layer1.block0.add")
    late = g.depth_fraction("layer4.block2.add")
    assert early < 0.3 < 0.8 < late
