"""Tests for cut-vertex-based ramp-position analysis (paper §3.1, Figure 7)."""

import pytest

from repro.graph.builders import build_bert, build_resnet, build_vgg
from repro.graph.cut_vertices import cut_vertex_nodes, feasible_ramp_positions, ramp_coverage
from repro.graph.ir import ModelGraph, Node, OpCategory


def test_vgg_every_conv_layer_is_feasible():
    """Chained models expose ramp positions at every layer (Figure 7b)."""
    g = build_vgg(11)
    feasible = {n.name for n in feasible_ramp_positions(g)}
    convs = [n.name for n in g.nodes() if n.op is OpCategory.CONV]
    assert all(name in feasible for name in convs)


def test_resnet_interior_conv_nodes_are_not_feasible():
    """Residual-block interiors are bypassed by the skip edge (Figure 7a)."""
    g = build_resnet(50)
    feasible = {n.name for n in feasible_ramp_positions(g)}
    interior = [n.name for n in g.nodes()
                if n.op is OpCategory.CONV and n.block and n.block.startswith("layer")]
    assert not any(name in feasible for name in interior)


def test_resnet_block_outputs_are_feasible():
    g = build_resnet(18)
    feasible = {n.name for n in feasible_ramp_positions(g)}
    adds = [n.name for n in g.nodes() if n.op is OpCategory.ADD]
    assert all(name in feasible for name in adds)


def test_bert_attention_and_ffn_adds_are_feasible():
    """Both residual outputs within an encoder are cut vertices (Figure 7c)."""
    g = build_bert(num_blocks=4)
    feasible = {n.name for n in feasible_ramp_positions(g)}
    assert "encoder0.attention_add" in feasible
    assert "encoder0.ffn_add" in feasible
    assert "encoder0.attention" not in feasible
    assert "encoder0.ffn" not in feasible


def test_embedding_and_io_nodes_excluded():
    g = build_bert(num_blocks=2)
    names = {n.name for n in feasible_ramp_positions(g)}
    assert "input" not in names
    assert "embedding" not in names
    assert "output" not in names


def test_positions_returned_in_topological_order():
    g = build_resnet(18)
    positions = feasible_ramp_positions(g)
    order = {node.name: i for i, node in enumerate(g.topological_order())}
    indices = [order[n.name] for n in positions]
    assert indices == sorted(indices)


def test_cut_vertices_on_diamond_graph():
    """A diamond's interior branches are not cut vertices; the join is."""
    g = ModelGraph("diamond")
    for name, op in [("input", OpCategory.INPUT), ("left", OpCategory.CONV),
                     ("right", OpCategory.CONV), ("join", OpCategory.ADD),
                     ("head", OpCategory.LINEAR), ("output", OpCategory.OUTPUT)]:
        g.add_node(Node(name, op, flops_share=0.2, output_width=4))
    g.add_edge("input", "left")
    g.add_edge("input", "right")
    g.add_edge("left", "join")
    g.add_edge("right", "join")
    g.add_edge("join", "head")
    g.add_edge("head", "output")
    cuts = cut_vertex_nodes(g)
    assert "join" in cuts and "head" in cuts
    assert "left" not in cuts and "right" not in cuts


def test_ramp_coverage_within_paper_range():
    """The paper reports 9.2-68.4% of layers hosting ramps across its corpus."""
    for graph in [build_resnet(50), build_bert(12), build_resnet(101)]:
        coverage = ramp_coverage(graph)
        assert 0.05 <= coverage <= 0.75, f"{graph.name}: {coverage}"


def test_vgg_coverage_is_high():
    assert ramp_coverage(build_vgg(13)) > 0.8
