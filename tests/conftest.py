"""Shared fixtures: small, fast workloads and model stacks for the test suite."""

from __future__ import annotations

import pytest

from repro.core.pipeline import model_stack
from repro.generative.sequences import make_generative_workload
from repro.workloads.nlp import make_nlp_workload
from repro.workloads.video import make_video_workload


@pytest.fixture(scope="session")
def small_video_workload():
    """A short CV workload (fast enough for unit tests)."""
    return make_video_workload("urban-day", num_frames=1200, seed=11)


@pytest.fixture(scope="session")
def small_nlp_workload():
    """A short NLP workload."""
    return make_nlp_workload("amazon", num_requests=1200, rate_qps=20, seed=12)


@pytest.fixture(scope="session")
def small_generative_workload():
    """A short generative workload."""
    return make_generative_workload("squad", num_sequences=40, rate_qps=2.0, seed=13)


@pytest.fixture(scope="session")
def resnet50_stack():
    """(spec, profile, prediction, catalog, executor) for ResNet50."""
    return model_stack("resnet50", seed=0)


@pytest.fixture(scope="session")
def bert_base_stack():
    """(spec, profile, prediction, catalog, executor) for BERT-base."""
    return model_stack("bert-base", seed=0)
