"""Tests for the synthetic prediction model and its monotonicity properties."""

import numpy as np
import pytest

from repro.models.prediction import (
    PredictionModel,
    effective_difficulty,
    ramp_error_score,
)
from repro.models.zoo import get_model


@pytest.fixture(scope="module")
def prediction():
    return PredictionModel(get_model("resnet50"), seed=0)


def test_effective_difficulty_bounds():
    assert effective_difficulty(0.0, headroom=0.8) == pytest.approx(0.2)
    assert effective_difficulty(1.0, headroom=0.8) == pytest.approx(1.0)


def test_effective_difficulty_monotone_in_raw():
    raws = np.linspace(0, 1, 11)
    effective = effective_difficulty(raws, headroom=0.7)
    assert np.all(np.diff(effective) > 0)


def test_lower_headroom_means_harder_inputs():
    assert effective_difficulty(0.3, headroom=0.5) > effective_difficulty(0.3, headroom=0.9)


def test_error_score_decreases_with_depth():
    depths = np.linspace(0, 1, 21)
    errors = ramp_error_score(0.5, depths, 0.05)
    assert np.all(np.diff(errors) < 0)


def test_error_score_half_at_required_depth():
    assert ramp_error_score(0.4, 0.4, 0.05) == pytest.approx(0.5)


def test_error_score_confidence_shift_lowers_error():
    base = ramp_error_score(0.5, 0.45, 0.05)
    shifted = ramp_error_score(0.5, 0.45, 0.05, confidence_shift=0.2)
    assert shifted < base


def test_error_score_clipped_to_unit_interval():
    assert 0.0 <= ramp_error_score(0.9, 0.1, 0.05, confidence_shift=-0.5) <= 1.0
    assert 0.0 <= ramp_error_score(0.1, 0.9, 0.05, confidence_shift=0.5) <= 1.0


def test_is_correct_at_or_past_required_depth(prediction):
    required = prediction.required_depth(0.3)
    assert prediction.is_correct(0.3, required)
    assert prediction.is_correct(0.3, min(required + 0.1, 1.0))


def test_is_correct_deterministic(prediction):
    draws = {prediction.is_correct(0.9, 0.1) for _ in range(10)}
    assert len(draws) == 1


def test_observe_covers_every_active_ramp(prediction):
    observations = prediction.observe(0.3, 0.05, [2, 5, 9], [0.2, 0.5, 0.9])
    assert [o.ramp_id for o in observations] == [2, 5, 9]
    errors = [o.error_score for o in observations]
    assert errors[0] > errors[1] > errors[2]


def test_observation_would_exit_threshold_semantics(prediction):
    observation = prediction.observe(0.1, 0.05, [0], [0.9])[0]
    assert observation.would_exit(0.9)
    assert not observation.would_exit(0.0)


def test_exit_depth_returns_earliest_confident_ramp(prediction):
    depths = [0.2, 0.5, 0.8]
    # With permissive thresholds an easy input exits at the earliest ramp
    # deep enough for it.
    exit_depth = prediction.exit_depth(0.05, 0.04, depths, [0.6, 0.6, 0.6])
    assert exit_depth in depths
    assert exit_depth <= 0.5


def test_exit_depth_none_when_thresholds_zero(prediction):
    assert prediction.exit_depth(0.05, 0.04, [0.2, 0.5], [0.0, 0.0]) is None


def test_exit_rate_monotone_in_threshold(prediction):
    """Higher thresholds exit at least as many inputs (§3.2 monotonicity)."""
    rng = np.random.default_rng(0)
    raws = rng.uniform(0, 1, 300)
    depth = 0.5
    rates = []
    for threshold in (0.1, 0.3, 0.5, 0.7, 0.9):
        exits = sum(prediction.error_score(r, depth, 0.05) < threshold for r in raws)
        rates.append(exits)
    assert all(b >= a for a, b in zip(rates, rates[1:]))


def test_later_ramp_exit_rate_not_lower(prediction):
    """Later ramps exit at least as many inputs as earlier ones (§3.3)."""
    rng = np.random.default_rng(1)
    raws = rng.uniform(0, 1, 300)
    threshold = 0.5
    early = sum(prediction.error_score(r, 0.3, 0.05) < threshold for r in raws)
    late = sum(prediction.error_score(r, 0.7, 0.05) < threshold for r in raws)
    assert late >= early
