"""Tests for quantized model variants (§4.2)."""

import pytest

from repro.models.quantization import quantized_spec
from repro.models.zoo import get_model


def test_quantized_spec_is_faster():
    base = get_model("bert-base")
    quantized = quantized_spec(base, register=False)
    assert quantized.bs1_latency_ms < base.bs1_latency_ms
    assert quantized.default_slo_ms < base.default_slo_ms


def test_quantized_spec_has_less_headroom():
    """Quantization reduces overparameterization, so fewer inputs exit early."""
    base = get_model("bert-large")
    quantized = quantized_spec(base, register=False)
    assert quantized.headroom < base.headroom


def test_quantized_spec_name_suffix():
    assert quantized_spec(get_model("bert-base"), register=False).name == "bert-base-int8"


def test_quantized_spec_registration():
    quantized_spec(get_model("bert-base"), register=True)
    assert get_model("bert-base-int8").name == "bert-base-int8"


def test_quantization_preserves_architecture_descriptors():
    base = get_model("bert-base")
    quantized = quantized_spec(base, register=False)
    assert quantized.num_blocks == base.num_blocks
    assert quantized.hidden_width == base.hidden_width
    assert quantized.task is base.task
