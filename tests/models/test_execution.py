"""Tests for the simulated model executor."""

import pytest

from repro.graph.builders import build_graph_for_model
from repro.models.execution import ModelExecutor
from repro.models.latency import build_latency_profile
from repro.models.prediction import PredictionModel
from repro.models.zoo import get_model


@pytest.fixture(scope="module")
def executor():
    spec = get_model("resnet50")
    profile = build_latency_profile(spec, build_graph_for_model("resnet50"))
    return ModelExecutor(spec, profile, PredictionModel(spec, seed=0))


def test_empty_batch_rejected(executor):
    with pytest.raises(ValueError):
        executor.execute_batch([], [], [], [], [], [])


def test_mismatched_ramp_arrays_rejected(executor):
    with pytest.raises(ValueError):
        executor.execute_batch([0.2], [0.05], [0], [0.5], [0.5, 0.6], [0.002])


def test_vanilla_batch_has_no_exits(executor):
    execution = executor.execute_batch([0.1, 0.9], [0.05, 0.05], [], [], [], [])
    assert all(not r.exited for r in execution.results)
    assert execution.gpu_time_ms == pytest.approx(executor.vanilla_batch_time_ms(2))


def test_easy_input_exits_with_permissive_threshold(executor):
    execution = executor.execute_batch([0.02], [0.04], [0], [0.6], [0.6], [0.002])
    result = execution.results[0]
    assert result.exited
    assert result.exit_depth == pytest.approx(0.6)
    assert result.result_latency_ms < result.full_latency_ms


def test_hard_input_does_not_exit(executor):
    execution = executor.execute_batch([0.99], [0.04], [0], [0.3], [0.6], [0.002])
    result = execution.results[0]
    assert not result.exited
    assert result.result_latency_ms == pytest.approx(execution.gpu_time_ms)


def test_zero_threshold_prevents_exit(executor):
    execution = executor.execute_batch([0.02], [0.04], [0], [0.6], [0.0], [0.002])
    assert not execution.results[0].exited


def test_ramp_overheads_increase_gpu_time(executor):
    base = executor.execute_batch([0.5], [0.05], [], [], [], []).gpu_time_ms
    with_ramps = executor.execute_batch([0.5], [0.05], [0, 1], [0.3, 0.6], [0.0, 0.0],
                                        [0.002, 0.002]).gpu_time_ms
    assert with_ramps > base
    assert with_ramps == pytest.approx(base * 1.004, rel=1e-6)


def test_observations_cover_all_ramps_even_after_exit(executor):
    """Inputs always run to the model end, so feedback covers every ramp (§3)."""
    execution = executor.execute_batch([0.02], [0.04], [0, 1, 2], [0.2, 0.5, 0.8],
                                       [0.9, 0.9, 0.9], [0.002] * 3)
    result = execution.results[0]
    assert result.exited
    assert [o.ramp_id for o in result.observations] == [0, 1, 2]


def test_batch_scaling_applied_to_results(executor):
    single = executor.execute_batch([0.9], [0.05], [], [], [], [])
    batch = executor.execute_batch([0.9] * 8, [0.05] * 8, [], [], [], [])
    assert batch.gpu_time_ms > single.gpu_time_ms


def test_exit_latency_accounts_for_upstream_ramp_overheads(executor):
    overheads = [0.002, 0.002]
    execution = executor.execute_batch([0.02], [0.04], [0, 1], [0.3, 0.7], [0.9, 0.9],
                                       overheads)
    result = execution.results[0]
    base_full = executor.vanilla_batch_time_ms(1)
    expected = base_full * 0.3 + overheads[0] * base_full
    assert result.result_latency_ms == pytest.approx(expected, rel=1e-6)


def test_confidence_shift_changes_exit_decision(executor):
    # A borderline input exits only when confidence is inflated.
    no_shift = executor.execute_batch([0.35], [0.04], [0], [0.42], [0.5], [0.002])
    shifted = executor.execute_batch([0.35], [0.04], [0], [0.42], [0.5], [0.002],
                                     confidence_shifts=[0.3])
    assert not no_shift.results[0].exited
    assert shifted.results[0].exited
