"""Tests for the analytic latency model."""

import numpy as np
import pytest

from repro.graph.builders import build_graph_for_model
from repro.models.latency import build_latency_profile
from repro.models.zoo import get_model


@pytest.fixture(scope="module")
def resnet_profile():
    spec = get_model("resnet50")
    return build_latency_profile(spec, build_graph_for_model("resnet50"))


def test_bs1_total_matches_table5(resnet_profile):
    assert resnet_profile.total_latency_ms(1) == pytest.approx(16.4, rel=1e-6)


def test_batch_latency_grows_with_batch_size(resnet_profile):
    latencies = [resnet_profile.total_latency_ms(b) for b in (1, 2, 4, 8, 16)]
    assert all(b > a for a, b in zip(latencies, latencies[1:]))


def test_throughput_grows_with_batch_size(resnet_profile):
    """The latency-throughput tension of Figure 1: both grow with batch size."""
    throughputs = [resnet_profile.throughput_qps(b) for b in (1, 2, 4, 8, 16)]
    assert all(b > a for a, b in zip(throughputs, throughputs[1:]))


def test_cumulative_fraction_monotone_and_normalized(resnet_profile):
    cumulative = resnet_profile.cumulative_fraction
    assert np.all(np.diff(cumulative) >= 0)
    assert cumulative[-1] == pytest.approx(1.0)


def test_depth_fraction_lookup(resnet_profile):
    early = resnet_profile.depth_fraction("layer1.block0.add")
    late = resnet_profile.depth_fraction("layer4.block2.add")
    assert 0.0 < early < late <= 1.0


def test_savings_for_exit_complements_latency_to_depth(resnet_profile):
    total = resnet_profile.total_latency_ms(4)
    reached = resnet_profile.latency_to_depth(0.3, 4)
    saved = resnet_profile.savings_for_exit(0.3, 4)
    assert reached + saved == pytest.approx(total)


def test_latency_to_depth_clips_out_of_range(resnet_profile):
    assert resnet_profile.latency_to_depth(-0.5) == 0.0
    assert resnet_profile.latency_to_depth(2.0) == pytest.approx(
        resnet_profile.total_latency_ms(1))


def test_ramp_overhead_scales_with_batch(resnet_profile):
    assert resnet_profile.ramp_overhead_ms(0.002, 8) > resnet_profile.ramp_overhead_ms(0.002, 1)


def test_invalid_batch_size_rejected(resnet_profile):
    with pytest.raises(ValueError):
        resnet_profile.total_latency_ms(0)


def test_sweep_batch_sizes_table(resnet_profile):
    table = resnet_profile.sweep_batch_sizes([1, 4, 16])
    assert set(table) == {1, 4, 16}
    assert table[16]["throughput_qps"] > table[1]["throughput_qps"]
    assert table[16]["latency_ms"] > table[1]["latency_ms"]


def test_profiles_build_for_all_registered_models():
    from repro.models.zoo import list_models
    for spec in list_models():
        profile = build_latency_profile(spec)
        assert profile.total_latency_ms(1) == pytest.approx(spec.bs1_latency_ms, rel=1e-6)
