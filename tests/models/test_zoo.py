"""Tests for the model registry."""

import pytest

from repro.models.zoo import ModelSpec, Task, get_model, list_models, register_model


# Table 5 of the paper: bs=1 latency and default SLO per classification model.
TABLE5 = {
    "resnet18": (6.5, 13.0),
    "resnet50": (16.4, 32.8),
    "resnet101": (33.3, 66.6),
    "vgg11": (3.3, 10.0),
    "vgg13": (3.8, 10.0),
    "vgg16": (4.5, 10.0),
    "distilbert-base": (15.5, 31.0),
    "bert-base": (29.4, 58.8),
    "bert-large": (63.2, 126.4),
    "gpt2-medium": (103.0, 206.0),
}


@pytest.mark.parametrize("name,expected", sorted(TABLE5.items()))
def test_table5_latencies_and_slos(name, expected):
    spec = get_model(name)
    assert spec.bs1_latency_ms == pytest.approx(expected[0])
    assert spec.default_slo_ms == pytest.approx(expected[1])


def test_unknown_model_raises_keyerror():
    with pytest.raises(KeyError):
        get_model("not-a-model")


def test_lookup_is_case_insensitive():
    assert get_model("ResNet50").name == "resnet50"


def test_list_models_by_task():
    cv = list_models(Task.CV_CLASSIFICATION)
    assert all(s.task is Task.CV_CLASSIFICATION for s in cv)
    assert {"resnet18", "resnet50", "resnet101", "vgg11", "vgg13", "vgg16"} <= {s.name for s in cv}


def test_generative_models_registered():
    names = {s.name for s in list_models(Task.GENERATIVE)}
    assert {"t5-large", "llama2-7b", "llama2-13b"} <= names


def test_is_generative_property():
    assert get_model("t5-large").is_generative
    assert not get_model("resnet50").is_generative


def test_with_overrides_returns_new_spec():
    base = get_model("resnet50")
    derived = base.with_overrides(name="resnet50-copy", headroom=0.5)
    assert derived.name == "resnet50-copy"
    assert derived.headroom == 0.5
    assert base.headroom != 0.5 or base.name == "resnet50"


def test_register_custom_model():
    spec = ModelSpec("custom-tiny", Task.CV_CLASSIFICATION, "resnet", 1.0, 2.0, 4.0,
                     num_blocks=4, hidden_width=64)
    register_model(spec)
    assert get_model("custom-tiny") is spec


def test_headroom_within_unit_interval():
    for spec in list_models():
        assert 0.0 <= spec.headroom <= 1.0


def test_slo_is_twice_bs1_latency_for_classification():
    for name in TABLE5:
        spec = get_model(name)
        if spec.family in ("vgg",):
            continue  # VGG SLOs are floored at 10 ms in the paper.
        assert spec.default_slo_ms == pytest.approx(2 * spec.bs1_latency_ms)
