"""Property-based tests (hypothesis): spans conserve requests and reconcile
with metrics bit-exactly on every platform kind, including under fault churn.

The recorder only ever *reads* floats the simulator already computed, so the
reconciliation assertions use ``==`` on floats deliberately: a span endpoint
that drifts from its metric counterpart by even one ulp means the hooks
recomputed a quantity instead of observing it.
"""

from hypothesis import given, settings, strategies as st

from repro.api import ClusterSpec, Experiment, WorkloadSpec
from repro.faults import FaultSpec
from repro.obs import OUTCOME_DROPPED, OUTCOME_SERVED, OUTCOME_SHED

# Every example is a full simulated run; keep the counts modest.
SIM = settings(max_examples=8, deadline=None)

CLASSIFY_WORKLOAD = WorkloadSpec("video", requests=160)
GENERATIVE_WORKLOAD = WorkloadSpec("generative", requests=30)


def _spans_by_id(trace):
    """One closed-or-open span per admitted request, keyed by id."""
    spans = trace.spans()
    by_id = {s.request_id: s for s in spans}
    assert len(by_id) == len(spans)
    return by_id


def _phase(span, name):
    matches = [p for p in span.phases if p[0] == name]
    assert len(matches) == 1, f"expected one {name!r} phase, got {matches}"
    return matches[0]


def _assert_conserved(trace, expected_total):
    spans = trace.spans()
    assert len(spans) == expected_total
    assert len(trace.closed_spans()) + len(trace.open_spans()) == len(spans)
    assert not trace.open_spans()
    return _spans_by_id(trace)


# ------------------------------------------------------------ classification

@SIM
@given(crash_ms=st.floats(0.0, 2000.0), down_ms=st.floats(100.0, 1500.0))
def test_classification_cluster_spans_reconcile(crash_ms, down_ms):
    experiment = Experiment(
        model="resnet50", workload=CLASSIFY_WORKLOAD,
        cluster=ClusterSpec(replicas=3,
                            faults=FaultSpec(crash_ms, down_ms)),
        trace=True)
    result = experiment.run(["vanilla"]).result("vanilla")
    spans = _assert_conserved(result.trace, CLASSIFY_WORKLOAD.requests)
    responses = result.raw.aggregate().responses
    assert sorted(spans) == sorted(r.request_id for r in responses)
    for response in responses:
        span = spans[response.request_id]
        if response.dropped:
            assert span.outcome == OUTCOME_DROPPED
            continue
        assert span.outcome == OUTCOME_SERVED
        assert span.end_ms == response.completion_ms
        _, q_start, q_end, _, _ = _phase(span, "queue")
        assert q_end - q_start == response.queueing_ms
        # serving_ms is the batch's modelled service time, not an endpoint
        # difference, so the serve phase reconciles on endpoints instead.
        _, s_start, s_end, _, _ = _phase(span, "serve")
        assert s_start == response.scheduled_ms
        assert s_end == response.completion_ms
        assert span.end_ms - span.arrival_ms == response.latency_ms


def test_classification_single_spans_reconcile():
    experiment = Experiment(model="resnet50", workload=CLASSIFY_WORKLOAD,
                            trace=True)
    result = experiment.run(["vanilla"]).result("vanilla")
    spans = _assert_conserved(result.trace, CLASSIFY_WORKLOAD.requests)
    for response in result.raw.responses:
        span = spans[response.request_id]
        assert span.outcome == OUTCOME_SERVED
        assert span.end_ms == response.completion_ms
        _, q_start, q_end, _, _ = _phase(span, "queue")
        assert q_end - q_start == response.queueing_ms


# ---------------------------------------------------------------- generative

def _assert_generative_reconciles(metrics, trace, total):
    spans = _assert_conserved(trace, total)
    shed = set(metrics.shed_sequence_ids)
    for sid, span in spans.items():
        if sid in shed:
            assert span.outcome == OUTCOME_SHED
            continue
        assert span.outcome == OUTCOME_SERVED
        _, d_start, _, _, _ = _phase(span, "decode")
        # Queueing spans arrival -> first decode step on every generative
        # platform; the span reads the same float the metrics stored.
        assert d_start - span.arrival_ms == metrics.queueing_delays_ms[sid]
    served = {s.outcome for s in spans.values()}
    assert served <= {OUTCOME_SERVED, OUTCOME_SHED}
    assert sum(1 for s in spans.values() if s.outcome == OUTCOME_SHED) \
        == len(shed)


def test_generative_single_spans_reconcile():
    experiment = Experiment(model="t5-large", workload=GENERATIVE_WORKLOAD,
                            trace=True)
    result = experiment.run(["vanilla"]).result("vanilla")
    _assert_generative_reconciles(result.raw, result.trace,
                                  GENERATIVE_WORKLOAD.requests)


@SIM
@given(crash_ms=st.floats(0.0, 3000.0), down_ms=st.floats(100.0, 2000.0))
def test_generative_cluster_spans_reconcile(crash_ms, down_ms):
    experiment = Experiment(
        model="t5-large", workload=GENERATIVE_WORKLOAD,
        cluster=ClusterSpec(replicas=3, faults=FaultSpec(crash_ms, down_ms)),
        trace=True)
    result = experiment.run(["vanilla"]).result("vanilla")
    metrics = result.raw.aggregate()
    _assert_generative_reconciles(metrics, result.trace,
                                  GENERATIVE_WORKLOAD.requests)


@SIM
@given(crash_ms=st.floats(0.0, 3000.0), down_ms=st.floats(100.0, 2000.0),
       pool=st.sampled_from(["decode", "prefill"]))
def test_disagg_spans_reconcile(crash_ms, down_ms, pool):
    experiment = Experiment(
        model="t5-large", workload=GENERATIVE_WORKLOAD,
        cluster=ClusterSpec(replicas=2, disaggregate=True,
                            faults=FaultSpec(crash_ms, down_ms, pool=pool)),
        trace=True)
    result = experiment.run(["vanilla"]).result("vanilla")
    metrics = result.raw
    agg = metrics.aggregate()
    spans = _assert_conserved(result.trace, GENERATIVE_WORKLOAD.requests)
    shed = set(agg.shed_sequence_ids)
    for sid, span in spans.items():
        if sid in shed:
            assert span.outcome == OUTCOME_SHED
            continue
        assert span.outcome == OUTCOME_SERVED
        # Pipeline stages chain bit-exactly: prefill ends where the metrics'
        # prefill delay says, the KV transfer ends where the handoff heap key
        # says, and decode queueing starts at the transfer arrival.
        _, _, p_end, p_pool, _ = _phase(span, "prefill")
        assert p_pool == "prefill"
        assert p_end - span.arrival_ms == metrics.prefill_delays_ms[sid]
        _, t_start, t_end, _, _ = _phase(span, "kv_transfer")
        assert t_start == p_end
        assert t_end == p_end + metrics.transfer_delays_ms[sid]
        _, q_start, _, q_pool, _ = _phase(span, "queue")
        assert q_pool == "decode"
        assert q_start == t_end
        _, d_start, _, _, _ = _phase(span, "decode")
        assert d_start - span.arrival_ms == agg.queueing_delays_ms[sid]


# ----------------------------------------------------- shed + drop outcomes

def test_shed_sequences_close_as_shed():
    experiment = Experiment(model="t5-large",
                            workload=WorkloadSpec("generative", requests=40,
                                                  rate=40.0),
                            slo_ms=30.0, trace=True)
    result = experiment.run(["vanilla"]).result("vanilla")
    metrics = result.raw
    assert metrics.shed_sequence_ids, "workload must overload the TTFT SLO"
    spans = _spans_by_id(result.trace)
    for sid in metrics.shed_sequence_ids:
        assert spans[sid].outcome == OUTCOME_SHED
        assert spans[sid].closed


# ------------------------------------------------------- trace off: no drift

def test_trace_off_is_bit_identical():
    kinds = [
        ("resnet50", CLASSIFY_WORKLOAD, None),
        ("resnet50", CLASSIFY_WORKLOAD,
         ClusterSpec(replicas=2, autoscaler="queue",
                     faults=FaultSpec(500.0, 400.0))),
        ("t5-large", GENERATIVE_WORKLOAD, None),
        ("t5-large", GENERATIVE_WORKLOAD,
         ClusterSpec(replicas=2, autoscaler="queue")),
        ("t5-large", GENERATIVE_WORKLOAD,
         ClusterSpec(replicas=2, disaggregate=True, kv_capacity=2e6)),
    ]
    for model, workload, cluster in kinds:
        plain = Experiment(model=model, workload=workload, cluster=cluster)
        traced = Experiment(model=model, workload=workload, cluster=cluster,
                            trace=True)
        for system in ("vanilla", "apparate"):
            a = plain.run([system]).result(system).summary
            b = traced.run([system]).result(system).summary
            assert a == b, f"{model}/{cluster}/{system} drifted under tracing"
