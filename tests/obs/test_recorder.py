"""Unit tests for the observability surface: recorder semantics, the
TraceSpec knob, exporters (phase tables, JSONL, Chrome trace), and the
``RunResult``/``SweepPoint`` wiring."""

import json

import pytest

from repro.api import Experiment, TraceSpec, WorkloadSpec
from repro.api.result import SweepPoint
from repro.obs import (NULL_RECORDER, OUTCOME_DROPPED, OUTCOME_SERVED,
                       NullRecorder, Span, TraceRecorder, build_recorder,
                       coerce_trace, format_phase_table, phase_breakdown,
                       to_chrome_trace, write_chrome_trace, write_jsonl)
from repro.obs.export import gauge_summary


# ------------------------------------------------------------------- recorder

def test_admit_is_idempotent():
    rec = TraceRecorder()
    rec.admit(1, 10.0, pool="serve")
    rec.admit(1, 99.0, pool="decode")   # crash-requeue re-admission
    span = rec.span(1)
    assert span.arrival_ms == 10.0
    assert span.pool == "serve"
    assert len(rec.spans()) == 1


def test_close_is_first_wins():
    rec = TraceRecorder()
    rec.admit(1, 0.0)
    rec.close(1, 5.0, outcome=OUTCOME_SERVED, tokens=3)
    rec.close(1, 9.0, outcome=OUTCOME_DROPPED)
    span = rec.span(1)
    assert span.end_ms == 5.0
    assert span.outcome == OUTCOME_SERVED
    assert span.tags == {"tokens": 3}
    assert rec.closed_spans() == [span]
    assert rec.open_spans() == []


def test_phase_inherits_span_pool_and_replica():
    rec = TraceRecorder()
    rec.admit(7, 0.0, pool="decode", replica=2)
    rec.phase(7, "queue", 0.0, 3.0)
    rec.phase(7, "decode", 3.0, 9.0, pool="decode", replica=5)
    assert rec.span(7).phases == [("queue", 0.0, 3.0, "decode", 2),
                                  ("decode", 3.0, 9.0, "decode", 5)]
    assert rec.last_phase_end(7) == 9.0
    assert rec.last_phase_end(999) is None


def test_phase_on_unknown_span_is_ignored():
    rec = TraceRecorder()
    rec.phase(42, "queue", 0.0, 1.0)
    rec.annotate(42, tenant="t")
    rec.close(42, 1.0)
    assert rec.spans() == []


def test_annotate_routes_tenant_onto_span():
    rec = TraceRecorder()
    rec.admit(1, 0.0)
    rec.annotate(1, tenant="gold", kv_hit=True)
    span = rec.span(1)
    assert span.tenant == "gold"
    assert span.tags == {"kv_hit": True}


def test_spans_kept_in_admission_order():
    rec = TraceRecorder()
    for rid in (3, 1, 2):
        rec.admit(rid, float(rid))
    assert [s.request_id for s in rec.spans()] == [3, 1, 2]


def test_null_recorder_is_inert():
    assert NULL_RECORDER.enabled is False
    assert NULL_RECORDER.gauge_interval_ms is None
    NULL_RECORDER.admit(1, 0.0)
    NULL_RECORDER.phase(1, "queue", 0.0, 1.0)
    NULL_RECORDER.annotate(1, tenant="t")
    NULL_RECORDER.close(1, 1.0)
    NULL_RECORDER.gauge(0.0, "queue_depth", 1.0)
    assert NULL_RECORDER.last_phase_end(1) is None


def test_spec_toggles_disable_collection():
    rec = TraceRecorder(TraceSpec(spans=False))
    rec.admit(1, 0.0)
    assert rec.spans() == []
    rec = TraceRecorder(TraceSpec(gauges=False))
    rec.gauge(0.0, "queue_depth", 1.0)
    assert rec.gauges == []
    assert rec.gauge_interval_ms is None
    assert TraceRecorder(TraceSpec(gauge_interval_ms=10.0)).gauge_interval_ms \
        == 10.0


def test_summary_counts_and_worst_request():
    rec = TraceRecorder()
    rec.admit("a", 0.0)
    rec.phase("a", "queue", 0.0, 2.0)
    rec.close("a", 5.0)
    rec.admit("b", 1.0)
    rec.phase("b", "queue", 1.0, 2.0)
    rec.close("b", 11.0)
    rec.admit("c", 2.0)
    rec.close("c", 3.0, outcome=OUTCOME_DROPPED)
    rec.admit("d", 4.0)                 # never closes
    rec.gauge(0.0, "queue_depth", 2.0, pool="serve")
    data = rec.summary()
    assert data["spans"] == {"total": 4, "closed": 3, "open": 1,
                             "outcomes": {"served": 2, "dropped": 1}}
    assert data["phases"]["queue"]["count"] == 2
    assert data["gauges"]["serve.queue_depth"]["samples"] == 1
    assert data["worst_request"]["request_id"] == "b"
    assert data["worst_request"]["latency_ms"] == 10.0
    assert data["worst_request"]["phases"] == {"queue": 1.0}


# ----------------------------------------------------------- spec + coercion

def test_coerce_trace_accepts_the_documented_shapes():
    assert coerce_trace(None) is None
    assert coerce_trace(False) is None
    assert coerce_trace(True) == TraceSpec()
    spec = TraceSpec(gauge_interval_ms=25.0)
    assert coerce_trace(spec) is spec
    assert coerce_trace({"gauges": False}) == TraceSpec(gauges=False)
    with pytest.raises(ValueError):
        coerce_trace("yes")
    with pytest.raises(ValueError):
        TraceSpec(gauge_interval_ms=0.0)


def test_build_recorder_shares_the_null_singleton():
    assert build_recorder(None) is NULL_RECORDER
    assert build_recorder(False) is NULL_RECORDER
    live = build_recorder(True)
    assert isinstance(live, TraceRecorder) and live.enabled
    assert isinstance(build_recorder(None), NullRecorder)


# ----------------------------------------------------------------- exporters

def _sample_recorder():
    rec = TraceRecorder()
    rec.admit(1, 0.0, pool="prefill", replica=0, tenant="gold")
    rec.phase(1, "prefill", 0.0, 4.0)
    rec.phase(1, "decode", 5.0, 9.0, pool="decode", replica=1)
    rec.close(1, 9.0)
    rec.admit(2, 1.0, pool="decode", replica=0)
    rec.phase(2, "decode", 2.0, 6.0)
    rec.close(2, 6.0)
    rec.gauge(0.0, "queue_depth", 3.0, pool="decode")
    rec.gauge(50.0, "queue_depth", 1.0, pool="decode")
    rec.gauge(50.0, "backlog", 2.0, tenant="gold")
    return rec


def test_phase_breakdown_and_table():
    rec = _sample_recorder()
    breakdown = phase_breakdown(rec.spans())
    assert list(breakdown) == ["prefill", "decode"]      # first-seen order
    assert breakdown["decode"] == {"count": 2, "mean_ms": 4.0, "p50_ms": 4.0,
                                   "p99_ms": 4.0, "total_ms": 8.0}
    table = format_phase_table(breakdown)
    lines = table.splitlines()
    assert lines[0].split() == ["phase", "count", "mean_ms", "p50_ms",
                                "p99_ms", "total_ms"]
    assert lines[1].startswith("prefill") and lines[2].startswith("decode")


def test_gauge_summary_keys():
    summary = gauge_summary(_sample_recorder().gauges)
    assert summary["decode.queue_depth"] == {"samples": 2, "last": 1.0,
                                             "min": 1.0, "max": 3.0,
                                             "mean": 2.0}
    # Pool-less gauges key by bare name; tenant suffixes after the pool.
    assert summary["backlog.gold"]["samples"] == 1


def test_chrome_trace_document():
    doc = to_chrome_trace(_sample_recorder())
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    counters = [e for e in events if e["ph"] == "C"]
    # The pool-less tenant gauge lands on the default "serve" process.
    assert {e["args"]["name"] for e in meta if e["name"] == "process_name"} \
        == {"serve pool", "prefill pool", "decode pool"}
    # Pools map to stable pids, replicas to tids (one track each).
    by_name = {e["name"]: e for e in spans if e["pid"] == 3}
    assert {(e["pid"], e["tid"]) for e in spans} == {(2, 0), (3, 1), (3, 0)}
    decode = [e for e in spans if e["name"] == "decode" and e["tid"] == 1][0]
    assert decode["ts"] == 5000.0 and decode["dur"] == 4000.0   # us
    assert decode["args"]["tenant"] == "gold"
    assert decode["args"]["outcome"] == "served"
    assert all(e["ph"] == "C" and e["args"]["value"] is not None
               for e in counters)
    # Monotone timestamps per (pid, tid) track, in document order.
    tracks = {}
    for e in events:
        if e["ph"] in ("X", "C"):
            tracks.setdefault((e["pid"], e["tid"]), []).append(e["ts"])
    for track_ts in tracks.values():
        assert track_ts == sorted(track_ts)


def test_write_exporters_round_trip(tmp_path):
    rec = _sample_recorder()
    chrome = tmp_path / "trace.json"
    write_chrome_trace(rec, str(chrome))
    assert json.loads(chrome.read_text())["displayTimeUnit"] == "ms"
    jsonl = tmp_path / "trace.jsonl"
    write_jsonl(rec, str(jsonl))
    records = [json.loads(line) for line in jsonl.read_text().splitlines()]
    spans = [r for r in records if r["type"] == "span"]
    gauges = [r for r in records if r["type"] == "gauge"]
    assert len(spans) == 2 and len(gauges) == 3
    assert spans[0]["tenant"] == "gold"
    assert spans[0]["phases"][1] == {"name": "decode", "start_ms": 5.0,
                                     "end_ms": 9.0, "pool": "decode",
                                     "replica": 1}
    assert gauges[0] == {"type": "gauge", "ts_ms": 0.0, "name": "queue_depth",
                         "value": 3.0, "pool": "decode"}


# ------------------------------------------------------------ result wiring

def test_run_result_carries_trace_and_obs_details():
    experiment = Experiment(model="resnet50",
                            workload=WorkloadSpec("video", requests=40),
                            trace=True)
    result = experiment.run(["vanilla"]).result("vanilla")
    assert isinstance(result.trace, TraceRecorder)
    obs = result.details["obs"]
    assert obs["spans"]["total"] == 40
    assert obs["spans"]["open"] == 0
    assert obs == result.trace.summary()


def test_untraced_run_has_no_obs_payload():
    experiment = Experiment(model="resnet50",
                            workload=WorkloadSpec("video", requests=40))
    result = experiment.run(["vanilla"]).result("vanilla")
    assert result.trace is None
    assert "obs" not in result.details


def test_cluster_run_surfaces_kernel_stats_and_gauges():
    from repro.api import ClusterSpec
    experiment = Experiment(model="resnet50",
                            workload=WorkloadSpec("video", requests=40),
                            cluster=ClusterSpec(replicas=2), trace=True)
    result = experiment.run(["vanilla"]).result("vanilla")
    kernel = result.details["kernel"]
    assert kernel["pushed"] >= kernel["fired"] > 0
    assert set(kernel) >= {"pushed", "fired", "cancelled", "compactions",
                           "peak_heap"}
    # Periodic fleet gauges sampled on the simulated clock.
    gauges = result.details["obs"]["gauges"]
    assert any(key.endswith("queue_depth") for key in gauges)
    assert any(key.endswith("fleet_size") for key in gauges)


def test_sweep_json_excludes_runtime_telemetry():
    from repro.api.result import SweepReport
    point = SweepPoint(params={"replicas": 2}, report=None,
                       error={"type": "ValueError", "message": "x"},
                       wall_s=1.25, cache={"hits": 1, "misses": 0})
    data = SweepReport(points=[point]).to_json()
    (encoded,) = data["points"]
    assert "wall_s" not in encoded and "cache" not in encoded
    # wall_s/cache are execution telemetry: excluded from equality too, so
    # serial and parallel sweeps stay bit-identical.
    other = SweepPoint(params={"replicas": 2}, report=None,
                       error={"type": "ValueError", "message": "x"},
                       wall_s=9.0, cache=None)
    assert point == other
