"""Tests for the content-addressed workload-trace cache."""

import pytest

from repro.api.specs import WorkloadSpec
from repro.workloads.cache import TRACE_CACHE, TraceCache, cache_clear, trace_key


@pytest.fixture(autouse=True)
def _clean_cache():
    cache_clear()
    yield
    cache_clear()


class TestTraceKey:
    def test_same_content_same_key(self):
        a = WorkloadSpec("video", "urban-day", requests=500, seed=3)
        b = WorkloadSpec("video", "urban-day", requests=500, seed=3)
        assert trace_key(a) == trace_key(b)

    def test_default_spelling_shares_key_with_explicit(self):
        # source="" resolves to the kind default; rate=None likewise.  Both
        # spellings generate the same stream, so they must share one entry.
        implicit = WorkloadSpec("video", requests=500, seed=3)
        explicit = WorkloadSpec("video", "urban-day", requests=500, rate=30.0,
                                seed=3)
        assert trace_key(implicit) == trace_key(explicit)

    def test_inherited_seed_matches_explicit_seed(self):
        unseeded = WorkloadSpec("video", requests=500)
        seeded = WorkloadSpec("video", requests=500, seed=7)
        assert trace_key(unseeded, default_seed=7) == trace_key(seeded)

    @pytest.mark.parametrize("change", [
        {"seed": 4},
        {"requests": 501},
        {"rate": 25.0},
        {"source": "highway"},
        {"overrides": {"walk_sigma": 0.05}},
    ])
    def test_any_generation_input_changes_the_key(self, change):
        base = dict(kind="video", source="urban-day", requests=500, seed=3)
        assert trace_key(WorkloadSpec(**base)) \
            != trace_key(WorkloadSpec(**{**base, **change}))

    def test_arrival_process_changes_the_key(self):
        base = WorkloadSpec("nlp", requests=200, seed=1)
        poisson = WorkloadSpec("nlp", requests=200, seed=1,
                               arrival_process="poisson")
        assert trace_key(base) != trace_key(poisson)


class TestTraceCacheLRU:
    def test_hit_returns_the_same_object(self):
        cache = TraceCache(maxsize=4)
        first = cache.get_or_build("k", lambda: object())
        second = cache.get_or_build("k", lambda: object())
        assert first is second
        assert cache.info()["hits"] == 1
        assert cache.info()["misses"] == 1

    def test_lru_eviction_bounds_size(self):
        cache = TraceCache(maxsize=2)
        for i in range(5):
            cache.get_or_build(f"k{i}", lambda i=i: i)
        assert len(cache) == 2
        assert cache.info()["evictions"] == 3
        # Most recent two survive.
        assert cache.get_or_build("k4", lambda: "rebuilt") == 4

    def test_eviction_is_least_recently_used(self):
        cache = TraceCache(maxsize=2)
        cache.get_or_build("a", lambda: "A")
        cache.get_or_build("b", lambda: "B")
        cache.get_or_build("a", lambda: "A'")       # refresh a
        cache.get_or_build("c", lambda: "C")        # evicts b, not a
        assert cache.get_or_build("a", lambda: "rebuilt") == "A"
        assert cache.get_or_build("b", lambda: "rebuilt") == "rebuilt"

    def test_maxsize_zero_disables_caching(self):
        cache = TraceCache(maxsize=0)
        builds = []
        for _ in range(3):
            cache.get_or_build("k", lambda: builds.append(1))
        assert len(builds) == 3
        assert len(cache) == 0

    def test_negative_maxsize_rejected(self):
        with pytest.raises(ValueError, match="maxsize"):
            TraceCache(maxsize=-1)


class TestBuildIntegration:
    def test_build_is_memoized_by_content(self):
        spec = WorkloadSpec("video", requests=300, seed=5)
        first = spec.build()
        again = WorkloadSpec("video", requests=300, seed=5).build()
        assert first is again
        assert TRACE_CACHE.info()["hits"] == 1

    def test_materialize_bypasses_the_cache(self):
        spec = WorkloadSpec("video", requests=300, seed=5)
        a = spec.materialize()
        b = spec.materialize()
        assert a is not b
        assert TRACE_CACHE.info()["hits"] == 0

    def test_distinct_seeds_get_distinct_traces(self):
        a = WorkloadSpec("video", requests=300, seed=1).build()
        b = WorkloadSpec("video", requests=300, seed=2).build()
        assert a is not b

    def test_repeated_experiment_runs_share_one_build(self, monkeypatch):
        from repro.api import Experiment

        calls = []
        real = WorkloadSpec.materialize

        def counting(self, default_seed=0):
            calls.append(1)
            return real(self, default_seed)

        monkeypatch.setattr(WorkloadSpec, "materialize", counting)
        spec = WorkloadSpec("video", requests=200, seed=9)
        for _ in range(3):
            Experiment(model="resnet50", workload=spec).run(["vanilla"])
        assert len(calls) == 1


class TestArrivalProcessKeys:
    """flash_crowd / trace:<csv> arrivals x the content-addressed key."""

    def test_flash_crowd_builds_and_is_memoized(self):
        spec = WorkloadSpec("generative", requests=40, seed=2,
                            arrival_process="flash_crowd")
        first = spec.build()
        again = WorkloadSpec("generative", requests=40, seed=2,
                             arrival_process="flash_crowd").build()
        assert first is again
        assert len(first) == 40
        assert TRACE_CACHE.info()["hits"] == 1

    def test_flash_crowd_keyed_apart_from_poisson(self):
        base = dict(kind="generative", requests=40, seed=2)
        assert trace_key(WorkloadSpec(**base, arrival_process="poisson")) \
            != trace_key(WorkloadSpec(**base, arrival_process="flash_crowd"))

    def _write_trace(self, path, times):
        path.write_text("\n".join(f"{t:.1f}" for t in times) + "\n")
        return f"trace:{path}"

    def test_trace_arrivals_build_through_the_cache(self, tmp_path):
        process = self._write_trace(tmp_path / "arrivals.csv",
                                    [10.0 * i for i in range(40)])
        spec = WorkloadSpec("generative", requests=40, seed=2,
                            arrival_process=process)
        first = spec.build()
        again = WorkloadSpec("generative", requests=40, seed=2,
                             arrival_process=process).build()
        assert first is again
        assert TRACE_CACHE.info()["hits"] == 1
        assert [s.arrival_ms for s in first.sequences] \
            == [10.0 * i for i in range(40)]

    def test_editing_the_trace_csv_invalidates_the_key(self, tmp_path):
        csv = tmp_path / "arrivals.csv"
        process = self._write_trace(csv, [10.0 * i for i in range(40)])
        spec = WorkloadSpec("generative", requests=40, seed=2,
                            arrival_process=process)
        before = trace_key(spec)
        first = spec.build()
        self._write_trace(csv, [5.0 * i for i in range(40)])
        after = trace_key(spec)
        assert before != after            # same path, different bytes
        rebuilt = spec.build()
        assert rebuilt is not first
        assert [s.arrival_ms for s in rebuilt.sequences] \
            == [5.0 * i for i in range(40)]

    def test_identical_bytes_at_different_paths_share_a_key(self, tmp_path):
        times = [10.0 * i for i in range(40)]
        a = self._write_trace(tmp_path / "a.csv", times)
        b = self._write_trace(tmp_path / "b.csv", times)
        assert trace_key(WorkloadSpec("generative", requests=40, seed=2,
                                      arrival_process=a)) \
            == trace_key(WorkloadSpec("generative", requests=40, seed=2,
                                      arrival_process=b))

    def test_missing_trace_file_key_is_computable(self, tmp_path):
        spec = WorkloadSpec("generative", requests=40, seed=2,
                            arrival_process=f"trace:{tmp_path}/absent.csv")
        assert isinstance(trace_key(spec), str)


class TestPrefixKnobKeys:
    def test_inert_prefix_knobs_share_the_entry(self):
        # With prefix_groups=0 no prefix stream is drawn, so share/tokens
        # settings are inert and must not split the cache entry.
        base = WorkloadSpec("generative", requests=40, seed=2)
        spelled = WorkloadSpec("generative", requests=40, seed=2,
                               prefix_groups=0, prefix_share=0.5,
                               prefix_tokens=64)
        assert trace_key(base) == trace_key(spelled)

    def test_active_prefix_knobs_change_the_key(self):
        base = dict(kind="generative", requests=40, seed=2)
        plain = trace_key(WorkloadSpec(**base))
        grouped = trace_key(WorkloadSpec(**base, prefix_groups=4))
        assert plain != grouped
        assert grouped != trace_key(WorkloadSpec(**base, prefix_groups=4,
                                                 prefix_share=0.5))
        assert grouped != trace_key(WorkloadSpec(**base, prefix_groups=4,
                                                 prefix_tokens=64))
