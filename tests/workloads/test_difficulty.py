"""Tests for the difficulty processes and traces."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory
from repro.workloads.difficulty import (
    DifficultyTrace,
    RandomWalkDifficulty,
    RegimeSwitchDifficulty,
)


def make_trace(n=5):
    return DifficultyTrace(name="t", raw_difficulty=np.linspace(0, 1, n),
                           sharpness=np.full(n, 0.05))


def test_trace_defaults_confidence_shift_to_zeros():
    trace = make_trace()
    assert np.allclose(trace.confidence_shift, 0.0)


def test_trace_length_mismatch_rejected():
    with pytest.raises(ValueError):
        DifficultyTrace(name="t", raw_difficulty=np.zeros(3), sharpness=np.zeros(2))


def test_trace_clips_difficulty_to_unit_interval():
    trace = DifficultyTrace(name="t", raw_difficulty=np.array([-0.5, 1.5]),
                            sharpness=np.zeros(2))
    assert trace.raw_difficulty.min() >= 0.0
    assert trace.raw_difficulty.max() <= 1.0


def test_trace_sample_and_iteration():
    trace = make_trace(4)
    samples = list(trace.samples())
    assert len(samples) == 4
    assert samples[2].index == 2
    assert samples[2].raw_difficulty == pytest.approx(trace.raw_difficulty[2])


def test_trace_slice_preserves_fields():
    trace = make_trace(10)
    piece = trace.slice(2, 6)
    assert len(piece) == 4
    assert piece.raw_difficulty[0] == pytest.approx(trace.raw_difficulty[2])
    assert piece.confidence_shift.shape == (4,)


def test_random_walk_values_in_unit_interval():
    rng = RngFactory(0).generator("walk")
    trace = RandomWalkDifficulty(mean=0.3).generate(2000, rng)
    assert trace.raw_difficulty.min() >= 0.0
    assert trace.raw_difficulty.max() <= 1.0


def test_random_walk_has_temporal_continuity():
    """Adjacent video frames should be much closer than random pairs."""
    rng = RngFactory(1).generator("walk")
    trace = RandomWalkDifficulty(mean=0.3, volatility=0.02).generate(3000, rng)
    d = trace.raw_difficulty
    adjacent = np.abs(np.diff(d)).mean()
    shuffled = np.abs(np.diff(np.random.default_rng(0).permutation(d))).mean()
    assert adjacent < shuffled / 3


def test_random_walk_reproducible():
    a = RandomWalkDifficulty().generate(500, RngFactory(5).generator("x"))
    b = RandomWalkDifficulty().generate(500, RngFactory(5).generator("x"))
    assert np.allclose(a.raw_difficulty, b.raw_difficulty)


def test_regime_switch_low_continuity():
    """Review streams have far less adjacent-request correlation than video."""
    rng = RngFactory(2).generator("regime")
    trace = RegimeSwitchDifficulty().generate(3000, rng)
    video = RandomWalkDifficulty(volatility=0.02).generate(3000, RngFactory(2).generator("v"))
    nlp_adjacent = np.abs(np.diff(trace.raw_difficulty)).mean()
    video_adjacent = np.abs(np.diff(video.raw_difficulty)).mean()
    assert nlp_adjacent > 3 * video_adjacent


def test_regime_switch_mean_near_base_mean():
    rng = RngFactory(3).generator("regime")
    trace = RegimeSwitchDifficulty(base_mean=0.5, regime_spread=0.1).generate(5000, rng)
    assert 0.35 < trace.mean_difficulty() < 0.65


def test_confidence_shift_bounded():
    rng = RngFactory(4).generator("walk")
    trace = RandomWalkDifficulty(confidence_noise=0.02).generate(4000, rng)
    assert np.abs(trace.confidence_shift).max() < 0.25


def test_nlp_confidence_noise_larger_than_cv():
    cv = RandomWalkDifficulty().generate(4000, RngFactory(6).generator("cv"))
    nlp = RegimeSwitchDifficulty().generate(4000, RngFactory(6).generator("nlp"))
    # Remove the smooth component by differencing: noise dominates diffs.
    cv_noise = np.abs(np.diff(cv.confidence_shift)).mean()
    nlp_noise = np.abs(np.diff(nlp.confidence_shift)).mean()
    assert nlp_noise > cv_noise
