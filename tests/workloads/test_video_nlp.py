"""Tests for the CV and NLP workload factories."""

import numpy as np
import pytest

from repro.workloads.nlp import NLP_DATASET_PRESETS, make_nlp_workload
from repro.workloads.video import VIDEO_SCENE_PRESETS, make_video_workload


def test_video_workload_basic_shape():
    wl = make_video_workload("urban-day", num_frames=900, fps=30.0, seed=3)
    assert len(wl) == 900
    assert wl.arrival_times_ms.shape == (900,)
    assert np.allclose(np.diff(wl.arrival_times_ms), 1000.0 / 30.0)


def test_video_presets_differ_in_difficulty():
    day = make_video_workload("urban-day", num_frames=4000, seed=1)
    night = make_video_workload("urban-night", num_frames=4000, seed=1)
    assert night.trace.mean_difficulty() > day.trace.mean_difficulty()


def test_video_unknown_preset_falls_back():
    wl = make_video_workload("unknown-scene", num_frames=100, seed=0)
    assert len(wl) == 100


def test_video_preset_overrides_apply():
    wl = make_video_workload("urban-day", num_frames=3000, seed=2,
                             preset_overrides={"mean": 0.8})
    assert wl.trace.mean_difficulty() > 0.5


def test_video_workload_reproducible():
    a = make_video_workload("highway", num_frames=500, seed=9)
    b = make_video_workload("highway", num_frames=500, seed=9)
    assert np.allclose(a.trace.raw_difficulty, b.trace.raw_difficulty)


def test_all_video_presets_generate():
    for name in VIDEO_SCENE_PRESETS:
        assert len(make_video_workload(name, num_frames=50, seed=0)) == 50


def test_nlp_workload_basic_shape():
    wl = make_nlp_workload("amazon", num_requests=800, rate_qps=30, seed=4)
    assert len(wl) == 800
    assert wl.arrival_times_ms.shape == (800,)
    assert np.all(np.diff(wl.arrival_times_ms) >= 0)


def test_nlp_datasets_have_presets():
    assert {"amazon", "imdb"} <= set(NLP_DATASET_PRESETS)


def test_nlp_poisson_arrival_option():
    wl = make_nlp_workload("imdb", num_requests=500, rate_qps=50, seed=5,
                           arrival_process="poisson")
    duration_s = (wl.arrival_times_ms[-1] - wl.arrival_times_ms[0]) / 1000.0
    assert len(wl) / duration_s == pytest.approx(50.0, rel=0.3)


def test_nlp_workload_reproducible():
    a = make_nlp_workload("amazon", num_requests=400, seed=6)
    b = make_nlp_workload("amazon", num_requests=400, seed=6)
    assert np.allclose(a.trace.raw_difficulty, b.trace.raw_difficulty)
    assert np.allclose(a.arrival_times_ms, b.arrival_times_ms)


def test_nlp_harder_than_video_on_average():
    video = make_video_workload("urban-day", num_frames=3000, seed=7)
    nlp = make_nlp_workload("amazon", num_requests=3000, seed=7)
    assert nlp.trace.mean_difficulty() > video.trace.mean_difficulty()
