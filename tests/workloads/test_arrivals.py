"""Tests for arrival processes."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory
from repro.workloads.arrivals import (fixed_rate_arrivals, flash_crowd_arrivals,
                                      maf_trace_arrivals, poisson_arrivals,
                                      trace_arrivals)


def test_fixed_rate_spacing():
    arrivals = fixed_rate_arrivals(10, rate_qps=20.0)
    assert np.allclose(np.diff(arrivals), 50.0)


def test_fixed_rate_start_offset():
    arrivals = fixed_rate_arrivals(3, rate_qps=10.0, start_ms=500.0)
    assert arrivals[0] == pytest.approx(500.0)


def test_fixed_rate_rejects_non_positive_rate():
    with pytest.raises(ValueError):
        fixed_rate_arrivals(5, rate_qps=0.0)


def test_poisson_mean_rate_close_to_target():
    rng = RngFactory(0).generator("poisson")
    arrivals = poisson_arrivals(20_000, rate_qps=50.0, rng=rng)
    duration_s = (arrivals[-1] - arrivals[0]) / 1000.0
    observed = len(arrivals) / duration_s
    assert observed == pytest.approx(50.0, rel=0.1)


def test_poisson_monotone_timestamps():
    rng = RngFactory(1).generator("poisson")
    arrivals = poisson_arrivals(1000, 10.0, rng)
    assert np.all(np.diff(arrivals) >= 0)


def test_maf_produces_requested_count():
    rng = RngFactory(2).generator("maf")
    arrivals = maf_trace_arrivals(5000, mean_rate_qps=30.0, rng=rng)
    assert arrivals.shape == (5000,)
    assert np.all(np.diff(arrivals) >= 0)


def test_maf_mean_rate_in_reasonable_band():
    rng = RngFactory(3).generator("maf")
    arrivals = maf_trace_arrivals(30_000, mean_rate_qps=40.0, rng=rng)
    duration_s = (arrivals[-1] - arrivals[0]) / 1000.0
    observed = len(arrivals) / duration_s
    assert 15.0 < observed < 120.0


def test_maf_is_burstier_than_poisson():
    """Azure-Functions-like traces have heavier per-second rate variation."""
    rng = RngFactory(4)
    maf = maf_trace_arrivals(20_000, 40.0, rng.generator("maf"))
    poisson = poisson_arrivals(20_000, 40.0, rng.generator("poisson"))

    def per_second_cv(arrivals):
        seconds = np.floor(arrivals / 1000.0).astype(int)
        counts = np.bincount(seconds - seconds.min())
        counts = counts[counts > 0]
        return counts.std() / counts.mean()

    assert per_second_cv(maf) > per_second_cv(poisson)


def test_rejects_non_positive_rates():
    rng = RngFactory(5).generator("x")
    with pytest.raises(ValueError):
        poisson_arrivals(10, 0.0, rng)
    with pytest.raises(ValueError):
        maf_trace_arrivals(10, -1.0, rng)


def test_flash_crowd_spike_rate_jumps():
    """During the spike window the observed rate is several times the base."""
    rng = RngFactory(6).generator("flash")
    arrivals = flash_crowd_arrivals(20_000, base_qps=20.0, rng=rng,
                                    spike_start_s=60.0, spike_multiplier=5.0,
                                    spike_duration_s=120.0)
    assert arrivals.shape == (20_000,)
    assert np.all(np.diff(arrivals) >= 0)
    before = np.sum(arrivals < 60_000.0)
    spike = np.sum((arrivals >= 60_000.0) & (arrivals < 180_000.0))
    base_rate = before / 60.0
    spike_rate = spike / 120.0
    assert spike_rate > 3.0 * base_rate


def test_flash_crowd_returns_to_base_after_spike():
    rng = RngFactory(7).generator("flash")
    arrivals = flash_crowd_arrivals(5_000, base_qps=20.0, rng=rng,
                                    spike_start_s=10.0, spike_multiplier=4.0,
                                    spike_duration_s=20.0)
    after = arrivals[arrivals >= 30_000.0]
    assert len(after) > 100
    observed = len(after) / ((after[-1] - after[0]) / 1000.0)
    assert 10.0 < observed < 40.0


def test_flash_crowd_validation():
    rng = RngFactory(8).generator("flash")
    with pytest.raises(ValueError):
        flash_crowd_arrivals(10, base_qps=0.0, rng=rng)
    with pytest.raises(ValueError):
        flash_crowd_arrivals(10, base_qps=5.0, rng=rng, spike_start_s=-1.0)
    with pytest.raises(ValueError):
        flash_crowd_arrivals(10, base_qps=5.0, rng=rng, spike_multiplier=0.5)
    with pytest.raises(ValueError):
        flash_crowd_arrivals(10, base_qps=5.0, rng=rng, spike_duration_s=0.0)


def test_trace_replay_sorts_and_truncates():
    arrivals = trace_arrivals(3, [500.0, 100.0, 900.0, 300.0])
    assert np.allclose(arrivals, [100.0, 300.0, 500.0])


def test_trace_replay_from_csv(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_text("0.0,250.5,1000.0\n2000.0\n")
    arrivals = trace_arrivals(4, str(path))
    assert np.allclose(arrivals, [0.0, 250.5, 1000.0, 2000.0])


def test_trace_replay_validation(tmp_path):
    with pytest.raises(ValueError, match="holds 2 timestamps; 5 requested"):
        trace_arrivals(5, [1.0, 2.0])
    with pytest.raises(ValueError, match="finite"):
        trace_arrivals(2, [1.0, float("nan")])
    with pytest.raises(ValueError, match=">= 0"):
        trace_arrivals(2, [-5.0, 1.0])
    with pytest.raises(ValueError, match="not found"):
        trace_arrivals(2, str(tmp_path / "missing.csv"))


def test_workload_factories_accept_new_processes(tmp_path):
    from repro.generative.sequences import make_generative_workload
    from repro.workloads.nlp import make_nlp_workload

    nlp = make_nlp_workload(num_requests=200, rate_qps=40.0,
                            arrival_process="flash_crowd")
    assert len(nlp.arrival_times_ms) == 200

    gen = make_generative_workload(num_sequences=50, rate_qps=4.0,
                                   arrival_process="flash_crowd")
    assert len(gen.sequences) == 50

    path = tmp_path / "gen_trace.csv"
    path.write_text(",".join(str(250.0 * i) for i in range(60)))
    gen = make_generative_workload(num_sequences=50, rate_qps=4.0,
                                   arrival_process=f"trace:{path}")
    assert gen.sequences[0].arrival_ms == 0.0
    assert gen.sequences[-1].arrival_ms == 250.0 * 49

    with pytest.raises(ValueError, match="unknown arrival_process"):
        make_nlp_workload(num_requests=10, arrival_process="bogus")
    with pytest.raises(ValueError, match="unknown arrival_process"):
        make_generative_workload(num_sequences=10, arrival_process="bogus")
