"""Tests for arrival processes."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory
from repro.workloads.arrivals import fixed_rate_arrivals, maf_trace_arrivals, poisson_arrivals


def test_fixed_rate_spacing():
    arrivals = fixed_rate_arrivals(10, rate_qps=20.0)
    assert np.allclose(np.diff(arrivals), 50.0)


def test_fixed_rate_start_offset():
    arrivals = fixed_rate_arrivals(3, rate_qps=10.0, start_ms=500.0)
    assert arrivals[0] == pytest.approx(500.0)


def test_fixed_rate_rejects_non_positive_rate():
    with pytest.raises(ValueError):
        fixed_rate_arrivals(5, rate_qps=0.0)


def test_poisson_mean_rate_close_to_target():
    rng = RngFactory(0).generator("poisson")
    arrivals = poisson_arrivals(20_000, rate_qps=50.0, rng=rng)
    duration_s = (arrivals[-1] - arrivals[0]) / 1000.0
    observed = len(arrivals) / duration_s
    assert observed == pytest.approx(50.0, rel=0.1)


def test_poisson_monotone_timestamps():
    rng = RngFactory(1).generator("poisson")
    arrivals = poisson_arrivals(1000, 10.0, rng)
    assert np.all(np.diff(arrivals) >= 0)


def test_maf_produces_requested_count():
    rng = RngFactory(2).generator("maf")
    arrivals = maf_trace_arrivals(5000, mean_rate_qps=30.0, rng=rng)
    assert arrivals.shape == (5000,)
    assert np.all(np.diff(arrivals) >= 0)


def test_maf_mean_rate_in_reasonable_band():
    rng = RngFactory(3).generator("maf")
    arrivals = maf_trace_arrivals(30_000, mean_rate_qps=40.0, rng=rng)
    duration_s = (arrivals[-1] - arrivals[0]) / 1000.0
    observed = len(arrivals) / duration_s
    assert 15.0 < observed < 120.0


def test_maf_is_burstier_than_poisson():
    """Azure-Functions-like traces have heavier per-second rate variation."""
    rng = RngFactory(4)
    maf = maf_trace_arrivals(20_000, 40.0, rng.generator("maf"))
    poisson = poisson_arrivals(20_000, 40.0, rng.generator("poisson"))

    def per_second_cv(arrivals):
        seconds = np.floor(arrivals / 1000.0).astype(int)
        counts = np.bincount(seconds - seconds.min())
        counts = counts[counts > 0]
        return counts.std() / counts.mean()

    assert per_second_cv(maf) > per_second_cv(poisson)


def test_rejects_non_positive_rates():
    rng = RngFactory(5).generator("x")
    with pytest.raises(ValueError):
        poisson_arrivals(10, 0.0, rng)
    with pytest.raises(ValueError):
        maf_trace_arrivals(10, -1.0, rng)
