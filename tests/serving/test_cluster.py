"""Tests for the multi-replica cluster platform and its load balancers."""

import numpy as np
import pytest

from repro.serving.cluster import (BALANCER_NAMES, ClusterPlatform,
                                   JoinShortestQueueBalancer,
                                   LeastWorkLeftBalancer,
                                   PowerOfTwoChoicesBalancer, ReplicaHandle,
                                   RoundRobinBalancer, balancer_names,
                                   build_balancer)
from repro.serving.platform import BatchResult, ServingPlatform
from repro.serving.request import Request
from repro.serving.tfserve import TFServingPlatform
from repro.workloads.difficulty import DifficultyTrace, InputSample


def sample(i):
    return InputSample(index=i, raw_difficulty=0.3, sharpness=0.05,
                       confidence_shift=0.0)


def make_request(request_id, arrival_ms, slo_ms=1000.0):
    return Request(request_id=request_id, arrival_ms=arrival_ms,
                   sample=sample(request_id), slo_ms=slo_ms)


def fixed_time_executor(gpu_time_ms=8.0):
    def executor(batch, batch_start_ms):
        return BatchResult(gpu_time_ms=gpu_time_ms,
                           result_offsets_ms=[gpu_time_ms] * len(batch))
    return executor


def make_cluster(n, balancer, max_batch_size=4, batch_timeout_ms=0.0, seed=0):
    replicas = [TFServingPlatform(max_batch_size=max_batch_size,
                                  batch_timeout_ms=batch_timeout_ms)
                for _ in range(n)]
    return ClusterPlatform(replicas, balancer=balancer, seed=seed)


def paced(n, gap_ms=1.0):
    return [make_request(i, i * gap_ms) for i in range(n)]


# ------------------------------------------------------------------- balancers

def test_build_balancer_names_and_aliases():
    for name in BALANCER_NAMES:
        assert build_balancer(name).name == name
    assert build_balancer("jsq").name == "join_shortest_queue"
    assert build_balancer("p2c").name == "power_of_two_choices"
    assert build_balancer("rr").name == "round_robin"
    assert build_balancer("lwl").name == "least_work_left"
    with pytest.raises(ValueError):
        build_balancer("random-nonsense")


def test_build_balancer_passes_instances_through():
    balancer = RoundRobinBalancer()
    assert build_balancer(balancer) is balancer


def _handles(platforms):
    return [ReplicaHandle(i, p, p.new_state()) for i, p in enumerate(platforms)]


def test_round_robin_cycles():
    platforms = [TFServingPlatform(max_batch_size=4) for _ in range(3)]
    handles = _handles(platforms)
    balancer = RoundRobinBalancer()
    request = make_request(0, 0.0)
    picks = [balancer.choose(request, handles, 0.0) for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]
    balancer.reset()
    assert balancer.choose(request, handles, 0.0) == 0


def test_jsq_prefers_emptiest_replica_counting_in_flight():
    platforms = [TFServingPlatform(max_batch_size=4) for _ in range(2)]
    handles = _handles(platforms)
    # Replica 0: empty queue but a 4-request batch on the accelerator until t=50.
    handles[0].state.busy_until_ms = 50.0
    handles[0].state.serving_batch_size = 4
    # Replica 1: one queued request, idle accelerator.
    platforms[1].admit(handles[1].state, make_request(7, 0.0))
    balancer = JoinShortestQueueBalancer()
    assert balancer.choose(make_request(8, 10.0), handles, 10.0) == 1
    # Once the in-flight batch finishes, replica 0 is genuinely emptier.
    assert balancer.choose(make_request(9, 60.0), handles, 60.0) == 0


def test_least_work_left_uses_backlog_and_profile(resnet50_stack):
    _spec, profile, _pred, _cat, _exec = resnet50_stack
    platforms = [TFServingPlatform(max_batch_size=4, profile=profile)
                 for _ in range(2)]
    handles = _handles(platforms)
    # Replica 0: short queue but a huge accelerator backlog.
    handles[0].state.busy_until_ms = 500.0
    platforms[0].admit(handles[0].state, make_request(1, 0.0))
    # Replica 1: longer queue, idle accelerator -> less total work.
    for i in range(2, 5):
        platforms[1].admit(handles[1].state, make_request(i, 0.0))
    balancer = LeastWorkLeftBalancer()
    assert balancer.choose(make_request(9, 0.0), handles, 0.0) == 1
    assert handles[0].work_left_ms(0.0) > handles[1].work_left_ms(0.0)


def test_work_left_falls_back_to_queue_length_without_profile():
    platform = TFServingPlatform(max_batch_size=4)  # no profile
    handle = ReplicaHandle(0, platform, platform.new_state())
    for i in range(3):
        platform.admit(handle.state, make_request(i, 0.0))
    assert handle.work_left_ms(0.0) == pytest.approx(3.0)


def test_power_of_two_choices_is_seed_deterministic():
    requests = paced(200)
    first = make_cluster(4, "power_of_two_choices", seed=5).run(
        requests, fixed_time_executor())
    second = make_cluster(4, "power_of_two_choices", seed=5).run(
        requests, fixed_time_executor())
    assert first.dispatch_counts == second.dispatch_counts
    other = make_cluster(4, "power_of_two_choices", seed=6).run(
        requests, fixed_time_executor())
    # A different seed is allowed to (and here does) pick differently.
    assert sum(other.dispatch_counts) == 200


# -------------------------------------------------------------------- cluster

def test_cluster_requires_at_least_one_replica():
    with pytest.raises(ValueError):
        ClusterPlatform([], balancer="round_robin")


def test_cluster_rejects_mismatched_executor_list():
    cluster = make_cluster(3, "round_robin")
    with pytest.raises(ValueError):
        cluster.run(paced(4), [fixed_time_executor()] * 2)


def test_single_replica_cluster_matches_standalone_run():
    requests = paced(40, gap_ms=2.0)
    alone = TFServingPlatform(max_batch_size=4, batch_timeout_ms=0.0).run(
        requests, fixed_time_executor())
    fleet = make_cluster(1, "round_robin").run(requests, fixed_time_executor())
    agg = fleet.aggregate()
    assert len(agg.served()) == len(alone.served())
    assert sorted(r.latency_ms for r in agg.served()) == pytest.approx(
        sorted(r.latency_ms for r in alone.served()))
    assert agg.num_batches == alone.num_batches
    assert fleet.makespan_ms == pytest.approx(alone.makespan_ms)


@pytest.mark.parametrize("balancer",
                         sorted(balancer_names("classification")))
def test_every_balancer_serves_every_request_once(balancer):
    requests = paced(120, gap_ms=0.5)
    fleet = make_cluster(3, balancer).run(requests, fixed_time_executor())
    responses = fleet.aggregate().responses
    assert sorted(r.request_id for r in responses) == list(range(120))
    assert sum(fleet.dispatch_counts) == 120


def test_round_robin_dispatch_counts_are_even():
    fleet = make_cluster(4, "round_robin").run(paced(100), fixed_time_executor())
    assert fleet.dispatch_counts == [25, 25, 25, 25]
    assert fleet.dispatch_imbalance() == pytest.approx(1.0)


def test_parallel_replicas_shorten_makespan():
    requests = [make_request(i, 0.0) for i in range(64)]
    one = make_cluster(1, "round_robin").run(requests, fixed_time_executor())
    four = make_cluster(4, "round_robin").run(requests, fixed_time_executor())
    assert len(four.aggregate().served()) == 64
    assert four.makespan_ms < one.makespan_ms
    assert four.fleet_throughput_qps() > one.fleet_throughput_qps() * 2


def test_cluster_with_no_requests():
    fleet = make_cluster(2, "round_robin").run([], fixed_time_executor())
    assert fleet.aggregate().responses == []
    assert fleet.dispatch_counts == [0, 0]


def test_cluster_per_replica_executors_receive_only_their_traffic():
    seen = [[], []]

    def recording_executor(index):
        def executor(batch, batch_start_ms):
            seen[index].extend(r.request_id for r in batch)
            return BatchResult(gpu_time_ms=4.0, result_offsets_ms=[4.0] * len(batch))
        return executor

    fleet = make_cluster(2, "round_robin").run(
        paced(20), [recording_executor(0), recording_executor(1)])
    assert sorted(seen[0] + seen[1]) == list(range(20))
    assert len(seen[0]) == fleet.dispatch_counts[0]
    assert len(seen[1]) == fleet.dispatch_counts[1]
    # Round robin alternates, so replica 0 gets the even dispatch positions.
    assert set(seen[0]).isdisjoint(seen[1])


def test_cluster_drop_expired_accounts_every_request_once():
    replicas = [TFServingPlatform(max_batch_size=1, batch_timeout_ms=0.0,
                                  drop_expired=True) for _ in range(2)]
    cluster = ClusterPlatform(replicas, balancer="round_robin")
    # 2 replicas x 1-request batches of 50ms against a 10ms SLO and arrivals
    # every 1ms: most requests must expire in queue.
    requests = [make_request(i, float(i), slo_ms=10.0) for i in range(60)]
    fleet = cluster.run(requests, fixed_time_executor(gpu_time_ms=50.0))
    responses = fleet.aggregate().responses
    assert sorted(r.request_id for r in responses) == list(range(60))
    dropped = {r.request_id for r in responses if r.dropped}
    served = {r.request_id for r in responses if not r.dropped}
    assert dropped and served
    assert dropped.isdisjoint(served)


def test_balancer_choosing_out_of_range_replica_is_rejected():
    class BrokenBalancer(RoundRobinBalancer):
        def choose(self, request, replicas, now_ms):
            return 99

    cluster = make_cluster(2, BrokenBalancer())
    with pytest.raises(ValueError):
        cluster.run(paced(4), fixed_time_executor())
