"""Tests for the failure-injection package and the platforms' crash/recover
semantics: spec validation boundaries, CLI parsing, the seeded poisson
schedule, and the kernel-level crash behaviours (victim selection, requeue,
last-replica skip, static-fleet outages)."""

import numpy as np
import pytest

from repro.api.specs import ClusterSpec
from repro.faults import (FAULT_POOLS, FaultSchedule, FaultSpec,
                          coerce_faults, parse_faults)
from repro.serving.cluster import ClusterPlatform
from repro.serving.platform import BatchResult
from repro.serving.request import Request
from repro.serving.tfserve import TFServingPlatform
from repro.workloads.difficulty import InputSample


# ------------------------------------------------------------ spec validation

@pytest.mark.parametrize("kwargs, match", [
    ({"crash_ms": -1.0, "down_ms": 100.0}, "crash_ms must be finite and >= 0"),
    ({"crash_ms": float("nan"), "down_ms": 100.0}, "crash_ms must be finite"),
    ({"crash_ms": 0.0, "down_ms": 0.0}, "down_ms must be finite and positive"),
    ({"crash_ms": 0.0, "down_ms": -5.0}, "down_ms must be finite and positive"),
    ({"crash_ms": 0.0, "down_ms": float("inf")}, "down_ms must be finite"),
    ({"crash_ms": 0.0, "down_ms": 100.0, "pool": "gpu"}, "pool must be one of"),
])
def test_fault_spec_rejects_bad_values(kwargs, match):
    with pytest.raises(ValueError, match=match):
        FaultSpec(**kwargs)


def test_fault_spec_boundaries_and_recover():
    fault = FaultSpec(crash_ms=0.0, down_ms=1.0)
    assert fault.recover_ms == 1.0
    assert fault.pool == "decode"
    assert FAULT_POOLS == ("decode", "prefill")


def test_fault_schedule_sorts_and_filters():
    schedule = FaultSchedule.of(FaultSpec(500.0, 10.0, pool="prefill"),
                                FaultSpec(100.0, 10.0),
                                FaultSpec(300.0, 10.0))
    assert [f.crash_ms for f in schedule] == [100.0, 300.0, 500.0]
    assert len(schedule) == 3
    assert [f.crash_ms for f in schedule.for_pool("prefill")] == [500.0]
    with pytest.raises(ValueError, match="pool must be one of"):
        schedule.for_pool("gpu")
    with pytest.raises(ValueError, match="must be FaultSpec"):
        FaultSchedule(faults=(FaultSpec(1.0, 1.0), "crash"))
    assert "decode@100" in schedule.describe()
    assert FaultSchedule().describe() == "none"


def test_poisson_schedule_is_seeded_and_bounded():
    first = FaultSchedule.poisson(500.0, 200.0, horizon_ms=10_000.0, seed=3)
    second = FaultSchedule.poisson(500.0, 200.0, horizon_ms=10_000.0, seed=3)
    other = FaultSchedule.poisson(500.0, 200.0, horizon_ms=10_000.0, seed=4)
    assert first.faults == second.faults
    assert first.faults != other.faults
    assert all(0.0 <= f.crash_ms < 10_000.0 for f in first)
    assert all(f.down_ms >= 1.0 for f in first)


@pytest.mark.parametrize("kwargs", [
    {"mtbf_ms": 0.0, "mttr_ms": 1.0, "horizon_ms": 10.0},
    {"mtbf_ms": 1.0, "mttr_ms": -1.0, "horizon_ms": 10.0},
    {"mtbf_ms": 1.0, "mttr_ms": 1.0, "horizon_ms": float("inf")},
])
def test_poisson_schedule_rejects_bad_values(kwargs):
    with pytest.raises(ValueError, match="must be finite and positive"):
        FaultSchedule.poisson(**kwargs)


# ------------------------------------------------------------------- parsing

def test_parse_faults_explicit_clauses():
    schedule = parse_faults("5000:2000; 9000:1500:prefill")
    assert [(f.crash_ms, f.down_ms, f.pool) for f in schedule] == \
        [(5000.0, 2000.0, "decode"), (9000.0, 1500.0, "prefill")]


def test_parse_faults_poisson_string():
    schedule = parse_faults("mtbf=500,mttr=200,horizon=5000,seed=9,pool=prefill")
    assert len(schedule) >= 1
    assert all(f.pool == "prefill" for f in schedule)
    assert schedule.faults == parse_faults(
        "mtbf=500,mttr=200,horizon=5000,seed=9,pool=prefill").faults


@pytest.mark.parametrize("text, match", [
    ("", "empty fault schedule"),
    ("1000", "crash_ms:down_ms"),
    ("1000:200:decode:extra", "crash_ms:down_ms"),
    ("mtbf=500,mttr=200", "missing required keys"),
    ("mtbf=500,mttr=200,horizon=5000,rate=3", "unknown key 'rate'"),
    ("mtbf=,mttr=200,horizon=5000", "expected key=value"),
])
def test_parse_faults_rejects_bad_strings(text, match):
    with pytest.raises(ValueError, match=match):
        parse_faults(text)


def test_coerce_faults_spellings():
    assert coerce_faults(None) is None
    assert coerce_faults(FaultSchedule()) is None   # empty = off
    schedule = FaultSchedule.of(FaultSpec(1.0, 1.0))
    assert coerce_faults(schedule) is schedule
    assert len(coerce_faults(FaultSpec(1.0, 1.0))) == 1
    assert len(coerce_faults("100:50")) == 1
    assert len(coerce_faults([FaultSpec(1.0, 1.0)])) == 1
    with pytest.raises(ValueError, match="faults must be"):
        coerce_faults(3.5)


def test_cluster_spec_rejects_prefill_faults_on_monolithic():
    with pytest.raises(ValueError, match="pool='prefill'"):
        ClusterSpec(faults="100:50:prefill")
    spec = ClusterSpec(disaggregate=True, faults="100:50:prefill")
    assert spec.faults.for_pool("prefill")


# --------------------------------------------------------- platform semantics

def _sample(i):
    return InputSample(index=i, raw_difficulty=0.3, sharpness=0.05,
                       confidence_shift=0.0)


def _requests(n, gap_ms=5.0):
    return [Request(request_id=i, arrival_ms=i * gap_ms, sample=_sample(i),
                    slo_ms=10_000.0) for i in range(n)]


def _executor(batch, batch_start_ms):
    return BatchResult(gpu_time_ms=8.0, result_offsets_ms=[8.0] * len(batch))


def _run(replicas, faults, n=120):
    platforms = [TFServingPlatform(max_batch_size=4) for _ in range(replicas)]
    cluster = ClusterPlatform(platforms, balancer="round_robin", faults=faults)
    return cluster.run(_requests(n), _executor)


def test_last_replica_never_crashes():
    metrics = _run(1, FaultSchedule.of(FaultSpec(100.0, 50.0)))
    assert metrics.crashes == 0 and metrics.recoveries == 0
    assert sorted(r.request_id for r in metrics.aggregate().responses) == \
        list(range(120))


def test_static_fleet_outage_shows_in_timeline():
    """Without an autoscaler the fleet dips to N-1 until the scheduled boot."""
    metrics = _run(3, FaultSchedule.of(FaultSpec(100.0, 200.0)))
    assert metrics.crashes == 1 and metrics.recoveries == 1
    sizes = [n for _, n in metrics.fleet_timeline]
    assert min(sizes) == 2 and sizes[-1] == 3


def test_crash_requeues_queued_work_to_survivors():
    # One slow burst so the victim holds a queue when it dies.
    requests = _requests(40, gap_ms=0.5)
    platforms = [TFServingPlatform(max_batch_size=2) for _ in range(2)]
    cluster = ClusterPlatform(platforms, balancer="round_robin",
                              faults=FaultSchedule.of(FaultSpec(5.0, 30.0)))
    metrics = cluster.run(requests, _executor)
    assert metrics.crashes == 1
    assert metrics.requeued > 0
    assert sorted(r.request_id for r in metrics.aggregate().responses) == \
        list(range(40))


def test_fault_free_run_is_unchanged_by_empty_schedule():
    baseline = _run(2, None)
    with_empty = _run(2, FaultSchedule())
    assert baseline.summary() == with_empty.summary()
