"""Tests for the generative serving engine and decode timing model."""

import pytest

from repro.generative.decoding import DecodeTimingModel
from repro.generative.parallel import ParallelDecodingState, TokenFeedback, truncate_feedback
from repro.generative.sequences import make_generative_workload
from repro.models.zoo import get_model
from repro.serving.hf_pipelines import (
    ContinuousBatchingEngine,
    TokenDecision,
    VanillaTokenPolicy,
)


class FixedExitPolicy:
    """Exit every token at a fixed depth (for deterministic engine tests)."""

    def __init__(self, depth=0.3, exit_every=1, correct=True):
        self.depth = depth
        self.exit_every = exit_every
        self.correct = correct
        self.calls = 0
        self.feedback_batches = []

    def decide(self, sequence_id, token_index, raw_difficulty, sharpness):
        self.calls += 1
        exited = (token_index % self.exit_every) == 0 if self.exit_every > 1 else True
        return TokenDecision(exited=exited, exit_depth=self.depth if exited else None,
                             error_score=0.1 if exited else 0.9, correct=self.correct)

    def feedback(self, records):
        self.feedback_batches.append(list(records))


@pytest.fixture(scope="module")
def timing():
    return DecodeTimingModel(get_model("t5-large"), ramp_overhead_fraction=0.005)


def test_timing_model_rejects_non_generative_spec():
    with pytest.raises(ValueError):
        DecodeTimingModel(get_model("resnet50"))


def test_full_step_grows_with_batch(timing):
    assert timing.full_step_ms(8) > timing.full_step_ms(1)


def test_partial_step_proportional_to_depth(timing):
    assert timing.partial_step_ms(1, 0.5) == pytest.approx(timing.full_step_ms(1) * 0.5)


def test_deferred_tail_cost_is_marginal(timing):
    """Running deferred tails batched with a step costs far less than a full step."""
    assert timing.deferred_tail_ms(0.3, 4, 1) < timing.full_step_ms(1) * 0.5
    assert timing.deferred_tail_ms(0.3, 0, 1) == 0.0


def test_flush_step_cost(timing):
    assert timing.flush_step_ms(0.3, 0) == 0.0
    assert timing.flush_step_ms(0.3, 4) > timing.flush_step_ms(0.3, 1)


class TestParallelDecodingState:
    def test_defer_and_flush(self):
        state = ParallelDecodingState(flush_limit=3)
        state.defer(0.5)
        state.defer(0.3)
        assert state.pending_tokens == 2
        assert state.pending_depth == pytest.approx(0.3)
        assert not state.needs_flush()
        state.defer(0.4)
        assert state.needs_flush()
        assert state.flush() == 3
        assert state.pending_tokens == 0
        assert state.total_flushes == 1

    def test_flush_when_empty(self):
        state = ParallelDecodingState()
        assert state.flush() == 0
        assert state.total_flushes == 0


def test_truncate_feedback_stops_after_first_wrong_exit():
    records = [
        TokenFeedback(0, 0, 0.1, True, True),
        TokenFeedback(0, 1, 0.1, True, False),
        TokenFeedback(0, 2, 0.1, True, True),
    ]
    kept = truncate_feedback(records)
    assert len(kept) == 2
    assert kept[-1].correct is False


def test_truncate_feedback_keeps_all_when_no_deviation():
    records = [TokenFeedback(0, i, 0.1, True, True) for i in range(5)]
    assert len(truncate_feedback(records)) == 5


def test_engine_vanilla_tpt_equals_step_time(timing, small_generative_workload):
    engine = ContinuousBatchingEngine(DecodeTimingModel(get_model("t5-large")),
                                      max_batch_size=4)
    metrics = engine.run(small_generative_workload, VanillaTokenPolicy())
    assert metrics.exit_rate() == 0.0
    assert metrics.median_tpt() == pytest.approx(get_model("t5-large").bs1_latency_ms)
    assert len(metrics.tokens) == small_generative_workload.total_tokens()


def test_engine_exits_reduce_tpt(timing, small_generative_workload):
    engine = ContinuousBatchingEngine(timing, max_batch_size=4)
    policy = FixedExitPolicy(depth=0.3, exit_every=1)
    metrics = engine.run(small_generative_workload, policy)
    vanilla_step = get_model("t5-large").bs1_latency_ms
    assert metrics.exit_rate() > 0.9
    assert metrics.median_tpt() < vanilla_step * 0.6


def test_engine_wrong_exits_lower_sequence_accuracy(timing, small_generative_workload):
    engine = ContinuousBatchingEngine(timing, max_batch_size=4)
    policy = FixedExitPolicy(depth=0.3, exit_every=1, correct=False)
    metrics = engine.run(small_generative_workload, policy)
    assert metrics.mean_sequence_accuracy() < 0.1


def test_engine_mixed_exits_pay_deferred_tails(timing, small_generative_workload):
    engine = ContinuousBatchingEngine(timing, max_batch_size=4)
    policy = FixedExitPolicy(depth=0.3, exit_every=2)   # every other token exits
    metrics = engine.run(small_generative_workload, policy)
    full_step = timing.full_step_ms(1)
    non_exited = [t.tpt_ms for t in metrics.tokens if not t.exited and t.token_index > 0]
    # Non-exiting tokens pay the full step plus a mild parallel-decoding penalty.
    assert min(non_exited) >= full_step
    assert max(non_exited) < full_step * 1.6


def test_engine_queueing_delays_reported(timing):
    workload = make_generative_workload("squad", num_sequences=30, rate_qps=20.0, seed=3)
    engine = ContinuousBatchingEngine(timing, max_batch_size=1)
    metrics = engine.run(workload, VanillaTokenPolicy())
    assert metrics.median_queueing_ms() > 0.0


def test_engine_feedback_grouped_by_instance(timing, small_generative_workload):
    engine = ContinuousBatchingEngine(timing, max_batch_size=4)
    policy = FixedExitPolicy(depth=0.3, exit_every=3)
    engine.run(small_generative_workload, policy)
    assert policy.feedback_batches
    # Every feedback batch ends either with a non-exited token (instance close)
    # or at the sequence end.
    for batch in policy.feedback_batches:
        assert all(isinstance(r, TokenFeedback) for r in batch)


def test_engine_rejects_invalid_batch_size(timing):
    with pytest.raises(ValueError):
        ContinuousBatchingEngine(timing, max_batch_size=0)


def test_engine_empty_workload(timing):
    from repro.generative.sequences import GenerativeWorkload
    engine = ContinuousBatchingEngine(timing)
    metrics = engine.run(GenerativeWorkload(name="empty"), VanillaTokenPolicy())
    assert len(metrics.tokens) == 0
