"""The discrete-event kernel must reproduce the seed loops bit-for-bit.

The three serving platforms (classification cluster, generative cluster,
prefill/decode disaggregation) run on the shared heap-scheduled kernel in
:mod:`repro.serving.kernel`.  :mod:`repro.serving._seed_loops` preserves the
pre-kernel O(replicas)-per-timestamp rescan loops verbatim as executable
specifications; these tests drive both implementations over the same
scenarios — every balancer, heterogeneous profiles, both autoscalers with
boot/drain churn, SLO drops with salvage rerouting, TTFT shedding — and
require every recorded metric to match exactly.  When the two disagree, the
kernel is wrong.

Also here: regression tests for the autoscaler fixes that shipped with the
kernel (predictive EWMA decay during arrival lulls, reactive cooldown not
burned on clamped no-op proposals at the replica band edge) and for
scaled-out disaggregated replicas cycling the configured profile band.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.generative import (build_disaggregated_platform,
                                   build_generative_cluster)
from repro.generative.sequences import GenerativeWorkload, SequenceSample
from repro.models.zoo import get_model
from repro.serving._seed_loops import (seed_cluster_run, seed_disagg_run,
                                       seed_generative_run)
from repro.serving.autoscaler import PredictiveAutoscaler, ReactiveAutoscaler
from repro.serving.cluster import ClusterPlatform
from repro.serving.disagg import PrefillFleetState
from repro.serving.generative_cluster import GenerativeFleetState
from repro.serving.hf_pipelines import VanillaTokenPolicy
from repro.serving.platform import BatchResult
from repro.serving.request import Request
from repro.serving.tfserve import TFServingPlatform
from repro.workloads.difficulty import InputSample

SPEC = get_model("t5-large")
FAST = settings(max_examples=10, deadline=None)


# ------------------------------------------------------------- classification

def make_request(request_id, arrival_ms, slo_ms=1000.0):
    sample = InputSample(index=request_id, raw_difficulty=0.3, sharpness=0.05,
                         confidence_shift=0.0)
    return Request(request_id=request_id, arrival_ms=arrival_ms,
                   sample=sample, slo_ms=slo_ms)


def fixed_time_executor(gpu_time_ms=8.0):
    def executor(batch, batch_start_ms):
        return BatchResult(gpu_time_ms=gpu_time_ms,
                           result_offsets_ms=[gpu_time_ms] * len(batch))
    return executor


def zero_time_executor(batch, batch_start_ms):
    return BatchResult(gpu_time_ms=0.0, result_offsets_ms=[0.0] * len(batch))


def arrivals_random(n, qps, seed, slo_ms=1000.0):
    rng = np.random.default_rng(seed)
    t = np.cumsum(rng.exponential(1000.0 / qps, size=n))
    return [make_request(i, float(t[i]), slo_ms) for i in range(n)]


def assert_cluster_equal(a, b):
    assert a.makespan_ms == b.makespan_ms
    assert a.rerouted == b.rerouted
    assert a.dispatch_counts == b.dispatch_counts
    assert a.fleet_timeline == b.fleet_timeline
    assert a.replica_seconds == b.replica_seconds
    assert a.replica_active_ms == b.replica_active_ms
    assert a.replica_uptimes_ms == b.replica_uptimes_ms
    assert len(a.replicas) == len(b.replicas)
    for ra, rb in zip(a.replicas, b.replicas):
        assert ra.gpu_busy_ms == rb.gpu_busy_ms
        assert ra.makespan_ms == rb.makespan_ms
        assert ra.num_batches == rb.num_batches
        assert ra.responses == rb.responses


def check_cluster(cluster_fn, requests, executors=None, executor_factory=None):
    seed_m = seed_cluster_run(cluster_fn(), requests, executors,
                              executor_factory)
    kern_m = cluster_fn().run(requests, executors, executor_factory)
    assert_cluster_equal(seed_m, kern_m)


@pytest.mark.parametrize("balancer", ["round_robin", "weighted_round_robin",
                                      "join_shortest_queue", "least_work_left",
                                      "power_of_two_choices"])
def test_cluster_static_fleet_matches_seed(balancer):
    check_cluster(
        lambda: ClusterPlatform(
            [TFServingPlatform(max_batch_size=8, batch_timeout_ms=4.0)
             for _ in range(4)], balancer=balancer, seed=3),
        arrivals_random(400, 400.0, seed=1), fixed_time_executor())


def test_cluster_zero_time_batches_match_seed():
    # gpu_time 0 with timeout 0: completions land at the current timestamp
    # and must re-run the pass instead of scheduling a past event.
    reqs = [make_request(i, 25.0 * (i // 7)) for i in range(150)]
    check_cluster(
        lambda: ClusterPlatform(
            [TFServingPlatform(max_batch_size=4, batch_timeout_ms=0.0)
             for _ in range(3)], balancer="jsq"),
        reqs, zero_time_executor)


def test_cluster_heterogeneous_profiles_match_seed():
    def sized_executor(batch, batch_start_ms):
        t = 2.0 * len(batch)
        return BatchResult(gpu_time_ms=t, result_offsets_ms=[t] * len(batch))
    check_cluster(
        lambda: ClusterPlatform(
            [TFServingPlatform(max_batch_size=8, batch_timeout_ms=2.0)
             for _ in range(3)], balancer="wrr", profiles=[2.0, 1.0, "0.5:0.7"]),
        arrivals_random(400, 300.0, seed=7), sized_executor)


def test_cluster_reactive_churn_matches_seed():
    def cluster():
        return ClusterPlatform(
            [TFServingPlatform(max_batch_size=8, batch_timeout_ms=4.0)
             for _ in range(2)],
            balancer="lwl",
            autoscaler=ReactiveAutoscaler(scale_out_load=3.0,
                                          scale_in_load=0.5,
                                          cooldown_ms=200.0,
                                          provision_delay_ms=50.0),
            min_replicas=1, max_replicas=6,
            replica_factory=lambda: TFServingPlatform(max_batch_size=8,
                                                      batch_timeout_ms=4.0))
    # A burst then a trickle forces boots, drains and retires.
    reqs = arrivals_random(1000, 900.0, seed=11) + \
        [make_request(10_000 + i, 2000.0 + 40.0 * i) for i in range(40)]
    check_cluster(cluster, sorted(reqs, key=lambda r: r.arrival_ms),
                  fixed_time_executor())


def test_cluster_predictive_churn_matches_seed():
    def cluster():
        return ClusterPlatform(
            [TFServingPlatform(max_batch_size=8, batch_timeout_ms=4.0)
             for _ in range(2)],
            balancer="rr",
            autoscaler=PredictiveAutoscaler(window_ms=100.0, cooldown_ms=150.0,
                                            provision_delay_ms=30.0,
                                            service_time_ms=8.0),
            min_replicas=1, max_replicas=5,
            replica_factory=lambda: TFServingPlatform(max_batch_size=8,
                                                      batch_timeout_ms=4.0))
    check_cluster(cluster, arrivals_random(1200, 700.0, seed=13),
                  fixed_time_executor())


def test_cluster_drops_and_salvage_match_seed():
    def cluster():
        return ClusterPlatform(
            [TFServingPlatform(max_batch_size=4, batch_timeout_ms=3.0,
                               drop_expired=True) for _ in range(3)],
            balancer="round_robin",
            autoscaler=ReactiveAutoscaler(scale_out_load=2.0,
                                          scale_in_load=0.4,
                                          cooldown_ms=100.0,
                                          provision_delay_ms=20.0),
            min_replicas=1, max_replicas=6,
            replica_factory=lambda: TFServingPlatform(max_batch_size=4,
                                                      batch_timeout_ms=3.0,
                                                      drop_expired=True))
    # Tight SLOs so expiry, drops and drain-salvage rerouting all fire.
    check_cluster(cluster, arrivals_random(800, 800.0, seed=17, slo_ms=40.0),
                  fixed_time_executor(9.0))


@FAST
@given(st.integers(min_value=0, max_value=2 ** 31 - 1),
       st.integers(min_value=1, max_value=4),
       st.sampled_from(["rr", "jsq", "lwl", "wrr"]))
def test_cluster_equivalence_property(seed, replicas, balancer):
    check_cluster(
        lambda: ClusterPlatform(
            [TFServingPlatform(max_batch_size=4, batch_timeout_ms=3.0)
             for _ in range(replicas)], balancer=balancer, seed=seed % 97),
        arrivals_random(120, 500.0, seed=seed), fixed_time_executor(6.0))


# ----------------------------------------------------------------- generative

def make_sequence(seq_id, arrival_ms, tokens=6, prompt=0):
    return SequenceSample(sequence_id=seq_id, arrival_ms=float(arrival_ms),
                          token_difficulty=np.full(tokens, 0.25),
                          token_sharpness=np.full(tokens, 0.05),
                          prompt_tokens=int(prompt))


def bursty_workload(seed=5, prompts=False):
    times = (list(np.arange(0.0, 2000.0, 100.0))
             + list(np.arange(2000.0, 3200.0, 8.0))
             + list(np.arange(3200.0, 5000.0, 100.0)))
    rng = np.random.default_rng(seed)
    tokens = rng.integers(2, 14, size=len(times))
    prompt = rng.integers(0, 900, size=len(times)) if prompts else \
        np.zeros(len(times), dtype=int)
    return GenerativeWorkload(name="test", sequences=[
        make_sequence(i, t, tokens=int(n), prompt=int(p))
        for i, (t, n, p) in enumerate(zip(times, tokens, prompt))])


def vanilla_factory(ordinal):
    return VanillaTokenPolicy()


def assert_generative_equal(a, b):
    assert a.makespan_ms == b.makespan_ms
    assert a.dispatch_counts == b.dispatch_counts
    assert a.fleet_timeline == b.fleet_timeline
    assert a.replica_seconds == b.replica_seconds
    assert a.replica_active_ms == b.replica_active_ms
    assert a.replica_uptimes_ms == b.replica_uptimes_ms
    assert len(a.replicas) == len(b.replicas)
    for ra, rb in zip(a.replicas, b.replicas):
        assert ra.tokens == rb.tokens
        assert ra.queueing_delays_ms == rb.queueing_delays_ms
        assert ra.shed_sequence_ids == rb.shed_sequence_ids
        assert ra.makespan_ms == rb.makespan_ms


def check_generative(cluster_fn, workload):
    seed_m = seed_generative_run(cluster_fn(), workload, vanilla_factory)
    kern_m = cluster_fn().run(workload, vanilla_factory)
    assert_generative_equal(seed_m, kern_m)


@pytest.mark.parametrize("balancer", ["round_robin", "join_shortest_queue",
                                      "least_work_left",
                                      "power_of_two_choices"])
def test_generative_static_fleet_matches_seed(balancer):
    check_generative(
        lambda: build_generative_cluster(SPEC, 3, balancer=balancer,
                                         max_batch_size=2, seed=4),
        bursty_workload())


def test_generative_reactive_churn_matches_seed():
    check_generative(
        lambda: build_generative_cluster(
            SPEC, 2, balancer="join_shortest_queue", max_batch_size=2,
            autoscaler=ReactiveAutoscaler(scale_out_load=2.5,
                                          scale_in_load=0.5,
                                          cooldown_ms=300.0,
                                          provision_delay_ms=100.0),
            min_replicas=1, max_replicas=6),
        bursty_workload())


def test_generative_predictive_churn_matches_seed():
    check_generative(
        lambda: build_generative_cluster(
            SPEC, 2, balancer="least_work_left", max_batch_size=2,
            autoscaler=PredictiveAutoscaler(window_ms=200.0, cooldown_ms=250.0,
                                            provision_delay_ms=60.0,
                                            service_time_ms=110.0),
            min_replicas=1, max_replicas=5),
        bursty_workload())


def test_generative_ttft_shedding_matches_seed():
    check_generative(
        lambda: build_generative_cluster(SPEC, 2, balancer="round_robin",
                                         max_batch_size=2, ttft_slo_ms=60.0),
        bursty_workload())


def test_generative_heterogeneous_profiles_match_seed():
    check_generative(
        lambda: build_generative_cluster(SPEC, 3,
                                         balancer="weighted_round_robin",
                                         max_batch_size=2,
                                         profiles=[2.0, 1.0, 0.5]),
        bursty_workload())


# -------------------------------------------------------------- disaggregated

def assert_disagg_equal(a, b):
    assert_generative_equal(a, b)
    assert a.prefill_dispatch_counts == b.prefill_dispatch_counts
    assert a.prefill_counts == b.prefill_counts
    assert a.prefill_token_counts == b.prefill_token_counts
    assert a.prefill_fleet_timeline == b.prefill_fleet_timeline
    assert a.prefill_replica_seconds == b.prefill_replica_seconds
    assert a.prefill_active_ms == b.prefill_active_ms
    assert a.prefill_uptimes_ms == b.prefill_uptimes_ms
    assert a.prefill_delays_ms == b.prefill_delays_ms
    assert a.transfer_delays_ms == b.transfer_delays_ms


def check_disagg(platform_fn, workload):
    seed_m = seed_disagg_run(platform_fn(), workload, vanilla_factory)
    kern_m = platform_fn().run(workload, vanilla_factory)
    assert_disagg_equal(seed_m, kern_m)


@pytest.mark.parametrize("prefill_balancer,decode_balancer",
                         [("round_robin", "round_robin"),
                          ("least_work_left", "join_shortest_queue"),
                          ("power_of_two_choices", "power_of_two_choices")])
def test_disagg_static_pools_match_seed(prefill_balancer, decode_balancer):
    check_disagg(
        lambda: build_disaggregated_platform(
            "t5-large", prefill_replicas=2, decode_replicas=3,
            prefill_balancer=prefill_balancer, decode_balancer=decode_balancer,
            max_batch_size=2, prefill_batch=3, seed=6),
        bursty_workload(seed=9, prompts=True))


def test_disagg_heterogeneous_pools_match_seed():
    check_disagg(
        lambda: build_disaggregated_platform(
            "t5-large", prefill_replicas=3, decode_replicas=3,
            max_batch_size=2, prefill_batch=2,
            prefill_profiles=[2.0, 1.0, 0.5], decode_profiles=[1.5, 1.0, 0.75]),
        bursty_workload(seed=9, prompts=True))


def test_disagg_autoscaled_pools_match_seed():
    check_disagg(
        lambda: build_disaggregated_platform(
            "t5-large", prefill_replicas=1, decode_replicas=2,
            max_batch_size=2, prefill_batch=2,
            prefill_autoscaler=ReactiveAutoscaler(scale_out_load=2.0,
                                                  scale_in_load=0.3,
                                                  cooldown_ms=250.0,
                                                  provision_delay_ms=60.0),
            decode_autoscaler=ReactiveAutoscaler(scale_out_load=2.5,
                                                 scale_in_load=0.4,
                                                 cooldown_ms=300.0,
                                                 provision_delay_ms=80.0),
            prefill_min_replicas=1, prefill_max_replicas=4,
            decode_min_replicas=1, decode_max_replicas=5),
        bursty_workload(seed=9, prompts=True))


def test_disagg_ttft_shedding_matches_seed():
    check_disagg(
        lambda: build_disaggregated_platform(
            "t5-large", prefill_replicas=1, decode_replicas=2,
            max_batch_size=2, prefill_batch=2, ttft_slo_ms=120.0),
        bursty_workload(seed=9, prompts=True))


# --------------------------------------------------- autoscaler fix regressions

class _FakeHandle:
    """Minimal replica handle: fixed load signals + a profiled platform."""

    class _Platform:
        max_batch_size = 1

        @staticmethod
        def predicted_batch_time_ms(batch_size):
            return 10.0  # 100 qps per replica

    class _Profile:
        speed = 1.0

    platform = _Platform()
    profile = _Profile()

    def __init__(self, jobs=0.0, work_left=0.0):
        self._jobs = jobs
        self._work_left = work_left

    def jobs_in_system(self, now_ms):
        return self._jobs

    def work_left_ms(self, now_ms):
        return self._work_left


def test_predictive_ewma_decays_during_arrival_lull():
    scaler = PredictiveAutoscaler(alpha=0.5, window_ms=100.0, cooldown_ms=0.0,
                                  target_utilization=1.0)
    scaler.reset()
    scaler.set_bounds(1, 10)
    handles = [_FakeHandle()] * 2
    # Sustained 500 qps: 50 admissions per 100 ms window.
    for window in range(10):
        scaler.observe_admitted(50, 100.0 * window)
    peak = scaler.desired_replicas(1000.0, handles)
    assert peak >= 4  # ~500 qps over 100-qps replicas
    # A long lull: no admission waves at all.  The estimate must decay via
    # the idle windows folded inside desired_replicas, not stay frozen at
    # the pre-lull rate.
    decayed = scaler.desired_replicas(2000.0, handles)
    assert decayed < peak
    assert scaler.desired_replicas(10_000.0, handles) == 1


def test_reactive_cooldown_not_burned_at_max_replicas():
    scaler = ReactiveAutoscaler(scale_out_load=2.0, scale_in_load=0.5,
                                cooldown_ms=1000.0, provision_delay_ms=10.0)
    scaler.reset()
    scaler.set_bounds(1, 2)
    overloaded = [_FakeHandle(jobs=5.0)] * 2
    # Overloaded at the max-replica boundary: the proposal is clamped to a
    # no-op by the platform, so it must not consume the cooldown.
    assert scaler.desired_replicas(0.0, overloaded) == 3
    idle = [_FakeHandle(jobs=0.0)] * 2
    # Load collapses 100 ms later: the scale-in must fire immediately
    # instead of waiting out a cooldown burned on the clamped proposal.
    assert scaler.desired_replicas(100.0, idle) == 1
    # That genuine action does consume the cooldown.
    assert scaler.desired_replicas(200.0, idle) == 2


def test_reactive_cooldown_not_burned_at_min_replicas():
    scaler = ReactiveAutoscaler(scale_out_load=2.0, scale_in_load=0.5,
                                cooldown_ms=1000.0, provision_delay_ms=10.0)
    scaler.reset()
    scaler.set_bounds(2, 6)
    idle = [_FakeHandle(jobs=0.0)] * 2
    assert scaler.desired_replicas(0.0, idle) == 1  # clamped no-op
    overloaded = [_FakeHandle(jobs=5.0)] * 2
    assert scaler.desired_replicas(100.0, overloaded) == 3


def test_disagg_scale_out_cycles_configured_profiles():
    platform = build_disaggregated_platform(
        "t5-large", prefill_replicas=2, decode_replicas=2, max_batch_size=2,
        prefill_profiles=[2.0, 1.0], decode_profiles=[1.5, 0.5])

    prefill_fleet = PrefillFleetState()
    for profile in platform.prefill_profiles:
        prefill_fleet.add(platform.prefill_model, profile,
                          platform.prefill_batch, 1.0, 0.0)
    decode_fleet = GenerativeFleetState()
    for engine, profile in zip(platform.decode_engines,
                               platform.decode_profiles):
        decode_fleet.add(engine, vanilla_factory(decode_fleet.next_ordinal()),
                         profile, 1.0, 0.0)

    # Scaled-out replicas must carry the configured profile band, cycling
    # through it, instead of booting default base-speed hardware.
    speeds = []
    for _ in range(4):
        entry = platform._add_prefill(prefill_fleet, vanilla_factory,
                                      1.0, 1.0, 10.0)
        speeds.append(entry.profile.speed)
    assert speeds == [2.0, 1.0, 2.0, 1.0]

    speeds = []
    for _ in range(4):
        entry = platform._add_decode(decode_fleet, vanilla_factory,
                                     1.0, 1.0, 10.0)
        speeds.append(entry.profile.speed)
    assert speeds == [1.5, 0.5, 1.5, 0.5]
