"""EventQueue compaction: heap length stays bounded under heavy re-arming."""

from repro.serving.kernel import EventQueue


def test_rearm_heavy_trace_keeps_heap_bounded():
    # The tfserve-timer pattern: every queue change cancels the armed timer
    # and pushes a replacement.  Lazy cancellation alone would grow the heap
    # to ~50k records here; compaction must keep it within a small multiple
    # of the live count (1 live event + the compaction hysteresis).
    queue = EventQueue()
    timer = queue.push(10.0, kind=0)
    for i in range(50_000):
        queue.cancel(timer)
        timer = queue.push(10.0 + i * 0.1, kind=0)
    assert len(queue) <= 4 * EventQueue.COMPACT_MIN
    assert queue.next_time() == timer.time_ms


def test_compaction_preserves_pop_order():
    # Interleave pushes and cancellations so several compactions fire, then
    # check the survivors drain in exactly (time_ms, seq) order.
    queue = EventQueue()
    live = []
    handles = []
    for i in range(2_000):
        # Deterministic pseudo-shuffle of times; ties exercise seq ordering.
        event = queue.push((i * 37) % 211, kind=0, payload=i)
        handles.append(event)
        if i % 3 != 0:
            queue.cancel(handles[(i * 17) % len(handles)])
    expected = sorted((e for e in handles if not e.cancelled),
                      key=lambda e: (e.time_ms, e.seq))
    live = [e for e in handles if not e.cancelled]
    assert len(queue) < len(handles)          # compaction actually ran
    drained = []
    while True:
        t = queue.next_time()
        if t is None:
            break
        drained.extend(queue.pop_due(t))
    assert drained == expected
    assert len(drained) == len(live)


def test_double_cancel_counts_once():
    queue = EventQueue()
    events = [queue.push(float(i), kind=0) for i in range(10)]
    for _ in range(5):
        queue.cancel(events[0])
    assert queue._cancelled == 1
    assert queue.next_time() == 1.0


def test_small_heaps_never_compact():
    # Below COMPACT_MIN the rebuild would cost more than lazy skipping saves.
    queue = EventQueue()
    events = [queue.push(float(i), kind=0) for i in range(10)]
    for event in events:
        queue.cancel(event)
    assert len(queue) == 10                    # all dead, none reclaimed yet
    assert queue.next_time() is None           # drained lazily as usual
    assert len(queue) == 0
