"""Tests for the multi-tenant serving package: spec validation boundaries,
CLI parsing, dispatch-rank stamping (weighted-fair and strict-priority),
tenant assignment, and the per-tenant rollups the platforms report."""

import dataclasses

import numpy as np
import pytest

from repro.api.specs import ClusterSpec
from repro.serving.cluster import ClusterPlatform
from repro.serving.platform import BatchResult
from repro.serving.request import Request
from repro.serving.tfserve import TFServingPlatform
from repro.tenancy import (TENANT_POLICIES, TenancyConfig, TenantSpec,
                           build_request_runtime, build_sequence_runtime,
                           coerce_tenancy, isolation_ratios, parse_tenants)
from repro.workloads.difficulty import InputSample


# ------------------------------------------------------------ spec validation

def test_tenant_spec_defaults():
    spec = TenantSpec(name="chat")
    assert spec.weight == 1.0
    assert spec.share is None
    assert spec.priority == "interactive"
    assert spec.allow_exits is True
    assert spec.class_rank == 0
    assert TenantSpec(name="b", priority="batch").class_rank == 1


@pytest.mark.parametrize("kwargs, match", [
    ({"name": ""}, "non-empty string"),
    ({"name": 7}, "non-empty string"),
    ({"name": "t", "weight": 0.0}, "weight must be positive"),
    ({"name": "t", "weight": -2.0}, "weight must be positive"),
    ({"name": "t", "weight": float("inf")}, "weight must be finite"),
    ({"name": "t", "weight": float("nan")}, "weight must be finite"),
    ({"name": "t", "share": 0.0}, r"share must be in \(0, 1\]"),
    ({"name": "t", "share": 1.5}, r"share must be in \(0, 1\]"),
    ({"name": "t", "priority": "urgent"}, "priority must be one of"),
    ({"name": "t", "slo_ms": 0.0}, "slo_ms must be positive"),
    ({"name": "t", "slo_ms": -10.0}, "slo_ms must be positive"),
    ({"name": "t", "ttft_slo_ms": -1.0}, "ttft_slo_ms must be >= 0"),
    ({"name": "t", "allow_exits": "yes"}, "allow_exits must be a bool"),
])
def test_tenant_spec_rejects_bad_values(kwargs, match):
    with pytest.raises(ValueError, match=match):
        TenantSpec(**kwargs)


def test_tenant_spec_boundary_values_accepted():
    assert TenantSpec(name="t", share=1.0).share == 1.0
    # ttft 0 is the documented "shedding disabled" spelling, not an error.
    assert TenantSpec(name="t", ttft_slo_ms=0.0).ttft_slo_ms == 0.0


def test_tenancy_config_validation():
    a, b = TenantSpec(name="a"), TenantSpec(name="b")
    with pytest.raises(ValueError, match="at least one tenant"):
        TenancyConfig(tenants=())
    with pytest.raises(ValueError, match="must be TenantSpec"):
        TenancyConfig(tenants=(a, "b"))
    with pytest.raises(ValueError, match="names must be unique"):
        TenancyConfig(tenants=(a, TenantSpec(name="a")))
    with pytest.raises(ValueError, match="tenant_policy must be one of"):
        TenancyConfig(tenants=(a, b), policy="fifo")
    with pytest.raises(ValueError, match="shares sum to"):
        TenancyConfig(tenants=(TenantSpec(name="a", share=0.8),
                               TenantSpec(name="b", share=0.8)))
    with pytest.raises(ValueError, match="must be 1 when all"):
        TenancyConfig(tenants=(TenantSpec(name="a", share=0.5),
                               TenantSpec(name="b", share=0.3)))
    with pytest.raises(ValueError, match="leave no traffic"):
        TenancyConfig(tenants=(TenantSpec(name="a", share=1.0), b))


def test_resolved_shares_split_remainder():
    config = TenancyConfig(tenants=(TenantSpec(name="a", share=0.5),
                                    TenantSpec(name="b"),
                                    TenantSpec(name="c")))
    shares = config.resolved_shares()
    assert shares == pytest.approx({"a": 0.5, "b": 0.25, "c": 0.25})
    assert sum(shares.values()) == pytest.approx(1.0)


# ------------------------------------------------------------------- parsing

def test_parse_tenants_full_clause():
    config = parse_tenants("chat:weight=4,slo=80,ttft=400;"
                           "batch:priority=batch,exits=false,share=0.2",
                           policy="strict_priority")
    assert config.policy == "strict_priority"
    chat, batch = config.tenants
    assert chat.name == "chat" and chat.weight == 4.0
    assert chat.slo_ms == 80.0 and chat.ttft_slo_ms == 400.0
    assert batch.priority == "batch" and not batch.allow_exits
    assert batch.share == 0.2
    assert "chat" in config.describe() and "strict_priority" in config.describe()


@pytest.mark.parametrize("text, match", [
    ("", "could not parse any tenants"),
    (";;", "could not parse any tenants"),
    ("chat:weight", "expected key=value"),
    ("chat:speed=3", "unknown key 'speed'"),
    ("chat:exits=maybe", "exits must be a boolean"),
])
def test_parse_tenants_rejects_bad_strings(text, match):
    with pytest.raises(ValueError, match=match):
        parse_tenants(text)


def test_coerce_tenancy_spellings():
    assert coerce_tenancy(None) is None
    config = TenancyConfig(tenants=(TenantSpec(name="a"),))
    assert coerce_tenancy(config) is config
    rewrapped = coerce_tenancy(config, policy="strict_priority")
    assert rewrapped.policy == "strict_priority"
    assert coerce_tenancy("a;b").names == ("a", "b")
    assert coerce_tenancy([TenantSpec(name="a")]).names == ("a",)
    with pytest.raises(ValueError, match="tenants must be"):
        coerce_tenancy(42)


def test_cluster_spec_validates_tenant_knobs():
    with pytest.raises(ValueError, match="tenant_policy must be one of"):
        ClusterSpec(tenant_policy="fifo")
    spec = ClusterSpec(tenants="a:weight=2;b", tenant_policy="strict_priority")
    assert spec.tenants.policy == "strict_priority"
    assert "tenants" in spec.describe()


# ------------------------------------------------------- ranks and assignment

def _sample(i):
    return InputSample(index=i, raw_difficulty=0.3, sharpness=0.05,
                       confidence_shift=0.0)


def _requests(n, tenant=None):
    return [Request(request_id=i, arrival_ms=float(i), sample=_sample(i),
                    slo_ms=1000.0, tenant=tenant or "default")
            for i in range(n)]


def test_strict_priority_ranks_interactive_before_batch():
    config = parse_tenants("fg;bg:priority=batch", policy="strict_priority")
    requests = [dataclasses.replace(r, tenant="fg" if i % 2 == 0 else "bg")
                for i, r in enumerate(_requests(10))]
    tagged, runtime = build_request_runtime(requests, config, seed=0)
    for request in tagged:
        assert request.rank == (0.0 if request.tenant == "fg" else 1.0)
    ordered = sorted(tagged, key=lambda r: (r.rank, r.arrival_ms, r.request_id))
    assert [r.tenant for r in ordered[:5]] == ["fg"] * 5


def test_weighted_fair_ranks_split_service_by_weight():
    """With both tenants backlogged, a 4:1 weight split serves ~4:1."""
    config = parse_tenants("heavy:weight=4;light:weight=1")
    requests = [dataclasses.replace(r, tenant="heavy" if i % 2 == 0 else "light")
                for i, r in enumerate(_requests(100))]
    tagged, runtime = build_request_runtime(requests, config, seed=0)
    ordered = sorted(tagged, key=lambda r: (r.rank, r.arrival_ms, r.request_id))
    head = [r.tenant for r in ordered[:50]]
    assert head.count("heavy") >= 35   # ~4:1 of the interleaved backlog


def test_pre_tagged_items_keep_their_tenant():
    config = parse_tenants("a;b")
    requests = _requests(20, tenant="b")
    tagged, runtime = build_request_runtime(requests, config, seed=0)
    assert all(r.tenant == "b" for r in tagged)
    assert runtime.counts == {"a": 0, "b": 20}


def test_tenant_assignment_follows_shares_and_is_seeded():
    config = parse_tenants("a:share=0.9;b:share=0.1")
    first = build_request_runtime(_requests(500), config, seed=7)[1]
    second = build_request_runtime(_requests(500), config, seed=7)[1]
    assert first.tenant_of == second.tenant_of
    assert first.counts["a"] > 400


def test_request_runtime_applies_slo_and_exit_overrides():
    config = parse_tenants("gold:slo=50;pinned:exits=false")
    tagged, runtime = build_request_runtime(_requests(200), config, seed=0)
    for request in tagged:
        if request.tenant == "gold":
            assert request.slo_ms == 50.0
        else:
            assert request.slo_ms == 1000.0
            assert request.request_id in runtime.no_exit_ids


def test_sequence_runtime_resolves_ttft_overrides():
    class Seq:
        def __init__(self, i):
            self.sequence_id = i
            self.arrival_ms = float(i)
            self.tenant = "strict" if i % 2 == 0 else "loose"

    config = parse_tenants("strict:ttft=200;loose:ttft=0")
    runtime = build_sequence_runtime([Seq(i) for i in range(10)], config, seed=0)
    for i in range(10):
        if i % 2 == 0:
            assert runtime.ttft_of[i] == 200.0
        else:
            assert runtime.ttft_of[i] is None   # 0 disables shedding


def test_untenanted_fast_path_returns_inputs_unchanged():
    requests = _requests(5)
    tagged, runtime = build_request_runtime(requests, None, seed=0)
    assert tagged == requests
    assert runtime is None
    assert build_sequence_runtime([], None, seed=0) is None


def test_reposition_keeps_fifo_for_equal_ranks():
    class Seq:
        def __init__(self, i, t):
            self.sequence_id = i
            self.arrival_ms = t

    config = parse_tenants("only")
    runtime = build_sequence_runtime([], config, seed=0)
    queue = []
    for i in range(5):
        queue.append(Seq(i, float(i)))
        runtime.reposition(queue)
    assert [s.sequence_id for s in queue] == [0, 1, 2, 3, 4]


# ------------------------------------------------------------------- rollups

def _executor(batch, batch_start_ms):
    return BatchResult(gpu_time_ms=8.0, result_offsets_ms=[8.0] * len(batch))


def test_cluster_reports_per_tenant_rollups():
    platforms = [TFServingPlatform(max_batch_size=4) for _ in range(2)]
    cluster = ClusterPlatform(platforms, balancer="round_robin",
                              tenancy="a:weight=3;b:weight=1")
    metrics = cluster.run(_requests(100), _executor)
    rollups = metrics.tenant_rollups
    assert set(rollups) == {"a", "b"}
    assert sum(stats["requests"] for stats in rollups.values()) == 100
    for stats in rollups.values():
        assert {"served", "p99_ms", "slo_attainment",
                "goodput_qps"} <= set(stats)


def test_untenanted_run_reports_no_rollups():
    platforms = [TFServingPlatform(max_batch_size=4) for _ in range(2)]
    cluster = ClusterPlatform(platforms, balancer="round_robin")
    metrics = cluster.run(_requests(50), _executor)
    assert metrics.tenant_rollups == {}


def test_isolation_ratios():
    mixed = {"a": {"p99_ms": 30.0}, "b": {"p99_ms": 90.0}}
    solo = {"a": {"p99_ms": 25.0}, "b": {"p99_ms": 0.0}}
    ratios = isolation_ratios(mixed, solo)
    assert ratios == pytest.approx({"a": 1.2})   # zero solo baselines skipped


def test_tenant_policies_tuple_is_the_public_contract():
    assert TENANT_POLICIES == ("weighted_fair", "strict_priority")
