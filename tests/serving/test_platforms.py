"""Tests for the classification serving platforms (Clockwork / TF-Serving)."""

import numpy as np
import pytest

from repro.core.pipeline import model_stack
from repro.serving.clockwork import ClockworkPlatform
from repro.serving.platform import BatchResult, VanillaExecutor
from repro.serving.request import make_requests
from repro.serving.tfserve import TFServingPlatform
from repro.workloads.difficulty import DifficultyTrace
from repro.workloads.arrivals import fixed_rate_arrivals
from repro.workloads.video import make_video_workload


@pytest.fixture(scope="module")
def stack():
    return model_stack("resnet50", seed=0)


def burst_requests(stack, n=32, slo_ms=60.0):
    """All requests arrive at time zero (forces batching decisions)."""
    trace = DifficultyTrace(name="burst", raw_difficulty=np.full(n, 0.3),
                            sharpness=np.full(n, 0.05))
    return make_requests(trace, np.zeros(n), slo_ms)


def paced_requests(stack, n=64, rate_qps=30.0, slo_ms=32.8):
    trace = DifficultyTrace(name="paced", raw_difficulty=np.full(n, 0.3),
                            sharpness=np.full(n, 0.05))
    return make_requests(trace, fixed_rate_arrivals(n, rate_qps), slo_ms)


def test_clockwork_selects_largest_slo_compliant_batch(stack):
    spec, profile, _pred, _cat, executor = stack
    platform = ClockworkPlatform(profile, max_batch_size=16, drop_expired=False)
    metrics = platform.run(burst_requests(stack, n=32, slo_ms=1000.0), VanillaExecutor(executor))
    # With a very loose SLO the first batch should be the full max size.
    assert metrics.average_batch_size() > 8


def test_clockwork_small_batches_under_tight_slo(stack):
    spec, profile, _pred, _cat, executor = stack
    platform = ClockworkPlatform(profile, max_batch_size=16, drop_expired=False)
    metrics = platform.run(burst_requests(stack, n=32, slo_ms=spec.bs1_latency_ms * 1.2),
                           VanillaExecutor(executor))
    assert metrics.average_batch_size() < 4


def test_clockwork_serves_every_request_without_drops(stack):
    spec, profile, _pred, _cat, executor = stack
    platform = ClockworkPlatform(profile, max_batch_size=16, drop_expired=False)
    requests = paced_requests(stack, n=64)
    metrics = platform.run(requests, VanillaExecutor(executor))
    assert len(metrics.served()) == 64
    assert metrics.drop_rate() == 0.0


def test_clockwork_drops_expired_requests_under_overload(stack):
    spec, profile, _pred, _cat, executor = stack
    platform = ClockworkPlatform(profile, max_batch_size=2, drop_expired=True)
    # Arrivals far above capacity with a tight SLO: some requests must expire.
    requests = paced_requests(stack, n=200, rate_qps=200.0, slo_ms=spec.default_slo_ms)
    metrics = platform.run(requests, VanillaExecutor(executor))
    assert metrics.drop_rate() > 0.0
    assert len(metrics.responses) == 200


def test_latencies_include_queueing(stack):
    spec, profile, _pred, _cat, executor = stack
    platform = ClockworkPlatform(profile, max_batch_size=4, drop_expired=False)
    metrics = platform.run(burst_requests(stack, n=16, slo_ms=10_000.0),
                           VanillaExecutor(executor))
    latencies = sorted(r.latency_ms for r in metrics.served())
    # Later batches wait behind earlier ones, so latency spreads out.
    assert latencies[-1] > latencies[0] * 2


def test_tfserve_full_batch_dispatch(stack):
    spec, profile, _pred, _cat, executor = stack
    platform = TFServingPlatform(max_batch_size=8, batch_timeout_ms=50.0)
    metrics = platform.run(burst_requests(stack, n=16, slo_ms=10_000.0),
                           VanillaExecutor(executor))
    assert metrics.average_batch_size() == pytest.approx(8.0)


def test_tfserve_timeout_flushes_partial_batch(stack):
    spec, profile, _pred, _cat, executor = stack
    platform = TFServingPlatform(max_batch_size=64, batch_timeout_ms=5.0)
    requests = paced_requests(stack, n=20, rate_qps=30.0, slo_ms=1000.0)
    metrics = platform.run(requests, VanillaExecutor(executor))
    assert len(metrics.served()) == 20
    assert metrics.average_batch_size() < 64


def test_tfserve_larger_max_batch_trades_latency_for_throughput(stack):
    """Figure 2: bigger batches help throughput but hurt per-request latency."""
    spec, profile, _pred, _cat, executor = stack
    requests = paced_requests(stack, n=300, rate_qps=120.0, slo_ms=10_000.0)
    small = TFServingPlatform(max_batch_size=2, batch_timeout_ms=2.0).run(
        requests, VanillaExecutor(executor))
    large = TFServingPlatform(max_batch_size=16, batch_timeout_ms=2.0).run(
        requests, VanillaExecutor(executor))
    assert large.average_batch_size() > small.average_batch_size()
    assert large.throughput_qps() >= small.throughput_qps() * 0.95


def test_invalid_parameters_rejected(stack):
    _spec, profile, _pred, _cat, _exec = stack
    with pytest.raises(ValueError):
        ClockworkPlatform(profile, max_batch_size=0)
    with pytest.raises(ValueError):
        TFServingPlatform(batch_timeout_ms=-1.0)


def test_empty_request_list(stack):
    _spec, profile, _pred, _cat, executor = stack
    platform = ClockworkPlatform(profile)
    metrics = platform.run([], VanillaExecutor(executor))
    assert len(metrics.responses) == 0


def test_batch_result_defaults():
    result = BatchResult(gpu_time_ms=5.0, result_offsets_ms=[5.0, 5.0])
    assert result.exited == [False, False]
    assert result.exit_depths == [None, None]
    assert result.correct == [True, True]


def test_batch_result_rejects_mismatched_lengths():
    with pytest.raises(ValueError, match="exited"):
        BatchResult(gpu_time_ms=5.0, result_offsets_ms=[5.0, 5.0],
                    exited=[True])
    with pytest.raises(ValueError, match="exit_depths"):
        BatchResult(gpu_time_ms=5.0, result_offsets_ms=[5.0, 5.0],
                    exit_depths=[0.5, 0.5, 0.5])
    with pytest.raises(ValueError, match="correct"):
        BatchResult(gpu_time_ms=5.0, result_offsets_ms=[5.0, 5.0],
                    correct=[True, False, True])


def test_batch_result_accepts_matching_lengths():
    result = BatchResult(gpu_time_ms=5.0, result_offsets_ms=[3.0, 5.0],
                         exited=[True, False], exit_depths=[0.4, None],
                         correct=[True, True])
    assert result.exited == [True, False]


# ------------------------------------------------------- run-loop regressions

class LazyPlatform(ClockworkPlatform):
    """Policy that always asks to wait 'until now' despite a non-empty queue.

    The contract forbids this (empty batch with ``wake_up <= now``), so the
    run loop's forced-progress guard must serve the queue anyway instead of
    livelocking.
    """

    def select_batch(self, queue, now_ms):
        return [], now_ms


class SleepyPlatform(ClockworkPlatform):
    """Policy that always asks to wait forever."""

    def select_batch(self, queue, now_ms):
        return [], float("inf")


@pytest.mark.parametrize("platform_cls", [LazyPlatform, SleepyPlatform])
def test_forced_progress_serves_stalling_policies(stack, platform_cls):
    _spec, profile, _pred, _cat, executor = stack
    platform = platform_cls(profile, max_batch_size=4, drop_expired=False)
    requests = paced_requests(stack, n=24, rate_qps=50.0, slo_ms=10_000.0)
    metrics = platform.run(requests, VanillaExecutor(executor))
    assert len(metrics.served()) == 24
    assert metrics.drop_rate() == 0.0
    # Forced batches are capped at max_batch_size.
    assert all(r.batch_size <= 4 for r in metrics.served())


def test_forced_progress_on_burst_with_infinite_wait(stack):
    _spec, profile, _pred, _cat, executor = stack
    platform = SleepyPlatform(profile, max_batch_size=8, drop_expired=False)
    metrics = platform.run(burst_requests(stack, n=20, slo_ms=10_000.0),
                           VanillaExecutor(executor))
    assert len(metrics.served()) == 20


def test_drop_expired_counts_each_request_exactly_once(stack):
    spec, profile, _pred, _cat, executor = stack
    platform = ClockworkPlatform(profile, max_batch_size=2, drop_expired=True)
    requests = paced_requests(stack, n=150, rate_qps=300.0, slo_ms=spec.default_slo_ms)
    metrics = platform.run(requests, VanillaExecutor(executor))
    # Overloaded: some requests expire, but every request is answered exactly
    # once and a dropped request is never also served.
    assert metrics.drop_rate() > 0.0
    ids = sorted(r.request_id for r in metrics.responses)
    assert ids == list(range(150))
    dropped = {r.request_id for r in metrics.dropped()}
    served = {r.request_id for r in metrics.served()}
    assert dropped.isdisjoint(served)
    for response in metrics.dropped():
        assert response.batch_size == 0
        assert response.serving_ms == 0.0


def test_completed_batch_is_removed_from_queue_state(stack):
    """The steppable phases keep queue/responded bookkeeping consistent."""
    _spec, profile, _pred, _cat, executor = stack
    platform = ClockworkPlatform(profile, max_batch_size=4, drop_expired=False)
    state = platform.new_state()
    requests = burst_requests(stack, n=6, slo_ms=10_000.0)
    for request in requests:
        platform.admit(state, request)
    batch, _wake = platform.select(state, 0.0)
    assert batch
    platform.dispatch(state, batch)
    assert len(state.queue) == 6 - len(batch)
    result = VanillaExecutor(executor)(batch, 0.0)
    platform.complete(state, batch, result, 0.0)
    assert state.busy_until_ms == pytest.approx(result.gpu_time_ms)
    assert state.serving_batch_size == len(batch)
    # Serving the same batch again must trip the conservation guard.
    with pytest.raises(RuntimeError, match="answered twice"):
        platform.complete(state, batch, result, 0.0)
