"""Tests for the classification serving platforms (Clockwork / TF-Serving)."""

import numpy as np
import pytest

from repro.core.pipeline import model_stack
from repro.serving.clockwork import ClockworkPlatform
from repro.serving.platform import BatchResult, VanillaExecutor
from repro.serving.request import make_requests
from repro.serving.tfserve import TFServingPlatform
from repro.workloads.difficulty import DifficultyTrace
from repro.workloads.arrivals import fixed_rate_arrivals
from repro.workloads.video import make_video_workload


@pytest.fixture(scope="module")
def stack():
    return model_stack("resnet50", seed=0)


def burst_requests(stack, n=32, slo_ms=60.0):
    """All requests arrive at time zero (forces batching decisions)."""
    trace = DifficultyTrace(name="burst", raw_difficulty=np.full(n, 0.3),
                            sharpness=np.full(n, 0.05))
    return make_requests(trace, np.zeros(n), slo_ms)


def paced_requests(stack, n=64, rate_qps=30.0, slo_ms=32.8):
    trace = DifficultyTrace(name="paced", raw_difficulty=np.full(n, 0.3),
                            sharpness=np.full(n, 0.05))
    return make_requests(trace, fixed_rate_arrivals(n, rate_qps), slo_ms)


def test_clockwork_selects_largest_slo_compliant_batch(stack):
    spec, profile, _pred, _cat, executor = stack
    platform = ClockworkPlatform(profile, max_batch_size=16, drop_expired=False)
    metrics = platform.run(burst_requests(stack, n=32, slo_ms=1000.0), VanillaExecutor(executor))
    # With a very loose SLO the first batch should be the full max size.
    assert metrics.average_batch_size() > 8


def test_clockwork_small_batches_under_tight_slo(stack):
    spec, profile, _pred, _cat, executor = stack
    platform = ClockworkPlatform(profile, max_batch_size=16, drop_expired=False)
    metrics = platform.run(burst_requests(stack, n=32, slo_ms=spec.bs1_latency_ms * 1.2),
                           VanillaExecutor(executor))
    assert metrics.average_batch_size() < 4


def test_clockwork_serves_every_request_without_drops(stack):
    spec, profile, _pred, _cat, executor = stack
    platform = ClockworkPlatform(profile, max_batch_size=16, drop_expired=False)
    requests = paced_requests(stack, n=64)
    metrics = platform.run(requests, VanillaExecutor(executor))
    assert len(metrics.served()) == 64
    assert metrics.drop_rate() == 0.0


def test_clockwork_drops_expired_requests_under_overload(stack):
    spec, profile, _pred, _cat, executor = stack
    platform = ClockworkPlatform(profile, max_batch_size=2, drop_expired=True)
    # Arrivals far above capacity with a tight SLO: some requests must expire.
    requests = paced_requests(stack, n=200, rate_qps=200.0, slo_ms=spec.default_slo_ms)
    metrics = platform.run(requests, VanillaExecutor(executor))
    assert metrics.drop_rate() > 0.0
    assert len(metrics.responses) == 200


def test_latencies_include_queueing(stack):
    spec, profile, _pred, _cat, executor = stack
    platform = ClockworkPlatform(profile, max_batch_size=4, drop_expired=False)
    metrics = platform.run(burst_requests(stack, n=16, slo_ms=10_000.0),
                           VanillaExecutor(executor))
    latencies = sorted(r.latency_ms for r in metrics.served())
    # Later batches wait behind earlier ones, so latency spreads out.
    assert latencies[-1] > latencies[0] * 2


def test_tfserve_full_batch_dispatch(stack):
    spec, profile, _pred, _cat, executor = stack
    platform = TFServingPlatform(max_batch_size=8, batch_timeout_ms=50.0)
    metrics = platform.run(burst_requests(stack, n=16, slo_ms=10_000.0),
                           VanillaExecutor(executor))
    assert metrics.average_batch_size() == pytest.approx(8.0)


def test_tfserve_timeout_flushes_partial_batch(stack):
    spec, profile, _pred, _cat, executor = stack
    platform = TFServingPlatform(max_batch_size=64, batch_timeout_ms=5.0)
    requests = paced_requests(stack, n=20, rate_qps=30.0, slo_ms=1000.0)
    metrics = platform.run(requests, VanillaExecutor(executor))
    assert len(metrics.served()) == 20
    assert metrics.average_batch_size() < 64


def test_tfserve_larger_max_batch_trades_latency_for_throughput(stack):
    """Figure 2: bigger batches help throughput but hurt per-request latency."""
    spec, profile, _pred, _cat, executor = stack
    requests = paced_requests(stack, n=300, rate_qps=120.0, slo_ms=10_000.0)
    small = TFServingPlatform(max_batch_size=2, batch_timeout_ms=2.0).run(
        requests, VanillaExecutor(executor))
    large = TFServingPlatform(max_batch_size=16, batch_timeout_ms=2.0).run(
        requests, VanillaExecutor(executor))
    assert large.average_batch_size() > small.average_batch_size()
    assert large.throughput_qps() >= small.throughput_qps() * 0.95


def test_invalid_parameters_rejected(stack):
    _spec, profile, _pred, _cat, _exec = stack
    with pytest.raises(ValueError):
        ClockworkPlatform(profile, max_batch_size=0)
    with pytest.raises(ValueError):
        TFServingPlatform(batch_timeout_ms=-1.0)


def test_empty_request_list(stack):
    _spec, profile, _pred, _cat, executor = stack
    platform = ClockworkPlatform(profile)
    metrics = platform.run([], VanillaExecutor(executor))
    assert len(metrics.responses) == 0


def test_batch_result_defaults():
    result = BatchResult(gpu_time_ms=5.0, result_offsets_ms=[5.0, 5.0])
    assert result.exited == [False, False]
    assert result.exit_depths == [None, None]
    assert result.correct == [True, True]
