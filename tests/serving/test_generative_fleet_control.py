"""Tests for the generative fleet control plane: token-level early exits at
cluster scale, mirroring tests/serving/test_fleet_control.py — decode-work
balancing, drain/retire of in-flight streams, token conservation and
bit-identical determinism under autoscaling membership change."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.generative import (ApparateTokenPolicy,
                                   _resolve_generative_autoscaler,
                                   build_generative_cluster,
                                   generative_ramp_depths,
                                   run_generative_apparate,
                                   run_generative_vanilla,
                                   run_generative_vanilla_cluster)
from repro.generative.decoding import DecodeTimingModel
from repro.generative.sequences import GenerativeWorkload, SequenceSample
from repro.models.prediction import PredictionModel
from repro.models.zoo import get_model
from repro.serving.autoscaler import FixedAutoscaler, ReactiveAutoscaler
from repro.serving.generative_cluster import (GenerativeClusterMetrics,
                                              GenerativeClusterPlatform)
from repro.serving.hf_pipelines import (ContinuousBatchingEngine,
                                        GenerativeMetrics, VanillaTokenPolicy)

FAST = settings(max_examples=20, deadline=None)

SPEC = get_model("t5-large")


def make_sequence(seq_id, arrival_ms, tokens=6, difficulty=0.25):
    return SequenceSample(sequence_id=seq_id, arrival_ms=float(arrival_ms),
                          token_difficulty=np.full(tokens, float(difficulty)),
                          token_sharpness=np.full(tokens, 0.05))


def make_workload(arrivals, tokens=6):
    if np.isscalar(tokens):
        tokens = [tokens] * len(arrivals)
    return GenerativeWorkload(name="test", sequences=[
        make_sequence(i, t, tokens=n)
        for i, (t, n) in enumerate(zip(arrivals, tokens))])


def bursty_workload(tokens=6):
    """Low rate, a heavy burst, low rate again (decode steps are 18ms)."""
    times = (list(np.arange(0.0, 2000.0, 100.0))
             + list(np.arange(2000.0, 3200.0, 8.0))
             + list(np.arange(3200.0, 5000.0, 100.0)))
    return make_workload(times, tokens=tokens)


def elastic_cluster(initial=2, min_replicas=1, max_replicas=6,
                    autoscaler=None, balancer="join_shortest_queue",
                    max_batch_size=2, seed=0):
    scaler = autoscaler if autoscaler is not None else ReactiveAutoscaler(
        scale_out_load=2.5, scale_in_load=0.5, cooldown_ms=300.0,
        provision_delay_ms=100.0)
    return build_generative_cluster(SPEC, initial, balancer=balancer,
                                    max_batch_size=max_batch_size, seed=seed,
                                    autoscaler=scaler,
                                    min_replicas=min_replicas,
                                    max_replicas=max_replicas)


def vanilla_factory(ordinal):
    return VanillaTokenPolicy()


def token_multiset(metrics: GenerativeClusterMetrics) -> Counter:
    """(sequence_id, token_index) occurrences across every replica."""
    return Counter((t.sequence_id, t.token_index)
                   for replica in metrics.replicas for t in replica.tokens)


# ------------------------------------------------------------- construction

def test_cluster_validates_fleet_band_and_profiles():
    engine = ContinuousBatchingEngine(DecodeTimingModel(SPEC), max_batch_size=2)
    with pytest.raises(ValueError):
        GenerativeClusterPlatform([])
    with pytest.raises(ValueError):
        GenerativeClusterPlatform([engine, engine], min_replicas=0)
    with pytest.raises(ValueError):
        GenerativeClusterPlatform([engine, engine], min_replicas=3)
    with pytest.raises(ValueError):
        GenerativeClusterPlatform([engine, engine], max_replicas=1)
    with pytest.raises(ValueError):
        GenerativeClusterPlatform([engine, engine], profiles=[1.0])
    with pytest.raises(ValueError):   # zero-speed profile rejected at build
        GenerativeClusterPlatform([engine, engine], profiles=[1.0, 0.0])


def test_generative_autoscaler_resolution_scales_watermarks_to_slots():
    scaler = _resolve_generative_autoscaler("reactive", 8)
    assert isinstance(scaler, ReactiveAutoscaler)
    assert scaler.scale_out_load == pytest.approx(10.0)
    assert scaler.scale_in_load == pytest.approx(2.0)
    assert _resolve_generative_autoscaler("none", 8).name == "none"
    passthrough = ReactiveAutoscaler(scale_out_load=99.0)
    assert _resolve_generative_autoscaler(passthrough, 8) is passthrough
    assert _resolve_generative_autoscaler(None, 8) is None


# ------------------------------------------- single-replica engine equivalence

def test_single_replica_cluster_matches_the_engine(small_generative_workload):
    """A one-replica generative cluster is the continuous-batching engine:
    same token stream, same release cadence, same queueing delays."""
    single = run_generative_vanilla(SPEC, small_generative_workload)
    cluster = run_generative_vanilla_cluster(SPEC, small_generative_workload,
                                             replicas=1)
    merged = cluster.aggregate()
    assert len(merged.tokens) == len(single.tokens)
    assert merged.queueing_delays_ms == pytest.approx(single.queueing_delays_ms)
    np.testing.assert_allclose(merged.tpt_values(), single.tpt_values())
    assert merged.makespan_ms == pytest.approx(single.makespan_ms)


def test_single_replica_cluster_matches_engine_under_apparate(
        small_generative_workload):
    single = run_generative_apparate(SPEC, small_generative_workload, seed=4)
    from repro.core.generative import _generative_apparate_cluster_impl
    outcome = _generative_apparate_cluster_impl(SPEC, small_generative_workload,
                                                replicas=1, seed=4)
    merged = outcome.metrics.aggregate()
    assert len(merged.tokens) == len(single.metrics.tokens)
    assert merged.exit_rate() == pytest.approx(single.metrics.exit_rate())
    np.testing.assert_allclose(merged.tpt_values(),
                               single.metrics.tpt_values())


# ---------------------------------------------------------- work-aware costing

def test_work_left_costs_queues_by_tokens_not_requests():
    """One 60-token summary and five 4-token answers arrive together on two
    replicas.  ``least_work_left`` prices the queues in tokens and piles every
    cheap answer opposite the summary; ``join_shortest_queue`` counts requests
    and splits them evenly — the decode-work cost model is what differs."""
    workload = GenerativeWorkload(name="mix", sequences=(
        [make_sequence(0, 0.0, tokens=60)]
        + [make_sequence(1 + i, 0.0, tokens=4) for i in range(5)]))
    engine = ContinuousBatchingEngine(DecodeTimingModel(SPEC), max_batch_size=1)

    lwl = GenerativeClusterPlatform([engine, engine],
                                    balancer="least_work_left") \
        .run(workload, vanilla_factory)
    assert lwl.dispatch_counts == [1, 5]

    jsq = GenerativeClusterPlatform([engine, engine],
                                    balancer="join_shortest_queue") \
        .run(workload, vanilla_factory)
    assert jsq.dispatch_counts == [3, 3]
    assert token_multiset(lwl) == token_multiset(jsq)


def test_handle_exposes_decode_work_signals():
    engine = ContinuousBatchingEngine(DecodeTimingModel(SPEC), max_batch_size=2)
    cluster = GenerativeClusterPlatform([engine], balancer="round_robin")
    workload = make_workload([0.0, 0.0, 0.0], tokens=4)
    metrics = cluster.run(workload, vanilla_factory)
    # After the run the fleet is gone, but the handle math is exercised via
    # the balancer; sanity-check the standalone entry surface instead.
    from repro.serving.fleet import ReplicaProfile
    from repro.serving.generative_cluster import GenerativeReplicaEntry
    entry = GenerativeReplicaEntry(replica_id=0, engine=engine,
                                   policy=VanillaTokenPolicy(),
                                   profile=ReplicaProfile(), mean_tokens=4.0)
    handle = entry.handle
    assert handle.jobs_in_system(0.0) == 0
    assert handle.work_left_ms(0.0) == 0.0
    entry.queue.append(make_sequence(9, 0.0, tokens=4))
    entry.slots[0] = 100.0   # one stream decoding until t=100
    assert handle.jobs_in_system(0.0) == 2
    # 4 queued tokens x 18ms full step / 2 slots + 100ms backlog.
    assert handle.work_left_ms(0.0) == pytest.approx(100.0 + 4 * 18.0 / 2)
    assert handle.platform.max_batch_size == 2
    assert handle.platform.predicted_batch_time_ms(2) == pytest.approx(4 * 18.0)
    assert metrics.total_tokens() == 12


# ------------------------------------------------------------- fleet lifecycle

def test_draining_replica_finishes_streams_but_gets_no_new_dispatches():
    class DrainSecondAt(FixedAutoscaler):
        def __init__(self, at_ms):
            self.at_ms = at_ms
            self.fired = False

        def reset(self):
            self.fired = False

        def desired_replicas(self, now_ms, replicas):
            if not self.fired and now_ms >= self.at_ms:
                self.fired = True
                return len(replicas) - 1
            return len(replicas)

    cluster = elastic_cluster(initial=2, min_replicas=1, max_replicas=2,
                              autoscaler=DrainSecondAt(500.0),
                              balancer="round_robin")
    workload = make_workload(np.arange(0.0, 4000.0, 40.0))
    metrics = cluster.run(workload, vanilla_factory)
    # Token conservation: the drained replica finished everything it held.
    assert token_multiset(metrics) == Counter(
        {(s.sequence_id, i): 1 for s in workload.sequences
         for i in range(s.num_tokens)})
    # The drained replica (id 1, the newest) froze well below an even split.
    assert metrics.dispatch_counts[1] < metrics.dispatch_counts[0]
    assert metrics.fleet_timeline[0][1] == 2
    assert metrics.fleet_timeline[-1][1] == 1
    # Every sequence dispatched to the drained replica was decoded by it.
    assert len(metrics.replicas[1].sequence_accuracy) == metrics.dispatch_counts[1]


def test_reactive_scales_out_under_burst_and_back_in():
    cluster = elastic_cluster(initial=2, min_replicas=2, max_replicas=6)
    workload = bursty_workload()
    metrics = cluster.run(workload, vanilla_factory)
    sizes = [n for _, n in metrics.fleet_timeline]
    assert metrics.peak_replicas() > 2, "burst should trigger scale-out"
    assert sizes[-1] < metrics.peak_replicas(), "lull should trigger scale-in"
    peak_cost = metrics.peak_replicas() * metrics.makespan_ms / 1000.0
    assert metrics.replica_seconds < peak_cost
    assert metrics.total_tokens() == workload.total_tokens()


def test_repeated_runs_on_one_cluster_object_are_bit_identical():
    """Regression (mirrors the classification fleet): balancer seed-stream and
    autoscaler state must reset, so repeated run() calls on one cluster
    object — with fresh per-run Apparate policies — are bit-identical."""
    cluster = elastic_cluster(initial=3, min_replicas=1, max_replicas=6,
                              balancer="power_of_two_choices", seed=5)
    workload = bursty_workload()
    prediction = PredictionModel(SPEC, seed=0)
    depths = generative_ramp_depths(SPEC, seed=0)

    def apparate_factory(ordinal):
        return ApparateTokenPolicy(prediction, depths)

    first = cluster.run(workload, apparate_factory)
    second = cluster.run(workload, apparate_factory)
    assert first.dispatch_counts == second.dispatch_counts
    assert first.fleet_timeline == second.fleet_timeline
    assert first.makespan_ms == second.makespan_ms
    for a, b in zip(first.replicas, second.replicas):
        assert [(t.sequence_id, t.token_index, t.release_ms, t.exited)
                for t in a.tokens] \
            == [(t.sequence_id, t.token_index, t.release_ms, t.exited)
                for t in b.tokens]


@FAST
@given(gaps=st.lists(st.floats(0.0, 120.0), min_size=1, max_size=40),
       initial=st.integers(1, 3), seed=st.integers(0, 5),
       tokens=st.integers(1, 8))
def test_token_conservation_under_membership_change(gaps, initial, seed, tokens):
    """Every emitted token is attributed to exactly one replica across
    arbitrary scale-in/out events, and no token is lost or duplicated."""
    arrivals = np.cumsum(np.asarray(gaps, dtype=float))
    workload = make_workload(arrivals, tokens=tokens)
    cluster = build_generative_cluster(
        SPEC, initial, balancer="power_of_two_choices", seed=seed,
        max_batch_size=2,
        autoscaler=ReactiveAutoscaler(scale_out_load=1.5, scale_in_load=0.25,
                                      cooldown_ms=50.0, provision_delay_ms=20.0),
        min_replicas=1, max_replicas=initial + 3)
    metrics = cluster.run(workload, vanilla_factory)
    counts = token_multiset(metrics)
    assert set(counts.values()) <= {1}
    assert sum(counts.values()) == workload.total_tokens()
    assert sum(metrics.dispatch_counts) == len(gaps)
    # Each sequence's tokens live on exactly one replica.
    for replica_a in range(len(metrics.replicas)):
        ids_a = set(metrics.replicas[replica_a].sequence_accuracy)
        for replica_b in range(replica_a + 1, len(metrics.replicas)):
            assert ids_a.isdisjoint(metrics.replicas[replica_b].sequence_accuracy)


# ---------------------------------------------------- heterogeneous replicas

def test_speed_profile_halves_decode_time():
    engine = ContinuousBatchingEngine(DecodeTimingModel(SPEC), max_batch_size=1)
    base = GenerativeClusterPlatform([engine]).run(
        make_workload([0.0], tokens=10), vanilla_factory)
    fast = GenerativeClusterPlatform([engine], profiles=[2.0]).run(
        make_workload([0.0], tokens=10), vanilla_factory)
    assert fast.makespan_ms == pytest.approx(base.makespan_ms / 2)
    np.testing.assert_allclose(fast.aggregate().tpt_values(),
                               base.aggregate().tpt_values() / 2)


def test_weighted_round_robin_dispatches_proportional_to_speed():
    engine = ContinuousBatchingEngine(DecodeTimingModel(SPEC), max_batch_size=2)
    cluster = GenerativeClusterPlatform([engine] * 3,
                                        balancer="weighted_round_robin",
                                        profiles=[2.0, 1.0, 1.0])
    workload = make_workload(np.arange(0.0, 4000.0, 10.0), tokens=2)
    metrics = cluster.run(workload, vanilla_factory)
    counts = metrics.dispatch_counts
    assert counts[0] == pytest.approx(200, abs=2)
    assert counts[1] == pytest.approx(100, abs=2)
    assert counts[2] == pytest.approx(100, abs=2)


# ----------------------------------------------------------- metrics rollups

def test_cluster_metrics_empty_run_is_nan_safe():
    metrics = GenerativeClusterMetrics(replicas=[GenerativeMetrics()],
                                       dispatch_counts=[0])
    summary = metrics.summary()
    assert summary["tpt_p99_ms"] == 0.0
    assert summary["token_p99_ms"] == 0.0
    assert summary["num_tokens"] == 0.0
    assert metrics.dispatch_imbalance() == 1.0
    empty_cluster = build_generative_cluster(SPEC, 2)
    collected = empty_cluster.run(GenerativeWorkload(name="empty"),
                                  vanilla_factory)
    assert collected.makespan_ms == 0.0
    assert collected.summary()["peak_replicas"] == 2.0


def test_fleet_summary_reports_deferred_flush_counts(small_generative_workload):
    from repro.core.generative import _generative_apparate_cluster_impl
    outcome = _generative_apparate_cluster_impl(
        SPEC, small_generative_workload, replicas=2, flush_limit=2, seed=4)
    summary = outcome.summary()
    assert summary["deferred_tokens"] >= summary["deferred_flushes"]
    assert summary["deferred_flushes"] > 0
    assert summary["num_policies"] == 2.0


def test_shared_fleet_mode_uses_one_policy():
    from repro.core.generative import _generative_apparate_cluster_impl
    workload = make_workload(np.arange(0.0, 3000.0, 10.0), tokens=8)
    outcome = _generative_apparate_cluster_impl(SPEC, workload, replicas=3,
                                                fleet_mode="shared", seed=1)
    assert len(outcome.policies) == 3
    assert len({id(p) for p in outcome.policies}) == 1
    assert outcome.summary()["num_policies"] == 1.0
    with pytest.raises(ValueError, match="anarchic"):
        _generative_apparate_cluster_impl(SPEC, workload, replicas=2,
                                          fleet_mode="anarchic")
