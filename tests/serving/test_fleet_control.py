"""Tests for the dynamic fleet control plane: autoscaling, heterogeneous
replica profiles, drop salvage, and conservation/determinism under membership
change."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pipeline import build_cluster, model_stack, run_vanilla_cluster
from repro.serving.autoscaler import (AUTOSCALER_NAMES, FixedAutoscaler,
                                      PredictiveAutoscaler, ReactiveAutoscaler,
                                      build_autoscaler,
                                      canonical_autoscaler_name)
from repro.serving.cluster import (ClusterPlatform, LoadBalancer,
                                   ReplicaProfile,
                                   WeightedJoinShortestQueueBalancer)
from repro.serving.fleet import DRAINING, RETIRED, FleetState, ReplicaHandle
from repro.serving.platform import BatchResult
from repro.serving.request import Request
from repro.serving.tfserve import TFServingPlatform
from repro.workloads.arrivals import diurnal_arrivals
from repro.workloads.difficulty import InputSample
from repro.workloads.video import VideoWorkload, make_video_workload

FAST = settings(max_examples=25, deadline=None)


def sample(i):
    return InputSample(index=i, raw_difficulty=0.3, sharpness=0.05,
                       confidence_shift=0.0)


def make_request(request_id, arrival_ms, slo_ms=1000.0):
    return Request(request_id=request_id, arrival_ms=arrival_ms,
                   sample=sample(request_id), slo_ms=slo_ms)


def fixed_time_executor(gpu_time_ms=8.0):
    def executor(batch, batch_start_ms):
        return BatchResult(gpu_time_ms=gpu_time_ms,
                           result_offsets_ms=[gpu_time_ms] * len(batch))
    return executor


def tf_factory(max_batch_size=4, batch_timeout_ms=2.0, drop_expired=False):
    def factory():
        return TFServingPlatform(max_batch_size=max_batch_size,
                                 batch_timeout_ms=batch_timeout_ms,
                                 drop_expired=drop_expired)
    return factory


def bursty_requests(slo_ms=1000.0):
    """Low rate, a 4x overload burst, low rate again."""
    times = (list(np.arange(0.0, 1000.0, 10.0))
             + list(np.arange(1000.0, 2500.0, 0.5))
             + list(np.arange(2500.0, 3500.0, 10.0)))
    return [make_request(i, float(t), slo_ms=slo_ms)
            for i, t in enumerate(times)]


def elastic_cluster(initial=2, min_replicas=1, max_replicas=6,
                    autoscaler=None, balancer="join_shortest_queue",
                    drop_expired=False, seed=0):
    factory = tf_factory(drop_expired=drop_expired)
    scaler = autoscaler if autoscaler is not None else ReactiveAutoscaler(
        cooldown_ms=300.0, provision_delay_ms=100.0)
    return ClusterPlatform([factory() for _ in range(initial)],
                           balancer=balancer, seed=seed, autoscaler=scaler,
                           min_replicas=min_replicas, max_replicas=max_replicas,
                           replica_factory=factory)


# ------------------------------------------------------------- registry/naming

def test_autoscaler_names_and_aliases():
    assert AUTOSCALER_NAMES == ("none", "predictive", "reactive")
    for name in AUTOSCALER_NAMES:
        assert build_autoscaler(name).name == name
    assert canonical_autoscaler_name("fixed") == "none"
    assert canonical_autoscaler_name("queue") == "reactive"
    assert canonical_autoscaler_name("ewma") == "predictive"
    assert canonical_autoscaler_name(ReactiveAutoscaler()) == "reactive"
    assert build_autoscaler(None).name == "none"
    with pytest.raises(ValueError):
        build_autoscaler("psychic")


def test_autoscaler_constructor_validation():
    with pytest.raises(ValueError):
        ReactiveAutoscaler(scale_out_load=1.0, scale_in_load=2.0)
    with pytest.raises(ValueError):
        ReactiveAutoscaler(step=0)
    with pytest.raises(ValueError):
        PredictiveAutoscaler(alpha=0.0)
    with pytest.raises(ValueError):
        PredictiveAutoscaler(target_utilization=1.5)


def test_cluster_platform_validates_fleet_band():
    factory = tf_factory()
    platforms = [factory(), factory()]
    with pytest.raises(ValueError):
        ClusterPlatform(platforms, min_replicas=0)
    with pytest.raises(ValueError):
        ClusterPlatform(platforms, min_replicas=3)
    with pytest.raises(ValueError):
        ClusterPlatform(platforms, max_replicas=1)
    with pytest.raises(ValueError):   # scale-out without a factory
        ClusterPlatform(platforms, max_replicas=4)
    with pytest.raises(ValueError):   # profile count mismatch
        ClusterPlatform(platforms, profiles=[1.0])


def test_replica_profile_coercion_and_validation():
    assert ReplicaProfile.coerce(2.0).speed == 2.0
    parsed = ReplicaProfile.coerce("1.5:2.5")
    assert parsed.speed == 1.5 and parsed.cost_weight == 2.5
    profiles = ReplicaProfile.parse_list("2,1,0.5:0.6")
    assert [p.speed for p in profiles] == [2.0, 1.0, 0.5]
    assert profiles[2].cost_weight == 0.6
    with pytest.raises(ValueError):
        ReplicaProfile(speed=0.0)
    with pytest.raises(ValueError):
        ReplicaProfile.coerce("fast")
    with pytest.raises(ValueError):
        ReplicaProfile.parse_list("")


# ------------------------------------------------------------- fleet lifecycle

def test_fleet_state_lifecycle_and_accounting():
    fleet = FleetState()
    factory = tf_factory()
    executor = fixed_time_executor()
    a = fleet.add(factory(), executor, ReplicaProfile(), 0.0)
    b = fleet.add(factory(), executor, ReplicaProfile(cost_weight=2.0), 0.0)
    assert fleet.num_active() == 2
    assert fleet.timeline == [(0.0, 2)]

    fleet.drain(b, 500.0)
    assert b.status == DRAINING
    assert [e.replica_id for e in fleet.active()] == [a.replica_id]
    assert fleet.timeline == [(0.0, 2), (500.0, 1)]

    # Draining with an empty queue and idle accelerator retires immediately.
    fleet.retire_idle(600.0)
    assert b.status == RETIRED and b.retired_ms == 600.0
    assert [e.replica_id for e in fleet.serving()] == [a.replica_id]

    fleet.finalize(1000.0)
    assert a.retired_ms == 1000.0
    # a: 1.0s at weight 1; b: 0.6s at weight 2 -> 2.2 weighted seconds.
    assert fleet.replica_seconds(1000.0) == pytest.approx(2.2)
    assert fleet.active_replica_ms(1000.0) == pytest.approx(1600.0)


def test_draining_replica_finishes_work_but_gets_no_new_dispatches():
    class DrainSecondAt(FixedAutoscaler):
        """Scale in by one exactly once, at/after the given time."""
        def __init__(self, at_ms):
            self.at_ms = at_ms
            self.fired = False
        def reset(self):
            self.fired = False
        def desired_replicas(self, now_ms, replicas):
            if not self.fired and now_ms >= self.at_ms:
                self.fired = True
                return len(replicas) - 1
            return len(replicas)

    cluster = elastic_cluster(initial=2, min_replicas=1, max_replicas=2,
                              autoscaler=DrainSecondAt(50.0),
                              balancer="round_robin")
    requests = [make_request(i, float(i)) for i in range(200)]
    metrics = cluster.run(requests, fixed_time_executor())
    # Conservation: the drained replica finished everything it was holding.
    responses = metrics.aggregate().responses
    assert sorted(r.request_id for r in responses) == list(range(200))
    # The drained replica (id 1, the newest) saw traffic before the drain but
    # none after: its dispatch count froze well below an even split.
    assert metrics.dispatch_counts[1] < metrics.dispatch_counts[0]
    assert metrics.fleet_timeline[0][1] == 2
    assert metrics.fleet_timeline[-1][1] == 1
    # Everything dispatched to the drained replica was answered by it.
    assert len(metrics.replicas[1].responses) == metrics.dispatch_counts[1]


def test_reactive_scales_out_under_burst_and_back_in():
    cluster = elastic_cluster(initial=2, min_replicas=2, max_replicas=6)
    metrics = cluster.run(bursty_requests(), fixed_time_executor())
    sizes = [n for _, n in metrics.fleet_timeline]
    assert metrics.peak_replicas() > 2, "burst should trigger scale-out"
    assert sizes[-1] < metrics.peak_replicas(), "lull should trigger scale-in"
    # Replica-seconds undercut an always-peak fleet.
    peak_cost = metrics.peak_replicas() * metrics.makespan_ms / 1000.0
    assert metrics.replica_seconds < peak_cost
    # Conservation across every membership change.
    responses = metrics.aggregate().responses
    assert sorted(r.request_id for r in responses) == \
        list(range(len(bursty_requests())))


def test_predictive_scales_from_arrival_rate():
    scaler = PredictiveAutoscaler(cooldown_ms=300.0, provision_delay_ms=100.0,
                                  service_time_ms=2.0)
    cluster = elastic_cluster(initial=2, min_replicas=2, max_replicas=6,
                              autoscaler=scaler)
    metrics = cluster.run(bursty_requests(), fixed_time_executor())
    assert metrics.peak_replicas() > 2
    responses = metrics.aggregate().responses
    assert sorted(r.request_id for r in responses) == \
        list(range(len(bursty_requests())))


def test_fixed_autoscaler_keeps_fleet_constant():
    cluster = elastic_cluster(initial=3, min_replicas=1, max_replicas=6,
                              autoscaler=FixedAutoscaler())
    metrics = cluster.run(bursty_requests(), fixed_time_executor())
    assert metrics.fleet_timeline == [(0.0, 3)]
    assert metrics.peak_replicas() == 3


def test_identical_seeds_give_identical_fleet_timelines():
    def one_run():
        cluster = elastic_cluster(initial=2, min_replicas=1, max_replicas=6,
                                  balancer="power_of_two_choices", seed=7)
        return cluster.run(bursty_requests(), fixed_time_executor())

    first, second = one_run(), one_run()
    assert first.fleet_timeline == second.fleet_timeline
    assert first.dispatch_counts == second.dispatch_counts
    assert [(r.request_id, r.completion_ms) for r in first.aggregate().responses] \
        == [(r.request_id, r.completion_ms) for r in second.aggregate().responses]


def test_repeated_runs_on_one_cluster_object_are_deterministic():
    """Regression: PowerOfTwoChoicesBalancer.reset() must restore the seed's
    RNG stream (and the autoscaler its decision state), so one cluster object
    can be run repeatedly with identical results."""
    cluster = elastic_cluster(initial=3, min_replicas=1, max_replicas=6,
                              balancer="power_of_two_choices", seed=5)
    requests = bursty_requests()
    first = cluster.run(requests, fixed_time_executor())
    second = cluster.run(requests, fixed_time_executor())
    assert first.dispatch_counts == second.dispatch_counts
    assert first.fleet_timeline == second.fleet_timeline
    assert first.makespan_ms == second.makespan_ms
    assert [(r.request_id, r.completion_ms, r.batch_size)
            for r in first.aggregate().responses] \
        == [(r.request_id, r.completion_ms, r.batch_size)
            for r in second.aggregate().responses]


@FAST
@given(gaps=st.lists(st.floats(0.0, 6.0), min_size=1, max_size=60),
       initial=st.integers(1, 3), seed=st.integers(0, 5),
       drop=st.booleans())
def test_conservation_under_membership_change(gaps, initial, seed, drop):
    """Every admitted request is answered exactly once — completed, dropped
    or rerouted-then-answered — across arbitrary scale-in/out events."""
    arrivals = np.cumsum(np.asarray(gaps, dtype=float))
    requests = [make_request(i, float(arrivals[i]),
                             slo_ms=20.0 if drop else 1e9)
                for i in range(len(arrivals))]
    factory = tf_factory(drop_expired=drop)
    cluster = ClusterPlatform(
        [factory() for _ in range(initial)], balancer="power_of_two_choices",
        seed=seed,
        autoscaler=ReactiveAutoscaler(scale_out_load=1.5, scale_in_load=0.25,
                                      cooldown_ms=5.0, provision_delay_ms=2.0),
        min_replicas=1, max_replicas=initial + 3, replica_factory=factory)
    metrics = cluster.run(requests, fixed_time_executor(gpu_time_ms=5.0))
    agg = metrics.aggregate()
    assert sorted(r.request_id for r in agg.responses) == list(range(len(gaps)))
    dropped = {r.request_id for r in agg.dropped()}
    served = {r.request_id for r in agg.served()}
    assert dropped.isdisjoint(served)
    assert len(dropped) + len(served) == len(gaps)
    assert sum(metrics.dispatch_counts) == len(gaps)


# ----------------------------------------------------------------- salvage

class ProfiledTF(TFServingPlatform):
    """TFServing platform with an exact per-request latency prediction, so
    the salvage ETA math is deterministic in tests."""

    def __init__(self, per_request_ms=30.0, **kwargs):
        super().__init__(**kwargs)
        self.per_request_ms = float(per_request_ms)

    def predicted_batch_time_ms(self, batch_size):
        return self.per_request_ms * batch_size


def test_doomed_request_is_rerouted_to_idle_replica():
    """Replica 0 gets buried under a pile; the pile's tail is doomed there but
    an idle replica can still make the deadline -> reroute, not drop."""
    def platform():
        return ProfiledTF(per_request_ms=30.0, max_batch_size=1,
                          batch_timeout_ms=0.0, drop_expired=True)

    class FirstOnly(LoadBalancer):
        name = "first_only"
        def choose(self, request, replicas, now_ms):
            return 0

    cluster = ClusterPlatform([platform(), platform()], balancer=FirstOnly())
    # 6 requests at t=0 with a 100ms SLO against 30ms batches of one: the
    # fourth request onward cannot finish on replica 0 in time, but the idle
    # replica 1 can take exactly three of them.
    requests = [make_request(i, 0.0, slo_ms=100.0) for i in range(6)]
    metrics = cluster.run(requests, fixed_time_executor(gpu_time_ms=30.0))
    agg = metrics.aggregate()
    assert sorted(r.request_id for r in agg.responses) == list(range(6))
    assert metrics.rerouted == 3
    assert metrics.summary()["rerouted"] == 3.0
    # Salvage converts would-be drops into goodput: every request now meets
    # its SLO instead of half the pile expiring on replica 0.
    in_slo = [r for r in agg.served() if r.latency_ms <= 100.0]
    assert len(in_slo) == 6
    # The rerouted requests actually ran on the second replica.
    assert len(metrics.replicas[1].responses) == metrics.rerouted
    # First-dispatch accounting is unchanged by reroutes.
    assert metrics.dispatch_counts == [6, 0]


def test_draining_replica_salvages_to_the_sole_active_replica():
    """Scale-in to one active replica must not disable salvage: the draining
    replica's doomed backlog moves to the remaining (idle) replica."""
    class DrainFirstDecision(FixedAutoscaler):
        def __init__(self):
            self.fired = False
        def reset(self):
            self.fired = False
        def desired_replicas(self, now_ms, replicas):
            if not self.fired and len(replicas) > 1:
                self.fired = True
                return 1
            return len(replicas)

    def platform():
        return ProfiledTF(per_request_ms=30.0, max_batch_size=1,
                          batch_timeout_ms=0.0, drop_expired=True)

    class LastOnly(LoadBalancer):
        name = "last_only"
        def choose(self, request, replicas, now_ms):
            return len(replicas) - 1

    # All 6 requests land on replica 1, which is immediately drained; half of
    # its backlog is doomed there but fits on the idle replica 0.
    cluster = ClusterPlatform([platform(), platform()], balancer=LastOnly(),
                              autoscaler=DrainFirstDecision(), min_replicas=1,
                              max_replicas=2, replica_factory=platform)
    requests = [make_request(i, 0.0, slo_ms=100.0) for i in range(6)]
    metrics = cluster.run(requests, fixed_time_executor(gpu_time_ms=30.0))
    agg = metrics.aggregate()
    assert sorted(r.request_id for r in agg.responses) == list(range(6))
    assert metrics.rerouted == 3
    assert len([r for r in agg.served() if r.latency_ms <= 100.0]) == 6


def test_reactive_by_name_scales_on_slo_headroom():
    """Name-based construction ('reactive' through ClusterSpec / the CLI)
    must thread the run's SLO into the headroom signal."""
    from repro.core.pipeline import _resolve_autoscaler
    scaler = _resolve_autoscaler("reactive", 50.0)
    assert isinstance(scaler, ReactiveAutoscaler)
    assert scaler.slo_ms == 50.0
    assert _resolve_autoscaler("none", 50.0).name == "none"
    passthrough = ReactiveAutoscaler(slo_ms=9.0)
    assert _resolve_autoscaler(passthrough, 50.0) is passthrough
    assert _resolve_autoscaler(None, 50.0) is None


def test_dispatch_imbalance_normalizes_by_replica_uptime():
    from repro.serving.metrics import ClusterMetrics, ServingMetrics
    # 90 dispatches over a full 1000ms run vs 10 over a late 111ms lifetime:
    # equal rates, so an elastic fleet under fair balancing reads ~1.0 ...
    elastic = ClusterMetrics(replicas=[ServingMetrics(), ServingMetrics()],
                             dispatch_counts=[90, 10], makespan_ms=1000.0,
                             replica_uptimes_ms=[1000.0, 1000.0 / 9.0])
    assert elastic.dispatch_imbalance() == pytest.approx(1.0)
    # ... while equal uptimes reduce to the classic max/mean count ratio.
    fixed = ClusterMetrics(replicas=[ServingMetrics(), ServingMetrics()],
                           dispatch_counts=[75, 25], makespan_ms=1000.0,
                           replica_uptimes_ms=[1000.0, 1000.0])
    assert fixed.dispatch_imbalance() == pytest.approx(1.5)
    legacy = ClusterMetrics(replicas=[ServingMetrics(), ServingMetrics()],
                            dispatch_counts=[75, 25], makespan_ms=1000.0)
    assert legacy.dispatch_imbalance() == pytest.approx(1.5)


def test_no_reroutes_without_drop_expired():
    cluster = elastic_cluster(initial=2, min_replicas=2, max_replicas=2,
                              autoscaler=FixedAutoscaler(), drop_expired=False)
    metrics = cluster.run(bursty_requests(slo_ms=15.0), fixed_time_executor())
    assert metrics.rerouted == 0


# ---------------------------------------------------- heterogeneous replicas

def test_weighted_round_robin_dispatches_proportional_to_speed():
    factory = tf_factory()
    cluster = ClusterPlatform([factory(), factory(), factory()],
                              balancer="weighted_round_robin",
                              profiles=[2.0, 1.0, 1.0])
    requests = [make_request(i, float(i)) for i in range(400)]
    metrics = cluster.run(requests, fixed_time_executor())
    counts = metrics.dispatch_counts
    assert counts[0] == pytest.approx(200, abs=2)
    assert counts[1] == pytest.approx(100, abs=2)
    assert counts[2] == pytest.approx(100, abs=2)


def test_weighted_jsq_normalizes_by_speed():
    fast = TFServingPlatform(max_batch_size=4)
    slow = TFServingPlatform(max_batch_size=4)
    handles = [ReplicaHandle(0, fast, fast.new_state(), ReplicaProfile(speed=2.0)),
               ReplicaHandle(1, slow, slow.new_state(), ReplicaProfile(speed=1.0))]
    # 3 jobs on the 2x replica weigh 1.5; 2 jobs on the 1x replica weigh 2.
    for i in range(3):
        fast.admit(handles[0].state, make_request(i, 0.0))
    for i in range(3, 5):
        slow.admit(handles[1].state, make_request(i, 0.0))
    balancer = WeightedJoinShortestQueueBalancer()
    assert balancer.choose(make_request(9, 0.0), handles, 0.0) == 0


def test_scaled_latency_profile_divides_node_latencies(resnet50_stack):
    _spec, profile, *_rest = resnet50_stack
    fast = profile.scaled(2.0)
    assert fast.total_latency_ms(1) == pytest.approx(profile.total_latency_ms(1) / 2)
    assert fast.total_latency_ms(8) == pytest.approx(profile.total_latency_ms(8) / 2)
    assert np.allclose(fast.cumulative_fraction, profile.cumulative_fraction)
    assert profile.scaled(1.0) is profile
    with pytest.raises(ValueError):
        profile.scaled(0.0)


def test_heterogeneous_fleet_least_work_left_beats_unweighted_round_robin():
    """Acceptance: a 2x-fast/2x-slow fleet under least_work_left must beat
    unweighted round_robin on p99 — RR sends the slow replicas an equal share
    and their queues snowball; least_work_left prices them correctly."""
    workload = make_video_workload("urban-day", num_frames=2500, fps=150.0,
                                   seed=3)
    profiles = [2.0, 2.0, 0.5, 0.5]
    rr = run_vanilla_cluster("resnet50", workload, replicas=4,
                             balancer="round_robin", profiles=profiles,
                             drop_expired=False, seed=0)
    lwl = run_vanilla_cluster("resnet50", workload, replicas=4,
                              balancer="least_work_left", profiles=profiles,
                              drop_expired=False, seed=0)
    assert sorted(r.request_id for r in rr.aggregate().responses) \
        == sorted(r.request_id for r in lwl.aggregate().responses)
    assert lwl.aggregate().p99_latency() < rr.aggregate().p99_latency()


def test_speed_scaling_shortens_actual_service_time(resnet50_stack):
    """A 2x replica must genuinely finish batches in half the time: executor
    results are scaled by the replica's speed in the cluster loop."""
    _spec, profile, *_rest = resnet50_stack
    fast = build_cluster("clockwork", profile, 1, profiles=[2.0])
    base = build_cluster("clockwork", profile, 1)
    workload = make_video_workload("urban-day", num_frames=300, fps=30.0, seed=1)
    from repro.core.pipeline import _workload_requests, model_stack
    from repro.serving.platform import VanillaExecutor
    executor = VanillaExecutor(model_stack("resnet50", seed=0)[-1])
    requests = _workload_requests(workload, 1e9)
    fast_metrics = fast.run(requests, executor)
    base_metrics = base.run(requests, executor)
    fast_serving = np.median([r.serving_ms for r in fast_metrics.aggregate().served()])
    base_serving = np.median([r.serving_ms for r in base_metrics.aggregate().served()])
    assert fast_serving == pytest.approx(base_serving / 2, rel=0.05)


# -------------------------------------------------------------- API surface

def test_cluster_spec_validates_fleet_fields():
    from repro.api import ClusterSpec
    spec = ClusterSpec(replicas=2, autoscaler="reactive")
    assert spec.resolved_min_replicas() == 1
    assert spec.resolved_max_replicas() == 4
    fixed = ClusterSpec(replicas=3)
    assert fixed.resolved_min_replicas() == 3
    assert fixed.resolved_max_replicas() == 3
    parsed = ClusterSpec(replicas=2, profiles="2.0,0.5:0.6")
    assert [p.speed for p in parsed.profiles] == [2.0, 0.5]
    assert parsed.describe()["profiles"][1] == {"speed": 0.5, "cost_weight": 0.6}
    with pytest.raises(ValueError):
        ClusterSpec(replicas=2, autoscaler="psychic")
    with pytest.raises(ValueError):
        ClusterSpec(replicas=2, min_replicas=3)
    with pytest.raises(ValueError):
        ClusterSpec(replicas=2, max_replicas=1)
    with pytest.raises(ValueError):
        ClusterSpec(replicas=2, profiles="2.0")


def test_cluster_spec_rejects_non_positive_profile_multipliers():
    """Zero/negative/non-finite speed or cost multipliers must die at the
    ClusterSpec boundary (naming the value), so the weighted balancers can
    never divide by zero or invert priorities on a degenerate profile."""
    from repro.api import ClusterSpec
    with pytest.raises(ValueError, match="0"):
        ClusterSpec(replicas=2, profiles="0,1")
    with pytest.raises(ValueError, match="-2"):
        ClusterSpec(replicas=2, profiles=[1.0, -2.0])
    with pytest.raises(ValueError, match="-0.5"):
        ClusterSpec(replicas=2, profiles="1:-0.5,1")
    with pytest.raises(ValueError, match="inf"):
        ClusterSpec(replicas=2, profiles=[float("inf"), 1.0])
    with pytest.raises(ValueError, match="nan"):
        ClusterSpec(replicas=2, profiles="nan,1")
    with pytest.raises(ValueError):
        ReplicaProfile(speed=1.0, cost_weight=float("nan"))


def test_experiment_reports_fleet_timeline_and_replica_seconds():
    from repro.api import ClusterSpec, Experiment
    workload = VideoWorkload(
        name="diurnal", fps=30.0,
        trace=make_video_workload("urban-day", num_frames=1500, seed=2).trace,
        arrival_times_ms=diurnal_arrivals(1500, 20.0, 220.0, period_s=10.0))
    experiment = Experiment(
        model="resnet50", workload=workload,
        cluster=ClusterSpec(replicas=2, autoscaler="reactive",
                            min_replicas=1, max_replicas=5),
        drop_expired=False, seed=0)
    result = experiment.run(["vanilla"]).result("vanilla")
    assert result.summary["replica_seconds"] > 0
    assert result.summary["peak_replicas"] >= 2
    timeline = result.details["fleet_timeline"]
    assert timeline[0][1] == 2
    assert len(timeline) > 1, "the diurnal trace should change the fleet size"
    payload = result.to_json()
    assert payload["details"]["fleet_timeline"] == timeline
