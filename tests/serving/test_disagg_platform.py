"""Tests for prefill/decode disaggregated serving: the two-pool platform
(prefill chunk-batching, KV-transfer handoff, per-pool balancers and
autoscalers), the PrefillModel cost model, TTFT metrics and deadline
shedding across the generative engines."""

from collections import Counter

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.generative import (build_disaggregated_platform,
                                   build_generative_cluster,
                                   run_generative_apparate_disagg,
                                   run_generative_vanilla,
                                   run_generative_vanilla_disagg)
from repro.generative.decoding import DecodeTimingModel, PrefillModel
from repro.generative.sequences import (GenerativeWorkload, SequenceSample,
                                        make_generative_workload)
from repro.models.zoo import get_model
from repro.serving.autoscaler import ReactiveAutoscaler
from repro.serving.disagg import DisaggregatedMetrics, DisaggregatedPlatform
from repro.serving.hf_pipelines import (ContinuousBatchingEngine,
                                        VanillaTokenPolicy)

FAST = settings(max_examples=15, deadline=None)

SPEC = get_model("t5-large")      # 18 ms decode steps, 24 blocks, width 1024
STEP_MS = SPEC.bs1_latency_ms


def make_sequence(seq_id, arrival_ms, tokens=4, prompt=0, difficulty=0.25):
    return SequenceSample(sequence_id=seq_id, arrival_ms=float(arrival_ms),
                          token_difficulty=np.full(tokens, float(difficulty)),
                          token_sharpness=np.full(tokens, 0.05),
                          prompt_tokens=int(prompt))


def make_workload(arrivals, tokens=4, prompts=0):
    if np.isscalar(tokens):
        tokens = [tokens] * len(arrivals)
    if np.isscalar(prompts):
        prompts = [prompts] * len(arrivals)
    return GenerativeWorkload(name="test", sequences=[
        make_sequence(i, t, tokens=n, prompt=p)
        for i, (t, n, p) in enumerate(zip(arrivals, tokens, prompts))])


def decode_engine(max_batch_size=2):
    return ContinuousBatchingEngine(DecodeTimingModel(SPEC),
                                    max_batch_size=max_batch_size)


def fast_scaler(**overrides):
    kwargs = dict(scale_out_load=2.0, scale_in_load=0.25, cooldown_ms=200.0,
                  provision_delay_ms=50.0)
    kwargs.update(overrides)
    return ReactiveAutoscaler(**kwargs)


def token_multiset(metrics: DisaggregatedMetrics) -> Counter:
    return Counter((t.sequence_id, t.token_index)
                   for replica in metrics.replicas for t in replica.tokens)


def workload_multiset(workload: GenerativeWorkload) -> Counter:
    return Counter((s.sequence_id, i)
                   for s in workload.sequences for i in range(s.num_tokens))


# ------------------------------------------------------------ PrefillModel

def test_prefill_model_chunk_and_transfer_math():
    model = PrefillModel(SPEC)     # 256-token chunks, 16 GB/s
    assert model.num_chunks(0) == 0
    assert model.num_chunks(1) == 1
    assert model.num_chunks(256) == 1
    assert model.num_chunks(257) == 2
    assert model.prefill_ms(256) == pytest.approx(STEP_MS)
    assert model.prefill_ms(0) == 0.0
    # Chunk-batching two 129-token prompts packs 258 tokens into 2 chunks —
    # one fewer than prefilling them separately (2 chunks each... no, 1+1=2;
    # use 200-token prompts: separately 1+1 chunks, batched ceil(400/256)=2).
    assert model.batch_prefill_ms(400) == pytest.approx(2 * STEP_MS)
    assert model.batch_prefill_ms(513) == pytest.approx(3 * STEP_MS)
    # KV bytes: tokens x blocks x width x 4 (K+V, fp16).
    assert model.kv_bytes(256) == 256 * 24 * 1024 * 4
    assert model.transfer_ms(256) == pytest.approx(256 * 24 * 1024 * 4 / 16e6)
    assert model.transfer_ms(0) == 0.0


def test_prefill_model_inslot_interference():
    model = PrefillModel(SPEC, decode_interference=1.0)
    base = model.prefill_ms(512)
    assert model.inslot_prefill_ms(512, busy_slots=0) == pytest.approx(base)
    assert model.inslot_prefill_ms(512, busy_slots=3) == pytest.approx(4 * base)


def test_prefill_model_validation():
    with pytest.raises(ValueError):
        PrefillModel(get_model("resnet50"))     # not generative
    with pytest.raises(ValueError):
        PrefillModel(SPEC, tokens_per_chunk=0)
    with pytest.raises(ValueError):
        PrefillModel(SPEC, transfer_gbps=0.0)
    with pytest.raises(ValueError):
        PrefillModel(SPEC, decode_interference=-0.5)


# ------------------------------------------------------------ construction

def test_shared_policy_instances_are_not_aliased_across_pools():
    """One balancer/autoscaler instance passed for both pools is cloned —
    a shared object would mix its dispatch cursor / cooldown state across
    the two pools."""
    scaler = fast_scaler()
    from repro.serving.cluster import RoundRobinBalancer
    balancer = RoundRobinBalancer()
    platform = DisaggregatedPlatform(PrefillModel(SPEC), [decode_engine()],
                                     prefill_balancer=balancer,
                                     decode_balancer=balancer,
                                     prefill_autoscaler=scaler,
                                     decode_autoscaler=scaler)
    assert platform.prefill_autoscaler is not platform.decode_autoscaler
    assert platform.prefill_balancer is not platform.decode_balancer


def test_platform_validation():
    engine = decode_engine()
    prefill = PrefillModel(SPEC)
    with pytest.raises(ValueError):
        DisaggregatedPlatform(prefill, [])
    with pytest.raises(ValueError):
        DisaggregatedPlatform(prefill, [engine], prefill_replicas=0)
    with pytest.raises(ValueError):
        DisaggregatedPlatform(prefill, [engine], prefill_batch=0)
    with pytest.raises(ValueError):
        DisaggregatedPlatform(prefill, [engine], ttft_slo_ms=0.0)
    with pytest.raises(ValueError):
        DisaggregatedPlatform(prefill, [engine, engine], decode_min_replicas=3)
    with pytest.raises(ValueError):
        DisaggregatedPlatform(prefill, [engine, engine], decode_max_replicas=1)
    with pytest.raises(ValueError):
        DisaggregatedPlatform(prefill, [engine], prefill_replicas=2,
                              prefill_min_replicas=0)
    with pytest.raises(ValueError):
        DisaggregatedPlatform(prefill, [engine], prefill_profiles=[1.0, 1.0])
    with pytest.raises(ValueError):
        DisaggregatedPlatform(prefill, [engine, engine], decode_profiles=[2.0])


# ----------------------------------------------------------- pipeline timing

def test_single_sequence_pays_prefill_transfer_then_decode():
    """TTFT decomposes exactly: queueing (0) + prefill + KV transfer + step."""
    prefill = PrefillModel(SPEC)
    platform = DisaggregatedPlatform(prefill, [decode_engine()],
                                     prefill_replicas=1)
    workload = make_workload([0.0], tokens=3, prompts=256)
    metrics = platform.run(workload, lambda o: VanillaTokenPolicy())

    transfer = prefill.transfer_ms(256)
    assert metrics.prefill_delays_ms[0] == pytest.approx(STEP_MS)
    assert metrics.transfer_delays_ms[0] == pytest.approx(transfer)
    merged = metrics.aggregate()
    # Queueing (arrival -> first decode step) spans prefill + transfer.
    assert merged.queueing_delays_ms[0] == pytest.approx(STEP_MS + transfer)
    assert merged.ttft_values() == pytest.approx([2 * STEP_MS + transfer])
    # The decode cadence itself is untouched: every token is one full step.
    np.testing.assert_allclose(merged.tpt_values(), [STEP_MS] * 3)


def test_promptless_sequences_skip_prefill_and_transfer():
    platform = DisaggregatedPlatform(PrefillModel(SPEC), [decode_engine()],
                                     prefill_replicas=1)
    workload = make_workload([0.0], tokens=2, prompts=0)
    metrics = platform.run(workload, lambda o: VanillaTokenPolicy())
    merged = metrics.aggregate()
    assert merged.ttft_values() == pytest.approx([STEP_MS])
    assert metrics.transfer_delays_ms[0] == 0.0


def test_prefill_chunk_batching_shares_chunks():
    """Two prompts prefilled in one batch finish together at the batched
    chunk count, not at the sum of their individual chunk counts."""
    prefill = PrefillModel(SPEC)
    platform = DisaggregatedPlatform(prefill, [decode_engine(max_batch_size=4)],
                                     prefill_replicas=1, prefill_batch=4)
    # 2 x 200-token prompts -> 400 tokens -> 2 chunks batched (vs 1+1=2
    # separately); 4 x 200 -> 800 tokens -> 4 chunks batched.
    workload = make_workload([0.0, 0.0, 0.0, 0.0], tokens=1, prompts=200)
    metrics = platform.run(workload, lambda o: VanillaTokenPolicy())
    done = prefill.batch_prefill_ms(800)
    for seq_id in range(4):
        assert metrics.prefill_delays_ms[seq_id] == pytest.approx(done)


# ------------------------------------------------- conservation + determinism

def test_tokens_conserved_across_pipeline():
    platform = DisaggregatedPlatform(PrefillModel(SPEC), [decode_engine()] * 3,
                                     prefill_replicas=2,
                                     prefill_balancer="least_work_left",
                                     decode_balancer="join_shortest_queue")
    workload = make_workload(np.arange(0.0, 3000.0, 40.0), tokens=5,
                             prompts=300)
    metrics = platform.run(workload, lambda o: VanillaTokenPolicy())
    assert token_multiset(metrics) == workload_multiset(workload)
    assert sum(metrics.prefill_counts) == len(workload.sequences)
    assert sum(metrics.dispatch_counts) == len(workload.sequences)


@FAST
@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=2500.0),
                          st.integers(min_value=1, max_value=6),
                          st.integers(min_value=0, max_value=600)),
                min_size=1, max_size=40))
def test_tokens_conserved_under_membership_change_in_both_pools(shape):
    """Hypothesis: every workload token is decoded exactly once even while
    both pools scale out and drain mid-run."""
    workload = make_workload([a for a, _, _ in shape],
                             tokens=[n for _, n, _ in shape],
                             prompts=[p for _, _, p in shape])
    platform = DisaggregatedPlatform(
        PrefillModel(SPEC), [decode_engine()] * 2, prefill_replicas=2,
        prefill_balancer="join_shortest_queue",
        decode_balancer="least_work_left",
        prefill_autoscaler=fast_scaler(), decode_autoscaler=fast_scaler(),
        prefill_min_replicas=1, prefill_max_replicas=4,
        decode_min_replicas=1, decode_max_replicas=5)
    metrics = platform.run(workload, lambda o: VanillaTokenPolicy())
    assert token_multiset(metrics) == workload_multiset(workload)
    # Every sequence crossed the handoff exactly once.
    assert sum(metrics.prefill_counts) == len(workload.sequences)
    assert sorted(metrics.transfer_delays_ms) == \
        sorted(s.sequence_id for s in workload.sequences)


def test_repeated_runs_are_bit_identical():
    """One platform object re-runs identically: stochastic balancer seed
    streams and autoscaler state fully reset between runs."""
    platform = DisaggregatedPlatform(
        PrefillModel(SPEC), [decode_engine()] * 2, prefill_replicas=2,
        prefill_balancer="power_of_two_choices",
        decode_balancer="power_of_two_choices", seed=7,
        prefill_autoscaler=fast_scaler(), decode_autoscaler=fast_scaler(),
        prefill_min_replicas=1, prefill_max_replicas=4,
        decode_min_replicas=1, decode_max_replicas=4)
    workload = make_workload(np.arange(0.0, 1500.0, 25.0), tokens=4,
                             prompts=280)

    first = platform.run(workload, lambda o: VanillaTokenPolicy())
    second = platform.run(workload, lambda o: VanillaTokenPolicy())

    def stream(metrics):
        return [(t.sequence_id, t.token_index, t.release_ms)
                for replica in metrics.replicas for t in replica.tokens]

    assert stream(first) == stream(second)
    assert first.summary() == second.summary()
    assert first.prefill_fleet_timeline == second.prefill_fleet_timeline
    assert first.fleet_timeline == second.fleet_timeline


# -------------------------------------------------- independent pool sizing

def test_pools_scale_independently_under_prompt_pressure():
    """A prompt-heavy burst (huge prompts, tiny outputs) grows the prefill
    pool while the decode pool never needs to scale out."""
    platform = DisaggregatedPlatform(
        PrefillModel(SPEC), [decode_engine(max_batch_size=8)] * 2,
        prefill_replicas=1,
        prefill_autoscaler=fast_scaler(scale_out_load=3.0),
        decode_autoscaler=fast_scaler(),
        prefill_min_replicas=1, prefill_max_replicas=4,
        decode_min_replicas=1, decode_max_replicas=4)
    # 30 sequences in 1.5 s, 2048-token prompts (8 chunks = 144 ms each),
    # 2 output tokens: prefill-bound by construction.
    workload = make_workload(np.arange(0.0, 1500.0, 50.0), tokens=2,
                             prompts=2048)
    metrics = platform.run(workload, lambda o: VanillaTokenPolicy())
    assert token_multiset(metrics) == workload_multiset(workload)
    assert metrics.prefill_peak_replicas() > 1       # prefill pool grew
    assert metrics.peak_replicas() <= 2              # decode pool did not


# ------------------------------------------------------- deadline shedding

def test_deadline_shedding_sheds_doomed_sequences():
    platform = DisaggregatedPlatform(
        PrefillModel(SPEC), [decode_engine(max_batch_size=1)],
        prefill_replicas=1, ttft_slo_ms=4 * STEP_MS)
    # 8 promptless sequences arrive together on one decode slot; each takes
    # 3 steps, so later sequences blow the 4-step TTFT SLO while queueing.
    workload = make_workload([0.0] * 8, tokens=3, prompts=0)
    metrics = platform.run(workload, lambda o: VanillaTokenPolicy())
    merged = metrics.aggregate()
    shed = merged.num_shed()
    served = len(merged.sequence_accuracy)
    assert shed > 0
    assert served + shed == len(workload.sequences)
    served_tokens = sum(s.num_tokens for s in workload.sequences
                        if s.sequence_id not in merged.shed_sequence_ids)
    assert metrics.total_tokens() == served_tokens
    assert merged.ttft_values().max() <= 4 * STEP_MS + STEP_MS + 1e-9
    assert metrics.summary()["shed"] == float(shed)
    assert metrics.summary()["shed_rate"] == pytest.approx(shed / 8)


def test_deadline_shedding_counts_inslot_prefill_toward_the_slo():
    """The monolithic shed check runs on the time decode would start —
    in-slot prefill included — so a sequence whose prefill alone blows the
    TTFT SLO is shed before any compute is spent on it."""
    workload = make_workload([0.0], tokens=2, prompts=256)   # 18 ms prefill
    doomed = build_generative_cluster(SPEC, 1, max_batch_size=2,
                                      prefill_in_slot=True,
                                      ttft_slo_ms=0.5 * STEP_MS)
    merged = doomed.run(workload, lambda o: VanillaTokenPolicy()).aggregate()
    assert merged.shed_sequence_ids == [0]
    # Without the in-slot prefill the same wait (zero) makes the deadline.
    served = build_generative_cluster(SPEC, 1, max_batch_size=2,
                                      ttft_slo_ms=0.5 * STEP_MS) \
        .run(workload, lambda o: VanillaTokenPolicy()).aggregate()
    assert served.num_shed() == 0


def test_deadline_shedding_in_monolithic_cluster_and_engine():
    workload = make_workload([0.0] * 8, tokens=3, prompts=0)
    cluster = build_generative_cluster(SPEC, 1, max_batch_size=1,
                                       ttft_slo_ms=4 * STEP_MS)
    cluster_metrics = cluster.run(workload, lambda o: VanillaTokenPolicy())
    engine = ContinuousBatchingEngine(DecodeTimingModel(SPEC),
                                      max_batch_size=1,
                                      ttft_slo_ms=4 * STEP_MS)
    engine_metrics = engine.run(workload, VanillaTokenPolicy())
    # The one-replica cluster sheds exactly the sequences the engine sheds.
    assert sorted(cluster_metrics.aggregate().shed_sequence_ids) == \
        sorted(engine_metrics.shed_sequence_ids)
    assert engine_metrics.num_shed() > 0
    # With no SLO nothing is shed (backwards compatibility).
    no_slo = build_generative_cluster(SPEC, 1, max_batch_size=1) \
        .run(workload, lambda o: VanillaTokenPolicy())
    assert no_slo.aggregate().num_shed() == 0


# ------------------------------------------------------------- TTFT metrics

def test_ttft_reported_for_single_engine_runs():
    workload = make_workload([0.0, 0.0, 0.0], tokens=2, prompts=0)
    metrics = run_generative_vanilla(SPEC, workload, max_batch_size=1)
    # Slot queueing counts into TTFT: 18, 36+18? -> waits 0/36/72 + step.
    np.testing.assert_allclose(sorted(metrics.ttft_values()),
                               [STEP_MS, 3 * STEP_MS, 5 * STEP_MS])
    summary = metrics.summary()
    assert summary["ttft_p99_ms"] > 0.0
    assert summary["ttft_mean_ms"] == pytest.approx(3 * STEP_MS)


def test_monolithic_inslot_prefill_counts_into_ttft():
    """prefill_in_slot charges the prompt's chunks (stretched by busy decode
    slots) on the claiming replica, visible in TTFT but not in decode TPT."""
    workload = make_workload([0.0], tokens=2, prompts=256)
    cluster = build_generative_cluster(SPEC, 1, max_batch_size=2,
                                       prefill_in_slot=True)
    merged = cluster.run(workload, lambda o: VanillaTokenPolicy()).aggregate()
    # Idle replica: no interference, so exactly one chunk + first step.
    assert merged.ttft_values() == pytest.approx([2 * STEP_MS])
    np.testing.assert_allclose(merged.tpt_values()[1:], [STEP_MS])

    # A busy replica stretches the in-slot prefill by the contention factor.
    busy = make_workload([0.0, 0.0], tokens=4, prompts=256)
    merged = cluster.run(busy, lambda o: VanillaTokenPolicy()).aggregate()
    ttfts = sorted(merged.ttft_values())
    assert ttfts[0] == pytest.approx(2 * STEP_MS)            # first: idle
    assert ttfts[1] == pytest.approx(3 * STEP_MS)            # second: 1 busy slot


# ------------------------------------------------------------------- shims

def test_disagg_shims_match_experiment_dispatch(small_generative_workload):
    metrics = run_generative_vanilla_disagg(SPEC, small_generative_workload,
                                            prefill_replicas=1,
                                            decode_replicas=2)
    assert isinstance(metrics, DisaggregatedMetrics)
    assert metrics.total_tokens() == small_generative_workload.total_tokens()

    outcome = run_generative_apparate_disagg(SPEC, small_generative_workload,
                                             prefill_replicas=1,
                                             decode_replicas=2,
                                             fleet_mode="shared")
    assert len(set(id(p) for p in outcome.policies)) == 1    # one shared policy
    assert outcome.metrics.total_tokens() == \
        small_generative_workload.total_tokens()


def test_disagg_conserves_tokens_vs_single_engine():
    workload = make_generative_workload("cnn-dailymail", num_sequences=60,
                                        rate_qps=10.0, seed=5)
    single = run_generative_vanilla(SPEC, workload)
    disagg = run_generative_vanilla_disagg(SPEC, workload, prefill_replicas=2,
                                           decode_replicas=4)
    single_ids = Counter((t.sequence_id, t.token_index) for t in single.tokens)
    assert token_multiset(disagg) == single_ids


def test_disagg_summary_is_nan_safe():
    """A sentinel NaN/inf delay (a sequence that never finished its stage)
    must not leak into the JSON-bound summary; empty maps mean 0.0."""
    metrics = DisaggregatedMetrics()
    assert metrics.mean_prefill_delay_ms() == 0.0
    assert metrics.mean_transfer_ms() == 0.0

    metrics.prefill_delays_ms.update({0: 10.0, 1: float("nan"), 2: 30.0})
    metrics.transfer_delays_ms.update({0: float("nan"), 1: float("inf")})
    assert metrics.mean_prefill_delay_ms() == pytest.approx(20.0)
    assert metrics.mean_transfer_ms() == 0.0

    summary = metrics.summary()
    assert summary["prefill_delay_mean_ms"] == pytest.approx(20.0)
    assert summary["transfer_ms_mean"] == 0.0
    assert all(np.isfinite(v) for k, v in summary.items()
               if k.startswith(("prefill_", "transfer_")))
