"""Tests for request records and serving metrics."""

import numpy as np
import pytest

from repro.serving.metrics import ServingMetrics
from repro.serving.request import Request, Response, make_requests
from repro.workloads.video import make_video_workload


def make_response(request_id=0, latency=10.0, correct=True, dropped=False,
                  exited=False, queueing=2.0):
    return Response(request_id=request_id, arrival_ms=0.0, scheduled_ms=queueing,
                    completion_ms=latency, queueing_ms=queueing,
                    serving_ms=latency - queueing, latency_ms=latency,
                    batch_size=1, exited=exited, correct=correct, dropped=dropped)


def test_make_requests_pairs_trace_and_arrivals():
    workload = make_video_workload("urban-day", num_frames=50, seed=0)
    requests = make_requests(workload.trace, workload.arrival_times_ms, slo_ms=20.0)
    assert len(requests) == 50
    assert requests[10].sample.index == 10
    assert requests[10].deadline_ms() == pytest.approx(requests[10].arrival_ms + 20.0)


def test_make_requests_length_mismatch():
    workload = make_video_workload("urban-day", num_frames=50, seed=0)
    with pytest.raises(ValueError):
        make_requests(workload.trace, workload.arrival_times_ms[:10], slo_ms=20.0)


def test_response_met_slo():
    response = make_response(latency=15.0)
    assert response.met_slo(20.0)
    assert not response.met_slo(10.0)
    dropped = make_response(dropped=True)
    assert not dropped.met_slo(100.0)


class TestServingMetrics:
    def build(self):
        metrics = ServingMetrics()
        for i, (latency, correct, exited) in enumerate([
                (10.0, True, True), (20.0, True, False), (30.0, False, True),
                (40.0, True, False)]):
            metrics.add_response(make_response(i, latency, correct, exited=exited))
        metrics.add_response(make_response(99, 5.0, dropped=True))
        metrics.add_batch(12.0)
        metrics.add_batch(14.0)
        metrics.makespan_ms = 100.0
        return metrics

    def test_served_and_dropped_partition(self):
        metrics = self.build()
        assert len(metrics.served()) == 4
        assert len(metrics.dropped()) == 1
        assert metrics.drop_rate() == pytest.approx(1 / 5)

    def test_latency_summary(self):
        metrics = self.build()
        assert metrics.median_latency() == pytest.approx(25.0)
        assert metrics.p95_latency() == pytest.approx(np.percentile([10, 20, 30, 40], 95))

    def test_accuracy_and_exit_rate(self):
        metrics = self.build()
        assert metrics.accuracy() == pytest.approx(3 / 4)
        assert metrics.exit_rate() == pytest.approx(2 / 4)

    def test_throughput_and_batches(self):
        metrics = self.build()
        assert metrics.throughput_qps() == pytest.approx(1000.0 * 4 / 100.0)
        assert metrics.average_batch_size() == pytest.approx(2.0)
        assert metrics.gpu_utilization() == pytest.approx(26.0 / 100.0)

    def test_goodput_counts_only_slo_compliant(self):
        metrics = self.build()
        assert metrics.goodput_qps(25.0) == pytest.approx(1000.0 * 2 / 100.0)

    def test_slo_violation_rate(self):
        metrics = self.build()
        assert metrics.slo_violation_rate(25.0) == pytest.approx(0.5)

    def test_empty_metrics_are_benign(self):
        metrics = ServingMetrics()
        assert metrics.accuracy() == 1.0
        assert metrics.throughput_qps() == 0.0
        assert metrics.latency_summary()["count"] == 0

    def test_summary_keys(self):
        summary = self.build().summary()
        assert {"p25_ms", "p50_ms", "p95_ms", "throughput_qps", "accuracy",
                "exit_rate", "avg_batch_size", "drop_rate"} <= set(summary)
