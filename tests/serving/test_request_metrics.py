"""Tests for request records and serving metrics."""

import numpy as np
import pytest

from repro.serving.metrics import ClusterMetrics, ServingMetrics
from repro.serving.request import Request, Response, make_requests
from repro.workloads.video import make_video_workload


def make_response(request_id=0, latency=10.0, correct=True, dropped=False,
                  exited=False, queueing=2.0):
    return Response(request_id=request_id, arrival_ms=0.0, scheduled_ms=queueing,
                    completion_ms=latency, queueing_ms=queueing,
                    serving_ms=latency - queueing, latency_ms=latency,
                    batch_size=1, exited=exited, correct=correct, dropped=dropped)


def test_make_requests_pairs_trace_and_arrivals():
    workload = make_video_workload("urban-day", num_frames=50, seed=0)
    requests = make_requests(workload.trace, workload.arrival_times_ms, slo_ms=20.0)
    assert len(requests) == 50
    assert requests[10].sample.index == 10
    assert requests[10].deadline_ms() == pytest.approx(requests[10].arrival_ms + 20.0)


def test_make_requests_length_mismatch():
    workload = make_video_workload("urban-day", num_frames=50, seed=0)
    with pytest.raises(ValueError):
        make_requests(workload.trace, workload.arrival_times_ms[:10], slo_ms=20.0)


def test_response_met_slo():
    response = make_response(latency=15.0)
    assert response.met_slo(20.0)
    assert not response.met_slo(10.0)
    dropped = make_response(dropped=True)
    assert not dropped.met_slo(100.0)


class TestServingMetrics:
    def build(self):
        metrics = ServingMetrics()
        for i, (latency, correct, exited) in enumerate([
                (10.0, True, True), (20.0, True, False), (30.0, False, True),
                (40.0, True, False)]):
            metrics.add_response(make_response(i, latency, correct, exited=exited))
        metrics.add_response(make_response(99, 5.0, dropped=True))
        metrics.add_batch(12.0)
        metrics.add_batch(14.0)
        metrics.makespan_ms = 100.0
        return metrics

    def test_served_and_dropped_partition(self):
        metrics = self.build()
        assert len(metrics.served()) == 4
        assert len(metrics.dropped()) == 1
        assert metrics.drop_rate() == pytest.approx(1 / 5)

    def test_latency_summary(self):
        metrics = self.build()
        assert metrics.median_latency() == pytest.approx(25.0)
        assert metrics.p95_latency() == pytest.approx(np.percentile([10, 20, 30, 40], 95))

    def test_accuracy_and_exit_rate(self):
        metrics = self.build()
        assert metrics.accuracy() == pytest.approx(3 / 4)
        assert metrics.exit_rate() == pytest.approx(2 / 4)

    def test_throughput_and_batches(self):
        metrics = self.build()
        assert metrics.throughput_qps() == pytest.approx(1000.0 * 4 / 100.0)
        assert metrics.average_batch_size() == pytest.approx(2.0)
        assert metrics.gpu_utilization() == pytest.approx(26.0 / 100.0)

    def test_goodput_counts_only_slo_compliant(self):
        metrics = self.build()
        assert metrics.goodput_qps(25.0) == pytest.approx(1000.0 * 2 / 100.0)

    def test_slo_violation_rate(self):
        metrics = self.build()
        assert metrics.slo_violation_rate(25.0) == pytest.approx(0.5)

    def test_empty_metrics_are_benign(self):
        metrics = ServingMetrics()
        assert metrics.accuracy() == 1.0
        assert metrics.throughput_qps() == 0.0
        assert metrics.latency_summary()["count"] == 0

    def test_summary_keys(self):
        summary = self.build().summary()
        assert {"p25_ms", "p50_ms", "p95_ms", "p99_ms", "throughput_qps",
                "accuracy", "exit_rate", "avg_batch_size", "drop_rate"} <= set(summary)


class TestServingMetricsEdgeCases:
    def test_empty_run_summary_is_all_zero_and_safe(self):
        metrics = ServingMetrics()
        summary = metrics.summary()
        for key in ("p25_ms", "p50_ms", "p95_ms", "p99_ms", "mean_ms",
                    "throughput_qps", "avg_batch_size", "drop_rate", "num_served"):
            assert summary[key] == 0.0
        assert summary["accuracy"] == 1.0  # vacuous: no served requests
        assert metrics.exit_rate() == 0.0
        assert metrics.slo_violation_rate(10.0) == 0.0
        assert metrics.goodput_qps(10.0) == 0.0
        assert metrics.latencies().shape == (0,)

    def test_all_dropped_run(self):
        metrics = ServingMetrics()
        for i in range(5):
            metrics.add_response(make_response(i, latency=50.0, dropped=True))
        metrics.makespan_ms = 100.0
        assert metrics.drop_rate() == 1.0
        assert len(metrics.served()) == 0
        # Percentiles are computed over *served* responses only.
        summary = metrics.summary()
        assert summary["p50_ms"] == 0.0 and summary["p99_ms"] == 0.0
        assert summary["throughput_qps"] == 0.0
        assert metrics.goodput_qps(1000.0) == 0.0
        assert metrics.accuracy() == 1.0
        assert metrics.slo_violation_rate(10.0) == 0.0

    def test_single_response_run(self):
        metrics = ServingMetrics()
        metrics.add_response(make_response(0, latency=12.0))
        metrics.add_batch(10.0)
        metrics.makespan_ms = 12.0
        summary = metrics.summary()
        # Every percentile of a singleton distribution is that value.
        for key in ("p25_ms", "p50_ms", "p95_ms", "p99_ms", "mean_ms"):
            assert summary[key] == pytest.approx(12.0)
        assert summary["num_served"] == 1.0
        assert metrics.average_batch_size() == pytest.approx(1.0)
        assert metrics.throughput_qps() == pytest.approx(1000.0 / 12.0)

    def test_zero_makespan_guards(self):
        metrics = ServingMetrics()
        metrics.add_response(make_response(0, latency=12.0))
        assert metrics.throughput_qps() == 0.0
        assert metrics.gpu_utilization() == 0.0


class TestClusterMetrics:
    def build(self):
        replicas = []
        for offset in (0.0, 20.0):
            m = ServingMetrics()
            for i in range(4):
                m.add_response(make_response(int(offset) + i, latency=10.0 + offset + i))
            m.add_batch(30.0 + offset)
            m.makespan_ms = 80.0 + offset
            replicas.append(m)
        return ClusterMetrics(replicas=replicas, dispatch_counts=[4, 4],
                              makespan_ms=120.0)

    def test_aggregate_merges_all_responses(self):
        cluster = self.build()
        agg = cluster.aggregate()
        assert len(agg.responses) == 8
        assert agg.num_batches == 2
        assert agg.gpu_busy_ms == pytest.approx(80.0)
        # Fleet throughput is measured on the global clock, not per-replica.
        assert agg.makespan_ms == pytest.approx(120.0)
        assert cluster.fleet_throughput_qps() == pytest.approx(1000.0 * 8 / 120.0)

    def test_per_replica_vs_aggregate_consistency(self):
        cluster = self.build()
        agg = cluster.aggregate()
        assert len(agg.served()) == sum(len(m.served()) for m in cluster.replicas)
        assert agg.gpu_busy_ms == pytest.approx(sum(m.gpu_busy_ms for m in cluster.replicas))
        assert len(cluster.per_replica_summaries()) == 2

    def test_fleet_rollups(self):
        cluster = self.build()
        assert cluster.num_replicas() == 2
        assert cluster.dispatch_imbalance() == pytest.approx(1.0)
        # busy = 80ms over 2 replicas x 120ms of wall clock.
        assert cluster.fleet_gpu_utilization() == pytest.approx(80.0 / 240.0)
        summary = cluster.summary(slo_ms=15.0)
        assert summary["num_replicas"] == 2.0
        assert "fleet_goodput_qps" in summary and "fleet_slo_violation_rate" in summary
        # Requests with latency <= 15ms: 10,11,12,13 -> 4 of 8.
        assert cluster.fleet_slo_violation_rate(15.0) == pytest.approx(0.5)

    def test_empty_cluster_metrics(self):
        cluster = ClusterMetrics()
        assert cluster.fleet_throughput_qps() == 0.0
        assert cluster.fleet_gpu_utilization() == 0.0
        assert cluster.dispatch_imbalance() == 1.0

    def test_cluster_latency_summary_is_nan_safe_when_nothing_completes(self):
        """All-dropped or drained-to-empty runs report zeroed percentiles and
        count fields instead of raising or emitting NaN."""
        import math
        cluster = ClusterMetrics(replicas=[ServingMetrics(), ServingMetrics()],
                                 dispatch_counts=[0, 0], makespan_ms=100.0)
        summary = cluster.latency_summary()
        assert summary == {"p25": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
                           "mean": 0.0, "count": 0}
        assert cluster.p99_latency() == 0.0
        assert cluster.median_latency() == 0.0
        assert all(math.isfinite(v) for v in cluster.summary().values())

    def test_latency_summary_filters_non_finite_samples(self):
        from repro.utils.stats import summarize_latencies
        summary = summarize_latencies([float("nan"), 10.0, float("inf"), 20.0])
        assert summary["count"] == 2
        assert summary["p50"] == pytest.approx(15.0)
        all_bad = summarize_latencies([float("nan")])
        assert all_bad["count"] == 0 and all_bad["p99"] == 0.0

    def test_merged_respects_explicit_makespan(self):
        a, b = ServingMetrics(), ServingMetrics()
        a.makespan_ms, b.makespan_ms = 50.0, 70.0
        assert ServingMetrics.merged([a, b]).makespan_ms == pytest.approx(70.0)
        assert ServingMetrics.merged([a, b], makespan_ms=90.0).makespan_ms == pytest.approx(90.0)
