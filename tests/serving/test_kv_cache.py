"""KV-cache accounting, eviction events and KV-aware placement.

Covers the resource-view refactor end to end: the per-replica
:class:`KVCacheAccountant` (admission, prefix reuse, LRU eviction with
recompute charges), the KV-aware cost balancers and their per-kind registry,
the spec-layer validation of the new knobs, and the platform guarantee that
the cache model is strictly additive — with the budget off (or effectively
unbounded and no prefix structure) runs are bit-identical to the
pre-existing behaviour.
"""

import numpy as np
import pytest

from repro.api import ClusterSpec, Experiment, WorkloadSpec
from repro.cli import build_parser
from repro.core.generative import build_generative_cluster
from repro.generative.decoding import KVCacheAccountant, kv_bytes_per_token
from repro.generative.sequences import SequenceSample, make_generative_workload
from repro.models.zoo import get_model
from repro.serving.cluster import (KVAwareLeastWorkBalancer,
                                   PrefixAffinityBalancer, balancer_names,
                                   build_balancer, canonical_balancer_name)
from repro.serving.hf_pipelines import VanillaTokenPolicy

SPEC = get_model("t5-large")
BPT = kv_bytes_per_token(SPEC)


def sample(seq_id, prompt=100, out=10, group=None, shared=0):
    return SequenceSample(sequence_id=seq_id, arrival_ms=0.0,
                          token_difficulty=np.full(out, 0.3),
                          token_sharpness=np.full(out, 0.05),
                          prompt_tokens=prompt, prefix_group=group,
                          shared_prefix_tokens=shared)


def accountant(capacity_tokens, recompute_ms_per_token=0.0):
    """Token-denominated accountant (bytes_per_token=1)."""
    return KVCacheAccountant(capacity_bytes=float(capacity_tokens),
                             bytes_per_token=1.0,
                             recompute_ms_per_token=recompute_ms_per_token)


# ------------------------------------------------------------- accountant

def test_admit_charges_full_footprint():
    kv = accountant(1e6)
    hit = kv.admit(sample(0, prompt=100, out=10), completion_ms=50.0)
    assert hit == 0
    assert kv.used_tokens == 110
    assert kv.hit_tokens == 0 and kv.miss_tokens == 100
    assert len(kv) == 1


def test_admission_tokens_matches_used_delta():
    kv = accountant(1e6)
    for s in (sample(0, prompt=80, out=5),
              sample(1, prompt=60, out=7, group=3, shared=40),
              sample(2, prompt=90, out=2, group=3, shared=40)):
        expected = kv.admission_tokens(s)
        before = kv.used_tokens
        kv.admit(s, completion_ms=1e9)
        assert kv.used_tokens - before == expected


def test_shared_prefix_stored_once_and_hits():
    kv = accountant(1e6)
    first = kv.admit(sample(0, prompt=100, out=10, group=7, shared=40), 1e9)
    second = kv.admit(sample(1, prompt=90, out=5, group=7, shared=40), 1e9)
    assert first == 0 and second == 40
    # 40 shared tokens charged once: (100-40+10) + 40 + (90-40+5).
    assert kv.used_tokens == 70 + 40 + 55
    assert kv.hit_tokens == 40 and kv.miss_tokens == 100 + 50


def test_prefix_hit_is_a_pure_peek():
    kv = accountant(1e6)
    member = sample(0, prompt=100, out=10, group=7, shared=40)
    assert kv.prefix_hit_tokens(member) == 0
    assert kv.used_tokens == 0 and len(kv) == 0
    kv.admit(member, 1e9)
    assert kv.prefix_hit_tokens(sample(1, prompt=50, out=3, group=7,
                                       shared=40)) == 40


def test_finished_sequences_evict_for_free():
    kv = accountant(150)
    kv.admit(sample(0, prompt=100, out=10), completion_ms=50.0)
    kv.admit(sample(1, prompt=100, out=10), completion_ms=1e9)
    assert kv.needs_eviction()
    charges = kv.evict_to_fit(now_ms=100.0)   # seq 0 already finished
    assert charges == []
    assert kv.evictions == 1 and kv.evicted_tokens == 110
    assert kv.recompute_tokens == 0
    assert not kv.over_capacity()


def test_running_victim_pays_recompute():
    kv = accountant(150, recompute_ms_per_token=2.0)
    kv.admit(sample(0, prompt=100, out=10), completion_ms=1e9)
    kv.admit(sample(1, prompt=100, out=10), completion_ms=1e9)
    charges = kv.evict_to_fit(now_ms=0.0)
    assert charges == [(0, 220.0)]            # LRU victim, 110 tokens * 2 ms
    assert kv.recompute_tokens == 110
    assert 0 not in kv._resident and 1 in kv._resident


def test_mru_is_never_evicted():
    kv = accountant(50)
    kv.admit(sample(0, prompt=100, out=10), completion_ms=1e9)
    assert kv.over_capacity() and not kv.needs_eviction()
    assert kv.evict_to_fit(now_ms=0.0) == []  # oversized singleton tolerated
    assert kv.over_capacity()


def test_group_tokens_freed_with_last_member():
    kv = accountant(70)
    kv.admit(sample(0, prompt=60, out=5, group=1, shared=40), 1e9)
    kv.admit(sample(1, prompt=50, out=5, group=1, shared=40), 1e9)
    assert kv.used_tokens == 40 + 25 + 15     # prefix charged once
    kv.evict_to_fit(now_ms=0.0)               # evicts seq 0 (25 unique)
    assert kv.used_tokens == 40 + 15          # prefix survives with seq 1
    kv.admit(sample(2, prompt=200, out=10), 1e9)
    kv.evict_to_fit(now_ms=0.0)               # seq 1 out -> prefix freed too
    assert 1 not in kv._resident
    assert kv._group_tokens == {} and kv._group_refs == {}


def test_counters_conserved_over_admissions():
    kv = accountant(1e6)
    samples = [sample(i, prompt=50 + 7 * i, out=5,
                      group=(i % 2 if i % 3 else None),
                      shared=(30 if i % 3 else 0)) for i in range(12)]
    for s in samples:
        kv.admit(s, completion_ms=1e9)
    assert kv.hit_tokens + kv.miss_tokens == sum(s.prompt_tokens
                                                 for s in samples)


def test_accountant_rejects_bad_parameters():
    with pytest.raises(ValueError):
        KVCacheAccountant(capacity_bytes=0.0, bytes_per_token=1.0)
    with pytest.raises(ValueError):
        KVCacheAccountant(capacity_bytes=float("inf"), bytes_per_token=1.0)
    with pytest.raises(ValueError):
        KVCacheAccountant(capacity_bytes=1.0, bytes_per_token=0.0)
    with pytest.raises(ValueError):
        KVCacheAccountant(capacity_bytes=1.0, bytes_per_token=1.0,
                          recompute_ms_per_token=-1.0)


# ------------------------------------------------- KV-aware balancer costs

class _View:
    """A stub resource view exposing the ReplicaHandle cost signals."""

    def __init__(self, work=0.0, hit_ms=0.0, overflow_ms=0.0):
        self._work, self._hit_ms, self._overflow = work, hit_ms, overflow_ms

    def work_left_ms(self, now_ms):
        return self._work

    def kv_prefix_hit_ms(self, item):
        return self._hit_ms

    def kv_overflow_ms(self, item, now_ms):
        return self._overflow


def test_prefix_affinity_prefers_residency_over_less_work():
    # Replica 1 is busier, but its resident prefix saves more prefill than
    # the extra queueing costs: net placement there is cheaper.
    balancer = PrefixAffinityBalancer()
    views = [_View(work=0.0), _View(work=100.0, hit_ms=150.0)]
    assert balancer.choose(object(), views, now_ms=0.0) == 1


def test_prefix_affinity_spills_instead_of_herding():
    # Once the resident replica's queue outgrows the prefill saving, the
    # group spills to an idle replica rather than piling onto the hotspot.
    balancer = PrefixAffinityBalancer()
    views = [_View(work=0.0), _View(work=500.0, hit_ms=150.0)]
    assert balancer.choose(object(), views, now_ms=0.0) == 0


def test_prefix_affinity_avoids_thrashing_replicas():
    balancer = PrefixAffinityBalancer()
    views = [_View(work=0.0, overflow_ms=400.0),
             _View(work=100.0, hit_ms=50.0)]
    assert balancer.choose(object(), views, now_ms=0.0) == 1


def test_prefix_affinity_falls_back_to_least_work():
    balancer = PrefixAffinityBalancer()
    views = [_View(work=300.0), _View(work=100.0)]
    assert balancer.choose(object(), views, now_ms=0.0) == 1


def test_kv_aware_least_work_adds_overflow_penalty():
    balancer = KVAwareLeastWorkBalancer()
    # Replica 0 has the shorter queue but would thrash its cache.
    views = [_View(work=100.0, overflow_ms=500.0), _View(work=200.0)]
    assert balancer.choose(object(), views, now_ms=0.0) == 1
    # No overflow anywhere -> exactly least_work_left.
    views = [_View(work=100.0), _View(work=200.0)]
    assert balancer.choose(object(), views, now_ms=0.0) == 0


# ------------------------------------ registry reachability and messages

@pytest.mark.parametrize("kind", ["classification", "generative"])
def test_every_registered_balancer_is_constructible(kind):
    for name in balancer_names(kind):
        balancer = build_balancer(name, kind=kind)
        assert balancer.name == name


def test_kv_balancers_are_generative_only():
    classification = set(balancer_names("classification"))
    generative = set(balancer_names("generative"))
    assert {"kv_aware_least_work", "prefix_affinity"} <= generative
    assert not {"kv_aware_least_work", "prefix_affinity"} & classification
    assert set(balancer_names()) == classification | generative


@pytest.mark.parametrize("kind", [None, "classification", "generative"])
def test_unknown_balancer_error_enumerates_kind_names(kind):
    with pytest.raises(ValueError) as excinfo:
        build_balancer("no-such-policy", kind=kind)
    message = str(excinfo.value)
    for name in balancer_names(kind):
        assert name in message


def test_wrong_kind_error_enumerates_alternatives():
    with pytest.raises(ValueError) as excinfo:
        build_balancer("prefix_affinity", kind="classification")
    message = str(excinfo.value)
    assert "classification" in message
    for name in balancer_names("classification"):
        assert name in message
    assert canonical_balancer_name("prefix_affinity", kind="generative") \
        == "prefix_affinity"


def test_cli_balancer_strings_reach_the_registry():
    """Every CLI-acceptable spelling builds the balancer it names."""
    parser = build_parser()
    for name in balancer_names("generative"):
        args = parser.parse_args(["generate", "--balancer", name])
        assert build_balancer(args.balancer, kind="generative").name == name
    for name in balancer_names("classification"):
        args = parser.parse_args(["classify", "--balancer", name])
        assert build_balancer(args.balancer, kind="classification").name == name
    # Hyphenated spellings normalize before the choices check.
    args = parser.parse_args(["generate", "--balancer", "prefix-affinity"])
    assert args.balancer == "prefix_affinity"


# ----------------------------------------------------- spec validation

def test_prefix_knobs_rejected_on_non_generative_workloads():
    with pytest.raises(ValueError, match="generative"):
        WorkloadSpec(kind="video", source="urban-day", requests=10,
                     prefix_groups=2)


def test_prefix_knob_ranges_validated():
    with pytest.raises(ValueError):
        WorkloadSpec(kind="generative", requests=10, prefix_groups=-1)
    with pytest.raises(ValueError):
        WorkloadSpec(kind="generative", requests=10, prefix_groups=2,
                     prefix_share=0.0)
    with pytest.raises(ValueError):
        WorkloadSpec(kind="generative", requests=10, prefix_groups=2,
                     prefix_tokens=0)
    # Inert when disabled: out-of-range share is fine with groups=0.
    WorkloadSpec(kind="generative", requests=10, prefix_groups=0)


@pytest.mark.parametrize("capacity", [0.0, -1.0, float("nan"), float("inf")])
def test_cluster_spec_rejects_bad_kv_capacity(capacity):
    with pytest.raises(ValueError, match="kv_capacity"):
        ClusterSpec(replicas=2, kv_capacity=capacity)


def test_kv_capacity_rejected_on_classification_models():
    experiment = Experiment(
        model="resnet50",
        workload=WorkloadSpec.parse("video:urban-day", requests=50),
        cluster=ClusterSpec(replicas=2, kv_capacity=1e9))
    with pytest.raises(ValueError, match="generative"):
        experiment.kind


# ------------------------------------------------- workload prefix stream

def test_prefix_structure_leaves_existing_streams_untouched():
    base = make_generative_workload("squad", num_sequences=30, rate_qps=4.0,
                                    seed=11)
    prefixed = make_generative_workload("squad", num_sequences=30,
                                        rate_qps=4.0, seed=11,
                                        prefix_groups=6, prefix_share=0.9,
                                        prefix_tokens=128)
    assert any(s.prefix_group is not None for s in prefixed.sequences)
    for a, b in zip(base.sequences, prefixed.sequences):
        assert a.arrival_ms == b.arrival_ms
        assert np.array_equal(a.token_difficulty, b.token_difficulty)
        assert np.array_equal(a.token_sharpness, b.token_sharpness)
        # Shared tokens are *prepended*: the base prompt draw is unchanged.
        assert b.prompt_tokens - b.shared_prefix_tokens == a.prompt_tokens


# --------------------------------------------------- platform end-to-end

def _run_cluster(workload, **kwargs):
    cluster = build_generative_cluster("t5-large", 2, seed=0, **kwargs)
    policy = VanillaTokenPolicy()
    return cluster.run(workload, lambda ordinal: policy)


def test_unbounded_kv_capacity_is_bit_identical_to_off():
    workload = make_generative_workload("squad", num_sequences=40,
                                        rate_qps=4.0, seed=3)
    base = _run_cluster(workload, balancer="least_work_left")
    kv = _run_cluster(workload, balancer="least_work_left", kv_capacity=1e15)
    base_summary = base.summary()
    kv_summary = kv.summary()
    assert "kv_hit_rate" not in base_summary
    assert kv_summary["kv_evictions"] == 0
    assert {k: v for k, v in kv_summary.items()
            if not k.startswith("kv_")} == base_summary


def test_kv_balancers_match_least_work_without_cache_model():
    """With no capacity the KV signals read 0 on every replica, so both new
    policies must make exactly least_work_left's choices."""
    workload = make_generative_workload("squad", num_sequences=40,
                                        rate_qps=4.0, seed=3)
    reference = _run_cluster(workload, balancer="least_work_left").summary()
    for balancer in ("kv_aware_least_work", "prefix_affinity"):
        assert _run_cluster(workload, balancer=balancer).summary() \
            == reference


def test_tiny_capacity_evicts_and_conserves_token_counters():
    workload = make_generative_workload("squad", num_sequences=40,
                                        rate_qps=6.0, seed=5,
                                        prefix_groups=4, prefix_share=0.9,
                                        prefix_tokens=128)
    metrics = _run_cluster(workload, balancer="prefix_affinity",
                           prefill_in_slot=True,
                           kv_capacity=300.0 * BPT)
    aggregate = metrics.aggregate()
    assert aggregate.kv_enabled
    assert aggregate.kv_evictions > 0 and aggregate.kv_evicted_tokens > 0
    # Every served sequence is admitted exactly once: hit + miss covers the
    # full prompt-token volume of the workload.
    assert aggregate.kv_hit_tokens + aggregate.kv_miss_tokens \
        == workload.total_prompt_tokens()
    summary = metrics.summary()
    total = aggregate.kv_hit_tokens + aggregate.kv_miss_tokens
    assert summary["kv_hit_rate"] == pytest.approx(
        aggregate.kv_hit_tokens / total)
    assert summary["kv_evictions"] == aggregate.kv_evictions
    assert summary["kv_recompute_tokens"] == aggregate.kv_recompute_tokens


def test_prefix_affinity_earns_hits_under_shared_prefix_load():
    workload = make_generative_workload("squad", num_sequences=60,
                                        rate_qps=6.0, seed=7,
                                        prefix_groups=4, prefix_share=0.9,
                                        prefix_tokens=160)
    affine = _run_cluster(workload, balancer="prefix_affinity",
                          prefill_in_slot=True,
                          kv_capacity=4000.0 * BPT).aggregate()
    blind = _run_cluster(workload, balancer="least_work_left",
                         prefill_in_slot=True,
                         kv_capacity=4000.0 * BPT).aggregate()
    assert affine.kv_hit_tokens > 0
    assert affine.kv_hit_tokens >= blind.kv_hit_tokens
