"""Tests for the declarative Experiment facade: runs, shims, sweeps, JSON."""

import json

import pytest

from repro.api import (ClusterSpec, Experiment, ExitPolicySpec, WorkloadSpec,
                       KIND_CLASSIFICATION, KIND_CLUSTER, KIND_GENERATIVE)
from repro.core.generative import run_generative_apparate
from repro.core.pipeline import run_apparate, run_apparate_cluster, run_vanilla
from repro.baselines.static_ee import StaticEEVariant, run_static_ee


WORKLOAD = WorkloadSpec("video", "urban-day", requests=500)


# ------------------------------------------------------------------- basics

def test_kind_dispatch():
    assert Experiment(model="resnet50", workload=WORKLOAD).kind == KIND_CLASSIFICATION
    assert Experiment(model="resnet50", workload=WORKLOAD,
                      cluster=ClusterSpec(replicas=2)).kind == KIND_CLUSTER
    generative = Experiment(model="t5-large",
                            workload=WorkloadSpec("generative", requests=10))
    assert generative.kind == KIND_GENERATIVE


def test_run_produces_report_with_named_metrics():
    report = Experiment(model="resnet50", workload=WORKLOAD, seed=3) \
        .run(["vanilla", "apparate"])
    assert report.systems() == ["vanilla", "apparate"]
    for system in ("vanilla", "apparate"):
        summary = report.result(system).summary
        assert {"p50_ms", "p95_ms", "throughput_qps", "accuracy"} <= set(summary)
    assert report.result("apparate").metric("exit_rate") > 0.0


def test_run_rejects_mismatched_workload_kind():
    with pytest.raises(ValueError, match="generative"):
        Experiment(model="t5-large", workload=WORKLOAD).run(["vanilla"])
    with pytest.raises(ValueError, match="resnet50"):
        Experiment(model="resnet50",
                   workload=WorkloadSpec("generative", requests=10)).run(["vanilla"])


def test_run_rejects_unsupported_system_for_kind():
    with pytest.raises(ValueError, match="free"):
        Experiment(model="resnet50", workload=WORKLOAD).run(["free"])
    with pytest.raises(ValueError, match="static_ee"):
        Experiment(model="resnet50", workload=WORKLOAD,
                   cluster=ClusterSpec(replicas=2)).run(["static_ee"])


def test_spec_validation_names_the_offending_value():
    with pytest.raises(ValueError, match="-3"):
        ClusterSpec(replicas=-3)
    with pytest.raises(ValueError, match="coin_flip"):
        ClusterSpec(balancer="coin_flip")
    with pytest.raises(ValueError, match="anarchic"):
        ClusterSpec(fleet_mode="anarchic")
    with pytest.raises(ValueError, match="audio"):
        WorkloadSpec("audio")
    with pytest.raises(ValueError, match="-0.5"):
        ExitPolicySpec(accuracy_constraint=-0.5)


# ---------------------------------------------------------------- shim parity

def test_run_vanilla_shim_equals_experiment(small_video_workload):
    shim = run_vanilla("resnet50", small_video_workload, seed=4)
    report = Experiment(model="resnet50", workload=small_video_workload,
                        seed=4).run(["vanilla"])
    assert shim.summary() == report.result("vanilla").summary


def test_run_apparate_shim_equals_experiment(small_video_workload):
    shim = run_apparate("resnet50", small_video_workload, seed=4,
                        accuracy_constraint=0.02)
    report = Experiment(model="resnet50", workload=small_video_workload, seed=4,
                        ee=ExitPolicySpec(accuracy_constraint=0.02)) \
        .run(["apparate"])
    assert shim.summary() == report.result("apparate").summary


def test_cluster_shim_equals_experiment(small_video_workload):
    shim = run_apparate_cluster("resnet50", small_video_workload, replicas=2,
                                balancer="join_shortest_queue",
                                fleet_mode="shared", seed=4)
    cluster = ClusterSpec(replicas=2, balancer="join_shortest_queue",
                          fleet_mode="shared")
    report = Experiment(model="resnet50", workload=small_video_workload,
                        cluster=cluster, seed=4).run(["apparate"])
    assert shim.summary() == report.result("apparate").summary


def test_generative_shim_equals_experiment(small_generative_workload):
    shim = run_generative_apparate("t5-large", small_generative_workload, seed=4)
    report = Experiment(model="t5-large", workload=small_generative_workload,
                        seed=4).run(["apparate"])
    assert shim.summary() == report.result("apparate").summary


def test_system_overrides_reach_the_runner(small_video_workload):
    """Per-system overrides carry knobs only one system understands."""
    shim = run_static_ee("resnet50", small_video_workload,
                         variant=StaticEEVariant.PER_RAMP, seed=4)
    report = Experiment(
        model="resnet50", workload=small_video_workload, seed=4,
        overrides={"static_ee": {"variant": StaticEEVariant.PER_RAMP}}) \
        .run(["static_ee"])
    result = report.result("static_ee")
    assert result.details["variant"] == "per_ramp"
    assert shim.summary() == result.summary


def test_generative_cluster_runs_every_generative_system():
    """A cluster spec on a generative model dispatches to the generative
    fleet control plane (the old 'not yet supported' rejection is gone)."""
    experiment = Experiment(model="t5-large",
                            workload=WorkloadSpec("generative", requests=24),
                            cluster=ClusterSpec(replicas=4))
    assert experiment.kind == "generative_cluster"
    report = experiment.run(["vanilla", "apparate", "free", "optimal"])
    for system in ("vanilla", "apparate", "free", "optimal"):
        summary = report.result(system).summary
        assert summary["num_replicas"] == 4.0
        assert summary["peak_replicas"] == 4.0
        assert {"tpt_p50_ms", "token_p99_ms", "dispatch_imbalance"} <= set(summary)


def test_remaining_unsupported_combinations_name_the_offenders():
    """Kind-unsupported systems raise naming the system, kind and model."""
    generative_cluster = Experiment(
        model="t5-large", workload=WorkloadSpec("generative", requests=5),
        cluster=ClusterSpec(replicas=2))
    with pytest.raises(ValueError, match="static_ee.*generative_cluster.*t5-large"):
        generative_cluster.run(["static_ee"])
    with pytest.raises(ValueError, match="two_layer"):
        generative_cluster.run(["two_layer"])
    with pytest.raises(ValueError, match="free.*cluster.*resnet50"):
        Experiment(model="resnet50", workload=WORKLOAD,
                   cluster=ClusterSpec(replicas=2)).run(["free"])


def test_optimal_runs_on_the_experiment_drop_policy():
    """The oracle must be computed on the same drop_expired configuration."""
    workload = WorkloadSpec("video", requests=400, rate=240.0)
    report = Experiment(model="resnet50", workload=workload,
                        drop_expired=False, seed=0).run(["vanilla", "optimal"])
    assert report.result("vanilla").metric("num_served") == 400.0
    assert report.result("optimal").metric("num_served") == 400.0


def test_describe_records_all_run_shaping_knobs():
    experiment = Experiment(model="resnet50", workload=WORKLOAD,
                            drop_expired=False, max_batch_size=8,
                            ee=ExitPolicySpec(ramp_adjustment_enabled=False,
                                              initial_ramp_ids=(2, 5)))
    params = experiment.describe()
    assert params["drop_expired"] is False
    assert params["max_batch_size"] == 8
    assert params["ee"]["ramp_adjustment_enabled"] is False
    assert params["ee"]["initial_ramp_ids"] == [2, 5]


def test_overrides_keyed_by_alias_reach_the_canonical_system():
    experiment = Experiment(model="resnet50",
                            workload=WorkloadSpec("video", requests=100),
                            overrides={"static": {"variant": "per_ramp"}})
    result = experiment.run(["static_ee"]).result("static_ee")
    assert result.details["variant"] == "per_ramp"


def test_overrides_for_unknown_system_raise():
    experiment = Experiment(model="resnet50",
                            workload=WorkloadSpec("video", requests=100),
                            overrides={"static_eee": {"variant": "per_ramp"}})
    with pytest.raises(ValueError, match="static_eee"):
        experiment.run(["static_ee"])


def test_unknown_override_keyword_raises_value_error():
    experiment = Experiment(model="resnet50",
                            workload=WorkloadSpec("video", requests=100),
                            overrides={"vanilla": {"bogus_knob": 1}})
    with pytest.raises(ValueError, match="bogus_knob"):
        experiment.run(["vanilla"])


# -------------------------------------------------------------------- sweeps

def test_sweep_over_replicas_and_balancer():
    experiment = Experiment(model="resnet50",
                            workload=WorkloadSpec("video", requests=300))
    sweep = experiment.sweep(systems=["vanilla"], replicas=[1, 2],
                             balancer=["round_robin", "join_shortest_queue"])
    assert len(sweep) == 4
    assert [p.params for p in sweep][:2] == [
        {"replicas": 1, "balancer": "round_robin"},
        {"replicas": 1, "balancer": "join_shortest_queue"},
    ]
    for point in sweep:
        assert point.report.result("vanilla").kind == KIND_CLUSTER
        assert point.report.result("vanilla").metric("num_served") == 300.0


def test_sweep_is_deterministic():
    experiment = Experiment(model="resnet50",
                            workload=WorkloadSpec("video", requests=300), seed=9)
    first = experiment.sweep(systems=["vanilla", "apparate"], replicas=[1, 2])
    second = experiment.sweep(systems=["vanilla", "apparate"], replicas=[1, 2])
    assert first.to_json() == second.to_json()


def test_sweep_rejects_unknown_parameter():
    experiment = Experiment(model="resnet50", workload=WORKLOAD)
    with pytest.raises(ValueError, match="voltage"):
        experiment.sweep(voltage=[1, 2])


def test_sweep_validates_whole_grid_before_running(monkeypatch):
    """A bad value anywhere in the grid must fail before any point runs."""
    import repro.api.registry as registry
    ran = []
    monkeypatch.setattr(
        registry.SystemRunner, "run",
        lambda self, experiment, **kw: ran.append(self.name))
    experiment = Experiment(model="resnet50",
                            workload=WorkloadSpec("video", requests=100))
    with pytest.raises(ValueError, match="coin_flip"):
        experiment.sweep(systems=["vanilla"],
                         balancer=["round_robin", "coin_flip"])
    assert ran == [], "grid points ran before the grid was fully validated"


def test_sweep_workload_axis_requires_spec(small_video_workload):
    experiment = Experiment(model="resnet50", workload=small_video_workload)
    with pytest.raises(ValueError, match="WorkloadSpec"):
        experiment.sweep(requests=[100, 200])


def test_sweep_shares_workload_when_no_workload_axis(monkeypatch):
    """Sweeping replicas must not regenerate the identical workload per point."""
    builds = []
    original_build = WorkloadSpec.build

    def counting_build(self, default_seed=0):
        builds.append(default_seed)
        return original_build(self, default_seed)

    monkeypatch.setattr(WorkloadSpec, "build", counting_build)
    experiment = Experiment(model="resnet50",
                            workload=WorkloadSpec("video", requests=100))
    experiment.sweep(systems=["vanilla"], replicas=[1, 2, 4])
    assert len(builds) == 1
    # Sweeping the seed must rebuild, since the trace depends on it.
    builds.clear()
    experiment2 = Experiment(model="resnet50",
                             workload=WorkloadSpec("video", requests=100))
    experiment2.sweep(systems=["vanilla"], replicas=[1], seed=[0, 1])
    assert len(builds) == 2


def test_sweep_scalar_values_are_promoted_to_axes():
    experiment = Experiment(model="resnet50",
                            workload=WorkloadSpec("video", requests=200))
    sweep = experiment.sweep(systems=["vanilla"], replicas=2, seed=5)
    assert len(sweep) == 1
    assert sweep.points[0].params == {"replicas": 2, "seed": 5}


# ---------------------------------------------------- disaggregated serving

def test_disagg_kind_dispatch_and_validation():
    generative = WorkloadSpec("generative", requests=10)
    disagg = Experiment(model="t5-large", workload=generative,
                        cluster=ClusterSpec(replicas=2, disaggregate=True))
    assert disagg.kind == "generative_disagg"
    # A non-generative model cannot disaggregate.
    with pytest.raises(ValueError, match="disaggregate.*generative"):
        Experiment(model="resnet50", workload=WORKLOAD,
                   cluster=ClusterSpec(replicas=2, disaggregate=True)).kind


def test_cluster_spec_rejects_pool_keys_without_disaggregate():
    """Pool knobs on a monolithic spec would be silently dead configuration,
    so construction rejects them naming the offending key."""
    with pytest.raises(ValueError, match="prefill_replicas"):
        ClusterSpec(replicas=2, prefill_replicas=3)
    with pytest.raises(ValueError, match="decode_autoscaler"):
        ClusterSpec(replicas=2, decode_autoscaler="reactive")


def test_cluster_spec_rejects_fleet_sizing_keys_with_disaggregate():
    """The converse dead-configuration class: fleet-wide bounds/profiles
    have no meaning once the fleet is split into pools."""
    with pytest.raises(ValueError, match="min_replicas.*prefill"):
        ClusterSpec(replicas=2, disaggregate=True, autoscaler="reactive",
                    min_replicas=2)
    with pytest.raises(ValueError, match="profiles"):
        ClusterSpec(replicas=2, disaggregate=True, profiles="2,1")
    with pytest.raises(ValueError, match="prefill_in_slot"):
        ClusterSpec(replicas=2, disaggregate=True, prefill_in_slot=True)
    # describe() reports only the knobs that actually apply per deployment.
    disagg = ClusterSpec(replicas=2, disaggregate=True).describe()
    assert "min_replicas" not in disagg and "profiles" not in disagg
    assert "decode_min_replicas" in disagg


def test_prefill_in_slot_is_a_generative_cluster_knob():
    """prefill_in_slot reaches the monolithic generative fleet through the
    public spec surface (and is rejected on classification models)."""
    workload = WorkloadSpec("generative", requests=10, rate=20.0)
    spec = ClusterSpec(replicas=1, prefill_in_slot=True)
    inslot = Experiment(model="t5-large", workload=workload, cluster=spec) \
        .run(["vanilla"]).result("vanilla")
    free_prompts = Experiment(model="t5-large", workload=workload,
                              cluster=ClusterSpec(replicas=1)) \
        .run(["vanilla"]).result("vanilla")
    # Charging prefill in the decode slot can only lengthen TTFT.
    assert inslot.summary["ttft_mean_ms"] > free_prompts.summary["ttft_mean_ms"]
    with pytest.raises(ValueError, match="prefill_in_slot.*generative"):
        Experiment(model="resnet50", workload=WORKLOAD, cluster=spec).kind


def test_explicit_unknown_arrival_process_raises_per_kind():
    """An explicitly named process the kind's factory does not know raises
    instead of silently serving a different trace."""
    with pytest.raises(ValueError, match="maf"):
        WorkloadSpec("generative", requests=5, arrival_process="maf").build()
    with pytest.raises(ValueError, match="diurnal"):
        WorkloadSpec("nlp", requests=5, arrival_process="diurnal").build()
    # None picks each kind's default process.
    WorkloadSpec("generative", requests=5).build()
    WorkloadSpec("nlp", requests=5).build()


def test_disagg_runs_every_generative_system():
    experiment = Experiment(
        model="t5-large", workload=WorkloadSpec("generative", requests=24),
        cluster=ClusterSpec(replicas=2, disaggregate=True,
                            prefill_replicas=1, decode_replicas=3))
    report = experiment.run(["vanilla", "apparate", "free", "optimal"])
    for system in ("vanilla", "apparate", "free", "optimal"):
        result = report.result(system)
        assert result.kind == "generative_disagg"
        assert result.summary["prefill_replicas"] == 1.0
        assert result.summary["num_replicas"] == 3.0
        assert {"ttft_p99_ms", "ttft_mean_ms", "transfer_ms_mean",
                "prefill_replica_seconds"} <= set(result.summary)
        assert "prefill_fleet_timeline" in result.details
    json.dumps(report.to_json())     # fully JSON-safe


def test_ttft_surfaces_for_every_generative_kind():
    """TTFT (mean + p99) rides on RunResult for single-engine, cluster and
    disaggregated generative runs alike."""
    generative = WorkloadSpec("generative", requests=12)
    for cluster in (None, ClusterSpec(replicas=2),
                    ClusterSpec(replicas=2, disaggregate=True)):
        report = Experiment(model="t5-large", workload=generative,
                            cluster=cluster).run(["vanilla"])
        summary = report.result("vanilla").summary
        assert summary["ttft_p99_ms"] >= summary["tpt_p50_ms"]
        assert summary["ttft_mean_ms"] > 0.0
        assert "shed" in summary


def test_sweep_accepts_pool_keys_and_implies_disaggregate():
    """Regression: the cluster grid takes the per-pool keys (implying
    disaggregate=True) instead of silently ignoring them."""
    experiment = Experiment(model="t5-large",
                            workload=WorkloadSpec("generative", requests=16))
    sweep = experiment.sweep(systems=["vanilla"],
                             prefill_replicas=[1, 2], decode_replicas=2)
    assert len(sweep) == 2
    for point in sweep:
        result = point.report.result("vanilla")
        assert result.kind == "generative_disagg"
        assert result.params["cluster"]["disaggregate"] is True
    assert [p.params["prefill_replicas"] for p in sweep] == [1, 2]
    assert sweep.results("vanilla")[0].summary["prefill_replicas"] == 1.0
    assert sweep.results("vanilla")[1].summary["prefill_replicas"] == 2.0


def test_sweep_rejects_unknown_cluster_key_naming_it():
    """Regression: an unknown cluster-grid key raises ValueError naming the
    key instead of being silently dropped."""
    experiment = Experiment(model="t5-large",
                            workload=WorkloadSpec("generative", requests=16))
    with pytest.raises(ValueError, match="prefill_replica_count"):
        experiment.sweep(systems=["vanilla"], prefill_replica_count=[1, 2])


# ---------------------------------------------------------------------- JSON

def test_report_to_json_round_trips():
    report = Experiment(model="resnet50",
                        workload=WorkloadSpec("video", requests=200), seed=1) \
        .run(["vanilla", "apparate"])
    payload = json.loads(json.dumps(report.to_json()))
    assert payload["schema"] == "repro.run_report/v1"
    assert [r["system"] for r in payload["results"]] == ["vanilla", "apparate"]
    assert payload["results"][0]["summary"]["num_served"] == 200.0
    assert payload["params"]["model"] == "resnet50"


def test_format_table_renders_missing_metrics_as_dash():
    report = Experiment(model="resnet50",
                        workload=WorkloadSpec("video", requests=150), seed=1) \
        .run(["vanilla", "two_layer"])
    table = report.format_table()
    assert "two-layer" in table
    assert "-" in table          # two_layer reports no drop_rate/throughput
    assert "median latency" in table
