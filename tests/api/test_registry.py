"""Tests for the system registry behind the Experiment facade."""

import pytest

import repro
import repro.api as api
from repro.api import (KIND_CLASSIFICATION, KIND_CLUSTER, KIND_GENERATIVE,
                       KIND_GENERATIVE_CLUSTER, REGISTERED_SYSTEMS,
                       canonical_system_name, get_system, list_systems,
                       register_system, system_descriptions)


def test_registry_matches_canonical_set():
    """Every built-in system is registered — no more, no fewer."""
    assert tuple(list_systems()) == tuple(sorted(REGISTERED_SYSTEMS))


def test_registry_completeness_vs_public_api():
    """Every public ``run_*`` entry point has a registry counterpart.

    This is the guard against the pre-registry drift where new systems grew
    ad-hoc runner functions that no shared front end could reach.
    """
    run_function_to_system = {
        "run_vanilla": ("vanilla", KIND_CLASSIFICATION),
        "run_apparate": ("apparate", KIND_CLASSIFICATION),
        "run_vanilla_cluster": ("vanilla", KIND_CLUSTER),
        "run_apparate_cluster": ("apparate", KIND_CLUSTER),
        "run_generative_vanilla": ("vanilla", KIND_GENERATIVE),
        "run_generative_apparate": ("apparate", KIND_GENERATIVE),
        "run_generative_vanilla_cluster": ("vanilla", KIND_GENERATIVE_CLUSTER),
        "run_generative_apparate_cluster": ("apparate", KIND_GENERATIVE_CLUSTER),
        "run_free_generative": ("free", KIND_GENERATIVE),
        "run_optimal_classification": ("optimal", KIND_CLASSIFICATION),
        "run_optimal_generative": ("optimal", KIND_GENERATIVE),
        "run_static_ee": ("static_ee", KIND_CLASSIFICATION),
        "run_two_layer": ("two_layer", KIND_CLASSIFICATION),
    }
    for function_name, (system, kind) in run_function_to_system.items():
        runner = get_system(system)
        assert runner.supports(kind), \
            f"{function_name} maps to {system!r} which does not support {kind}"


def test_every_registered_name_is_exported():
    for name in ("Experiment", "WorkloadSpec", "ClusterSpec", "ExitPolicySpec",
                 "RunResult", "RunReport", "SweepReport", "register_system",
                 "list_systems"):
        assert name in api.__all__
        assert name in repro.__all__, f"{name} missing from repro.__all__"


def test_descriptions_are_nonempty():
    for name, description in system_descriptions().items():
        assert description, f"system {name!r} has no description"


def test_unknown_system_raises_value_error_naming_the_value():
    with pytest.raises(ValueError, match="coin-flip"):
        get_system("coin-flip")


def test_aliases_resolve_to_canonical_names():
    assert canonical_system_name("oracle") == "optimal"
    assert canonical_system_name("baseline") == "vanilla"
    assert canonical_system_name("static") == "static_ee"
    assert canonical_system_name("Two-Layer") == "two_layer"


def test_kind_filter_rejects_unknown_kind():
    with pytest.raises(ValueError, match="audio"):
        list_systems("audio")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_system("vanilla", kinds=(KIND_CLASSIFICATION,))(lambda e: None)


def test_registration_rejects_unknown_kinds():
    with pytest.raises(ValueError, match="warp"):
        register_system("new-system", kinds=("warp",))(lambda e: None)
