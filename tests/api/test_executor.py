"""Sweep executor semantics: parallel/serial bit-identity and error capture.

The process backend's contract is that fan-out is an implementation detail:
for any experiment kind, ``SweepReport.to_json()`` from the process executor
must be byte-identical to the serial executor's, grid points that raise at
run time become structured errors while their siblings complete, and
configuration errors still fail the whole sweep up front.
"""

import json

import pytest

from repro.api import Experiment, WorkloadSpec
from repro.api.executor import (SWEEP_EXECUTORS, ProcessSweepExecutor,
                                SerialSweepExecutor, resolve_sweep_executor)


def _dumps(report) -> str:
    return json.dumps(report.to_json(), sort_keys=True)


def _experiment_and_grid(kind):
    if kind == "classification":
        exp = Experiment(model="resnet50",
                         workload=WorkloadSpec("video", requests=200, seed=3))
        return exp, {"max_batch_size": [8, 16]}
    if kind == "generative_cluster":
        exp = Experiment(model="t5-large",
                         workload=WorkloadSpec("generative", requests=12, seed=3))
        return exp, {"replicas": [1, 2]}
    assert kind == "generative_disagg"
    exp = Experiment(model="t5-large",
                     workload=WorkloadSpec("generative", requests=12, seed=3))
    return exp, {"prefill_replicas": [1, 2]}


class TestBitIdentity:
    @pytest.mark.parametrize("kind", ["classification", "generative_cluster",
                                      "generative_disagg"])
    def test_process_report_is_byte_identical_to_serial(self, kind):
        exp, grid = _experiment_and_grid(kind)
        serial = exp.sweep(systems=["vanilla", "apparate"],
                           executor="serial", **grid)
        parallel = exp.sweep(systems=["vanilla", "apparate"],
                             executor="process", workers=2, **grid)
        assert _dumps(serial) == _dumps(parallel)

    def test_points_come_back_in_grid_order(self):
        exp = Experiment(model="resnet50",
                         workload=WorkloadSpec("video", requests=120, seed=0))
        report = exp.sweep(systems=["vanilla"], replicas=[1, 2, 3], workers=3)
        assert [p.params["replicas"] for p in report.points] == [1, 2, 3]


class TestErrorCapture:
    #: 'bogus' passes sweep validation (platform is resolved at run time)
    #: and raises inside the grid point — the runtime-failure class the
    #: executors must capture per point.
    GRID = {"platform": ["clockwork", "bogus"]}

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_failed_point_does_not_kill_siblings(self, executor):
        exp = Experiment(model="resnet50",
                         workload=WorkloadSpec("video", requests=120, seed=0))
        report = exp.sweep(systems=["vanilla"], executor=executor,
                           workers=2 if executor == "process" else None,
                           **self.GRID)
        ok, failed = report.points
        assert ok.error is None and ok.report is not None
        assert failed.report is None
        assert failed.error["type"] == "ValueError"
        assert "bogus" in failed.error["message"]

    def test_error_points_are_bit_identical_across_backends(self):
        exp = Experiment(model="resnet50",
                         workload=WorkloadSpec("video", requests=120, seed=0))
        serial = exp.sweep(systems=["vanilla"], executor="serial", **self.GRID)
        parallel = exp.sweep(systems=["vanilla"], executor="process",
                             workers=2, **self.GRID)
        assert _dumps(serial) == _dumps(parallel)

    def test_results_refuses_partial_columns(self):
        exp = Experiment(model="resnet50",
                         workload=WorkloadSpec("video", requests=120, seed=0))
        report = exp.sweep(systems=["vanilla"], **self.GRID)
        assert len(report.errors()) == 1
        with pytest.raises(ValueError, match="sweep points failed"):
            report.results("vanilla")

    def test_config_errors_still_fail_the_whole_sweep(self):
        exp = Experiment(model="resnet50",
                         workload=WorkloadSpec("video", requests=120, seed=0))
        # Bad grid value: caught by up-front spec validation, not captured.
        with pytest.raises(ValueError, match="replicas"):
            exp.sweep(systems=["vanilla"], workers=2, replicas=[1, 0])
        # Typoed system name: canonicalized before dispatch.
        with pytest.raises(ValueError):
            exp.sweep(systems=["vanillla"], workers=2, replicas=[1])


class TestResolution:
    def test_default_is_serial(self):
        assert isinstance(resolve_sweep_executor(), SerialSweepExecutor)

    def test_workers_alone_selects_process(self):
        exec_ = resolve_sweep_executor(workers=4)
        assert isinstance(exec_, ProcessSweepExecutor)
        assert exec_.workers == 4

    def test_workers_one_stays_serial(self):
        assert isinstance(resolve_sweep_executor(workers=1),
                          SerialSweepExecutor)

    def test_instance_passes_through(self):
        exec_ = ProcessSweepExecutor(workers=2)
        assert resolve_sweep_executor(exec_) is exec_

    def test_instance_plus_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            resolve_sweep_executor(ProcessSweepExecutor(workers=2), workers=4)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="thread"):
            resolve_sweep_executor("thread")

    def test_serial_with_workers_rejected(self):
        with pytest.raises(ValueError, match="serial"):
            resolve_sweep_executor("serial", workers=4)

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            resolve_sweep_executor("process", workers=0)

    def test_registry_names(self):
        assert set(SWEEP_EXECUTORS) == {"serial", "process"}


class TestProgress:
    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_progress_fires_once_per_point(self, executor):
        exp = Experiment(model="resnet50",
                         workload=WorkloadSpec("video", requests=120, seed=0))
        seen = []
        exp.sweep(systems=["vanilla"], replicas=[1, 2], executor=executor,
                  workers=2 if executor == "process" else None,
                  progress=lambda outcome, done, total:
                  seen.append((done, total, outcome.params["replicas"])))
        assert [(done, total) for done, total, _ in seen] == [(1, 2), (2, 2)]
        assert sorted(r for _, _, r in seen) == [1, 2]
