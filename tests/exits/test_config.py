"""Tests for the EE configuration object."""

import pytest

from repro.exits.config import EEConfig
from repro.core.pipeline import model_stack


@pytest.fixture(scope="module")
def catalog():
    return model_stack("resnet50")[3]


def test_new_ramps_default_to_zero_threshold(catalog):
    config = EEConfig(catalog=catalog, active_ramp_ids=[1, 3])
    assert config.ordered_thresholds() == [0.0, 0.0]


def test_active_ramps_sorted_and_deduplicated(catalog):
    config = EEConfig(catalog=catalog, active_ramp_ids=[5, 1, 5, 3])
    assert config.active_ramp_ids == [1, 3, 5]


def test_invalid_ramp_id_rejected(catalog):
    with pytest.raises(ValueError):
        EEConfig(catalog=catalog, active_ramp_ids=[len(catalog) + 5])


def test_invalid_threshold_rejected(catalog):
    with pytest.raises(ValueError):
        EEConfig(catalog=catalog, active_ramp_ids=[0], thresholds={0: 1.5})


def test_set_threshold_clamps_to_unit_interval(catalog):
    config = EEConfig(catalog=catalog, active_ramp_ids=[0])
    config.set_threshold(0, 2.0)
    assert config.thresholds[0] == 1.0
    config.set_threshold(0, -1.0)
    assert config.thresholds[0] == 0.0


def test_set_threshold_requires_active_ramp(catalog):
    config = EEConfig(catalog=catalog, active_ramp_ids=[0])
    with pytest.raises(KeyError):
        config.set_threshold(3, 0.5)


def test_add_and_remove_ramp(catalog):
    config = EEConfig(catalog=catalog, active_ramp_ids=[2])
    config.add_ramp(4, threshold=0.3)
    assert config.active_ramp_ids == [2, 4]
    assert config.thresholds[4] == pytest.approx(0.3)
    config.remove_ramp(2)
    assert config.active_ramp_ids == [4]
    assert 2 not in config.thresholds


def test_add_existing_ramp_is_noop(catalog):
    config = EEConfig(catalog=catalog, active_ramp_ids=[2], thresholds={2: 0.4})
    config.add_ramp(2, threshold=0.9)
    assert config.thresholds[2] == pytest.approx(0.4)


def test_add_ramp_outside_catalog_rejected(catalog):
    config = EEConfig(catalog=catalog)
    with pytest.raises(KeyError):
        config.add_ramp(len(catalog) + 1)


def test_disable_all_exits(catalog):
    config = EEConfig(catalog=catalog, active_ramp_ids=[0, 1], thresholds={0: 0.5, 1: 0.7})
    config.disable_all_exits()
    assert all(t == 0.0 for t in config.ordered_thresholds())


def test_copy_is_independent(catalog):
    config = EEConfig(catalog=catalog, active_ramp_ids=[0])
    clone = config.copy()
    clone.add_ramp(1)
    clone.set_threshold(0, 0.9)
    assert config.active_ramp_ids == [0]
    assert config.thresholds[0] == 0.0


def test_ordered_views_aligned(catalog):
    config = EEConfig(catalog=catalog, active_ramp_ids=[1, 4], thresholds={1: 0.2, 4: 0.6})
    assert len(config.ordered_depths()) == 2
    assert config.ordered_depths()[0] < config.ordered_depths()[1]
    assert config.ordered_thresholds() == [0.2, 0.6]
    assert config.total_overhead_fraction() == pytest.approx(
        catalog.ramp(1).overhead_fraction + catalog.ramp(4).overhead_fraction)


def test_describe_mentions_ramps(catalog):
    config = EEConfig(catalog=catalog, active_ramp_ids=[0])
    assert catalog.ramp(0).node_name in config.describe()
