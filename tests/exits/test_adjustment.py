"""Tests for ramp adjustment (Algorithm 2, §3.3)."""

import numpy as np
import pytest

from repro.core.pipeline import model_stack
from repro.exits.adjustment import RampAdjuster, RampUtility
from repro.exits.config import EEConfig
from repro.exits.evaluation import WindowBuffer
from repro.models.prediction import RampObservation


@pytest.fixture(scope="module")
def stack():
    return model_stack("resnet50", seed=0)


def make_window(ramp_ids, depths, required, sharpness=0.05, capacity=512):
    """Fill a window buffer from synthetic required depths."""
    from repro.models.prediction import ramp_error_score
    buffer = WindowBuffer(ramp_ids, capacity=capacity)
    for d in required:
        observations = [
            RampObservation(ramp_id=r, depth_fraction=depth,
                            error_score=float(ramp_error_score(d, depth, sharpness)),
                            correct=bool(depth >= d))
            for r, depth in zip(ramp_ids, depths)
        ]
        buffer.record(observations)
    return buffer


def test_utilities_reflect_savings_and_overheads(stack):
    spec, _profile, _pred, catalog, _exec = stack
    adjuster = RampAdjuster(catalog)
    config = EEConfig(catalog=catalog, active_ramp_ids=[2, 10],
                      thresholds={2: 0.5, 10: 0.5})
    depths = config.ordered_depths()
    # Most inputs can exit at the first active ramp -> it has high utility.
    required = np.full(200, depths[0] - 0.05)
    window = make_window(config.active_ramp_ids, depths, required)
    evaluation = window.evaluate(config.ordered_thresholds(), depths,
                                 [o * spec.bs1_latency_ms for o in config.ordered_overheads()],
                                 spec.bs1_latency_ms)
    utilities = adjuster.compute_utilities(config, evaluation)
    assert len(utilities) == 2
    assert utilities[0].utility_ms > 0
    assert utilities[0].exit_rate > 0.9
    assert utilities[1].exit_rate == pytest.approx(0.0)


def test_probe_adds_ramp_before_best_when_budget_remains(stack):
    spec, _profile, _pred, catalog, _exec = stack
    adjuster = RampAdjuster(catalog)
    config = EEConfig(catalog=catalog, active_ramp_ids=[6], thresholds={6: 0.5})
    depth = config.ordered_depths()[0]
    required = np.full(200, depth - 0.1)
    window = make_window([6], [depth], required)
    decision = adjuster.propose(config, window, spec.bs1_latency_ms)
    assert decision.action == "probe-add-before-best"
    assert decision.ramps_to_add == [5]
    assert not decision.ramps_to_remove


def test_probe_shifts_worst_ramp_when_budget_exhausted(stack):
    spec, _profile, _pred, catalog, _exec = stack
    adjuster = RampAdjuster(catalog)
    max_active = catalog.max_active_ramps()
    active = list(range(2, 2 + max_active))
    config = EEConfig(catalog=catalog, active_ramp_ids=active,
                      thresholds={r: 0.5 for r in active})
    depths = config.ordered_depths()
    required = np.full(300, depths[0] - 0.05)   # everything exits at the first ramp
    window = make_window(active, depths, required)
    decision = adjuster.propose(config, window, spec.bs1_latency_ms)
    assert decision.action in ("probe-shift-worst-earlier", "replaced-negative-ramps",
                               "retuned-thresholds")


def test_negative_ramp_handling_removes_or_retunes(stack):
    spec, _profile, _pred, catalog, _exec = stack
    adjuster = RampAdjuster(catalog)
    config = EEConfig(catalog=catalog, active_ramp_ids=[1, 12],
                      thresholds={1: 0.5, 12: 0.5})
    depths = config.ordered_depths()
    # Nothing can exit at the early ramp, everything at the late one: the
    # early ramp has pure overhead (negative utility).
    required = np.full(300, (depths[0] + depths[1]) / 2)
    window = make_window(config.active_ramp_ids, depths, required)
    decision = adjuster.propose(config, window, spec.bs1_latency_ms)
    if decision.action == "replaced-negative-ramps":
        assert 1 in decision.ramps_to_remove
    else:
        assert decision.action == "retuned-thresholds"
        assert decision.new_thresholds is not None


def test_bootstrap_decision_when_no_active_ramps(stack):
    spec, _profile, _pred, catalog, _exec = stack
    adjuster = RampAdjuster(catalog)
    config = EEConfig(catalog=catalog, active_ramp_ids=[])
    window = WindowBuffer([], capacity=16)
    decision = adjuster.propose(config, window, spec.bs1_latency_ms)
    assert decision.action == "bootstrap-add-middle"
    assert decision.ramps_to_add == [len(catalog) // 2]


def test_upper_bound_exit_rate_rules():
    utils = [
        RampUtility(ramp_id=4, depth_fraction=0.3, exit_count=10, exit_rate=0.1,
                    savings_ms=0.0, overhead_ms=1.0),
        RampUtility(ramp_id=9, depth_fraction=0.6, exit_count=30, exit_rate=0.3,
                    savings_ms=0.0, overhead_ms=1.0),
    ]
    # Candidate between the two deactivated ramps: bound = earlier + next.
    bound = RampAdjuster._upper_bound_exit_rate(6, utils)
    assert bound == pytest.approx(0.1 + 0.3)
    # Candidate after every deactivation: only earlier deactivations count.
    bound_late = RampAdjuster._upper_bound_exit_rate(12, utils)
    assert bound_late == pytest.approx(0.4)
    # Bound never exceeds 1.
    big = [RampUtility(1, 0.2, 0, 0.8, 0.0, 0.0), RampUtility(2, 0.4, 0, 0.9, 0.0, 0.0)]
    assert RampAdjuster._upper_bound_exit_rate(3, big) == 1.0


def test_intervals_split_by_deactivated_ramps():
    intervals = RampAdjuster._intervals([5, 6, 7, 9, 10], [7])
    assert intervals == [[5, 6], [7, 9, 10]] or intervals == [[5, 6], [9, 10]] or \
        intervals == [[5, 6, 7], [9, 10]]
    flat = [r for interval in intervals for r in interval]
    assert set(flat) <= {5, 6, 7, 9, 10}


def test_round_position_moves_later_each_round():
    first = RampAdjuster._round_position(6, 0)
    second = RampAdjuster._round_position(6, 1)
    assert first == 3
    assert second == 4
    assert RampAdjuster._round_position(6, 10) is None
    assert RampAdjuster._round_position(0, 0) is None
