"""Tests for ramp training / calibration (§3.1)."""

import pytest

from repro.core.pipeline import model_stack
from repro.exits.training import RampTrainer
from repro.workloads.video import make_video_workload


@pytest.fixture(scope="module")
def trainer_and_workload():
    spec, _profile, prediction, catalog, _exec = model_stack("resnet50", seed=0)
    trainer = RampTrainer(spec, catalog, prediction)
    workload = make_video_workload("urban-day", num_frames=2000, seed=21)
    return trainer, workload


def test_bootstrap_slice_is_first_ten_percent(trainer_and_workload):
    trainer, workload = trainer_and_workload
    bootstrap = trainer.bootstrap_slice(workload.trace)
    assert len(bootstrap) == len(workload.trace) // 10


def test_invalid_bootstrap_fraction_rejected():
    spec, _profile, prediction, catalog, _exec = model_stack("resnet50")
    with pytest.raises(ValueError):
        RampTrainer(spec, catalog, prediction, bootstrap_fraction=0.0)


def test_training_report_covers_every_candidate_ramp(trainer_and_workload):
    trainer, workload = trainer_and_workload
    report = trainer.train(workload.trace)
    assert report.num_ramps == len(trainer.catalog)
    assert len(report.calibrations) == report.num_ramps


def test_ramp_params_are_a_minority_of_model(trainer_and_workload):
    """Even all candidate ramps together stay well below the model's own size."""
    trainer, workload = trainer_and_workload
    report = trainer.train(workload.trace)
    assert 0.0 < report.ramp_params_fraction < 0.6


def test_training_flops_far_below_full_training(trainer_and_workload):
    trainer, workload = trainer_and_workload
    report = trainer.train(workload.trace)
    assert report.training_flops_fraction < 1.0


def test_calibration_exit_rates_monotone_in_threshold(trainer_and_workload):
    trainer, workload = trainer_and_workload
    report = trainer.train(workload.trace)
    for calibration in report.calibrations[:5]:
        thresholds = sorted(calibration.exit_rate_by_threshold)
        rates = [calibration.exit_rate_by_threshold[t] for t in thresholds]
        assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))


def test_later_ramps_have_higher_exit_rates(trainer_and_workload):
    """Deeper ramps see more computation and exit at least as much (§3.3)."""
    trainer, workload = trainer_and_workload
    report = trainer.train(workload.trace)
    first = report.calibrations[0].exit_rate(0.5)
    last = report.calibrations[-1].exit_rate(0.5)
    assert last >= first


def test_calibration_lookup_by_ramp_id(trainer_and_workload):
    trainer, workload = trainer_and_workload
    report = trainer.train(workload.trace)
    assert report.calibration_for(0).ramp_id == 0
    with pytest.raises(KeyError):
        report.calibration_for(10_000)
