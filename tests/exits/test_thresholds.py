"""Tests for threshold tuning (Algorithm 1) and the grid-search reference."""

import numpy as np
import pytest

from repro.exits.thresholds import tune_thresholds_greedy, tune_thresholds_grid
from repro.models.prediction import ramp_error_score


def synthetic_window(n=400, depths=(0.3, 0.6, 0.85), seed=0, mean_difficulty=0.35):
    """Build an observation window from the synthetic prediction model."""
    rng = np.random.default_rng(seed)
    required = np.clip(rng.normal(mean_difficulty, 0.15, size=n), 0.0, 1.0)
    sharpness = rng.uniform(0.03, 0.08, size=n)
    depths_arr = np.asarray(depths)
    errors = np.asarray(ramp_error_score(required[:, None], depths_arr[None, :],
                                         sharpness[:, None]))
    correct = required[:, None] <= depths_arr[None, :]
    overheads = [0.05] * len(depths)
    return errors, correct, list(depths), overheads


def test_greedy_meets_accuracy_constraint():
    errors, correct, depths, overheads = synthetic_window()
    result = tune_thresholds_greedy(errors, correct, depths, overheads, 20.0,
                                    accuracy_constraint=0.01)
    assert result.evaluation.accuracy >= 0.99


def test_greedy_finds_positive_savings():
    errors, correct, depths, overheads = synthetic_window()
    result = tune_thresholds_greedy(errors, correct, depths, overheads, 20.0)
    assert result.evaluation.mean_savings_ms > 0.0
    assert any(t > 0 for t in result.thresholds)


def test_greedy_thresholds_within_unit_interval():
    errors, correct, depths, overheads = synthetic_window()
    result = tune_thresholds_greedy(errors, correct, depths, overheads, 20.0)
    assert all(0.0 <= t <= 1.0 for t in result.thresholds)


def test_greedy_tighter_constraint_never_gains_more():
    errors, correct, depths, overheads = synthetic_window()
    loose = tune_thresholds_greedy(errors, correct, depths, overheads, 20.0,
                                   accuracy_constraint=0.05)
    tight = tune_thresholds_greedy(errors, correct, depths, overheads, 20.0,
                                   accuracy_constraint=0.002)
    assert loose.evaluation.mean_savings_ms >= tight.evaluation.mean_savings_ms - 1e-9


def test_greedy_handles_all_hard_inputs():
    """When nothing can exit accurately, the tuner leaves thresholds near zero."""
    errors, correct, depths, overheads = synthetic_window(mean_difficulty=0.99, seed=1)
    correct[:, :] = False
    result = tune_thresholds_greedy(errors, correct, depths, overheads, 20.0)
    assert result.evaluation.accuracy >= 0.99
    assert result.evaluation.exit_rate <= 0.05


def test_greedy_conservative_margin_reduces_aggressiveness():
    errors, correct, depths, overheads = synthetic_window(seed=2)
    plain = tune_thresholds_greedy(errors, correct, depths, overheads, 20.0)
    guarded = tune_thresholds_greedy(errors, correct, depths, overheads, 20.0,
                                     conservative_margin=3.0)
    assert guarded.evaluation.exit_rate <= plain.evaluation.exit_rate + 1e-9


def test_greedy_much_faster_than_grid():
    """Figure 10a: greedy runs orders of magnitude faster than grid search."""
    errors, correct, depths, overheads = synthetic_window(n=300)
    greedy = tune_thresholds_greedy(errors, correct, depths, overheads, 20.0)
    grid = tune_thresholds_grid(errors, correct, depths, overheads, 20.0, step=0.1)
    assert greedy.evaluations < grid.evaluations / 5


def test_greedy_close_to_grid_optimum():
    """Figure 10b: greedy is within a few percent of the grid optimum."""
    errors, correct, depths, overheads = synthetic_window(n=300, depths=(0.35, 0.7))
    greedy = tune_thresholds_greedy(errors, correct, depths, overheads, 20.0)
    grid = tune_thresholds_grid(errors, correct, depths, overheads, 20.0, step=0.1)
    # The greedy search may even beat the coarse grid (it refines step sizes
    # below the grid resolution); it must never trail it by more than a few
    # percent of the achievable savings.
    assert grid.evaluation.mean_savings_ms > 0
    gap = (grid.evaluation.mean_savings_ms - greedy.evaluation.mean_savings_ms) \
        / grid.evaluation.mean_savings_ms
    assert gap <= 0.15


def test_grid_respects_accuracy_constraint():
    errors, correct, depths, overheads = synthetic_window(n=200, depths=(0.4, 0.8))
    result = tune_thresholds_grid(errors, correct, depths, overheads, 20.0,
                                  accuracy_constraint=0.01, step=0.2)
    assert result.evaluation.accuracy >= 0.99


def test_thresholds_by_ramp_mapping():
    errors, correct, depths, overheads = synthetic_window()
    result = tune_thresholds_greedy(errors, correct, depths, overheads, 20.0)
    mapping = result.thresholds_by_ramp([4, 7, 9])
    assert set(mapping) == {4, 7, 9}
    assert list(mapping.values()) == pytest.approx(result.thresholds)


def test_single_ramp_window():
    errors, correct, depths, overheads = synthetic_window(depths=(0.5,))
    result = tune_thresholds_greedy(errors, correct, depths, overheads, 20.0)
    assert len(result.thresholds) == 1
    assert result.evaluation.accuracy >= 0.99


def test_runtime_reported_positive():
    errors, correct, depths, overheads = synthetic_window(n=100)
    result = tune_thresholds_greedy(errors, correct, depths, overheads, 20.0)
    assert result.runtime_ms > 0.0
    assert result.rounds >= 1
