"""Tests for ramp specs, overheads, catalogs and initial placement (§3.1)."""

import numpy as np
import pytest

from repro.core.pipeline import model_stack
from repro.exits.placement import build_ramp_catalog, initial_ramp_selection
from repro.exits.ramps import RampStyle, ramp_overhead_fraction, ramp_parameter_count
from repro.graph.builders import build_graph_for_model
from repro.models.latency import build_latency_profile
from repro.models.zoo import get_model, list_models


def catalog_for(name, budget=0.02, style=RampStyle.LIGHTWEIGHT):
    spec = get_model(name)
    graph = build_graph_for_model(name)
    profile = build_latency_profile(spec, graph)
    return spec, build_ramp_catalog(spec, graph, profile, budget_fraction=budget, style=style)


def test_lightweight_ramp_is_cheapest_style():
    spec = get_model("bert-base")
    light = ramp_overhead_fraction(spec, RampStyle.LIGHTWEIGHT)
    for style in (RampStyle.CONV_HEAVY, RampStyle.STACKED_FC, RampStyle.DEEP_POOLER):
        assert ramp_overhead_fraction(spec, style) > light


def test_ramp_parameter_fraction_is_small():
    """Each ramp is a single fc head: a small fraction of the model's weights.

    (Transformer ramps are tiny — the paper's 0.01-3.5% band; CNN ramps with a
    1000-class head are larger but still well below one residual stage.)
    """
    for name in ("resnet50", "bert-base", "vgg13"):
        spec, catalog = catalog_for(name)
        worst = max(r.params for r in catalog.ramps)
        assert worst / (spec.params_millions * 1e6) < 0.10, name
    spec, catalog = catalog_for("bert-base")
    total = sum(r.params for r in catalog.ramps)
    assert total / (spec.params_millions * 1e6) < 0.01


def test_ramp_parameter_count_scales_with_width():
    spec = get_model("resnet50")
    assert ramp_parameter_count(spec, 2048) > ramp_parameter_count(spec, 256)


def test_catalog_depths_sorted_and_in_range():
    _spec, catalog = catalog_for("resnet50")
    depths = catalog.depths()
    assert np.all(np.diff(depths) > 0)
    assert depths.min() >= 0.02
    assert depths.max() <= 0.97


def test_catalog_built_for_every_registered_model():
    for spec in list_models():
        _s, _p, _pred, catalog, _e = model_stack(spec.name)
        assert len(catalog) >= 3, spec.name


def test_max_active_ramps_respects_budget():
    _spec, small = catalog_for("resnet50", budget=0.004)
    _spec, large = catalog_for("resnet50", budget=0.05)
    assert small.max_active_ramps() < large.max_active_ramps()


def test_within_budget_accounting():
    _spec, catalog = catalog_for("resnet50", budget=0.02)
    few = list(range(min(3, len(catalog))))
    assert catalog.within_budget(few)
    assert catalog.overhead_of(few) == pytest.approx(
        sum(catalog.ramp(i).overhead_fraction for i in few))


def test_initial_selection_respects_budget_and_order():
    _spec, catalog = catalog_for("resnet50", budget=0.02)
    selection = initial_ramp_selection(catalog)
    assert selection == sorted(selection)
    assert len(selection) == len(set(selection))
    assert len(selection) <= catalog.max_active_ramps()


def test_initial_selection_spans_the_model():
    """Initial ramps are evenly spaced across the model (§3.1)."""
    _spec, catalog = catalog_for("resnet101", budget=0.02)
    selection = initial_ramp_selection(catalog)
    depths = [catalog.ramp(r).depth_fraction for r in selection]
    assert min(depths) < 0.25
    assert max(depths) > 0.7


def test_initial_selection_max_ramps_cap():
    _spec, catalog = catalog_for("resnet50", budget=0.05)
    assert len(initial_ramp_selection(catalog, max_ramps=2)) == 2


def test_initial_selection_empty_catalog():
    _spec, catalog = catalog_for("resnet50")
    catalog.ramps = []
    assert initial_ramp_selection(catalog) == []


def test_coverage_spans_most_of_model():
    _spec, catalog = catalog_for("vgg16")
    assert catalog.coverage() > 0.5
