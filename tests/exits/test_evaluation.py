"""Tests for replay-based configuration evaluation (§3.2)."""

import numpy as np
import pytest

from repro.exits.evaluation import WindowBuffer, evaluate_thresholds
from repro.models.prediction import RampObservation


def simple_window():
    """Three samples, two ramps at depths 0.3 and 0.7.

    Sample 0: easy (confident and correct at both ramps).
    Sample 1: medium (confident+correct only at the late ramp).
    Sample 2: hard (never confident; early ramp would be wrong).
    """
    errors = np.array([
        [0.1, 0.05],
        [0.8, 0.2],
        [0.9, 0.7],
    ])
    correct = np.array([
        [True, True],
        [False, True],
        [False, False],
    ])
    depths = [0.3, 0.7]
    overheads = [0.1, 0.1]
    return errors, correct, depths, overheads


def test_zero_thresholds_mean_no_exits_and_full_accuracy():
    errors, correct, depths, overheads = simple_window()
    ev = evaluate_thresholds(errors, correct, [0.0, 0.0], depths, overheads, 10.0)
    assert ev.exit_rate == 0.0
    assert ev.accuracy == 1.0
    # Every input still pays the ramp overheads.
    assert ev.mean_savings_ms == pytest.approx(-0.2)


def test_exits_assigned_to_earliest_qualifying_ramp():
    errors, correct, depths, overheads = simple_window()
    ev = evaluate_thresholds(errors, correct, [0.5, 0.5], depths, overheads, 10.0)
    assert ev.exit_counts.tolist() == [1, 1]
    assert ev.exit_rate == pytest.approx(2 / 3)


def test_accuracy_counts_non_exits_as_correct():
    errors, correct, depths, overheads = simple_window()
    ev = evaluate_thresholds(errors, correct, [0.5, 0.5], depths, overheads, 10.0)
    assert ev.accuracy == 1.0
    # At a very permissive threshold all three samples exit at the early ramp,
    # where only the first one agrees with the original model.
    ev_aggressive = evaluate_thresholds(errors, correct, [0.95, 0.95], depths, overheads, 10.0)
    assert ev_aggressive.accuracy == pytest.approx(1 / 3)


def test_latency_savings_accounting():
    errors, correct, depths, overheads = simple_window()
    ev = evaluate_thresholds(errors, correct, [0.5, 0.0], depths, overheads, 10.0)
    # Only sample 0 exits, at depth 0.3: saves 7ms minus the first ramp's
    # overhead; the other two samples pay both overheads.
    expected = ((10.0 * 0.7 - 0.1) + (-0.2) * 2) / 3
    assert ev.mean_savings_ms == pytest.approx(expected)


def test_ramp_utilities_sign():
    errors, correct, depths, overheads = simple_window()
    ev = evaluate_thresholds(errors, correct, [0.5, 0.5], depths, overheads, 10.0)
    utilities = ev.ramp_utilities()
    assert utilities.shape == (2,)
    assert utilities[0] > 0  # the early ramp saves 7ms on one input


def test_savings_monotone_in_threshold():
    errors, correct, depths, overheads = simple_window()
    previous = -np.inf
    for threshold in (0.0, 0.3, 0.6, 0.95):
        ev = evaluate_thresholds(errors, correct, [threshold, threshold], depths,
                                 overheads, 10.0)
        assert ev.total_savings_ms >= previous - 1e-9
        previous = ev.total_savings_ms


def test_accuracy_monotone_non_increasing_in_threshold():
    errors, correct, depths, overheads = simple_window()
    previous = 1.1
    for threshold in (0.0, 0.3, 0.6, 0.95):
        ev = evaluate_thresholds(errors, correct, [threshold, threshold], depths,
                                 overheads, 10.0)
        assert ev.accuracy <= previous + 1e-9
        previous = ev.accuracy


def test_shape_validation():
    errors, correct, depths, overheads = simple_window()
    with pytest.raises(ValueError):
        evaluate_thresholds(errors, correct[:2], [0.5, 0.5], depths, overheads, 10.0)
    with pytest.raises(ValueError):
        evaluate_thresholds(errors, correct, [0.5], depths, overheads, 10.0)


def test_empty_window_is_benign():
    ev = evaluate_thresholds(np.zeros((0, 2)), np.zeros((0, 2), dtype=bool),
                             [0.5, 0.5], [0.3, 0.7], [0.1, 0.1], 10.0)
    assert ev.num_samples == 0
    assert ev.accuracy == 1.0


class TestWindowBuffer:
    @staticmethod
    def obs(ramp_id, depth, error, correct):
        return RampObservation(ramp_id=ramp_id, depth_fraction=depth,
                               error_score=error, correct=correct)

    def test_record_and_matrices(self):
        buffer = WindowBuffer([0, 2], capacity=4)
        buffer.record([self.obs(0, 0.3, 0.4, True), self.obs(2, 0.7, 0.1, True)])
        assert len(buffer) == 1
        assert buffer.errors_matrix().shape == (1, 2)
        assert buffer.correct_matrix().dtype == bool

    def test_record_missing_ramp_raises(self):
        buffer = WindowBuffer([0, 2])
        with pytest.raises(KeyError):
            buffer.record([self.obs(0, 0.3, 0.4, True)])

    def test_capacity_bounds_history(self):
        buffer = WindowBuffer([0], capacity=3)
        for i in range(10):
            buffer.record([self.obs(0, 0.3, i / 10.0, True)])
        assert len(buffer) == 3
        assert buffer.errors_matrix()[:, 0].tolist() == pytest.approx([0.7, 0.8, 0.9])

    def test_latest_returns_most_recent_rows(self):
        buffer = WindowBuffer([0], capacity=10)
        for i in range(6):
            buffer.record([self.obs(0, 0.3, i / 10.0, True)])
        errors, correct = buffer.latest(2)
        assert errors.shape == (2, 1)
        assert errors[-1, 0] == pytest.approx(0.5)

    def test_rebuild_preserves_shared_columns(self):
        buffer = WindowBuffer([0, 1], capacity=8)
        for i in range(4):
            buffer.record([self.obs(0, 0.3, 0.2, True), self.obs(1, 0.7, 0.4, False)])
        buffer.rebuild([1, 2])
        assert buffer.ramp_ids == [1, 2]
        errors = buffer.errors_matrix()
        assert errors.shape == (4, 2)
        # Column for ramp 1 kept, new ramp 2 backfilled as "never exits".
        assert np.allclose(errors[:, 0], 0.4)
        assert np.allclose(errors[:, 1], 1.0)

    def test_rebuild_same_ids_is_noop(self):
        buffer = WindowBuffer([0, 1], capacity=8)
        buffer.record([self.obs(0, 0.3, 0.2, True), self.obs(1, 0.7, 0.4, False)])
        buffer.rebuild([0, 1])
        assert len(buffer) == 1

    def test_evaluate_delegates_to_replay(self):
        buffer = WindowBuffer([0], capacity=8)
        for error, correct in [(0.1, True), (0.9, False)]:
            buffer.record([self.obs(0, 0.5, error, correct)])
        ev = buffer.evaluate([0.5], [0.5], [0.1], 10.0)
        assert ev.num_samples == 2
        assert ev.exit_rate == pytest.approx(0.5)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            WindowBuffer([0], capacity=0)
