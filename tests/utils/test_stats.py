"""Tests for statistics helpers."""

import numpy as np
import pytest

from repro.utils.stats import (
    LatencyAccumulator,
    WindowedAccuracy,
    percentile,
    savings_percent,
    summarize_latencies,
)


def test_percentile_empty_returns_zero():
    assert percentile([], 50) == 0.0


def test_percentile_median_of_known_values():
    assert percentile([1.0, 2.0, 3.0], 50) == pytest.approx(2.0)


def test_summarize_latencies_keys_and_values():
    summary = summarize_latencies([10.0, 20.0, 30.0, 40.0])
    assert set(summary) == {"p25", "p50", "p95", "p99", "mean", "count"}
    assert summary["count"] == 4
    assert summary["mean"] == pytest.approx(25.0)
    assert summary["p50"] == pytest.approx(25.0)
    assert summary["p95"] <= summary["p99"] <= 40.0


def test_summarize_latencies_empty():
    summary = summarize_latencies([])
    assert summary["count"] == 0
    assert summary["p95"] == 0.0
    assert summary["p99"] == 0.0


class TestWindowedAccuracy:
    def test_empty_window_reports_perfect_accuracy(self):
        assert WindowedAccuracy(window=4).accuracy() == 1.0

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            WindowedAccuracy(window=0)

    def test_accuracy_over_partial_window(self):
        monitor = WindowedAccuracy(window=4)
        monitor.record(True)
        monitor.record(False)
        assert monitor.accuracy() == pytest.approx(0.5)
        assert not monitor.full()

    def test_window_slides(self):
        monitor = WindowedAccuracy(window=2)
        monitor.record(False)
        monitor.record(False)
        monitor.record(True)
        monitor.record(True)
        assert monitor.accuracy() == 1.0

    def test_reset_clears_history(self):
        monitor = WindowedAccuracy(window=2)
        monitor.record(False)
        monitor.reset()
        assert monitor.accuracy() == 1.0
        assert len(monitor) == 0


class TestLatencyAccumulator:
    def test_add_and_summary(self):
        acc = LatencyAccumulator()
        acc.extend([5.0, 10.0, 15.0])
        acc.add(20.0)
        assert len(acc) == 4
        assert acc.mean() == pytest.approx(12.5)
        assert acc.median() == pytest.approx(12.5)

    def test_empty_accumulator(self):
        acc = LatencyAccumulator()
        assert acc.mean() == 0.0
        assert acc.p95() == 0.0


def test_savings_percent():
    assert savings_percent(100.0, 60.0) == pytest.approx(40.0)
    assert savings_percent(0.0, 60.0) == 0.0
