"""Tests for the discrete-event primitives."""

import pytest

from repro.utils.events import EventQueue, SimClock


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        seen = []
        queue.push(5.0, seen.append, "late")
        queue.push(1.0, seen.append, "early")
        queue.push(3.0, seen.append, "middle")
        while queue:
            event = queue.pop()
            event.callback(event.payload)
        assert seen == ["early", "middle", "late"]

    def test_fifo_tie_breaking(self):
        queue = EventQueue()
        queue.push(1.0, lambda _: None, "first")
        queue.push(1.0, lambda _: None, "second")
        assert queue.pop().payload == "first"
        assert queue.pop().payload == "second"

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(2.5, lambda _: None)
        assert queue.peek_time() == pytest.approx(2.5)

    def test_len_and_bool(self):
        queue = EventQueue()
        assert not queue
        queue.push(1.0, lambda _: None)
        assert len(queue) == 1
        assert queue


class TestSimClock:
    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_by(self):
        clock = SimClock(start=5.0)
        assert clock.advance_by(2.5) == 7.5

    def test_cannot_move_backwards(self):
        clock = SimClock(start=5.0)
        with pytest.raises(ValueError):
            clock.advance_to(1.0)

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance_by(-1.0)
