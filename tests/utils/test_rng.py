"""Tests for seeded RNG management."""

import numpy as np
import pytest

from repro.utils.rng import RngFactory, derive_seed


def test_derive_seed_is_deterministic():
    assert derive_seed(0, "a") == derive_seed(0, "a")


def test_derive_seed_differs_by_label():
    assert derive_seed(0, "a") != derive_seed(0, "b")


def test_derive_seed_differs_by_base_seed():
    assert derive_seed(0, "a") != derive_seed(1, "a")


def test_derive_seed_is_non_negative_63_bit():
    for seed in range(10):
        value = derive_seed(seed, "label")
        assert 0 <= value < 2 ** 63


def test_generator_reproducible_across_factories():
    a = RngFactory(7).generator("stream").random(16)
    b = RngFactory(7).generator("stream").random(16)
    assert np.allclose(a, b)


def test_generator_streams_independent():
    factory = RngFactory(7)
    a = factory.generator("one").random(16)
    b = factory.generator("two").random(16)
    assert not np.allclose(a, b)


def test_spawn_creates_independent_factory():
    parent = RngFactory(7)
    child = parent.spawn("child")
    assert child.seed != parent.seed
    a = parent.generator("x").random(8)
    b = child.generator("x").random(8)
    assert not np.allclose(a, b)


def test_spawn_is_deterministic():
    assert RngFactory(3).spawn("c").seed == RngFactory(3).spawn("c").seed
