"""Autoscaling economics: SLO attainment vs. replica-seconds, fixed vs. elastic.

Not a paper figure — this extends the reproduction toward the ROADMAP's
production-scale target.  A diurnal arrival trace (raised-cosine cycle between
30 and 360 qps) is served three ways on `least_work_left`:

* a **fixed fleet at max_replicas** (4) — the capacity-planned baseline that
  attains the SLO by paying for the peak all day;
* a **fixed fleet at min_replicas** (2) — the cost-planned baseline that
  melts during the peak (Clockwork degrades to batch-of-one once requests go
  late, so overload is catastrophic, not graceful);
* a **reactive autoscaler** between the two, scaling on queue depth and SLO
  headroom with a provisioning delay.

Expected shape (asserted): the reactive fleet's SLO attainment lands within
2% of the fixed-at-peak fleet while consuming measurably fewer
replica-seconds, and the undersized fixed fleet shows why elasticity matters
by attaining far less.
"""

import pytest

from bench_common import print_table, run_once
from repro.api import ClusterSpec, Experiment
from repro.serving.autoscaler import ReactiveAutoscaler
from repro.workloads.arrivals import diurnal_arrivals
from repro.workloads.video import VideoWorkload, make_video_workload

NUM_FRAMES = 4000
SLO_MS = 50.0
LOW_QPS, HIGH_QPS = 30.0, 360.0
PERIOD_S = 12.0
MIN_REPLICAS, MAX_REPLICAS = 2, 4


@pytest.fixture(scope="module")
def diurnal_workload():
    """A day/night cycle: the right fleet size genuinely changes over time."""
    trace = make_video_workload("urban-day", num_frames=NUM_FRAMES, seed=7).trace
    arrivals = diurnal_arrivals(NUM_FRAMES, LOW_QPS, HIGH_QPS, period_s=PERIOD_S)
    return VideoWorkload(name="diurnal", trace=trace,
                         arrival_times_ms=arrivals,
                         fps=(LOW_QPS + HIGH_QPS) / 2.0)


def _run_fleet(workload, cluster: ClusterSpec):
    experiment = Experiment(model="resnet50", workload=workload,
                            cluster=cluster, slo_ms=SLO_MS,
                            drop_expired=False, seed=0)
    return experiment.run(["vanilla"]).result("vanilla").raw


def _reactive_spec() -> ClusterSpec:
    scaler = ReactiveAutoscaler(cooldown_ms=750.0, provision_delay_ms=250.0,
                                slo_ms=SLO_MS, slo_headroom=0.5)
    return ClusterSpec(replicas=MIN_REPLICAS, balancer="least_work_left",
                       autoscaler=scaler, min_replicas=MIN_REPLICAS,
                       max_replicas=MAX_REPLICAS)


def test_reactive_autoscaler_matches_peak_fleet_slo_at_lower_cost(
        benchmark, diurnal_workload):
    def sweep():
        fixed_peak = _run_fleet(diurnal_workload, ClusterSpec(
            replicas=MAX_REPLICAS, balancer="least_work_left"))
        fixed_floor = _run_fleet(diurnal_workload, ClusterSpec(
            replicas=MIN_REPLICAS, balancer="least_work_left"))
        reactive = _run_fleet(diurnal_workload, _reactive_spec())
        return fixed_peak, fixed_floor, reactive

    fixed_peak, fixed_floor, reactive = run_once(benchmark, sweep)

    def attainment(metrics):
        return 1.0 - metrics.aggregate().slo_violation_rate(SLO_MS)

    rows = []
    for name, metrics in (("fixed@4", fixed_peak), ("fixed@2", fixed_floor),
                          ("reactive 2..4", reactive)):
        rows.append({
            "fleet": name,
            "slo_attainment": attainment(metrics),
            "replica_seconds": metrics.replica_seconds,
            "peak_replicas": metrics.peak_replicas(),
            "p99_ms": metrics.aggregate().p99_latency(),
        })
    print_table(f"Diurnal {LOW_QPS:.0f}->{HIGH_QPS:.0f} qps, SLO {SLO_MS:.0f} ms",
                rows)

    # Conservation: every fleet answers the whole trace.
    for metrics in (fixed_peak, fixed_floor, reactive):
        assert len(metrics.aggregate().responses) == NUM_FRAMES

    # The elastic fleet actually flexed across the cycle.
    assert reactive.peak_replicas() == MAX_REPLICAS
    sizes = [n for _, n in reactive.fleet_timeline]
    assert min(sizes) == MIN_REPLICAS and len(set(sizes)) > 1

    # Acceptance: SLO attainment within 2% of the fixed-at-peak fleet...
    assert attainment(reactive) >= attainment(fixed_peak) - 0.02
    # ...at measurably fewer replica-seconds (>10% savings in practice ~23%).
    assert reactive.replica_seconds < 0.9 * fixed_peak.replica_seconds

    # Context row: the cost-planned fixed fleet is cheaper still but melts —
    # Clockwork's batch-of-one degradation under late queues is catastrophic.
    assert attainment(fixed_floor) < attainment(reactive) - 0.2


def test_replica_seconds_accounting_is_consistent(diurnal_workload):
    """replica-seconds of a fixed fleet = replicas x makespan (cost weight 1)."""
    metrics = _run_fleet(diurnal_workload, ClusterSpec(
        replicas=MIN_REPLICAS, balancer="least_work_left"))
    expected = MIN_REPLICAS * metrics.makespan_ms / 1000.0
    assert metrics.replica_seconds == pytest.approx(expected, rel=1e-6)
