"""Parallel-sweep regression benchmark: process fan-out vs serial execution.

Not a paper figure — this guards the sweep execution engine
(:mod:`repro.api.executor`).  An 8-point grid (replicas × balancer, two
systems per point) is executed twice: serially in one process, then fanned
out to ``WORKERS`` worker processes.  The two ``SweepReport`` JSON documents
must be byte-identical — fan-out is an implementation detail — and on a
machine with at least ``WORKERS`` effective CPUs the parallel run must beat
serial by ``MIN_SPEEDUP``× wall-clock.

The speedup gate needs real cores: on boxes with fewer effective CPUs than
``WORKERS`` (e.g. affinity-restricted CI sandboxes) the measurement is
recorded but the ≥2× assertion is not applied — the gate is enforced on the
4-vCPU GitHub runners, where the CI workflow additionally re-asserts the
floor from ``BENCH_sweep.json``.

Modes (``BENCH_SWEEP`` environment variable)
--------------------------------------------
unset
    Smoke grid (1000 requests/point) — runs under plain pytest and in the
    tier-1 suite; nothing is written.
``smoke``
    Smoke grid, and the measurements are written to ``BENCH_sweep.json``
    (used by the CI sweep gate).
``full`` or ``1``
    The tracked baseline: 4000 requests/point, written to
    ``BENCH_sweep.json``.  Refresh with::

        BENCH_SWEEP=full PYTHONPATH=src python -m pytest -q -s benchmarks/test_sweep_parallel.py
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.api import Experiment, WorkloadSpec
from repro.workloads.cache import cache_info

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_sweep.json"

#: Required parallel-over-serial wall-clock ratio at ``WORKERS`` workers.
MIN_SPEEDUP = 2.0
WORKERS = 4

SMOKE_REQUESTS = 1_000
FULL_REQUESTS = 4_000

GRID = {"replicas": [1, 2, 3, 4],
        "balancer": ["round_robin", "join_shortest_queue"]}
SYSTEMS = ["vanilla", "apparate"]
MODEL = "resnet50"


def _mode():
    value = os.environ.get("BENCH_SWEEP", "").strip().lower()
    if value in ("full", "1"):
        return FULL_REQUESTS, True
    if value == "smoke":
        return SMOKE_REQUESTS, True
    return SMOKE_REQUESTS, False


def _effective_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:            # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _experiment(requests: int) -> Experiment:
    return Experiment(model=MODEL,
                      workload=WorkloadSpec("video", requests=requests, seed=0))


def test_parallel_sweep_bit_identity():
    """Fan-out must be invisible in the output, on every machine."""
    exp = _experiment(300)
    serial = exp.sweep(systems=SYSTEMS, executor="serial",
                       replicas=[1, 2], balancer=["round_robin"])
    parallel = exp.sweep(systems=SYSTEMS, executor="process", workers=2,
                         replicas=[1, 2], balancer=["round_robin"])
    assert json.dumps(serial.to_json(), sort_keys=True) \
        == json.dumps(parallel.to_json(), sort_keys=True)


def test_parallel_sweep_speedup():
    n, write = _mode()
    cpus = _effective_cpus()
    if not write and cpus < WORKERS:
        pytest.skip(f"speedup gate needs {WORKERS} effective CPUs, have "
                    f"{cpus}; set BENCH_SWEEP=smoke to record anyway")

    exp = _experiment(n)
    exp.workload_obj()        # materialize once, outside both timed regions

    t0 = time.perf_counter()
    serial = exp.sweep(systems=SYSTEMS, executor="serial", **GRID)
    serial_wall_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = exp.sweep(systems=SYSTEMS, executor="process",
                         workers=WORKERS, **GRID)
    parallel_wall_s = time.perf_counter() - t0

    # Speed means nothing if the answers drift.
    assert json.dumps(serial.to_json(), sort_keys=True) \
        == json.dumps(parallel.to_json(), sort_keys=True)
    assert not serial.errors()

    points = len(serial.points)
    speedup = serial_wall_s / parallel_wall_s
    gate_enforced = cpus >= WORKERS
    print(f"\nsweep ({points} points x {len(SYSTEMS)} systems, {n:,} "
          f"requests/point, {cpus} cpus): serial {serial_wall_s:.2f}s, "
          f"{WORKERS} workers {parallel_wall_s:.2f}s, speedup {speedup:.2f}x"
          f"{'' if gate_enforced else ' (gate not enforced: too few cpus)'}")

    if write:
        BENCH_PATH.write_text(json.dumps({
            "grid": {"axes": GRID, "points": points, "systems": SYSTEMS,
                     "model": MODEL, "workload": "video:urban-day",
                     "requests_per_point": n},
            "workers": WORKERS,
            "effective_cpus": cpus,
            "serial": {"wall_s": round(serial_wall_s, 3),
                       "points_per_s": round(points / serial_wall_s, 3)},
            "parallel": {"wall_s": round(parallel_wall_s, 3),
                         "points_per_s": round(points / parallel_wall_s, 3)},
            "speedup": round(speedup, 2),
            "min_speedup": MIN_SPEEDUP,
            "gate_enforced": gate_enforced,
            "trace_cache": cache_info(),
        }, indent=2) + "\n")

    if gate_enforced:
        assert speedup >= MIN_SPEEDUP, (
            f"{WORKERS}-worker sweep took {parallel_wall_s:.2f}s vs serial "
            f"{serial_wall_s:.2f}s — only {speedup:.2f}x, need {MIN_SPEEDUP}x")
