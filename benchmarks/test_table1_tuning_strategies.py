"""Table 1: thresholds need frequent tuning to avoid accuracy loss.

The paper compares (a) tuning thresholds once on initial data, (b) tuning on
a uniformly sampled subset, and (c) continual tuning, reporting 8-15 point
accuracy drops for the one-time strategies.  We regenerate the three rows for
a CV and an NLP workload.
"""

import numpy as np
import pytest

from bench_common import cv_workload, nlp_workload, pct_win, print_table, run_once
from repro.baselines.static_ee import _observation_matrices
from repro.core.pipeline import model_stack, run_apparate, run_vanilla
from repro.exits.evaluation import evaluate_thresholds
from repro.exits.placement import initial_ramp_selection
from repro.exits.thresholds import tune_thresholds_greedy

CASES = {"resnet50": ("cv", "urban-day"), "bert-base": ("nlp", "amazon")}


def one_time_strategy(model_name, workload, sample: str):
    """Accuracy/savings of thresholds tuned once on a data sample."""
    spec, _profile, prediction, catalog, _exec = model_stack(model_name)
    active = initial_ramp_selection(catalog)
    depths = [catalog.ramp(r).depth_fraction for r in active]
    overheads = [catalog.ramp(r).overhead_fraction * spec.bs1_latency_ms for r in active]

    n = len(workload.trace)
    if sample == "initial":
        calibration = workload.trace.slice(0, n // 10)
    else:  # uniformly sampled
        indices = np.arange(0, n, 10)
        calibration = workload.trace.slice(0, n)
        calibration = type(calibration)(name="sampled",
                                        raw_difficulty=calibration.raw_difficulty[indices],
                                        sharpness=calibration.sharpness[indices],
                                        confidence_shift=calibration.confidence_shift[indices])
    cal_errors, cal_correct = _observation_matrices(calibration, prediction, depths)
    tuned = tune_thresholds_greedy(cal_errors, cal_correct, depths, overheads,
                                   spec.bs1_latency_ms, accuracy_constraint=0.01)
    errors, correct = _observation_matrices(workload.trace, prediction, depths)
    evaluation = evaluate_thresholds(errors, correct, tuned.thresholds, depths, overheads,
                                     spec.bs1_latency_ms)
    return evaluation.accuracy, evaluation.mean_savings_ms / spec.bs1_latency_ms * 100.0


@pytest.mark.parametrize("model_name", sorted(CASES))
def test_table1_one_time_tuning_loses_accuracy(benchmark, model_name):
    kind, source = CASES[model_name]
    workload = cv_workload(model_name, source) if kind == "cv" else nlp_workload(model_name, source)

    def evaluate_strategies():
        initial_acc, initial_savings = one_time_strategy(model_name, workload, "initial")
        sampled_acc, sampled_savings = one_time_strategy(model_name, workload, "sampled")
        vanilla = run_vanilla(model_name, workload)
        continual = run_apparate(model_name, workload)
        continual_acc = continual.metrics.accuracy()
        continual_savings = pct_win(vanilla.median_latency(),
                                    continual.metrics.median_latency())
        return [
            {"strategy": "Initial Only", "accuracy": initial_acc, "savings_%": initial_savings},
            {"strategy": "Uniformly Sampled", "accuracy": sampled_acc, "savings_%": sampled_savings},
            {"strategy": "Continual Tuning", "accuracy": continual_acc, "savings_%": continual_savings},
        ]

    rows = run_once(benchmark, evaluate_strategies)
    for row in rows:
        row["model"] = model_name
    print_table("Table 1 — threshold tuning strategies", rows)

    initial, sampled, continual = rows
    # Shape: continual tuning holds ~99% accuracy; one-time strategies drop
    # measurably below it.
    assert continual["accuracy"] >= 0.985
    assert continual["accuracy"] >= initial["accuracy"]
    assert continual["accuracy"] >= sampled["accuracy"]
    assert min(initial["accuracy"], sampled["accuracy"]) < continual["accuracy"] + 1e-9
