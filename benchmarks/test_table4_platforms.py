"""Table 4: Apparate's wins are insensitive to the underlying serving platform.

The paper reports median/P95 latencies within a few percent when running the
same workload on Clockwork vs TensorFlow-Serving, because Apparate never
alters platform decisions.
"""

import pytest

from bench_common import cv_workload, nlp_workload, pct_win, print_table, run_once
from repro.core.pipeline import run_apparate, run_vanilla

CASES = {"resnet50": ("cv", "urban-day"), "gpt2-medium": ("nlp", "amazon")}
PLATFORMS = ["clockwork", "tfserve"]


@pytest.mark.parametrize("model_name", sorted(CASES))
def test_table4_platform_insensitivity(benchmark, model_name):
    kind, source = CASES[model_name]
    workload = cv_workload(model_name, source) if kind == "cv" else nlp_workload(model_name, source)

    def sweep():
        results = {}
        for platform in PLATFORMS:
            vanilla = run_vanilla(model_name, workload, platform=platform)
            apparate = run_apparate(model_name, workload, platform=platform)
            results[platform] = (vanilla, apparate)
        return results

    results = run_once(benchmark, sweep)
    rows = []
    wins = {}
    for platform in PLATFORMS:
        vanilla, apparate = results[platform]
        wins[platform] = pct_win(vanilla.median_latency(), apparate.metrics.median_latency())
        rows.append({"model": model_name, "platform": platform,
                     "apparate_p50_ms": apparate.metrics.median_latency(),
                     "apparate_p95_ms": apparate.metrics.p95_latency(),
                     "win_%": wins[platform],
                     "accuracy": apparate.metrics.accuracy()})
    print_table("Table 4 — serving-platform comparison", rows)

    # Shape: both platforms see a benefit and the relative wins are close
    # (the paper reports within ~3 percentage points).
    assert all(w > 0.0 for w in wins.values())
    assert abs(wins["clockwork"] - wins["tfserve"]) < 15.0
    for platform in PLATFORMS:
        assert results[platform][1].metrics.accuracy() >= 0.98
