"""Simulator-speed regression benchmark: the event kernel vs the seed loops.

Not a paper figure — this guards the heap-scheduled discrete-event kernel
(:mod:`repro.serving.kernel`) the serving platforms run on.  A diurnal
arrival trace (raised-cosine cycle between 200 and 2000 qps) is served by a
32-replica TensorFlow-Serving-style fleet twice: once through the preserved
pre-kernel rescan loop (:func:`repro.serving._seed_loops.seed_cluster_run`,
O(replicas) bookkeeping per visited timestamp) and once through the kernel
(O(changed replicas) per timestamp).  Both must produce bit-identical
metrics; the kernel must simulate at least ``MIN_SPEEDUP`` times more
requests per wall-clock second.

Modes (``BENCH_SIMSPEED`` environment variable)
-----------------------------------------------
unset
    Smoke trace (60k requests, a few seconds) — runs under plain pytest and
    in the tier-1 suite; nothing is written.
``smoke``
    Smoke trace, and the measurements are written to ``BENCH_simspeed.json``
    (used by the CI speed gate to apply an absolute requests/sec floor).
``full`` or ``1``
    The tracked baseline: the 1M-request trace, written to
    ``BENCH_simspeed.json``.  Refresh with::

        BENCH_SIMSPEED=full PYTHONPATH=src python -m pytest -q benchmarks/test_simspeed.py
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

from repro.serving._seed_loops import seed_cluster_run
from repro.serving.cluster import ClusterPlatform
from repro.serving.platform import BatchResult
from repro.serving.request import Request
from repro.serving.tfserve import TFServingPlatform
from repro.workloads.arrivals import diurnal_arrivals
from repro.workloads.difficulty import InputSample

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_simspeed.json"

#: The kernel must simulate at least this many times more requests per
#: wall-clock second than the seed rescan loop on the benchmark trace.
MIN_SPEEDUP = 3.0

SMOKE_REQUESTS = 60_000
FULL_REQUESTS = 1_000_000

REPLICAS = 32
MAX_BATCH = 16
BATCH_TIMEOUT_MS = 4.0
GPU_TIME_MS = 8.0
LOW_QPS, HIGH_QPS, PERIOD_S = 200.0, 2000.0, 60.0


def _mode():
    value = os.environ.get("BENCH_SIMSPEED", "").strip().lower()
    if value in ("full", "1"):
        return FULL_REQUESTS, True
    if value == "smoke":
        return SMOKE_REQUESTS, True
    return SMOKE_REQUESTS, False


def _make_trace(n):
    # Deterministic diurnal cycle (no rng): the same trace on every machine.
    times = diurnal_arrivals(n, low_qps=LOW_QPS, high_qps=HIGH_QPS,
                             period_s=PERIOD_S)
    return [Request(request_id=i, arrival_ms=float(t),
                    sample=InputSample(index=i, raw_difficulty=0.3,
                                       sharpness=0.05, confidence_shift=0.0),
                    slo_ms=1000.0)
            for i, t in enumerate(times)]


def _make_cluster():
    return ClusterPlatform(
        [TFServingPlatform(max_batch_size=MAX_BATCH,
                           batch_timeout_ms=BATCH_TIMEOUT_MS)
         for _ in range(REPLICAS)],
        balancer="round_robin")


def _executor(batch, batch_start_ms):
    return BatchResult(gpu_time_ms=GPU_TIME_MS,
                       result_offsets_ms=[GPU_TIME_MS] * len(batch))


def test_kernel_simulation_speed():
    n, write = _mode()
    requests = _make_trace(n)

    # Whoever runs second pays gen-2 GC traversals over the first run's
    # millions of surviving objects; freeze long-lived data out of the
    # collector before each timed region so the order doesn't skew the ratio.
    gc.collect()
    gc.freeze()

    t0 = time.perf_counter()
    seed_metrics = seed_cluster_run(_make_cluster(), requests, _executor)
    seed_wall_s = time.perf_counter() - t0

    # Speed means nothing if the answers drift: the runs must agree exactly.
    # Keep only the comparison fields so the seed run's per-request metrics
    # can be freed before the kernel run is timed.
    seed_makespan_ms = seed_metrics.makespan_ms
    seed_dispatch_counts = seed_metrics.dispatch_counts
    del seed_metrics
    gc.collect()
    gc.freeze()

    t0 = time.perf_counter()
    kernel_metrics = _make_cluster().run(requests, _executor)
    kernel_wall_s = time.perf_counter() - t0

    assert kernel_metrics.makespan_ms == seed_makespan_ms
    assert kernel_metrics.dispatch_counts == seed_dispatch_counts

    seed_rps = n / seed_wall_s
    kernel_rps = n / kernel_wall_s
    speedup = seed_wall_s / kernel_wall_s
    print(f"\nsimspeed ({n:,} requests, {REPLICAS} replicas): "
          f"seed {seed_rps:,.0f} req/s, kernel {kernel_rps:,.0f} req/s, "
          f"speedup {speedup:.2f}x")

    if write:
        BENCH_PATH.write_text(json.dumps({
            "trace": {"requests": n, "arrivals": "diurnal",
                      "low_qps": LOW_QPS, "high_qps": HIGH_QPS,
                      "period_s": PERIOD_S},
            "cluster": {"replicas": REPLICAS, "balancer": "round_robin",
                        "max_batch_size": MAX_BATCH,
                        "batch_timeout_ms": BATCH_TIMEOUT_MS,
                        "gpu_time_ms": GPU_TIME_MS},
            "seed_loop": {"wall_s": round(seed_wall_s, 3),
                          "simulated_rps": round(seed_rps)},
            "kernel": {"wall_s": round(kernel_wall_s, 3),
                       "simulated_rps": round(kernel_rps)},
            "speedup": round(speedup, 2),
        }, indent=2) + "\n")

    assert speedup >= MIN_SPEEDUP, (
        f"kernel simulated {kernel_rps:,.0f} req/s vs seed loop "
        f"{seed_rps:,.0f} req/s — only {speedup:.2f}x, need {MIN_SPEEDUP}x")
