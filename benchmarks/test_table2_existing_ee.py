"""Table 2: comparison with existing EE models (BranchyNet / DeeBERT).

Static, always-on-ramp EE models with one-time threshold tuning lose up to
23.9 (CV) and 17.8 (NLP) accuracy points under workload drift, while Apparate
meets the 1% constraint; and even the oracle-tuned variant of the static
baselines does not beat Apparate's tails.
"""

import pytest

from bench_common import cv_workload, nlp_workload, print_table, run_once
from repro.baselines.static_ee import StaticEEVariant, run_static_ee
from repro.core.pipeline import run_apparate, run_vanilla
from repro.exits.ramps import RampStyle

CASES = {
    "resnet50": ("cv", "urban-day", RampStyle.LIGHTWEIGHT),    # BranchyNet style
    "bert-base": ("nlp", "amazon", RampStyle.DEEP_POOLER),     # DeeBERT style
}
VARIANTS = [StaticEEVariant.SHARED, StaticEEVariant.PER_RAMP, StaticEEVariant.ORACLE]


@pytest.mark.parametrize("model_name", sorted(CASES))
def test_table2_static_ee_vs_apparate(benchmark, model_name):
    kind, source, style = CASES[model_name]
    workload = cv_workload(model_name, source) if kind == "cv" else nlp_workload(model_name, source)

    def compare():
        vanilla = run_vanilla(model_name, workload)
        apparate = run_apparate(model_name, workload)
        static = {variant: run_static_ee(model_name, workload, variant, ramp_style=style)
                  for variant in VARIANTS}
        return vanilla, apparate, static

    vanilla, apparate, static = run_once(benchmark, compare)

    def row(name, metrics):
        return {"system": name, "model": model_name,
                "accuracy": metrics.accuracy(),
                "p50_ms": metrics.median_latency(),
                "p95_ms": metrics.p95_latency()}

    rows = [row("Apparate", apparate.metrics)]
    rows += [row(f"static-{variant.value}", static[variant].metrics) for variant in VARIANTS]
    rows.append(row("vanilla", vanilla))
    print_table("Table 2 — existing EE models", rows)

    # Shape: Apparate meets the constraint and its tail stays within the 2%
    # budget of vanilla serving.  The one-time-tuned CV baseline loses
    # noticeably more accuracy under drift (BranchyNet rows of Table 2); the
    # NLP baseline's always-on deep-pooler ramps tax its median latency
    # (DeeBERT rows of Table 2).
    assert apparate.metrics.accuracy() >= 0.985
    assert apparate.metrics.p95_latency() <= vanilla.p95_latency() * 1.03
    worst_static = min(static[v].metrics.accuracy() for v in
                       (StaticEEVariant.SHARED, StaticEEVariant.PER_RAMP))
    if kind == "cv":
        assert worst_static < apparate.metrics.accuracy()
    else:
        assert apparate.metrics.median_latency() < \
            static[StaticEEVariant.SHARED].metrics.median_latency()
