"""Figure 1: the latency-throughput trade-off of batched serving.

The paper shows, for ResNet50, VGG13, BERT-base and GPT2-medium, that growing
the batch size from 1 to 16 raises throughput while inflating per-request
serving latency.  We regenerate the same series from the latency profiles.
"""

import pytest

from bench_common import print_table, run_once
from repro.models.latency import build_latency_profile
from repro.models.zoo import get_model

MODELS = ["resnet50", "vgg13", "bert-base", "gpt2-medium"]
BATCH_SIZES = [1, 2, 4, 8, 16]


def sweep(model_name):
    profile = build_latency_profile(get_model(model_name))
    return profile.sweep_batch_sizes(BATCH_SIZES)


@pytest.mark.parametrize("model_name", MODELS)
def test_fig01_latency_throughput_tradeoff(benchmark, model_name):
    table = run_once(benchmark, sweep, model_name)
    rows = [{"model": model_name, "batch": bs,
             "latency_ms": table[bs]["latency_ms"],
             "throughput_qps": table[bs]["throughput_qps"]} for bs in BATCH_SIZES]
    print_table(f"Figure 1 — {model_name}", rows)

    latencies = [table[bs]["latency_ms"] for bs in BATCH_SIZES]
    throughputs = [table[bs]["throughput_qps"] for bs in BATCH_SIZES]
    # Shape: both latency and throughput increase monotonically with batch size.
    assert all(b > a for a, b in zip(latencies, latencies[1:]))
    assert all(b > a for a, b in zip(throughputs, throughputs[1:]))
    # Batching must remain worthwhile: batch-16 throughput well above batch-1.
    assert throughputs[-1] > throughputs[0] * 2.0
