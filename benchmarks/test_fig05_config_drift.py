"""Figure 5: the optimal EE configuration changes frequently over a workload.

The paper splits workloads into 64-request chunks and shows that the set of
ramps (and thresholds) that maximize savings under the accuracy constraint
changes from chunk to chunk.  We regenerate the per-chunk optimal
configuration and count how often it changes.
"""

import numpy as np
import pytest

from bench_common import cv_workload, nlp_workload, print_table, run_once
from repro.baselines.static_ee import _observation_matrices
from repro.core.pipeline import model_stack
from repro.exits.thresholds import tune_thresholds_greedy

CHUNK = 64
CASES = {"resnet50": ("cv", "urban-day"), "bert-base": ("nlp", "amazon")}


def chunk_configs(model_name, workload, num_chunks=40):
    spec, _profile, prediction, catalog, _exec = model_stack(model_name)
    depths = [r.depth_fraction for r in catalog.ramps]
    overheads = [r.overhead_fraction * spec.bs1_latency_ms for r in catalog.ramps]
    configs = []
    for chunk_index in range(num_chunks):
        piece = workload.trace.slice(chunk_index * CHUNK, (chunk_index + 1) * CHUNK)
        if len(piece) < CHUNK:
            break
        errors, correct = _observation_matrices(piece, prediction, depths)
        tuned = tune_thresholds_greedy(errors, correct, depths, overheads,
                                       spec.bs1_latency_ms, accuracy_constraint=0.01)
        active = tuple(i for i, t in enumerate(tuned.thresholds) if t > 0.0)
        configs.append(active)
    return configs


@pytest.mark.parametrize("model_name", sorted(CASES))
def test_fig05_optimal_configuration_changes_across_chunks(benchmark, model_name):
    kind, source = CASES[model_name]
    workload = cv_workload(model_name, source) if kind == "cv" else nlp_workload(model_name, source)
    configs = run_once(benchmark, chunk_configs, model_name, workload)

    changes = sum(1 for a, b in zip(configs, configs[1:]) if a != b)
    distinct = len(set(configs))
    rows = [{"model": model_name, "chunks": len(configs),
             "config_changes": changes, "distinct_configs": distinct,
             "change_rate_%": 100.0 * changes / max(len(configs) - 1, 1)}]
    print_table("Figure 5 — optimal config drift (64-request chunks)", rows)

    # Shape: the best configuration is not static — it changes for a large
    # fraction of adjacent chunks, which is what motivates continual tuning.
    assert distinct > 1
    assert changes >= (len(configs) - 1) * 0.2
