"""Figure 2: platform knobs trade latency for throughput, harshly.

Varying TF-Serving's ``max_batch_size`` lowers latencies only by shrinking the
average batch size (and hence throughput).  The paper reports 17-39% median
latency improvements costing 1.1-3.6x reductions in average batch size.
"""

import pytest

from bench_common import print_table, run_once
from repro.core.pipeline import model_stack
from repro.serving.platform import VanillaExecutor
from repro.serving.request import make_requests
from repro.serving.tfserve import TFServingPlatform
from repro.workloads.arrivals import maf_trace_arrivals
from repro.workloads.nlp import make_nlp_workload
from repro.workloads.video import make_video_workload
from repro.utils.rng import RngFactory


def _bursty_video(num_frames=4000, mean_rate=70.0, seed=1):
    """Video frames re-timed with bursty arrivals (batches actually form)."""
    workload = make_video_workload("urban-day", num_frames=num_frames, seed=seed)
    workload.arrival_times_ms = maf_trace_arrivals(
        num_frames, mean_rate, RngFactory(seed).generator("fig2-arrivals"))
    return workload


CASES = {
    "resnet50": _bursty_video(),
    "bert-base": make_nlp_workload("amazon", num_requests=4000, rate_qps=35.0, seed=2),
}
KNOBS = [4, 8, 16]


def run_with_knob(model_name, workload, max_batch_size):
    spec, _profile, _pred, _cat, executor = model_stack(model_name)
    requests = make_requests(workload.trace, workload.arrival_times_ms, spec.default_slo_ms)
    platform = TFServingPlatform(max_batch_size=max_batch_size, batch_timeout_ms=8.0)
    return platform.run(requests, VanillaExecutor(executor))


@pytest.mark.parametrize("model_name", sorted(CASES))
def test_fig02_knob_tuning_trades_latency_for_throughput(benchmark, model_name):
    workload = CASES[model_name]

    def sweep():
        return {knob: run_with_knob(model_name, workload, knob) for knob in KNOBS}

    results = run_once(benchmark, sweep)
    rows = [{"model": model_name, "max_batch_size": knob,
             "p50_ms": results[knob].median_latency(),
             "avg_batch": results[knob].average_batch_size(),
             "throughput_qps": results[knob].throughput_qps()} for knob in KNOBS]
    print_table(f"Figure 2 — {model_name}", rows)

    small, large = results[KNOBS[0]], results[KNOBS[-1]]
    # Shape: the knob only walks the trade-off curve.  The larger cap never
    # forms smaller batches (its attainable throughput is at least as high),
    # and the smaller cap cannot simultaneously deliver strictly better
    # latency *and* strictly better throughput — it merely picks a different
    # point on the same harsh curve.
    batches = [results[knob].average_batch_size() for knob in KNOBS]
    assert all(b >= a - 1e-9 for a, b in zip(batches, batches[1:]))
    wins_both = (small.median_latency() < large.median_latency() * 0.98
                 and small.throughput_qps() > large.throughput_qps() * 1.02)
    assert not wins_both
