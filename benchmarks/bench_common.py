"""Shared helpers for the benchmark harness.

Every benchmark file regenerates one table or figure from the paper's
evaluation: it builds the same workload/model pairing (scaled down to run on a
laptop in seconds rather than hours), runs the systems being compared, prints
the rows/series the paper reports, and asserts the qualitative *shape* of the
result (who wins, roughly by how much, where the crossovers are).  Absolute
milliseconds are simulated and are not expected to match the authors' testbed.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable

import numpy as np

from repro.workloads.nlp import make_nlp_workload
from repro.workloads.video import make_video_workload

__all__ = ["pct_win", "print_table", "cv_workload", "nlp_workload", "run_once",
           "CV_BENCH_FRAMES", "NLP_BENCH_REQUESTS"]

# Benchmark workload sizes: large enough for the adaptation loops to settle,
# small enough for the whole harness to finish in minutes.
CV_BENCH_FRAMES = 4000
NLP_BENCH_REQUESTS = 4000

# Arrival rates chosen per model so that vanilla serving keeps dropped
# requests well below 20%, mirroring the paper's trace-selection criterion.
NLP_RATES_QPS = {
    "distilbert-base": 30.0,
    "bert-base": 20.0,
    "bert-large": 10.0,
    "gpt2-medium": 6.0,
    "bert-base-int8": 30.0,
    "bert-large-int8": 12.0,
}

CV_FPS = {
    "resnet18": 30.0,
    "resnet50": 30.0,
    "resnet101": 20.0,
    "vgg11": 30.0,
    "vgg13": 30.0,
    "vgg16": 30.0,
}


def cv_workload(model: str, scene: str = "urban-day", seed: int = 1,
                num_frames: int = CV_BENCH_FRAMES):
    """Video workload paired with a CV model (frame rate scaled to capacity)."""
    return make_video_workload(scene, num_frames=num_frames,
                               fps=CV_FPS.get(model, 30.0), seed=seed)


def nlp_workload(model: str, dataset: str = "amazon", seed: int = 2,
                 num_requests: int = NLP_BENCH_REQUESTS):
    """Review-stream workload paired with an NLP model."""
    return make_nlp_workload(dataset, num_requests=num_requests,
                             rate_qps=NLP_RATES_QPS.get(model, 20.0), seed=seed)


def pct_win(baseline: float, value: float) -> float:
    """Relative improvement (%) of ``value`` over ``baseline``."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - value) / baseline


def print_table(title: str, rows: Iterable[Dict[str, object]]) -> None:
    """Print one experiment's rows in a readable fixed-width table."""
    rows = list(rows)
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    keys = list(rows[0].keys())
    header = " | ".join(f"{k:>18s}" for k in keys)
    print(header)
    print("-" * len(header))
    for row in rows:
        cells = []
        for key in keys:
            value = row[key]
            if isinstance(value, float):
                cells.append(f"{value:18.2f}")
            else:
                cells.append(f"{str(value):>18s}")
        print(" | ".join(cells))


def run_once(benchmark, fn: Callable, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1,
                              warmup_rounds=0)
