"""Observability overhead benchmark: tracing must be free when off, cheap
when on, and never change the answer.

Not a paper figure — this guards the instrumentation contract of
:mod:`repro.obs`: the hooks in the kernel and platform hot paths are no-ops
against :data:`~repro.obs.recorder.NULL_RECORDER` (the default), so an
untraced run simulates at effectively ``BENCH_simspeed`` throughput, and a
traced run produces **bit-identical metrics** — the recorder only reads
timestamps the simulator already computed.

The benchmark serves the simspeed diurnal trace through the same 32-replica
fleet twice — tracing off, then tracing on — and asserts:

* the two runs' makespans and dispatch counts are identical,
* every request yields exactly one closed span (conservation),
* traced throughput stays within ``MAX_TRACED_SLOWDOWN`` of untraced.

Modes (``BENCH_OBS`` environment variable)
------------------------------------------
unset
    Smoke trace (30k requests, a couple of seconds); nothing is written.
``smoke`` / ``full`` / ``1``
    Same run, and the measurements land in ``BENCH_obs.json`` — the CI
    overhead gate compares ``off.simulated_rps`` against the
    ``BENCH_simspeed.json`` kernel throughput (within 3%).
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

from repro.obs import TraceRecorder
from repro.serving.cluster import ClusterPlatform
from repro.serving.platform import BatchResult
from repro.serving.request import Request
from repro.serving.tfserve import TFServingPlatform
from repro.workloads.arrivals import diurnal_arrivals
from repro.workloads.difficulty import InputSample

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_obs.json"

#: A traced run records ~3 span events per request; allow it to cost at most
#: this factor in wall clock over the untraced run.
MAX_TRACED_SLOWDOWN = 2.0

SMOKE_REQUESTS = 60_000   # the BENCH_simspeed smoke trace, for a fair gate

REPLICAS = 32
MAX_BATCH = 16
BATCH_TIMEOUT_MS = 4.0
GPU_TIME_MS = 8.0
LOW_QPS, HIGH_QPS, PERIOD_S = 200.0, 2000.0, 60.0


def _write_enabled() -> bool:
    return os.environ.get("BENCH_OBS", "").strip().lower() in ("smoke", "full",
                                                               "1")


def _make_trace(n):
    times = diurnal_arrivals(n, low_qps=LOW_QPS, high_qps=HIGH_QPS,
                             period_s=PERIOD_S)
    return [Request(request_id=i, arrival_ms=float(t),
                    sample=InputSample(index=i, raw_difficulty=0.3,
                                       sharpness=0.05, confidence_shift=0.0),
                    slo_ms=1000.0)
            for i, t in enumerate(times)]


def _make_cluster(obs=None):
    return ClusterPlatform(
        [TFServingPlatform(max_batch_size=MAX_BATCH,
                           batch_timeout_ms=BATCH_TIMEOUT_MS)
         for _ in range(REPLICAS)],
        balancer="round_robin", obs=obs)


def _executor(batch, batch_start_ms):
    return BatchResult(gpu_time_ms=GPU_TIME_MS,
                       result_offsets_ms=[GPU_TIME_MS] * len(batch))


def test_observability_overhead():
    n = SMOKE_REQUESTS
    requests = _make_trace(n)

    # Best of two untraced timings: the CI gate compares this number across
    # process boundaries (vs BENCH_simspeed), so shave scheduler noise.
    off_wall_s = float("inf")
    for _ in range(2):
        gc.collect()
        gc.freeze()
        t0 = time.perf_counter()
        off_metrics = _make_cluster().run(requests, _executor)
        off_wall_s = min(off_wall_s, time.perf_counter() - t0)

    recorder = TraceRecorder()
    gc.collect()
    gc.freeze()
    t0 = time.perf_counter()
    on_metrics = _make_cluster(obs=recorder).run(requests, _executor)
    on_wall_s = time.perf_counter() - t0

    # Tracing must never change the answer.
    assert on_metrics.makespan_ms == off_metrics.makespan_ms
    assert on_metrics.dispatch_counts == off_metrics.dispatch_counts
    assert on_metrics.aggregate().summary() == off_metrics.aggregate().summary()

    # ... and must account for every request exactly once.
    spans = recorder.spans()
    assert len(spans) == n
    assert all(span.closed for span in spans)

    off_rps = n / off_wall_s
    on_rps = n / on_wall_s
    slowdown = on_wall_s / off_wall_s
    print(f"\nobs overhead ({n:,} requests, {REPLICAS} replicas): "
          f"off {off_rps:,.0f} req/s, traced {on_rps:,.0f} req/s, "
          f"traced slowdown {slowdown:.2f}x")

    if _write_enabled():
        BENCH_PATH.write_text(json.dumps({
            "trace": {"requests": n, "arrivals": "diurnal",
                      "low_qps": LOW_QPS, "high_qps": HIGH_QPS,
                      "period_s": PERIOD_S},
            "cluster": {"replicas": REPLICAS, "balancer": "round_robin",
                        "max_batch_size": MAX_BATCH,
                        "batch_timeout_ms": BATCH_TIMEOUT_MS,
                        "gpu_time_ms": GPU_TIME_MS},
            "off": {"wall_s": round(off_wall_s, 3),
                    "simulated_rps": round(off_rps)},
            "traced": {"wall_s": round(on_wall_s, 3),
                       "simulated_rps": round(on_rps),
                       "spans": len(spans),
                       "gauge_samples": len(recorder.gauges)},
            "traced_slowdown": round(slowdown, 3),
        }, indent=2) + "\n")

    assert slowdown <= MAX_TRACED_SLOWDOWN, (
        f"traced run took {slowdown:.2f}x the untraced run "
        f"(cap {MAX_TRACED_SLOWDOWN}x)")
