"""Cluster scaling: throughput and tail latency vs. replica count per balancer.

Not a paper figure — this extends the reproduction toward the ROADMAP's
production-scale target.  A saturating arrival trace (arrivals far above one
replica's capacity) is served by fleets of 1, 2 and 4 replicas under each
load-balancing policy.  Expected shape: fleet throughput grows monotonically
with replica count (the service, not the arrival stream, is the bottleneck),
and the queue-aware balancers keep tail latency at or below round-robin's.
"""

import pytest

from bench_common import print_table, run_once
from repro.core.pipeline import run_vanilla_cluster
from repro.serving.cluster import BALANCER_NAMES
from repro.workloads.video import make_video_workload

REPLICA_COUNTS = [1, 2, 4]
# ~240 qps arrivals against ~60 qps per-replica capacity (tight default SLO
# keeps Clockwork's batches small): saturating even for the 4-replica fleet.
SATURATING_FPS = 240.0
NUM_FRAMES = 3000


@pytest.fixture(scope="module")
def saturating_workload():
    return make_video_workload("urban-day", num_frames=NUM_FRAMES,
                               fps=SATURATING_FPS, seed=7)


@pytest.mark.parametrize("balancer", sorted(BALANCER_NAMES))
def test_cluster_scaling_throughput(benchmark, balancer, saturating_workload):
    def sweep():
        return {n: run_vanilla_cluster("resnet50", saturating_workload,
                                       replicas=n, balancer=balancer,
                                       drop_expired=False, seed=0)
                for n in REPLICA_COUNTS}

    results = run_once(benchmark, sweep)
    rows = []
    for n in REPLICA_COUNTS:
        summary = results[n].summary()
        rows.append({"balancer": balancer, "replicas": n,
                     "tput_qps": summary["throughput_qps"],
                     "p50_ms": summary["p50_ms"], "p99_ms": summary["p99_ms"],
                     "gpu_util": summary["fleet_gpu_utilization"],
                     "imbalance": summary["dispatch_imbalance"]})
    print_table(f"Cluster scaling — {balancer}", rows)

    # Conservation: every request answered on every fleet size.
    for n in REPLICA_COUNTS:
        assert len(results[n].aggregate().served()) == NUM_FRAMES

    # Shape: monotone throughput improvement from 1 -> 4 replicas under a
    # saturating trace, with a clear (>1.5x) win for the full fan-out.
    tputs = [results[n].fleet_throughput_qps() for n in REPLICA_COUNTS]
    assert tputs[0] <= tputs[1] * 1.02 and tputs[1] <= tputs[2] * 1.02, \
        f"{balancer}: throughput not monotone across {REPLICA_COUNTS}: {tputs}"
    assert tputs[2] > tputs[0] * 1.5, \
        f"{balancer}: 4 replicas should clearly out-serve 1 ({tputs})"

    # More replicas must not make the tail worse.
    p99s = [results[n].aggregate().p99_latency() for n in REPLICA_COUNTS]
    assert p99s[2] <= p99s[0]


def test_queue_aware_balancers_beat_round_robin_tail(saturating_workload):
    """JSQ/least-work should not lose to round-robin on p99 at equal fleet size."""
    results = {balancer: run_vanilla_cluster("resnet50", saturating_workload,
                                             replicas=4, balancer=balancer,
                                             drop_expired=False, seed=0)
               for balancer in ("round_robin", "join_shortest_queue",
                                "least_work_left")}
    p99 = {name: fleet.aggregate().p99_latency() for name, fleet in results.items()}
    print_table("4-replica tail latency by balancer",
                [{"balancer": name, "p99_ms": value} for name, value in p99.items()])
    assert p99["join_shortest_queue"] <= p99["round_robin"] * 1.10
    assert p99["least_work_left"] <= p99["round_robin"] * 1.10
