"""Cluster scaling: throughput and tail latency vs. replica count per balancer.

Not a paper figure — this extends the reproduction toward the ROADMAP's
production-scale target.  A saturating arrival trace (arrivals far above one
replica's capacity) is served by fleets of 1, 2 and 4 replicas under each
load-balancing policy, driven through the declarative ``Experiment`` facade:
one ``sweep(replicas=[...])`` call per balancer, with every metric consumed
from the uniform ``RunResult.to_json()`` schema rather than ad-hoc result
attributes.  Expected shape: fleet throughput grows monotonically with
replica count (the service, not the arrival stream, is the bottleneck), and
the queue-aware balancers keep tail latency at or below round-robin's.
"""

import pytest

from bench_common import print_table, run_once
from repro.api import ClusterSpec, Experiment
from repro.serving.cluster import balancer_names
from repro.workloads.video import make_video_workload

REPLICA_COUNTS = [1, 2, 4]
# ~240 qps arrivals against ~60 qps per-replica capacity (tight default SLO
# keeps Clockwork's batches small): saturating even for the 4-replica fleet.
SATURATING_FPS = 240.0
NUM_FRAMES = 3000


@pytest.fixture(scope="module")
def saturating_workload():
    return make_video_workload("urban-day", num_frames=NUM_FRAMES,
                               fps=SATURATING_FPS, seed=7)


def _fleet_experiment(workload, balancer: str) -> Experiment:
    return Experiment(model="resnet50", workload=workload,
                      cluster=ClusterSpec(replicas=1, balancer=balancer),
                      drop_expired=False, seed=0)


@pytest.mark.parametrize("balancer", sorted(balancer_names("classification")))
def test_cluster_scaling_throughput(benchmark, balancer, saturating_workload):
    def sweep():
        return _fleet_experiment(saturating_workload, balancer) \
            .sweep(systems=["vanilla"], replicas=REPLICA_COUNTS)

    report = run_once(benchmark, sweep)
    # Every metric below comes from the shared RunResult.to_json() schema.
    summaries = {point.params["replicas"]:
                 point.report.result("vanilla").to_json()["summary"]
                 for point in report}
    print_table(f"Cluster scaling — {balancer}",
                [{"balancer": balancer, "replicas": n,
                  "tput_qps": s["throughput_qps"],
                  "p50_ms": s["p50_ms"], "p99_ms": s["p99_ms"],
                  "gpu_util": s["fleet_gpu_utilization"],
                  "imbalance": s["dispatch_imbalance"]}
                 for n, s in summaries.items()])

    # Conservation: every request answered on every fleet size.
    for n in REPLICA_COUNTS:
        assert summaries[n]["num_served"] == NUM_FRAMES

    # Shape: monotone throughput improvement from 1 -> 4 replicas under a
    # saturating trace, with a clear (>1.5x) win for the full fan-out.
    tputs = [summaries[n]["throughput_qps"] for n in REPLICA_COUNTS]
    assert tputs[0] <= tputs[1] * 1.02 and tputs[1] <= tputs[2] * 1.02, \
        f"{balancer}: throughput not monotone across {REPLICA_COUNTS}: {tputs}"
    assert tputs[2] > tputs[0] * 1.5, \
        f"{balancer}: 4 replicas should clearly out-serve 1 ({tputs})"

    # More replicas must not make the tail worse.
    p99s = [summaries[n]["p99_ms"] for n in REPLICA_COUNTS]
    assert p99s[2] <= p99s[0]


def test_queue_aware_balancers_beat_round_robin_tail(saturating_workload):
    """JSQ/least-work should not lose to round-robin on p99 at equal fleet size."""
    p99 = {}
    for balancer in ("round_robin", "join_shortest_queue", "least_work_left"):
        experiment = Experiment(model="resnet50", workload=saturating_workload,
                                cluster=ClusterSpec(replicas=4, balancer=balancer),
                                drop_expired=False, seed=0)
        result = experiment.run(["vanilla"]).result("vanilla")
        p99[balancer] = result.to_json()["summary"]["p99_ms"]
    print_table("4-replica tail latency by balancer",
                [{"balancer": name, "p99_ms": value} for name, value in p99.items()])
    assert p99["join_shortest_queue"] <= p99["round_robin"] * 1.10
    assert p99["least_work_left"] <= p99["round_robin"] * 1.10
