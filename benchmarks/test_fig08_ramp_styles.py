"""Figure 8: many lightweight ramps beat fewer, heavier ramps.

Under the same ramp budget, Apparate's default (pooling + final fc) ramps
allow more simultaneously active positions than conv-heavy or deep-pooler
alternatives, which the paper finds yields 1.3-5.4x lower median latencies.
"""

import pytest

from bench_common import cv_workload, nlp_workload, print_table, run_once
from repro.core.pipeline import run_apparate
from repro.exits.ramps import RampStyle

CASES = {
    "resnet50": ("cv", "urban-day", [RampStyle.LIGHTWEIGHT, RampStyle.CONV_HEAVY]),
    "bert-base": ("nlp", "amazon", [RampStyle.LIGHTWEIGHT, RampStyle.STACKED_FC,
                                    RampStyle.DEEP_POOLER]),
}


@pytest.mark.parametrize("model_name", sorted(CASES))
def test_fig08_lightweight_ramps_maximize_savings(benchmark, model_name):
    kind, source, styles = CASES[model_name]
    workload = cv_workload(model_name, source) if kind == "cv" else nlp_workload(model_name, source)

    def sweep():
        return {style: run_apparate(model_name, workload, ramp_style=style)
                for style in styles}

    results = run_once(benchmark, sweep)
    rows = [{"model": model_name, "ramp_style": style.value,
             "p50_ms": results[style].metrics.median_latency(),
             "accuracy": results[style].metrics.accuracy(),
             "active_ramps": results[style].controller.config.num_active()}
            for style in styles]
    print_table("Figure 8 — ramp architecture comparison", rows)

    light = results[RampStyle.LIGHTWEIGHT]
    for style in styles[1:]:
        heavy = results[style]
        # Shape: the lightweight default is at least as good as heavier styles
        # and never activates fewer ramps; every style meets the constraint.
        assert light.metrics.median_latency() <= heavy.metrics.median_latency() * 1.05
        assert light.controller.catalog.max_active_ramps() >= \
            heavy.controller.catalog.max_active_ramps()
        assert heavy.metrics.accuracy() >= 0.985
