"""Multi-tenant isolation and fault-recovery acceptance benchmarks.

Not a paper figure — this extends the reproduction into a scenario harness
(ISSUE 7): shared fleets and machine churn.  Two scenarios, each asserted:

* **Isolation under batch saturation** — an interactive tenant (``chat``)
  runs at ~82% of fleet capacity while a batch tenant (``backfill``) piles
  another ~45% of capacity on top, saturating the fleet.  Weighted-fair
  dispatch must keep chat's p99 within 15% of its *solo* run — the same
  chat request stream, replayed timestamp-for-timestamp on the same fleet
  with no batch tenant.  (The batch tenant's p99 is allowed to grow without
  bound; it is the backlog sponge.)

* **Crash-and-recover with a reactive autoscaler** — a replica dies mid-run
  and stays down for six seconds.  The reactive autoscaler must restore SLO
  attainment to within 2% of the fault-free run without losing a single
  request, while the same fault on a static fleet visibly melts — the
  contrast that shows the autoscaler, not slack capacity, does the healing.
"""

import numpy as np
import pytest

from bench_common import print_table, run_once
from repro.api import ClusterSpec, Experiment, WorkloadSpec
from repro.serving.cluster import ClusterPlatform
from repro.serving.platform import BatchResult
from repro.serving.request import Request
from repro.serving.tfserve import TFServingPlatform
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.difficulty import InputSample

# --------------------------------------------------------------------------
# Scenario 1: weighted-fair isolation while a batch tenant saturates.
#
# Synthetic latency profile: a batch of b costs 4 + 6b ms, so a replica
# serves ~143 req/s at max_batch_size=4 and the 2-replica fleet ~287 req/s.
# chat at 235 qps is ~82% utilisation; backfill adds another 130 qps, so
# total demand is ~1.27x capacity — the fleet is saturated and backfill's
# queue grows for the whole run.
# --------------------------------------------------------------------------

REPLICAS = 2
MAX_BATCH = 4
BATCH_TIMEOUT_MS = 15.0
CHAT_QPS, BACKFILL_QPS = 235.0, 130.0
N_CHAT, N_BACKFILL = 4000, 2200
ISOLATION_LIMIT = 1.15


def _batch_cost_ms(batch_size: int) -> float:
    return 4.0 + 6.0 * batch_size


def _executor(batch, batch_start_ms):
    cost = _batch_cost_ms(len(batch))
    return BatchResult(gpu_time_ms=cost, result_offsets_ms=[cost] * len(batch))


def _tenant_stream(seed: int):
    """Merged pre-tagged arrival stream plus chat's exact sub-stream."""
    rng = np.random.default_rng(seed)
    chat = poisson_arrivals(N_CHAT, CHAT_QPS, rng)
    backfill = poisson_arrivals(N_BACKFILL, BACKFILL_QPS, rng)
    items = sorted([(t, "chat") for t in chat] +
                   [(t, "backfill") for t in backfill])
    mixed = [Request(request_id=i, arrival_ms=float(t),
                     sample=InputSample(index=i, raw_difficulty=0.3,
                                        sharpness=0.05, confidence_shift=0.0),
                     slo_ms=10_000.0, tenant=tenant)
             for i, (t, tenant) in enumerate(items)]
    solo = [r for r in mixed if r.tenant == "chat"]
    return mixed, solo


def _run_fleet(requests, tenancy):
    platforms = [TFServingPlatform(max_batch_size=MAX_BATCH,
                                   batch_timeout_ms=BATCH_TIMEOUT_MS)
                 for _ in range(REPLICAS)]
    cluster = ClusterPlatform(platforms, balancer="least_work_left",
                              tenancy=tenancy, seed=0)
    return cluster.run(requests, _executor)


def test_weighted_fair_isolates_interactive_tenant(benchmark):
    mixed_requests, solo_requests = _tenant_stream(seed=100)

    def scenario():
        mixed = _run_fleet(mixed_requests,
                           "chat:weight=100;backfill:priority=batch")
        solo = _run_fleet(solo_requests, "chat:weight=100")
        return mixed, solo

    mixed, solo = run_once(benchmark, scenario)
    chat_mixed = mixed.tenant_rollups["chat"]
    chat_solo = solo.tenant_rollups["chat"]
    backfill = mixed.tenant_rollups["backfill"]
    ratio = chat_mixed["p99_ms"] / chat_solo["p99_ms"]

    print_table("Weighted-fair isolation under batch saturation", [
        {"tenant": "chat (mixed)", "requests": chat_mixed["requests"],
         "p99_ms": chat_mixed["p99_ms"], "goodput": chat_mixed["goodput_qps"]},
        {"tenant": "chat (solo)", "requests": chat_solo["requests"],
         "p99_ms": chat_solo["p99_ms"], "goodput": chat_solo["goodput_qps"]},
        {"tenant": "backfill", "requests": backfill["requests"],
         "p99_ms": backfill["p99_ms"], "goodput": backfill["goodput_qps"]},
    ])
    print(f"isolation ratio (chat mixed/solo p99): {ratio:.3f}")

    # Conservation: every request of both streams answered exactly once.
    answered = sorted(r.request_id for r in mixed.aggregate().responses)
    assert answered == list(range(N_CHAT + N_BACKFILL))

    # The batch tenant genuinely saturates the fleet: its tail is queueing
    # delay two orders of magnitude beyond the interactive tenant's.
    assert backfill["p99_ms"] > 20 * chat_mixed["p99_ms"]

    # Acceptance: weighted-fair keeps the interactive tenant's p99 within
    # 15% of its solo-run p99 despite the saturating batch tenant.
    assert ratio <= ISOLATION_LIMIT, \
        (f"chat p99 {chat_mixed['p99_ms']:.1f}ms vs solo "
         f"{chat_solo['p99_ms']:.1f}ms: ratio {ratio:.3f} > {ISOLATION_LIMIT}")


# --------------------------------------------------------------------------
# Scenario 2: crash-and-recover, reactive autoscaler vs a static fleet.
#
# 240 qps on three replicas sits right at the two-replica capacity knee:
# losing one replica for six seconds is survivable only if new capacity
# arrives.  The reactive autoscaler boots a replacement within its
# provisioning delay; the static fleet waits out the full outage.
# --------------------------------------------------------------------------

FAULT = "5000:6000"        # crash at t=5s, replacement boots 6s later
RATE_QPS = 240.0
N_REQUESTS = 3600
SLO_MS = 50.0
ATTAINMENT_SLACK = 0.02


def _run_experiment(faults, autoscaler):
    experiment = Experiment(
        model="resnet50",
        workload=WorkloadSpec("video", "urban-day", requests=N_REQUESTS,
                              rate=RATE_QPS),
        cluster=ClusterSpec(replicas=3, balancer="least_work_left",
                            autoscaler=autoscaler, min_replicas=3,
                            max_replicas=5, faults=faults),
        slo_ms=SLO_MS, drop_expired=False, seed=0)
    result = experiment.run(["vanilla"]).result("vanilla")
    attainment = 1.0 - result.raw.aggregate().slo_violation_rate(SLO_MS)
    return result, attainment


def test_reactive_autoscaler_restores_slo_after_crash(benchmark):
    def scenario():
        return {
            "fault_free": _run_experiment(None, "reactive"),
            "reactive": _run_experiment(FAULT, "reactive"),
            "static": _run_experiment(FAULT, "none"),
        }

    runs = run_once(benchmark, scenario)
    attainments = {name: att for name, (_, att) in runs.items()}

    print_table("Crash-and-recover: SLO attainment", [
        {"fleet": name, "slo_attainment": att,
         "peak_replicas": result.summary["peak_replicas"],
         "crashes": result.details.get("crashes", 0),
         "recoveries": result.details.get("recoveries", 0)}
        for name, (result, att) in runs.items()])

    # The fault actually fired on both faulted runs.
    for name in ("reactive", "static"):
        details = runs[name][0].details
        assert details["crashes"] == 1 and details["recoveries"] == 1

    # Conservation under churn: every request served on every fleet.
    for name, (result, _) in runs.items():
        assert result.summary["num_served"] == N_REQUESTS

    # Acceptance: the reactive autoscaler restores SLO attainment to within
    # 2% of the fault-free run...
    delta = attainments["fault_free"] - attainments["reactive"]
    assert delta <= ATTAINMENT_SLACK, \
        (f"reactive attainment {attainments['reactive']:.4f} vs fault-free "
         f"{attainments['fault_free']:.4f}: lost {delta:.4f} > "
         f"{ATTAINMENT_SLACK}")

    # ...while the same fault melts the static fleet — the healing is the
    # autoscaler's doing, not spare capacity.
    static_delta = attainments["fault_free"] - attainments["static"]
    assert static_delta > 0.10, \
        (f"static fleet only lost {static_delta:.4f} attainment; the "
         f"scenario no longer stresses the outage window")
