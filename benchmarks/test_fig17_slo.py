"""Figure 17: the effect of looser SLOs on Apparate's wins.

Higher SLOs induce larger serving batches and more queuing, which dampens
Apparate's *relative* latency savings (its exits shave serving time, not
queueing).  The paper shows wins shrinking as SLOs grow from 1x to 4x.
"""

import pytest

from bench_common import pct_win, print_table, run_once
from repro.core.pipeline import run_apparate, run_vanilla
from repro.models.zoo import get_model
from repro.workloads.nlp import make_nlp_workload
from repro.workloads.video import make_video_workload

SLO_SCALES = [1.0, 2.0, 4.0]
CASES = {
    # The paper upsamples video to 120 fps for this experiment so queuing exists.
    "resnet50": make_video_workload("urban-day", num_frames=4000, fps=120.0, seed=1),
    "bert-base": make_nlp_workload("amazon", num_requests=4000, rate_qps=40.0, seed=2),
}


@pytest.mark.parametrize("model_name", sorted(CASES))
def test_fig17_wins_shrink_with_looser_slos(benchmark, model_name):
    workload = CASES[model_name]
    base_slo = get_model(model_name).default_slo_ms

    def sweep():
        results = {}
        for scale in SLO_SCALES:
            slo = base_slo * scale
            vanilla = run_vanilla(model_name, workload, slo_ms=slo)
            apparate = run_apparate(model_name, workload, slo_ms=slo)
            results[scale] = (vanilla, apparate)
        return results

    results = run_once(benchmark, sweep)
    rows = []
    wins = {}
    for scale in SLO_SCALES:
        vanilla, apparate = results[scale]
        wins[scale] = pct_win(vanilla.median_latency(), apparate.metrics.median_latency())
        rows.append({"model": model_name, "slo_scale": scale,
                     "vanilla_p50_ms": vanilla.median_latency(),
                     "apparate_p50_ms": apparate.metrics.median_latency(),
                     "win_%": wins[scale],
                     "avg_batch": vanilla.average_batch_size()})
    print_table("Figure 17 — SLO sensitivity", rows)

    # Shape: wins stay positive throughout, and for the queuing-dominated NLP
    # workload the relative win does not grow as SLOs loosen (larger batches
    # and queuing dilute serving-time savings).  The simulated CV substrate
    # under-weights queuing growth, so its trend is asserted only weakly.
    assert all(w >= -2.0 for w in wins.values())
    if model_name == "bert-base":
        assert wins[4.0] <= wins[1.0] + 3.0
    else:
        assert wins[4.0] <= wins[1.0] + 15.0
