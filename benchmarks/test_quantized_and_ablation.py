"""§4.2 quantized models and §4.5 ablation of ramp adjustment.

* Quantized (Int8) BERT models: Apparate's wins largely persist, with a mild
  dip because quantization removes some of the overparameterization exits rely
  on (paper: 7.3-19.4% median wins vs 10.0-24.2% unquantized).
* Disabling ramp adjustment costs 20-33% of the median latency wins while
  accuracy and tail constraints continue to hold.
"""

import pytest

from bench_common import cv_workload, nlp_workload, pct_win, print_table, run_once
from repro.core.pipeline import run_apparate, run_vanilla
from repro.models.quantization import quantized_spec
from repro.models.zoo import get_model

QUANTIZED_BASES = ["bert-base", "bert-large"]


@pytest.mark.parametrize("base_name", QUANTIZED_BASES)
def test_quantized_models_keep_most_of_the_wins(benchmark, base_name):
    spec = quantized_spec(get_model(base_name), register=True)
    workload = nlp_workload(spec.name, "amazon")
    base_workload = nlp_workload(base_name, "amazon")

    def compare():
        vanilla_q = run_vanilla(spec, workload)
        apparate_q = run_apparate(spec, workload)
        vanilla_fp = run_vanilla(base_name, base_workload)
        apparate_fp = run_apparate(base_name, base_workload)
        return vanilla_q, apparate_q, vanilla_fp, apparate_fp

    vanilla_q, apparate_q, vanilla_fp, apparate_fp = run_once(benchmark, compare)
    win_q = pct_win(vanilla_q.median_latency(), apparate_q.metrics.median_latency())
    win_fp = pct_win(vanilla_fp.median_latency(), apparate_fp.metrics.median_latency())
    rows = [{"model": base_name, "fp_win_%": win_fp, "int8_win_%": win_q,
             "int8_accuracy": apparate_q.metrics.accuracy()}]
    print_table("§4.2 — quantized models", rows)

    # Shape: wins persist on the quantized model (possibly milder) and the
    # accuracy constraint still holds.
    assert win_q > 0.0
    assert win_q <= win_fp + 5.0
    assert apparate_q.metrics.accuracy() >= 0.98


@pytest.mark.parametrize("model_name,kind,source", [("resnet50", "cv", "urban-day"),
                                                    ("gpt2-medium", "nlp", "amazon")])
def test_ablation_disabling_ramp_adjustment_costs_wins(benchmark, model_name, kind, source):
    workload = cv_workload(model_name, source) if kind == "cv" else nlp_workload(model_name, source)

    def compare():
        vanilla = run_vanilla(model_name, workload)
        full = run_apparate(model_name, workload, ramp_adjustment_enabled=True)
        no_adjust = run_apparate(model_name, workload, ramp_adjustment_enabled=False)
        return vanilla, full, no_adjust

    vanilla, full, no_adjust = run_once(benchmark, compare)
    win_full = pct_win(vanilla.median_latency(), full.metrics.median_latency())
    win_no_adjust = pct_win(vanilla.median_latency(), no_adjust.metrics.median_latency())
    rows = [{"model": model_name, "win_full_%": win_full,
             "win_no_adjustment_%": win_no_adjust,
             "accuracy_no_adjustment": no_adjust.metrics.accuracy(),
             "p95_ratio_no_adjustment": no_adjust.metrics.p95_latency()
             / max(vanilla.p95_latency(), 1e-9)}]
    print_table("§4.5 — ramp-adjustment ablation", rows)

    # Shape: ramp adjustment contributes part of the wins; without it the
    # system still meets accuracy and tail constraints.
    assert win_full >= win_no_adjust - 2.0
    assert no_adjust.metrics.accuracy() >= 0.98
    assert no_adjust.metrics.p95_latency() <= vanilla.p95_latency() * 1.05
