"""Generative cluster serving: token-level early exits on the fleet control
plane (acceptance benchmark for the last ROADMAP capability gap).

Not a paper figure — the paper's generative evaluation (Figure 18) is single
replica.  This benchmark puts the same four systems (vanilla, Apparate, FREE,
the optimal oracle) on a 4-replica decode fleet behind the declarative
``Experiment`` facade, at an arrival rate chosen *between* the vanilla fleet's
capacity and the Apparate fleet's capacity.  Expected shape:

* every system runs end-to-end through ``ClusterSpec`` dispatch and conserves
  tokens exactly against the single-replica engine;
* the vanilla fleet saturates — sequences queue for decode slots and the
  queueing-inclusive per-token p99 explodes — while Apparate's exits free
  slots fast enough that its per-token p99 stays near the decode cadence, at
  matched (constraint-satisfying) accuracy;
* a reactive autoscaler converts the same overload into scale-out instead of
  queueing, again without losing a token.
"""

import pytest

from bench_common import pct_win, print_table, run_once
from repro.api import ClusterSpec, Experiment, ExitPolicySpec
from repro.generative.sequences import make_generative_workload

REPLICAS = 4
SEQUENCES = 250
# t5-large decodes ~60-token CNN/DailyMail summaries in ~1.1s on 8 slots, so
# 4 vanilla replicas serve ~29 seq/s; 32 seq/s saturates vanilla but not the
# exit-accelerated fleet.
RATE_QPS = 32.0


@pytest.fixture(scope="module")
def workload():
    return make_generative_workload("cnn-dailymail", num_sequences=SEQUENCES,
                                    rate_qps=RATE_QPS, seed=3,
                                    drift_amplitude=0.25, drift_mode="walk")


def test_generative_cluster_four_systems_end_to_end(benchmark, workload):
    experiment = Experiment(model="t5-large", workload=workload,
                            cluster=ClusterSpec(replicas=REPLICAS),
                            ee=ExitPolicySpec(accuracy_constraint=0.01), seed=0)

    report = run_once(benchmark, lambda: experiment.run(
        ["vanilla", "apparate", "free", "optimal"]))

    single = Experiment(model="t5-large", workload=workload,
                        ee=ExitPolicySpec(accuracy_constraint=0.01), seed=0) \
        .run(["apparate"]).result("apparate")
    vanilla = report.result("vanilla").summary
    apparate = report.result("apparate").summary

    rows = [{"system": name,
             "tpt_p50_ms": report.result(name).summary["tpt_p50_ms"],
             "token_p99_ms": report.result(name).summary["token_p99_ms"],
             "accuracy": report.result(name).summary["sequence_accuracy"],
             "exit_rate": report.result(name).summary["exit_rate"],
             "tokens": report.result(name).summary["num_tokens"]}
            for name in ("vanilla", "apparate", "free", "optimal")]
    print_table(f"Generative cluster — {REPLICAS} replicas @ {RATE_QPS} seq/s",
                rows)

    # Every system ran on the fleet and answered every token exactly once.
    total_tokens = float(workload.total_tokens())
    for name in ("vanilla", "apparate", "free", "optimal"):
        summary = report.result(name).summary
        assert summary["num_replicas"] == float(REPLICAS)
        assert summary["num_tokens"] == total_tokens

    # Token conservation vs the single-replica engine: the fleet emits the
    # same token multiset, just partitioned across replicas.
    assert apparate["num_tokens"] == single.summary["num_tokens"]
    fleet_ids = sorted(
        (t.sequence_id, t.token_index)
        for replica in report.result("apparate").raw.metrics.replicas
        for t in replica.tokens)
    single_ids = sorted((t.sequence_id, t.token_index)
                        for t in single.raw.metrics.tokens)
    assert fleet_ids == single_ids

    # The headline: at matched accuracy, exits free decode slots fast enough
    # that Apparate's queueing-inclusive per-token p99 beats the saturated
    # vanilla fleet by a wide margin (the latency/goodput trade at scale).
    p99_win = pct_win(vanilla["token_p99_ms"], apparate["token_p99_ms"])
    assert apparate["sequence_accuracy"] >= 0.99 - 1e-9
    assert apparate["token_p99_ms"] < vanilla["token_p99_ms"]
    assert p99_win > 30.0
    # Decode-cadence median also wins (the single-replica Figure 18 shape
    # survives fleet dispatch).
    assert apparate["tpt_p50_ms"] < vanilla["tpt_p50_ms"]


def test_generative_autoscaler_converts_overload_into_scale_out(workload):
    """The same saturating trace on an elastic vanilla fleet: the reactive
    scaler grows the fleet past its initial size, tokens are conserved, and
    the p99 lands far below the fixed saturated fleet's."""
    fixed = Experiment(model="t5-large", workload=workload,
                       cluster=ClusterSpec(replicas=REPLICAS), seed=0) \
        .run(["vanilla"]).result("vanilla")
    elastic = Experiment(
        model="t5-large", workload=workload,
        cluster=ClusterSpec(replicas=REPLICAS, balancer="least_work_left",
                            autoscaler="reactive", min_replicas=REPLICAS,
                            max_replicas=2 * REPLICAS), seed=0) \
        .run(["vanilla"]).result("vanilla")
    assert elastic.summary["peak_replicas"] > REPLICAS
    assert elastic.summary["num_tokens"] == float(workload.total_tokens())
    assert elastic.summary["token_p99_ms"] < fixed.summary["token_p99_ms"]
    assert elastic.details["fleet_timeline"][0][1] == REPLICAS
