"""Figure 10: greedy threshold tuning vs exhaustive grid search.

The paper reports the greedy search running up to three orders of magnitude
faster than a (parallelized) grid search while giving up at most a few percent
of the achievable latency savings, for 2-4 active ramps.
"""

import numpy as np
import pytest

from bench_common import print_table, run_once
from repro.exits.thresholds import tune_thresholds_greedy, tune_thresholds_grid
from repro.models.prediction import ramp_error_score


def make_window(num_ramps, n=512, seed=0):
    rng = np.random.default_rng(seed)
    required = np.clip(rng.normal(0.35, 0.15, size=n), 0.0, 1.0)
    sharpness = rng.uniform(0.03, 0.08, size=n)
    depths = np.linspace(0.25, 0.85, num_ramps)
    errors = np.asarray(ramp_error_score(required[:, None], depths[None, :],
                                         sharpness[:, None]))
    correct = required[:, None] <= depths[None, :]
    overheads = [0.05] * num_ramps
    return errors, correct, list(depths), overheads


@pytest.mark.parametrize("num_ramps", [2, 3, 4])
def test_fig10_greedy_vs_grid_runtime_and_optimality(benchmark, num_ramps):
    errors, correct, depths, overheads = make_window(num_ramps)

    def compare():
        greedy = tune_thresholds_greedy(errors, correct, depths, overheads, 20.0)
        grid = tune_thresholds_grid(errors, correct, depths, overheads, 20.0, step=0.1)
        return greedy, grid

    greedy, grid = run_once(benchmark, compare)
    gap_pct = 0.0
    if grid.evaluation.mean_savings_ms > 0:
        gap_pct = 100.0 * (grid.evaluation.mean_savings_ms - greedy.evaluation.mean_savings_ms) \
            / grid.evaluation.mean_savings_ms
    rows = [{"num_ramps": num_ramps,
             "greedy_ms": greedy.runtime_ms, "grid_ms": grid.runtime_ms,
             "speedup_x": grid.runtime_ms / max(greedy.runtime_ms, 1e-9),
             "greedy_evals": greedy.evaluations, "grid_evals": grid.evaluations,
             "savings_gap_%": gap_pct}]
    print_table("Figure 10 — tuning speed and optimality", rows)

    # Shape: the greedy search needs far fewer configuration evaluations and
    # the speedup grows with the number of ramps; the savings gap stays small.
    assert greedy.evaluations < grid.evaluations
    if num_ramps >= 3:
        assert grid.runtime_ms > greedy.runtime_ms
    assert gap_pct < 10.0
