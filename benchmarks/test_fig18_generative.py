"""Figure 18: generative serving — Apparate vs T5/Llama2, FREE and the optimal.

The paper reports 70-78% median TPT wins for T5-large (CNN/DailyMail, SQuAD)
and 22.6-37.4% for Llama2-7B/13B, with Apparate's accuracy always within the
constraint while FREE's one-time tuning loses up to 5.5 points under drift.
"""

import pytest

from bench_common import pct_win, print_table, run_once
from repro.baselines.free import run_free_generative
from repro.baselines.oracle import run_optimal_generative
from repro.core.generative import run_generative_apparate, run_generative_vanilla
from repro.generative.sequences import make_generative_workload

CASES = [
    ("t5-large", "cnn-dailymail"),
    ("t5-large", "squad"),
    ("llama2-7b", "squad"),
    ("llama2-13b", "squad"),
]


def workload_for(dataset):
    # SQuAD answers are an order of magnitude shorter than CNN/DailyMail
    # summaries, so more sequences are needed for the same number of decode
    # steps (and for the runtime adaptation to have comparable feedback).
    num_sequences = 150 if dataset == "cnn-dailymail" else 400
    return make_generative_workload(dataset, num_sequences=num_sequences, rate_qps=2.0,
                                    seed=3, drift_amplitude=0.25, drift_mode="walk")


@pytest.mark.parametrize("model_name,dataset", CASES)
def test_fig18_generative_tpt(benchmark, model_name, dataset):
    workload = workload_for(dataset)

    def compare():
        vanilla = run_generative_vanilla(model_name, workload)
        apparate = run_generative_apparate(model_name, workload)
        free = run_free_generative(model_name, workload)
        optimal = run_optimal_generative(model_name, workload)
        return vanilla, apparate, free, optimal

    vanilla, apparate, free, optimal = run_once(benchmark, compare)
    apparate_win = pct_win(vanilla.median_tpt(), apparate.metrics.median_tpt())
    free_win = pct_win(vanilla.median_tpt(), free.median_tpt())
    optimal_win = pct_win(vanilla.median_tpt(), optimal.median_tpt())
    rows = [{
        "model": model_name, "dataset": dataset,
        "vanilla_tpt_ms": vanilla.median_tpt(),
        "apparate_tpt_ms": apparate.metrics.median_tpt(),
        "apparate_win_%": apparate_win,
        "free_win_%": free_win,
        "optimal_win_%": optimal_win,
        "apparate_acc": apparate.metrics.mean_sequence_accuracy(),
        "free_acc": free.mean_sequence_accuracy(),
        "apparate_p95/vanilla_p95": apparate.metrics.p95_tpt() / max(vanilla.p95_tpt(), 1e-9),
    }]
    print_table("Figure 18 — generative TPT", rows)

    # Shape: Apparate wins at the median, tracks (never beats) the oracle,
    # holds the accuracy constraint, and pays only a mild tail penalty from
    # parallel decoding.
    assert apparate_win > 10.0
    assert apparate_win <= optimal_win + 3.0
    assert apparate.metrics.mean_sequence_accuracy() >= 0.98
    assert apparate.metrics.p95_tpt() <= vanilla.p95_tpt() * 1.35
