"""Figure 4: optimal early exits lower latencies without harming throughput.

Modulating the vanilla serving latencies by each input's optimal exit point
(no queueing or scheduling changes) yields 35-55% median improvements in the
paper.  We regenerate the vanilla-vs-optimal latency CDF summary.
"""

import numpy as np
import pytest

from bench_common import cv_workload, nlp_workload, pct_win, print_table, run_once
from repro.baselines.oracle import run_optimal_classification
from repro.core.pipeline import run_vanilla

CASES = {"resnet50": ("cv", "urban-day"), "bert-base": ("nlp", "amazon")}


@pytest.mark.parametrize("model_name", sorted(CASES))
def test_fig04_optimal_exits_lower_latency(benchmark, model_name):
    kind, source = CASES[model_name]
    workload = cv_workload(model_name, source) if kind == "cv" else nlp_workload(model_name, source)

    def compare():
        vanilla = run_vanilla(model_name, workload)
        optimal = run_optimal_classification(model_name, workload)
        return vanilla, optimal

    vanilla, optimal = run_once(benchmark, compare)
    rows = [{
        "model": model_name,
        "vanilla_p50_ms": vanilla.median_latency(),
        "optimal_p50_ms": float(np.median(optimal)),
        "p50_win_%": pct_win(vanilla.median_latency(), float(np.median(optimal))),
        "vanilla_p95_ms": vanilla.p95_latency(),
        "optimal_p95_ms": float(np.percentile(optimal, 95)),
    }]
    print_table("Figure 4 — vanilla vs optimal EE", rows)

    # Shape: optimal exiting improves the median substantially and never makes
    # any request slower (same queuing, same scheduling).
    assert np.median(optimal) < vanilla.median_latency()
    assert rows[0]["p50_win_%"] > 10.0
    assert np.all(optimal <= vanilla.latencies() + 1e-9)
