"""Figures 12 and 13: Apparate's CV classification results.

Figure 12 reports median latency savings vs vanilla serving (alongside the
optimal) for the six CV models; Figure 13 shows that Apparate's P95 latency
stays within the 2% ramp budget of vanilla serving.  The paper's bands are
40.5-91.5% median wins, with medians within ~20% of the optimal for CV.
"""

import numpy as np
import pytest

from bench_common import cv_workload, pct_win, print_table, run_once
from repro.baselines.oracle import run_optimal_classification
from repro.core.pipeline import run_apparate, run_vanilla

CV_MODELS = ["resnet18", "resnet50", "resnet101", "vgg11", "vgg13", "vgg16"]


@pytest.mark.parametrize("model_name", CV_MODELS)
def test_fig12_fig13_cv_latency_wins_and_tails(benchmark, model_name):
    workload = cv_workload(model_name, "urban-day")

    def compare():
        vanilla = run_vanilla(model_name, workload)
        apparate = run_apparate(model_name, workload)
        optimal = run_optimal_classification(model_name, workload)
        return vanilla, apparate, optimal

    vanilla, apparate, optimal = run_once(benchmark, compare)
    median_win = pct_win(vanilla.median_latency(), apparate.metrics.median_latency())
    p25_win = pct_win(vanilla.p25_latency(), apparate.metrics.p25_latency())
    optimal_win = pct_win(vanilla.median_latency(), float(np.median(optimal)))
    rows = [{
        "model": model_name,
        "vanilla_p50_ms": vanilla.median_latency(),
        "apparate_p50_ms": apparate.metrics.median_latency(),
        "p50_win_%": median_win,
        "p25_win_%": p25_win,
        "optimal_win_%": optimal_win,
        "apparate_p95_ms": apparate.metrics.p95_latency(),
        "vanilla_p95_ms": vanilla.p95_latency(),
        "accuracy": apparate.metrics.accuracy(),
    }]
    print_table("Figures 12-13 — CV classification", rows)

    # Figure 12 shape: large median wins, tracking (but not exceeding) optimal.
    assert 25.0 <= median_win <= 95.0
    assert median_win <= optimal_win + 5.0
    # Figure 13 shape: the tail stays within the 2% worst-case budget.
    assert apparate.metrics.p95_latency() <= vanilla.p95_latency() * 1.03
    # The 1% accuracy constraint holds (small slack for finite-window drift).
    assert apparate.metrics.accuracy() >= 0.985
    # Throughput is preserved: exits never change what the GPU executes.
    assert apparate.metrics.throughput_qps() >= vanilla.throughput_qps() * 0.97
