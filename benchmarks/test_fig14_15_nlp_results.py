"""Figures 14 and 15: Apparate's NLP classification results.

Figure 14 shows latency CDFs for GPT2-medium, BERT-large/base and
DistilBERT-base on the Amazon and IMDB streams; Apparate's median wins are
10-24% with 16-37% at the 25th percentile.  Figure 15 compares Apparate with
an offline optimal (very large wins, unreachable) and a more realistic online
optimal; Apparate lands much closer to the latter.
"""

import numpy as np
import pytest

from bench_common import nlp_workload, pct_win, print_table, run_once
from repro.baselines.oracle import run_optimal_classification
from repro.core.pipeline import run_apparate, run_vanilla

NLP_MODELS = ["distilbert-base", "bert-base", "bert-large", "gpt2-medium"]
DATASETS = ["amazon", "imdb"]


@pytest.mark.parametrize("model_name", NLP_MODELS)
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig14_nlp_latency_cdfs(benchmark, model_name, dataset):
    workload = nlp_workload(model_name, dataset)

    def compare():
        return run_vanilla(model_name, workload), run_apparate(model_name, workload)

    vanilla, apparate = run_once(benchmark, compare)
    median_win = pct_win(vanilla.median_latency(), apparate.metrics.median_latency())
    rows = [{
        "model": model_name, "dataset": dataset,
        "vanilla_p50_ms": vanilla.median_latency(),
        "apparate_p50_ms": apparate.metrics.median_latency(),
        "p50_win_%": median_win,
        "p25_win_%": pct_win(vanilla.p25_latency(), apparate.metrics.p25_latency()),
        "accuracy": apparate.metrics.accuracy(),
        "drop_rate": vanilla.drop_rate(),
    }]
    print_table("Figure 14 — NLP classification", rows)

    # Shape: positive but moderate median wins (queuing limits NLP savings),
    # accuracy within the constraint, throughput untouched.  The smallest
    # (distilled) model has the least overparameterization headroom, so its
    # win may be negligible on the easier IMDB stream.
    minimum_win = -2.0 if model_name == "distilbert-base" else 1.0
    assert median_win >= minimum_win
    assert median_win <= 40.0
    assert apparate.metrics.accuracy() >= 0.98
    assert apparate.metrics.throughput_qps() >= vanilla.throughput_qps() * 0.95


@pytest.mark.parametrize("model_name", ["bert-base", "gpt2-medium"])
def test_fig15_gap_to_optimal_exiting(benchmark, model_name):
    workload = nlp_workload(model_name, "amazon")

    def compare():
        vanilla = run_vanilla(model_name, workload)
        apparate = run_apparate(model_name, workload)
        optimal = run_optimal_classification(model_name, workload)
        return vanilla, apparate, optimal

    vanilla, apparate, optimal = run_once(benchmark, compare)
    apparate_win = pct_win(vanilla.median_latency(), apparate.metrics.median_latency())
    optimal_win = pct_win(vanilla.median_latency(), float(np.median(optimal)))
    rows = [{"model": model_name, "apparate_win_%": apparate_win,
             "offline_optimal_win_%": optimal_win,
             "fraction_of_optimal": apparate_win / max(optimal_win, 1e-9)}]
    print_table("Figure 15 — Apparate vs optimal exiting (NLP)", rows)

    # Shape: the offline optimal (per-input clairvoyant exits with no
    # overheads) is out of reach, but Apparate captures a meaningful share.
    assert optimal_win > apparate_win
    assert apparate_win > 0.0
