"""KV-aware routing: prefix-affinity placement vs prefix-blind balancers.

Not a paper figure — this guards the resource-view balancer refactor that
makes KV-cache memory a routed resource.  A shared-prefix diurnal workload
(8 system-prompt groups, every sequence in a group) is served by a
4-replica monolithic fleet with in-slot chunked prefill and a per-replica
KV budget tight enough to force steady eviction.  Expected shape:
``prefix_affinity`` converts group residency into prefill savings — the
highest cache hit-rate in the field AND a strictly better TTFT p99 than
every prefix-blind balancer at identical accuracy — while the conserved
hit/miss counters cover the workload's full prompt-token volume under
every policy.

Modes (``BENCH_KV`` environment variable)
-----------------------------------------
unset
    Run and assert; nothing is written (tier-1 default).
``smoke``, ``full`` or ``1``
    Also write the measurements to ``BENCH_kv.json`` (the tracked file the
    CI gate reads).  Refresh with::

        BENCH_KV=full PYTHONPATH=src python -m pytest -q -s benchmarks/test_kv_routing.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from bench_common import pct_win, print_table
from repro.core.generative import build_generative_cluster
from repro.generative.decoding import kv_bytes_per_token
from repro.generative.sequences import make_generative_workload
from repro.models.zoo import get_model
from repro.serving.hf_pipelines import VanillaTokenPolicy

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_kv.json"

SPEC = get_model("t5-large")
BYTES_PER_TOKEN = kv_bytes_per_token(SPEC)

REPLICAS = 4
MAX_BATCH = 2                    # scarce decode slots: queueing shapes the tail
CAPACITY_TOKENS = 3000           # per replica — steady LRU eviction pressure
SEQUENCES = 200
RATE_QPS = 30.0
PREFIX_GROUPS = 8
PREFIX_TOKENS = 256

PREFIX_BLIND = ("round_robin", "join_shortest_queue", "least_work_left")
KV_AWARE = ("kv_aware_least_work", "prefix_affinity")


def _shared_prefix_workload():
    return make_generative_workload(
        "squad", num_sequences=SEQUENCES, rate_qps=RATE_QPS, seed=13,
        arrival_process="diurnal", prefix_groups=PREFIX_GROUPS,
        prefix_share=1.0, prefix_tokens=PREFIX_TOKENS)


def _serve(workload, balancer):
    cluster = build_generative_cluster(
        SPEC, REPLICAS, balancer=balancer, max_batch_size=MAX_BATCH,
        prefill_in_slot=True, kv_capacity=CAPACITY_TOKENS * BYTES_PER_TOKEN,
        seed=0)
    policy = VanillaTokenPolicy()
    metrics = cluster.run(workload, lambda ordinal: policy)
    summary = metrics.summary()
    aggregate = metrics.aggregate()
    return {
        "ttft_p99_ms": summary["ttft_p99_ms"],
        "tpt_p50_ms": summary["tpt_p50_ms"],
        "accuracy": aggregate.mean_sequence_accuracy(),
        "hit_rate": aggregate.kv_hit_rate(),
        "hit_tokens": int(aggregate.kv_hit_tokens),
        "miss_tokens": int(aggregate.kv_miss_tokens),
        "evictions": int(aggregate.kv_evictions),
        "recompute_tokens": int(aggregate.kv_recompute_tokens),
    }


def test_prefix_affinity_beats_prefix_blind_routing():
    workload = _shared_prefix_workload()
    results = {name: _serve(workload, name)
               for name in PREFIX_BLIND + KV_AWARE}
    print_table("KV routing — shared-prefix diurnal workload",
                [{"balancer": name, "ttft_p99_ms": round(r["ttft_p99_ms"], 1),
                  "hit_rate": round(r["hit_rate"], 3),
                  "evictions": r["evictions"],
                  "recompute_tok": r["recompute_tokens"]}
                 for name, r in results.items()])

    affinity = results["prefix_affinity"]
    best_blind_name = min(PREFIX_BLIND,
                          key=lambda n: results[n]["ttft_p99_ms"])
    best_blind = results[best_blind_name]

    # Matched accuracy: the exit policy, not the router, decides quality.
    for r in results.values():
        assert r["accuracy"] == affinity["accuracy"]

    # Conservation under every policy: each sequence is admitted exactly
    # once, so hit + miss covers the workload's full prompt-token volume.
    total_prompt = workload.total_prompt_tokens()
    for name, r in results.items():
        assert r["hit_tokens"] + r["miss_tokens"] == total_prompt, name

    # The headline: residency-aware placement wins the TTFT tail outright
    # and earns the highest hit-rate in the field.
    assert affinity["ttft_p99_ms"] < best_blind["ttft_p99_ms"], results
    assert affinity["hit_rate"] > max(results[n]["hit_rate"]
                                      for n in PREFIX_BLIND) + 0.03, results

    if os.environ.get("BENCH_KV", "").strip().lower() in ("smoke", "full", "1"):
        payload = {
            "config": {"replicas": REPLICAS, "max_batch_size": MAX_BATCH,
                       "capacity_tokens": CAPACITY_TOKENS,
                       "sequences": SEQUENCES, "rate_qps": RATE_QPS,
                       "prefix_groups": PREFIX_GROUPS,
                       "prefix_tokens": PREFIX_TOKENS},
            "results": results,
            "best_prefix_blind": best_blind_name,
            "ttft_p99_win_pct": round(pct_win(best_blind["ttft_p99_ms"],
                                              affinity["ttft_p99_ms"]), 2),
        }
        BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {BENCH_PATH}")
