"""Figure 19 and Table 3: sensitivity to the accuracy constraint and ramp budget.

Looser accuracy constraints increase Apparate's wins markedly; larger ramp
budgets help only marginally (diminishing returns from overlapping ramps).
"""

import pytest

from bench_common import cv_workload, nlp_workload, pct_win, print_table, run_once
from repro.core.pipeline import run_apparate, run_vanilla

ACCURACY_TARGETS = [0.01, 0.02, 0.05]
RAMP_BUDGETS = [0.02, 0.05, 0.10]
CASES = {"resnet50": ("cv", "urban-day"), "gpt2-medium": ("nlp", "amazon")}


@pytest.mark.parametrize("model_name", sorted(CASES))
def test_fig19_accuracy_constraint_sensitivity(benchmark, model_name):
    kind, source = CASES[model_name]
    workload = cv_workload(model_name, source) if kind == "cv" else nlp_workload(model_name, source)

    def sweep():
        vanilla = run_vanilla(model_name, workload)
        return vanilla, {target: run_apparate(model_name, workload, accuracy_constraint=target)
                         for target in ACCURACY_TARGETS}

    vanilla, results = run_once(benchmark, sweep)
    rows = []
    wins = {}
    for target in ACCURACY_TARGETS:
        wins[target] = pct_win(vanilla.median_latency(), results[target].metrics.median_latency())
        rows.append({"model": model_name, "accuracy_target_%": target * 100,
                     "win_%": wins[target],
                     "achieved_accuracy": results[target].metrics.accuracy()})
    print_table("Figure 19 — accuracy-constraint sensitivity", rows)

    # Shape: loosening the constraint never reduces the achievable win, and
    # every run respects its own constraint (with finite-window slack).
    assert wins[0.05] >= wins[0.01] - 2.0
    for target in ACCURACY_TARGETS:
        assert results[target].metrics.accuracy() >= 1.0 - target - 0.01


@pytest.mark.parametrize("model_name", sorted(CASES))
def test_table3_ramp_budget_sensitivity(benchmark, model_name):
    kind, source = CASES[model_name]
    workload = cv_workload(model_name, source) if kind == "cv" else nlp_workload(model_name, source)

    def sweep():
        vanilla = run_vanilla(model_name, workload)
        return vanilla, {budget: run_apparate(model_name, workload, ramp_budget=budget)
                         for budget in RAMP_BUDGETS}

    vanilla, results = run_once(benchmark, sweep)
    rows = []
    wins = {}
    for budget in RAMP_BUDGETS:
        wins[budget] = pct_win(vanilla.median_latency(), results[budget].metrics.median_latency())
        rows.append({"model": model_name, "ramp_budget_%": budget * 100,
                     "win_%": wins[budget],
                     "active_ramps": results[budget].controller.config.num_active(),
                     "p95_ms": results[budget].metrics.p95_latency()})
    print_table("Table 3 — ramp-budget sensitivity", rows)

    # Shape: more budget never hurts much, and gains taper (diminishing returns).
    assert wins[0.10] >= wins[0.02] - 3.0
    spread = wins[0.10] - wins[0.02]
    assert spread < 25.0
