"""Figure 16: Apparate vs two-layer inference systems (FilterForward / Tabi).

Two-layer systems pay the compressed model on every input and the full model
on escalations, so their tails are poor; Apparate's P95 is 20-42% lower in
the paper, and its medians win by 5.7-66.6% on the NLP workloads.
"""

import pytest

from bench_common import cv_workload, nlp_workload, pct_win, print_table, run_once
from repro.baselines.two_layer import run_two_layer
from repro.core.pipeline import run_apparate

CASES = {
    "vgg11": ("cv", "urban-day"),
    "vgg13": ("cv", "urban-night"),
    "distilbert-base": ("nlp", "amazon"),
    "bert-base": ("nlp", "imdb"),
}


@pytest.mark.parametrize("model_name", sorted(CASES))
def test_fig16_apparate_vs_two_layer(benchmark, model_name):
    kind, source = CASES[model_name]
    workload = cv_workload(model_name, source) if kind == "cv" else nlp_workload(model_name, source)

    def compare():
        return run_apparate(model_name, workload), run_two_layer(model_name, workload)

    apparate, two_layer = run_once(benchmark, compare)
    two_layer_summary = two_layer.summary()
    rows = [{
        "model": model_name,
        "apparate_p50_ms": apparate.metrics.median_latency(),
        "two_layer_p50_ms": two_layer_summary["p50_ms"],
        "apparate_p95_ms": apparate.metrics.p95_latency(),
        "two_layer_p95_ms": two_layer_summary["p95_ms"],
        "p95_win_%": pct_win(two_layer_summary["p95_ms"], apparate.metrics.p95_latency()),
        "apparate_acc": apparate.metrics.accuracy(),
        "two_layer_acc": two_layer.accuracy,
    }]
    print_table("Figure 16 — Apparate vs two-layer inference", rows)

    # Shape: Apparate's tails are strictly better (hard inputs never pay an
    # extra compressed-model pass), and its accuracy is no worse.
    assert apparate.metrics.p95_latency() < two_layer_summary["p95_ms"]
    if kind == "nlp":
        assert apparate.metrics.median_latency() < two_layer_summary["p50_ms"]
