"""Prefill/decode disaggregation: independent pool autoscaling vs the
monolithic generative fleet (acceptance benchmark for the disaggregated
serving subsystem).

Not a paper figure — the paper's generative engine is decode-only.  This
benchmark puts Apparate on a *prompt-heavy diurnal* workload (CNN/DailyMail
summarization with ~1k-token articles, day/night arrival cycle) in two
deployments of the same initial footprint (6 replicas):

* **monolithic** — a 6-replica generative cluster whose decode slots also run
  each prompt's chunked prefill, stretched by compute contention with the
  decode streams in flight (``prefill_in_slot=True``); one reactive
  autoscaler sizes the whole fleet;
* **disaggregated** — 2 prefill + 4 decode replicas connected by a
  KV-transfer handoff queue, each pool with its own balancer and its own
  reactive autoscaler (prefill scales on queued prompt chunks, decode on
  outstanding decode work).

Expected shape: at the diurnal peak the monolithic fleet's prefills steal
decode compute, so TTFT p99 and the queueing-inclusive per-token p99 blow up;
the disaggregated platform absorbs the same prompt surge in its prefill pool
(which scales out on its own schedule while the decode pool does not),
beating the monolithic cluster on TTFT p99 at matched accuracy and no worse
per-token p99 — while still emitting exactly the workload's token multiset,
bit-for-bit the same identities as the single-replica engine.
"""

from collections import Counter

import pytest

from bench_common import pct_win, print_table, run_once
from repro.api import ClusterSpec, Experiment, ExitPolicySpec
from repro.generative.sequences import make_generative_workload

SEQUENCES = 1200          # ~60s at the mean rate: one full diurnal period, so
                          # the p99 tail reflects the whole cycle rather than a
                          # handful of sequences on a truncated rising edge
MEAN_RATE_QPS = 20.0      # diurnal cycle swings between 5 and 35 seq/s
ACCURACY_CONSTRAINT = 0.01
TOTAL_REPLICAS = 6        # same initial footprint in both deployments
EE = ExitPolicySpec(accuracy_constraint=ACCURACY_CONSTRAINT)


@pytest.fixture(scope="module")
def workload():
    """Prompt-heavy summarization under a compressed day/night cycle."""
    return make_generative_workload(
        "cnn-dailymail", num_sequences=SEQUENCES, rate_qps=MEAN_RATE_QPS,
        seed=3, arrival_process="diurnal",
        preset_overrides={"mean_prompt_tokens": 1024, "min_prompt_tokens": 256})


def monolithic_experiment(workload):
    return Experiment(
        model="t5-large", workload=workload, ee=EE, seed=0,
        # prefill_in_slot: monolithic replicas prefill in their own decode
        # slots — the interference disaggregation exists to remove.
        cluster=ClusterSpec(replicas=TOTAL_REPLICAS,
                            balancer="least_work_left",
                            autoscaler="reactive", min_replicas=2,
                            max_replicas=2 * TOTAL_REPLICAS,
                            prefill_in_slot=True))


def disaggregated_experiment(workload):
    return Experiment(
        model="t5-large", workload=workload, ee=EE, seed=0,
        cluster=ClusterSpec(replicas=TOTAL_REPLICAS, disaggregate=True,
                            balancer="least_work_left",
                            prefill_replicas=2, decode_replicas=4,
                            prefill_autoscaler="reactive",
                            decode_autoscaler="reactive",
                            prefill_min_replicas=1, prefill_max_replicas=6,
                            decode_min_replicas=2, decode_max_replicas=8))


def test_disaggregation_beats_monolith_on_ttft_under_diurnal_prompts(
        benchmark, workload):
    def run_both():
        mono = monolithic_experiment(workload).run(["apparate"])
        disagg = disaggregated_experiment(workload).run(["vanilla", "apparate"])
        return mono, disagg

    mono_report, disagg_report = run_once(benchmark, run_both)
    mono = mono_report.result("apparate").summary
    disagg = disagg_report.result("apparate").summary
    disagg_vanilla = disagg_report.result("vanilla").summary

    rows = [
        {"deployment": "monolithic 6r (apparate)",
         "ttft_p99_ms": mono["ttft_p99_ms"],
         "token_p99_ms": mono["token_p99_ms"],
         "tpt_p50_ms": mono["tpt_p50_ms"],
         "accuracy": mono["sequence_accuracy"],
         "replica_s": mono["replica_seconds"]},
        {"deployment": "disagg 2p+4d (apparate)",
         "ttft_p99_ms": disagg["ttft_p99_ms"],
         "token_p99_ms": disagg["token_p99_ms"],
         "tpt_p50_ms": disagg["tpt_p50_ms"],
         "accuracy": disagg["sequence_accuracy"],
         "replica_s": disagg["replica_seconds"]
         + disagg["prefill_replica_seconds"]},
        {"deployment": "disagg 2p+4d (vanilla)",
         "ttft_p99_ms": disagg_vanilla["ttft_p99_ms"],
         "token_p99_ms": disagg_vanilla["token_p99_ms"],
         "tpt_p50_ms": disagg_vanilla["tpt_p50_ms"],
         "accuracy": disagg_vanilla["sequence_accuracy"],
         "replica_s": disagg_vanilla["replica_seconds"]
         + disagg_vanilla["prefill_replica_seconds"]},
    ]
    print_table(
        f"Disaggregated vs monolithic — diurnal {MEAN_RATE_QPS:.0f} seq/s "
        f"mean, ~1k-token prompts", rows)
    print(f"TTFT p99 win: {pct_win(mono['ttft_p99_ms'], disagg['ttft_p99_ms']):.1f}%  "
          f"(prefill pool peak {disagg['prefill_peak_replicas']:.0f}, "
          f"decode pool peak {disagg['peak_replicas']:.0f})")

    # Headline: disaggregation wins TTFT p99 decisively (the margin in this
    # configuration is >2x; assert a conservative 30%).
    assert disagg["ttft_p99_ms"] < 0.7 * mono["ttft_p99_ms"]

    # ... at matched accuracy (both within 1.5x of the 1% constraint) ...
    assert disagg["sequence_accuracy"] >= 1.0 - 1.5 * ACCURACY_CONSTRAINT
    assert mono["sequence_accuracy"] >= 1.0 - 1.5 * ACCURACY_CONSTRAINT

    # ... and no worse queueing-inclusive per-token p99.
    assert disagg["token_p99_ms"] <= 1.05 * mono["token_p99_ms"]

    # The pools sized independently: the prompt surge grew the prefill pool
    # well beyond its initial 2 replicas while the decode pool stayed close
    # to its initial 4 — and below the monolith's peak, which must grow whole
    # prefill+decode replicas to absorb the same surge.
    assert disagg["prefill_peak_replicas"] > 2.0
    assert disagg["peak_replicas"] <= 5.0
    assert disagg["peak_replicas"] < mono["peak_replicas"]


def test_disaggregation_conserves_tokens_vs_single_engine(workload):
    """The prefill -> handoff -> decode pipeline emits exactly the token
    multiset the single-replica engine emits (same ids, same counts)."""
    disagg = disaggregated_experiment(workload).run(["apparate"]) \
        .result("apparate")
    single = Experiment(model="t5-large", workload=workload, ee=EE, seed=0) \
        .run(["apparate"]).result("apparate")

    assert disagg.summary["num_tokens"] == single.summary["num_tokens"]
    fleet_ids = Counter((t.sequence_id, t.token_index)
                        for replica in disagg.raw.metrics.replicas
                        for t in replica.tokens)
    single_ids = Counter((t.sequence_id, t.token_index)
                         for t in single.raw.metrics.tokens)
    assert fleet_ids == single_ids
    assert disagg.summary["shed"] == 0.0     # no SLO configured, nothing shed
