#!/usr/bin/env python3
"""Multi-tenant serving with failure injection: isolation under churn.

Production fleets are shared: an interactive product surface and a batch
backfill pipeline hit the same replicas, and machines still crash.  This
walkthrough puts both stresses on one ``ClusterSpec``:

1. declare two tenants — ``chat`` (interactive, weight 100, its own
   tight SLO) and ``backfill`` (batch class, early exits disabled) — and
   drive the fleet *past* its capacity, so the dispatch policy has to pick
   who waits;
2. inject one replica crash mid-run (``faults="3000:1000"``: dies at t=3s,
   a replacement boots 1s later); queued work is requeued to survivors,
   nothing is lost;
3. read the per-tenant rollups off the result: weighted-fair dispatch keeps
   the interactive tenant's p99 in the ~100ms range while the batch tenant
   absorbs the entire overload backlog (a p99 in *seconds* — by design);
4. re-run the interactive tenant's slice solo for the isolation metric
   (mixed p99 / solo p99): the price chat actually paid for sharing a
   saturated, crashing fleet.

Run:  python examples/multi_tenant.py
"""

from repro.api import ClusterSpec, Experiment, WorkloadSpec
from repro.tenancy import isolation_ratios

REQUESTS = 7000
RATE_QPS = 540.0          # ~1.25x what the 3-replica fleet can serve
REPLICAS = 3
SLO_MS = 150.0
CHAT_SHARE = 0.33

TENANTS = (f"chat:weight=100,share={CHAT_SHARE};"
           f"backfill:priority=batch,exits=false,share={1 - CHAT_SHARE}")
FAULTS = "3000:1000"      # one crash at t=3s, replacement boots 1s later


def run(cluster: ClusterSpec, requests: int = REQUESTS,
        rate: float = RATE_QPS):
    experiment = Experiment(
        model="resnet50",
        workload=WorkloadSpec("nlp", "amazon", requests=requests, rate=rate,
                              arrival_process="poisson"),
        cluster=cluster, slo_ms=SLO_MS, max_batch_size=8,
        drop_expired=False, seed=0)
    return experiment.run(["vanilla"]).result("vanilla")


def print_tenant_table(rollups) -> None:
    print(f"{'tenant':<10s} {'requests':>9s} {'served':>7s} {'p99 ms':>9s} "
          f"{'SLO att':>8s} {'goodput':>8s}")
    for tenant, stats in sorted(rollups.items()):
        print(f"{tenant:<10s} {stats['requests']:>9.0f} {stats['served']:>7.0f} "
              f"{stats['p99_ms']:>9.1f} {stats['slo_attainment']:>8.1%} "
              f"{stats['goodput_qps']:>8.1f}")


def main() -> None:
    # --- mixed tenants on an overloaded fleet, one crash ------------------
    mixed = run(ClusterSpec(replicas=REPLICAS, balancer="least_work_left",
                            tenants=TENANTS, faults=FAULTS))
    details = mixed.details

    print(f"fleet of {REPLICAS} at ~1.25x capacity, "
          f"tenants chat (weight 100) vs backfill (batch)")
    print(f"fault schedule {FAULTS!r}: "
          f"{details.get('crashes', 0)} crash(es), "
          f"{details.get('recoveries', 0)} recovery(ies), "
          f"{details.get('requeued', 0)} request(s) requeued to survivors\n")
    print("per-tenant rollups (mixed traffic, crash mid-run):")
    print_tenant_table(details["tenant_rollups"])
    print("\nweighted-fair dispatch serves chat ahead of the backlog: the "
          "batch tenant's queue\nabsorbs the whole overload (p99 in seconds) "
          "while chat stays near its SLO")

    # --- the isolation metric ---------------------------------------------
    # Chat's slice of the traffic alone on the same (crash-free) fleet: its
    # unshared best case.  The isolation ratio (mixed p99 / solo p99) is the
    # price chat paid for sharing the saturated, crashing fleet.
    solo = run(ClusterSpec(replicas=REPLICAS, balancer="least_work_left",
                           tenants="chat:weight=100"),
               requests=int(REQUESTS * CHAT_SHARE),
               rate=RATE_QPS * CHAT_SHARE)
    ratios = isolation_ratios(details["tenant_rollups"],
                              solo.details["tenant_rollups"])
    solo_p99 = solo.details["tenant_rollups"]["chat"]["p99_ms"]
    print(f"\nisolation: solo chat p99 {solo_p99:.1f} ms, "
          f"mixed/solo ratio {ratios['chat']:.2f}x "
          f"(1.0 = sharing cost it nothing)")


if __name__ == "__main__":
    main()
