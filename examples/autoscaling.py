#!/usr/bin/env python3
"""Autoscaling walkthrough: an elastic fleet riding a diurnal traffic cycle.

A fixed fleet must be sized for the peak — and then burns that capacity all
night.  This example serves a compressed day/night arrival cycle (40 qps off
hours, 600 qps rush) with a reactive autoscaler bounded to 2..6 replicas and
compares it against the capacity-planned fixed fleet of 6:

1. build a diurnal workload with :func:`repro.workloads.diurnal_arrivals`;
2. declare the elastic fleet in one ``ClusterSpec`` (``autoscaler=``,
   ``min_replicas=``/``max_replicas=``) and run it through ``Experiment``;
3. plot the fleet-size timeline (2 -> 6 -> 2 as the cycle turns), and compare
   SLO attainment and replica-seconds against the fixed fleet.

The autoscaler scales out on queue depth / SLO headroom with a provisioning
delay (machines don't boot instantly) and scales in by *draining* replicas:
a drained replica finishes its queued work, takes no new dispatches, then
retires — no request is lost across any membership change.

Run:  python examples/autoscaling.py
"""

from repro.api import ClusterSpec, Experiment
from repro.serving.autoscaler import ReactiveAutoscaler
from repro.workloads import diurnal_arrivals, make_video_workload
from repro.workloads.video import VideoWorkload

NUM_FRAMES = 9000
LOW_QPS, HIGH_QPS = 40.0, 600.0
PERIOD_S = 16.0
SLO_MS = 50.0
MIN_REPLICAS, MAX_REPLICAS = 2, 6


def diurnal_workload() -> VideoWorkload:
    trace = make_video_workload("urban-day", num_frames=NUM_FRAMES, seed=4).trace
    arrivals = diurnal_arrivals(NUM_FRAMES, LOW_QPS, HIGH_QPS, period_s=PERIOD_S)
    return VideoWorkload(name="diurnal", trace=trace, arrival_times_ms=arrivals,
                         fps=(LOW_QPS + HIGH_QPS) / 2.0)


def run_fleet(workload: VideoWorkload, cluster: ClusterSpec):
    experiment = Experiment(model="resnet50", workload=workload,
                            cluster=cluster, slo_ms=SLO_MS,
                            drop_expired=False, seed=0)
    return experiment.run(["vanilla"]).result("vanilla").raw


def render_timeline(metrics, width: int = 64) -> str:
    """ASCII strip chart of the fleet size over the run."""
    timeline = metrics.fleet_timeline
    end_ms = max(metrics.makespan_ms, 1e-9)
    sizes = []
    for column in range(width):
        t = end_ms * column / width
        size = timeline[0][1]
        for stamp, count in timeline:
            if stamp - timeline[0][0] <= t:
                size = count
        sizes.append(size)
    lines = []
    for level in range(MAX_REPLICAS, 0, -1):
        row = "".join("#" if size >= level else " " for size in sizes)
        lines.append(f"{level:>2d} |{row}")
    return "\n".join(lines)


def main() -> None:
    workload = diurnal_workload()

    scaler = ReactiveAutoscaler(cooldown_ms=750.0, provision_delay_ms=250.0,
                                slo_ms=SLO_MS, slo_headroom=0.5)
    elastic = run_fleet(workload, ClusterSpec(
        replicas=MIN_REPLICAS, balancer="least_work_left", autoscaler=scaler,
        min_replicas=MIN_REPLICAS, max_replicas=MAX_REPLICAS))
    fixed = run_fleet(workload, ClusterSpec(
        replicas=MAX_REPLICAS, balancer="least_work_left"))

    print(f"diurnal cycle {LOW_QPS:.0f} -> {HIGH_QPS:.0f} qps, "
          f"period {PERIOD_S:.0f}s, SLO {SLO_MS:.0f} ms\n")
    print("fleet size over time (reactive autoscaler, 2..6 replicas):")
    print(render_timeline(elastic))

    sizes = [n for _, n in elastic.fleet_timeline]
    trajectory = [sizes[0]] + [n for prev, n in zip(sizes, sizes[1:]) if n != prev]
    print("\ntrajectory: " + " -> ".join(str(n) for n in trajectory))

    print(f"\n{'fleet':<16s} {'SLO attainment':>15s} {'replica-seconds':>16s} "
          f"{'p99 ms':>8s}")
    for name, metrics in (("reactive 2..6", elastic),
                          (f"fixed@{MAX_REPLICAS}", fixed)):
        attainment = 1.0 - metrics.aggregate().slo_violation_rate(SLO_MS)
        print(f"{name:<16s} {attainment:15.1%} {metrics.replica_seconds:16.1f} "
              f"{metrics.aggregate().p99_latency():8.1f}")

    saved = 1.0 - elastic.replica_seconds / fixed.replica_seconds
    print(f"\nthe elastic fleet matched the fixed fleet's SLO story while "
          f"spending {saved:.0%} fewer replica-seconds")


if __name__ == "__main__":
    main()
