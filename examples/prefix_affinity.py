#!/usr/bin/env python3
"""KV-aware routing: prefix-affinity placement on a shared-prefix workload.

Chat-style fleets see heavy prompt reuse — a handful of system prompts and
few-shot headers open most requests.  Whether that reuse turns into cache
hits is a *placement* decision: the shared prefix is resident on whichever
decode replica served the group last, so a balancer that ignores residency
re-prefills the same tokens again and again.  This walkthrough makes
KV-cache memory a routed resource:

1. build a generative workload with shared-prefix structure
   (``prefix_groups=8``: every sequence opens with one of eight ~256-token
   system prompts) on a diurnal arrival cycle;
2. give each decode replica a finite KV budget (``kv_capacity``): admission
   claims footprint, over-capacity occupancy LRU-evicts, and an evicted
   still-running sequence pays a re-prefill recompute;
3. serve the same workload under prefix-blind balancers (round-robin, JSQ,
   least-work) and the two KV-aware policies — ``kv_aware_least_work``
   (avoid replicas the sequence would thrash) and ``prefix_affinity``
   (discount replicas by the prefill their resident prefix saves);
4. read the routed-resource outcome off the report: ``prefix_affinity``
   earns the highest hit-rate AND the best TTFT p99 — affinity and load are
   traded off in one currency (milliseconds), so groups spill instead of
   herding onto a hotspot.

Run:  python examples/prefix_affinity.py
"""

from repro.api import ClusterSpec, Experiment, WorkloadSpec
from repro.generative.decoding import kv_bytes_per_token
from repro.models.zoo import get_model

MODEL = "t5-large"
SEQUENCES = 200
RATE_QPS = 30.0
REPLICAS = 4
CAPACITY_TOKENS = 3000      # per-replica KV budget, in tokens
PREFIX_GROUPS = 8
PREFIX_TOKENS = 256

BALANCERS = ("round_robin", "join_shortest_queue", "least_work_left",
             "kv_aware_least_work", "prefix_affinity")


def serve(balancer: str):
    capacity_bytes = CAPACITY_TOKENS * kv_bytes_per_token(get_model(MODEL))
    experiment = Experiment(
        model=MODEL,
        workload=WorkloadSpec(kind="generative", source="squad",
                              requests=SEQUENCES, rate=RATE_QPS,
                              arrival_process="diurnal",
                              prefix_groups=PREFIX_GROUPS, prefix_share=1.0,
                              prefix_tokens=PREFIX_TOKENS),
        cluster=ClusterSpec(replicas=REPLICAS, balancer=balancer,
                            prefill_in_slot=True,
                            kv_capacity=capacity_bytes),
        max_batch_size=2,    # scarce decode slots: queueing shapes the tail
        seed=13)
    return experiment.run(["vanilla"]).result("vanilla")


def main() -> None:
    print(f"=== {REPLICAS}-replica monolithic fleet, "
          f"{PREFIX_GROUPS}x{PREFIX_TOKENS}-token shared prefixes, "
          f"{CAPACITY_TOKENS}-token KV budget per replica ===")
    print(f"{'balancer':<22s} {'ttft p99':>10s} {'hit rate':>9s} "
          f"{'evictions':>10s} {'recompute':>10s}")
    results = {}
    for balancer in BALANCERS:
        result = serve(balancer)
        kv = result.details["kv_cache"]
        results[balancer] = (result.summary["ttft_p99_ms"], kv)
        print(f"{balancer:<22s} {result.summary['ttft_p99_ms']:>8.1f}ms "
              f"{kv['hit_rate']:>9.1%} {kv['evictions']:>10d} "
              f"{kv['recompute_tokens']:>10d}")

    affinity_ttft, affinity_kv = results["prefix_affinity"]
    best_blind = min(results[b][0] for b in BALANCERS[:3])
    print(f"\nprefix_affinity TTFT p99 win over best prefix-blind: "
          f"{100.0 * (best_blind - affinity_ttft) / best_blind:.1f}%  "
          f"(hit rate {affinity_kv['hit_rate']:.1%})")
    print("Same knobs on the CLI:  repro-apparate generate --replicas 4 "
          "--balancer prefix-affinity \\\n    --kv-capacity "
          f"{CAPACITY_TOKENS * kv_bytes_per_token(get_model(MODEL))} "
          f"--prefix-groups {PREFIX_GROUPS} --prefix-tokens {PREFIX_TOKENS}")


if __name__ == "__main__":
    main()
