#!/usr/bin/env python3
"""Streaming sentiment analysis (the paper's NLP classification workloads).

Serves Amazon- and IMDB-like review streams with the BERT-family models under
bursty Azure-Functions-like arrivals, comparing vanilla serving, Apparate and
a Tabi-style two-layer cascade.  This is §4.2's NLP experiment in miniature:
Apparate's wins are smaller than for CV (queuing dominates and review streams
have little continuity) but accuracy always stays within the 1% constraint
while the cascade suffers on tail latency.

Run:  python examples/nlp_sentiment.py
"""

from repro.baselines.two_layer import run_two_layer
from repro.core.pipeline import run_apparate, run_vanilla
from repro.workloads import make_nlp_workload

CASES = [
    ("distilbert-base", "amazon", 30.0),
    ("bert-base", "amazon", 20.0),
    ("bert-base", "imdb", 20.0),
    ("bert-large", "amazon", 10.0),
    ("gpt2-medium", "amazon", 6.0),
]
NUM_REQUESTS = 4000


def main() -> None:
    print(f"{'model':<16s} {'dataset':<8s} {'vanilla p50':>12s} {'Apparate p50':>13s} "
          f"{'win %':>7s} {'2-layer p95':>12s} {'Apparate p95':>13s} {'accuracy':>9s}")
    for model, dataset, rate in CASES:
        workload = make_nlp_workload(dataset, num_requests=NUM_REQUESTS, rate_qps=rate, seed=11)
        vanilla = run_vanilla(model, workload)
        apparate = run_apparate(model, workload)
        two_layer = run_two_layer(model, workload)

        win = 100.0 * (vanilla.median_latency() - apparate.metrics.median_latency()) \
            / vanilla.median_latency()
        print(f"{model:<16s} {dataset:<8s} {vanilla.median_latency():12.2f} "
              f"{apparate.metrics.median_latency():13.2f} {win:7.1f} "
              f"{two_layer.summary()['p95_ms']:12.2f} "
              f"{apparate.metrics.p95_latency():13.2f} "
              f"{apparate.metrics.accuracy():9.3f}")


if __name__ == "__main__":
    main()
