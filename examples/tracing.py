#!/usr/bin/env python3
"""Tracing walkthrough: attribute a tail latency phase by phase.

End-of-run rollups can say *that* the p99 blew up; a trace says *where*.
This example serves a generative workload on a disaggregated
prefill/decode fleet with tracing enabled and then answers three
questions the summary table cannot:

1. where does a typical request spend its time (per-phase p50/p99
   breakdown: prefill wait, prefill, KV transfer, decode queue, decode);
2. which request was the worst, and which phase did its latency hide in;
3. what did the fleet look like over time (gauge series: queue depths,
   busy slots, handoff backlog) — exported as Chrome trace-event JSON
   you can open in Perfetto or chrome://tracing, one process per pool,
   one track per replica.

Tracing is off by default and costs nothing when off; with it on, the
recorder only reads timestamps the simulator already computed, so the
metrics are bit-identical to the untraced run — the trace *is* the run.

Run:  python examples/tracing.py            # writes trace_disagg.json
"""

from repro.api import ClusterSpec, Experiment, WorkloadSpec
from repro.obs import format_phase_table, write_chrome_trace

MODEL = "llama2-7b"
SEQUENCES = 300
PREFILL_REPLICAS = 2
DECODE_REPLICAS = 3
TRACE_PATH = "trace_disagg.json"


def main() -> None:
    experiment = Experiment(
        model=MODEL,
        workload=WorkloadSpec("generative", requests=SEQUENCES),
        cluster=ClusterSpec(replicas=DECODE_REPLICAS, disaggregate=True,
                            prefill_replicas=PREFILL_REPLICAS),
        trace=True)
    result = experiment.run(["vanilla"]).result("vanilla")
    obs = result.details["obs"]

    print(f"=== {MODEL}: {SEQUENCES} sequences, {PREFILL_REPLICAS} prefill + "
          f"{DECODE_REPLICAS} decode replicas ===")
    spans = obs["spans"]
    print(f"spans: {spans['total']} admitted, {spans['closed']} closed "
          f"({spans['outcomes']})\n")

    print("Where a request spends its time:")
    print(format_phase_table(obs["phases"]))

    worst = obs["worst_request"]
    print(f"\nWorst served request: #{worst['request_id']} "
          f"({worst['latency_ms']:.1f} ms end to end)")
    for phase, ms in sorted(worst["phases"].items(), key=lambda kv: -kv[1]):
        share = 100.0 * ms / worst["latency_ms"]
        print(f"  {phase:<14s} {ms:9.1f} ms  ({share:4.1f}%)")

    # The same spans + gauges as a Perfetto-loadable timeline.
    write_chrome_trace(result.trace, TRACE_PATH)
    print(f"\nwrote {TRACE_PATH} — open in https://ui.perfetto.dev or "
          "chrome://tracing")
    print("Same knobs on the CLI:  repro-apparate generate --disaggregate "
          f"--sequences {SEQUENCES} \\\n    --prefill-replicas "
          f"{PREFILL_REPLICAS} --decode-replicas {DECODE_REPLICAS} "
          f"--trace-out {TRACE_PATH}")


if __name__ == "__main__":
    main()
