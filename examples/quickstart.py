#!/usr/bin/env python3
"""Quickstart: declare one Experiment, compare every system on it.

The ``repro.api`` facade is the front door to the reproduction: an
:class:`~repro.api.Experiment` declares the model, the workload and the exit
policy once, and any set of registered systems (``vanilla``, ``apparate``,
``static_ee``, ``two_layer``, ``optimal``, …) runs on exactly that
configuration:

1. declare a video-analytics experiment on ResNet50 with the paper's default
   knobs (1% accuracy constraint, 2% ramp budget);
2. ``run`` vanilla serving, Apparate and the optimal oracle and print the
   cross-system comparison table;
3. put the same experiment on a **fleet**: the cluster layer is a dynamic
   control plane — ``ClusterSpec`` declares the replica set (and optionally
   an autoscaler band plus heterogeneous replica profiles), a pluggable
   balancer dispatches over the live membership, and ``sweep`` compares
   fleet shapes in one call;
4. run **generative** (token-level) serving on the same fleet control
   plane: the identical ``ClusterSpec`` on a generative model drives
   continuous-batching decode replicas, with balancers costing replicas by
   outstanding decode work and token-level fleet metrics (per-token p99,
   deferred flushes) on the result.

Run:  python examples/quickstart.py
"""

from repro.api import (ClusterSpec, Experiment, ExitPolicySpec, WorkloadSpec,
                       list_systems)


def main() -> None:
    experiment = Experiment(
        model="resnet50",
        workload=WorkloadSpec("video", "urban-day", requests=6000, rate=30.0),
        ee=ExitPolicySpec(
            accuracy_constraint=0.01,   # at most 1% accuracy loss vs the original
            ramp_budget=0.02,           # ramps may inflate worst-case latency <= 2%
        ),
        seed=0,
    )
    print(f"registered systems: {', '.join(list_systems())}")

    # One call, three systems, one comparison table.
    report = experiment.run(systems=["vanilla", "apparate", "optimal"])
    print(f"\nmodel=resnet50 workload=video:urban-day "
          f"requests={report.params['workload']['requests']}")
    print(report.format_table())

    v = report.result("vanilla").summary
    a = report.result("apparate").summary
    win = 100.0 * (v["p50_ms"] - a["p50_ms"]) / v["p50_ms"]
    print(f"\nApparate median latency win over vanilla: {win:.1f}% "
          f"(exit rate {a['exit_rate']:.0%}, accuracy {a['accuracy']:.3f})")

    # The controller's runtime adaptation stats ride along on the result.
    controller = report.result("apparate").raw.controller
    print(f"controller: {controller.stats.threshold_tunings} threshold tunings, "
          f"{controller.stats.ramp_adjustments} ramp adjustments")
    print(f"final configuration: {controller.config.describe()}")

    # --- the fleet control plane ------------------------------------------
    # Cluster serving is declarative too: a ClusterSpec describes the fleet
    # (size, balancer, EE control topology) and the same systems run on it.
    # Sweeping fleet shapes is one call:
    sweep = experiment.sweep(systems=["vanilla"], replicas=[1, 2],
                             balancer="join_shortest_queue")
    print("\nfleet scaling (join_shortest_queue):")
    print(sweep.format_table(metrics=["p50_ms", "p99_ms", "throughput_qps"]))

    # The replica set is dynamic fleet state, not a frozen list: declare an
    # autoscaler and a [min, max] band and the fleet grows under queue/SLO
    # pressure and drains back during lulls (drained replicas finish their
    # in-flight work; every request is still answered exactly once).
    elastic = Experiment(
        model="resnet50",
        workload=WorkloadSpec("video", "urban-day", requests=3000, rate=90.0),
        cluster=ClusterSpec(replicas=1, balancer="least_work_left",
                            autoscaler="reactive",
                            min_replicas=1, max_replicas=4),
        seed=0)
    result = elastic.run(systems=["vanilla"]).result("vanilla")
    print(f"\nelastic fleet: peak {result.summary['peak_replicas']:.0f} replicas, "
          f"{result.summary['replica_seconds']:.1f} replica-seconds, "
          f"{result.summary['rerouted']:.0f} doomed requests salvaged")
    print(f"fleet-size timeline: {result.details['fleet_timeline']}")
    # Heterogeneous fleets ride the same spec: profiles="2,1,0.5" declares a
    # 2x replica beside a base and a half-speed one, and the work-aware
    # balancers (least_work_left, weighted_* variants) cost them correctly.
    # See examples/autoscaling.py for the full diurnal 2 -> 6 -> 2 story.

    # --- generative cluster serving ---------------------------------------
    # The same ClusterSpec on a generative model runs token-level early exits
    # on the fleet control plane: each replica is a continuous-batching
    # decode engine, balancers cost replicas by outstanding decode *work*
    # (queued tokens x depth-scaled step time), and drain/retire lets
    # in-flight sequences finish before a replica leaves the fleet.  At an
    # arrival rate that saturates the vanilla fleet, Apparate's exits free
    # decode slots fast enough that the queueing-inclusive per-token p99
    # collapses — the paper's latency/goodput trade, now at fleet scale.
    generative = Experiment(
        model="t5-large",
        workload=WorkloadSpec("generative", "cnn-dailymail",
                              requests=250, rate=32.0),
        cluster=ClusterSpec(replicas=4, balancer="least_work_left"),
        ee=ExitPolicySpec(accuracy_constraint=0.01),
        seed=0)
    gen_report = generative.run(systems=["vanilla", "apparate"])
    print("\ngenerative cluster (4 replicas, least_work_left):")
    print(gen_report.format_table())
    gv = gen_report.result("vanilla").summary
    ga = gen_report.result("apparate").summary
    print(f"per-token p99: vanilla {gv['token_p99_ms']:.0f}ms -> "
          f"Apparate {ga['token_p99_ms']:.0f}ms at accuracy "
          f"{ga['sequence_accuracy']:.3f} "
          f"({ga['deferred_flushes']:.0f} deferred flushes)")
    # Elastic decode fleets work too: ClusterSpec(replicas=4,
    # autoscaler="reactive", max_replicas=8) converts the same overload into
    # scale-out, and the CLI mirrors all of it:
    #   repro-apparate generate --replicas 4 --balancer least_work_left \
    #       --autoscaler reactive --max-replicas 8

    # --- prefill/decode disaggregation ------------------------------------
    # Production LLM fleets split the two generative phases onto separate
    # pools: prefill (compute-bound prompt chunking) and decode (TPT-bound
    # token streaming), connected by a KV-cache handoff.  disaggregate=True
    # runs exactly that: a 2-replica prefill pool and a 4-replica decode
    # pool on one global clock, each with its own balancer and its own
    # autoscaler (prefill scales on queued prompt tokens, decode on
    # outstanding decode work), with the KV-transfer time (bytes ~ prompt
    # tokens x layer depth) charged before the first decode step.  The new
    # TTFT metric (arrival -> first token, queueing + prefill + transfer
    # inclusive) is what this buys: prompt surges no longer steal decode
    # compute, so TTFT p99 drops while per-token p99 stays decode-bound.
    disagg = Experiment(
        model="t5-large",
        workload=WorkloadSpec("generative", "cnn-dailymail",
                              requests=250, rate=24.0,
                              arrival_process="diurnal",
                              overrides={"mean_prompt_tokens": 1024}),
        cluster=ClusterSpec(replicas=4, disaggregate=True,
                            prefill_replicas=2, decode_replicas=4,
                            balancer="least_work_left",
                            prefill_autoscaler="reactive",
                            decode_autoscaler="reactive"),
        ee=ExitPolicySpec(accuracy_constraint=0.01),
        seed=0)
    disagg_report = disagg.run(systems=["vanilla", "apparate"])
    print("\ndisaggregated serving (2 prefill + 4 decode, diurnal prompts):")
    print(disagg_report.format_table(
        metrics=["ttft_p99_ms", "ttft_mean_ms", "token_p99_ms", "tpt_p50_ms",
                 "sequence_accuracy"]))
    da = disagg_report.result("apparate").summary
    print(f"pools sized independently: prefill peak "
          f"{da['prefill_peak_replicas']:.0f} "
          f"({da['prefill_replica_seconds']:.1f} replica-seconds), "
          f"decode peak {da['peak_replicas']:.0f}; "
          f"KV transfer {da['transfer_ms_mean']:.2f}ms/seq")
    # The CLI mirrors it, including TTFT-deadline shedding (--ttft-slo):
    #   repro-apparate generate --disaggregate --prefill-replicas 2 \
    #       --decode-replicas 4 --prefill-autoscaler reactive \
    #       --decode-autoscaler reactive --ttft-slo 500

    # Everything is JSON-serializable for downstream tooling:
    # json.dumps(report.to_json()) / json.dumps(sweep.to_json()).


if __name__ == "__main__":
    main()
