#!/usr/bin/env python3
"""Quickstart: register a model with Apparate and serve a video workload.

This mirrors the workflow of Figure 6 in the paper:

1. register a model (ResNet50) with an SLO, an accuracy constraint and a ramp
   budget — Apparate analyzes the graph, places lightweight ramps at cut
   vertices and calibrates them on bootstrap data;
2. serve a live video-analytics workload on a Clockwork-like platform;
3. compare latencies, accuracy and throughput against vanilla serving.

Run:  python examples/quickstart.py
"""

from repro import Apparate
from repro.workloads import make_video_workload


def main() -> None:
    system = Apparate(seed=0)
    workload = make_video_workload("urban-day", num_frames=6000, fps=30.0, seed=1)

    deployment = system.register(
        "resnet50",
        accuracy_constraint=0.01,   # at most 1% accuracy loss vs the original model
        ramp_budget=0.02,           # ramps may inflate worst-case latency by at most 2%
        bootstrap_workload=workload,
    )
    prep = deployment.preparation
    print(f"Prepared {prep.model_name}: {prep.num_candidate_ramps} candidate ramps, "
          f"{prep.num_initial_ramps} initially active, "
          f"ramp params = {100 * prep.ramp_params_fraction:.2f}% of the model")

    vanilla = deployment.serve_vanilla(workload, platform="clockwork")
    apparate = deployment.serve(workload, platform="clockwork")

    v, a = vanilla.summary(), apparate.summary()
    print("\n                vanilla     Apparate")
    print(f"median latency  {v['p50_ms']:8.2f} ms {a['p50_ms']:8.2f} ms"
          f"   ({100 * (v['p50_ms'] - a['p50_ms']) / v['p50_ms']:.1f}% lower)")
    print(f"p25 latency     {v['p25_ms']:8.2f} ms {a['p25_ms']:8.2f} ms")
    print(f"p95 latency     {v['p95_ms']:8.2f} ms {a['p95_ms']:8.2f} ms"
          "   (bounded by the 2% ramp budget)")
    print(f"throughput      {v['throughput_qps']:8.2f} qps {a['throughput_qps']:8.2f} qps")
    print(f"accuracy        {v['accuracy']:8.3f}    {a['accuracy']:8.3f}"
          "   (relative to the original model)")
    print(f"exit rate                      {a['exit_rate']:8.2%}")

    stats = apparate.controller.stats
    print(f"\ncontroller: {stats.threshold_tunings} threshold tunings "
          f"({stats.accuracy_triggered_tunings} accuracy-triggered), "
          f"{stats.ramp_adjustments} ramp adjustments, "
          f"{stats.ramp_set_changes} ramp-set changes")
    print(f"final configuration: {apparate.controller.config.describe()}")


if __name__ == "__main__":
    main()
