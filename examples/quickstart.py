#!/usr/bin/env python3
"""Quickstart: declare one Experiment, compare every system on it.

The ``repro.api`` facade is the front door to the reproduction: an
:class:`~repro.api.Experiment` declares the model, the workload and the exit
policy once, and any set of registered systems (``vanilla``, ``apparate``,
``static_ee``, ``two_layer``, ``optimal``, …) runs on exactly that
configuration:

1. declare a video-analytics experiment on ResNet50 with the paper's default
   knobs (1% accuracy constraint, 2% ramp budget);
2. ``run`` vanilla serving, Apparate and the optimal oracle and print the
   cross-system comparison table;
3. ``sweep`` replica counts to see fleet scaling in one extra line.

Run:  python examples/quickstart.py
"""

from repro.api import Experiment, ExitPolicySpec, WorkloadSpec, list_systems


def main() -> None:
    experiment = Experiment(
        model="resnet50",
        workload=WorkloadSpec("video", "urban-day", requests=6000, rate=30.0),
        ee=ExitPolicySpec(
            accuracy_constraint=0.01,   # at most 1% accuracy loss vs the original
            ramp_budget=0.02,           # ramps may inflate worst-case latency <= 2%
        ),
        seed=0,
    )
    print(f"registered systems: {', '.join(list_systems())}")

    # One call, three systems, one comparison table.
    report = experiment.run(systems=["vanilla", "apparate", "optimal"])
    print(f"\nmodel=resnet50 workload=video:urban-day "
          f"requests={report.params['workload']['requests']}")
    print(report.format_table())

    v = report.result("vanilla").summary
    a = report.result("apparate").summary
    win = 100.0 * (v["p50_ms"] - a["p50_ms"]) / v["p50_ms"]
    print(f"\nApparate median latency win over vanilla: {win:.1f}% "
          f"(exit rate {a['exit_rate']:.0%}, accuracy {a['accuracy']:.3f})")

    # The controller's runtime adaptation stats ride along on the result.
    controller = report.result("apparate").raw.controller
    print(f"controller: {controller.stats.threshold_tunings} threshold tunings, "
          f"{controller.stats.ramp_adjustments} ramp adjustments")
    print(f"final configuration: {controller.config.describe()}")

    # Fleet scaling is one more line: sweep replica counts behind a balancer.
    sweep = experiment.sweep(systems=["vanilla"], replicas=[1, 2],
                             balancer="join_shortest_queue")
    print("\nfleet scaling (join_shortest_queue):")
    print(sweep.format_table(metrics=["p50_ms", "p99_ms", "throughput_qps"]))

    # Everything is JSON-serializable for downstream tooling:
    # json.dumps(report.to_json()) / json.dumps(sweep.to_json()).


if __name__ == "__main__":
    main()
