#!/usr/bin/env python3
"""Bring your own model: register a custom architecture with Apparate.

Apparate accepts any dataflow graph — this example registers a custom
"wide-resnet-20"-style model that is not part of the built-in zoo, shows which
positions qualify for ramps (cut vertices), and serves a workload with it.
It also demonstrates the per-deployment knobs: SLO, accuracy constraint,
ramp budget and ramp style.

Run:  python examples/custom_model.py
"""

from repro import ModelSpec, Task, register_model
from repro.core.pipeline import run_apparate, run_vanilla
from repro.exits.placement import build_ramp_catalog
from repro.exits.ramps import RampStyle
from repro.graph.builders import build_resnet
from repro.graph.cut_vertices import feasible_ramp_positions
from repro.models.latency import build_latency_profile
from repro.workloads import make_video_workload


def main() -> None:
    # 1. Describe the custom model.  (Graphs for custom names fall back to the
    #    closest built-in family builder; here we reuse the ResNet-18 topology
    #    but with our own latency/overparameterization characteristics.)
    spec = register_model(ModelSpec(
        name="resnet18",              # reuse the resnet18 topology...
        task=Task.CV_CLASSIFICATION,
        family="resnet",
        params_millions=11.7,
        bs1_latency_ms=9.0,           # ...but a slower deployment target
        default_slo_ms=18.0,
        num_classes=100,
        headroom=0.9,
        batch_marginal_cost=0.3,
        num_blocks=8,
        hidden_width=512,
    ))

    # 2. Inspect the graph analysis Apparate performs during preparation.
    graph = build_resnet(18, num_classes=spec.num_classes)
    positions = feasible_ramp_positions(graph)
    print(f"{graph.name}: {graph.num_nodes()} operators, "
          f"{len(positions)} feasible ramp positions (cut vertices)")
    profile = build_latency_profile(spec, graph)
    catalog = build_ramp_catalog(spec, graph, profile, budget_fraction=0.03,
                                 style=RampStyle.LIGHTWEIGHT)
    print("candidate ramps (name @ depth fraction):")
    for ramp in catalog.ramps:
        print(f"  {ramp.node_name:<24s} @ {ramp.depth_fraction:.2f} "
              f"(overhead {100 * ramp.overhead_fraction:.2f}%)")

    # 3. Serve a workload with the custom deployment knobs.
    workload = make_video_workload("crossroads", num_frames=4000, seed=3)
    vanilla = run_vanilla(spec, workload, slo_ms=spec.default_slo_ms)
    apparate = run_apparate(spec, workload, slo_ms=spec.default_slo_ms,
                            accuracy_constraint=0.02, ramp_budget=0.03)
    win = 100.0 * (vanilla.median_latency() - apparate.metrics.median_latency()) \
        / vanilla.median_latency()
    print(f"\nmedian latency: {vanilla.median_latency():.2f} ms -> "
          f"{apparate.metrics.median_latency():.2f} ms ({win:.1f}% lower), "
          f"accuracy {apparate.metrics.accuracy():.3f}, "
          f"p95 {apparate.metrics.p95_latency():.2f} ms "
          f"(vanilla {vanilla.p95_latency():.2f} ms)")


if __name__ == "__main__":
    main()
