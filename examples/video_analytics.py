#!/usr/bin/env python3
"""Live video analytics across scenes and models (the paper's CV workloads).

Serves four synthetic one-hour-style video streams (urban day/night, highway,
crossroads) with three ResNet/VGG models each, comparing vanilla serving,
Apparate, and the optimal-exit upper bound.  This is the §4.2 CV experiment in
miniature: expect 40-90% median latency wins with tails inside the 2% budget.

Run:  python examples/video_analytics.py
"""

import numpy as np

from repro.baselines.oracle import run_optimal_classification
from repro.core.pipeline import run_apparate, run_vanilla
from repro.workloads import make_video_workload

MODELS = ["resnet18", "resnet50", "vgg13"]
SCENES = ["urban-day", "urban-night", "highway", "crossroads"]
NUM_FRAMES = 4000


def main() -> None:
    print(f"{'model':<10s} {'scene':<12s} {'vanilla p50':>12s} {'Apparate p50':>13s} "
          f"{'win %':>7s} {'optimal p50':>12s} {'accuracy':>9s} {'p95 ratio':>10s}")
    for model in MODELS:
        for scene in SCENES:
            workload = make_video_workload(scene, num_frames=NUM_FRAMES, seed=7)
            vanilla = run_vanilla(model, workload)
            apparate = run_apparate(model, workload)
            optimal = run_optimal_classification(model, workload)

            win = 100.0 * (vanilla.median_latency() - apparate.metrics.median_latency()) \
                / vanilla.median_latency()
            p95_ratio = apparate.metrics.p95_latency() / max(vanilla.p95_latency(), 1e-9)
            print(f"{model:<10s} {scene:<12s} {vanilla.median_latency():12.2f} "
                  f"{apparate.metrics.median_latency():13.2f} {win:7.1f} "
                  f"{float(np.median(optimal)):12.2f} "
                  f"{apparate.metrics.accuracy():9.3f} {p95_ratio:10.3f}")


if __name__ == "__main__":
    main()
