#!/usr/bin/env python3
"""Generative LLM serving with early exits and parallel decoding (§3.4, §4.3).

Serves synthetic CNN/DailyMail-style summarization and SQuAD-style question
answering with T5-large and Llama2, comparing vanilla decoding, Apparate's
adaptive single ramp, the FREE baseline (one-time-tuned fixed ramp) and the
optimal oracle.  Expect large median time-per-token (TPT) wins for T5 and
smaller ones for Llama2, with Apparate holding the accuracy constraint where
FREE's static tuning may not.

Run:  python examples/generative_llm.py
"""

from repro.baselines.free import run_free_generative
from repro.baselines.oracle import run_optimal_generative
from repro.core.generative import run_generative_apparate, run_generative_vanilla
from repro.generative.sequences import make_generative_workload

CASES = [
    ("t5-large", "cnn-dailymail"),
    ("t5-large", "squad"),
    ("llama2-7b", "squad"),
    ("llama2-13b", "squad"),
]


def main() -> None:
    print(f"{'model':<12s} {'dataset':<14s} {'vanilla TPT':>12s} {'Apparate TPT':>13s} "
          f"{'win %':>7s} {'FREE TPT':>9s} {'optimal TPT':>12s} {'acc (A/F)':>12s}")
    for model, dataset in CASES:
        workload = make_generative_workload(dataset, num_sequences=150, rate_qps=2.0,
                                            seed=5, drift_amplitude=0.3, drift_mode="trend")
        vanilla = run_generative_vanilla(model, workload)
        apparate = run_generative_apparate(model, workload)
        free = run_free_generative(model, workload)
        optimal = run_optimal_generative(model, workload)

        win = 100.0 * (vanilla.median_tpt() - apparate.metrics.median_tpt()) \
            / vanilla.median_tpt()
        print(f"{model:<12s} {dataset:<14s} {vanilla.median_tpt():12.2f} "
              f"{apparate.metrics.median_tpt():13.2f} {win:7.1f} "
              f"{free.median_tpt():9.2f} {optimal.median_tpt():12.2f} "
              f"{apparate.metrics.mean_sequence_accuracy():.3f}/"
              f"{free.mean_sequence_accuracy():.3f}")

        policy = apparate.policy
        print(f"{'':12s} ramp settled at depth {policy.ramp_depth:.2f} "
              f"(threshold {policy.threshold:.2f}) after {policy.position_moves} moves "
              f"and {policy.threshold_tunings} threshold tunings")


if __name__ == "__main__":
    main()
