#!/usr/bin/env python3
"""Cluster serving: a fleet of Apparate replicas behind a load balancer.

The paper evaluates Apparate on a single replica; production services put
fleets of identical replicas behind a load balancer.  This walkthrough scales
the same serving stack out to N replicas with ``ClusterPlatform`` and compares
the pluggable dispatch policies.

Choosing a balancer — the trade-offs in one paragraph each
----------------------------------------------------------
``round_robin``
    Zero state inspection and perfectly even request *counts*.  Ignores queue
    skew, so one slow batch (or an expensive request mix) makes that replica's
    queue snowball while the others idle.  Fine when requests are homogeneous
    and arrival order is already well mixed.

``join_shortest_queue`` (JSQ)
    Routes each arrival to the replica with the fewest waiting requests.
    Near-optimal tail latency when every request costs the same, but it needs
    the dispatcher to see every queue on every arrival — the coordination cost
    a real deployment pays for its balance.

``least_work_left``
    Like JSQ, but costs each queue in *milliseconds* using the model's latency
    profile (queued batches plus the in-flight batch's remaining time).  Sees
    through unequal queue costs — e.g. one replica holding a nearly-finished
    batch versus one that just started — at the price of needing a calibrated
    profile.

``power_of_two_choices``
    Samples two replicas at random and joins the shorter queue.  The classic
    result (Mitzenmacher '01): exponentially better balance than random with
    only two queue probes per arrival, and no global view.  The default pick
    when the dispatcher itself must scale.

``weighted_round_robin`` / ``weighted_join_shortest_queue``
    The same policies made speed-aware for heterogeneous fleets: dispatch
    shares (WRR) or queue lengths (WJSQ) are scaled by each replica's
    ``ReplicaProfile.speed``, so an int8 replica beside an fp32 one receives
    its fair multiple of the traffic.  (``least_work_left`` needs no variant —
    it already costs queues in milliseconds through each replica's scaled
    latency profile.)  See ``examples/autoscaling.py`` for the elastic-fleet
    side of the control plane.

Fleet-wide early-exit control comes in two modes: ``independent`` (one
ApparateController per replica, each adapting to its own traffic slice) and
``shared`` (one controller aggregating the whole fleet's profiling feedback
with a periodic sync — N× the tuning evidence, one warm-up).

Run:  python examples/cluster_serving.py
"""

from repro.core.pipeline import run_apparate_cluster, run_vanilla_cluster
from repro.serving.cluster import balancer_names
from repro.workloads import make_video_workload

REPLICAS = 4


def main() -> None:
    # A saturating trace: arrivals far above one replica's capacity, so the
    # fleet (not the arrival rate) is the bottleneck and balancing matters.
    workload = make_video_workload("urban-day", num_frames=4000, fps=240.0, seed=1)

    print(f"=== vanilla fleet, {REPLICAS} replicas, per balancer ===")
    print(f"{'balancer':<24s} {'p50 ms':>9s} {'p99 ms':>9s} {'tput qps':>9s} "
          f"{'drops':>7s} {'imbalance':>10s}")
    for balancer in balancer_names("classification"):
        fleet = run_vanilla_cluster("resnet50", workload, replicas=REPLICAS,
                                    balancer=balancer, seed=0)
        s = fleet.summary()
        print(f"{balancer:<24s} {s['p50_ms']:9.2f} {s['p99_ms']:9.2f} "
              f"{s['throughput_qps']:9.1f} {s['drop_rate']:7.2%} "
              f"{s['dispatch_imbalance']:10.2f}")

    print(f"\n=== Apparate fleet ({REPLICAS} replicas, join_shortest_queue) ===")
    for mode in ("independent", "shared"):
        result = run_apparate_cluster("resnet50", workload, replicas=REPLICAS,
                                      balancer="join_shortest_queue",
                                      fleet_mode=mode, seed=0)
        s = result.summary()
        print(f"{mode:<12s} p50={s['p50_ms']:7.2f} ms  accuracy={s['accuracy']:.3f}  "
              f"exit rate={s['exit_rate']:.2%}  controllers={s['num_controllers']:.0f}  "
              f"threshold tunings={s['threshold_tunings']:.0f}")

    print("\nPer-replica view (independent mode):")
    result = run_apparate_cluster("resnet50", workload, replicas=REPLICAS,
                                  balancer="join_shortest_queue",
                                  fleet_mode="independent", seed=0)
    for i, summary in enumerate(result.metrics.per_replica_summaries()):
        print(f"  replica {i}: served={summary['num_served']:.0f} "
              f"p50={summary['p50_ms']:.2f} ms exit rate={summary['exit_rate']:.2%}")


if __name__ == "__main__":
    main()
