"""Uniform run results and cross-system comparison reports.

Every registered system returns a :class:`RunResult` with the same shape —
a named-metric ``summary`` dict plus JSON-safe ``params``/``details`` and the
legacy result object under ``raw`` — so comparison tables, sweeps, benchmarks
and the CLI's ``--json`` mode all consume one schema instead of each system's
ad-hoc return type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = ["KIND_CLASSIFICATION", "KIND_CLUSTER", "KIND_GENERATIVE",
           "KIND_GENERATIVE_CLUSTER", "KIND_GENERATIVE_DISAGG", "RunResult",
           "RunReport", "SweepPoint", "SweepReport", "METRIC_LABELS",
           "SYSTEM_DISPLAY_NAMES", "labels_for_kind"]

KIND_CLASSIFICATION = "classification"
KIND_CLUSTER = "cluster"
KIND_GENERATIVE = "generative"
KIND_GENERATIVE_CLUSTER = "generative_cluster"
KIND_GENERATIVE_DISAGG = "generative_disagg"

#: Human-readable labels for the shared metric vocabulary.
METRIC_LABELS = {
    "p25_ms": "p25 latency",
    "p50_ms": "median latency",
    "p95_ms": "p95 latency",
    "p99_ms": "p99 latency",
    "mean_ms": "mean latency",
    "throughput_qps": "throughput",
    "accuracy": "accuracy",
    "exit_rate": "exit rate",
    "drop_rate": "drop rate",
    "escalation_rate": "escalation rate",
    "dispatch_imbalance": "dispatch imbalance",
    "fleet_gpu_utilization": "fleet GPU util",
    "tpt_p25_ms": "TPT p25",
    "tpt_p50_ms": "TPT p50",
    "tpt_p95_ms": "TPT p95",
    "tpt_p99_ms": "TPT p99",
    "token_p99_ms": "per-token p99",
    "ttft_mean_ms": "TTFT mean",
    "ttft_p99_ms": "TTFT p99",
    "sequence_accuracy": "seq accuracy",
    "throughput_tokens_per_s": "tokens/s",
    "deferred_flushes": "deferred flushes",
    "shed": "shed",
    "shed_rate": "shed rate",
    "peak_replicas": "peak replicas",
    "replica_seconds": "replica-seconds",
    "prefill_peak_replicas": "prefill peak replicas",
    "prefill_replica_seconds": "prefill replica-seconds",
    "prefill_delay_mean_ms": "prefill delay mean",
    "transfer_ms_mean": "KV transfer mean",
    "kv_hit_rate": "KV hit rate",
    "kv_hit_tokens": "KV hit tokens",
    "kv_miss_tokens": "KV miss tokens",
    "kv_evictions": "KV evictions",
    "kv_evicted_tokens": "KV evicted tokens",
    "kv_recompute_tokens": "KV recompute tokens",
}

#: Pretty column titles for registered systems.
SYSTEM_DISPLAY_NAMES = {
    "vanilla": "vanilla",
    "apparate": "Apparate",
    "free": "FREE",
    "optimal": "optimal",
    "static_ee": "static-EE",
    "two_layer": "two-layer",
}

#: Default metric rows shown per experiment kind (tables stay focused; the
#: full summary is always available via ``to_json``).
_DISPLAY_METRICS = {
    KIND_CLASSIFICATION: ("p25_ms", "p50_ms", "p95_ms", "p99_ms", "throughput_qps",
                          "accuracy", "exit_rate", "drop_rate"),
    KIND_CLUSTER: ("p50_ms", "p95_ms", "p99_ms", "throughput_qps", "accuracy",
                   "drop_rate", "dispatch_imbalance", "exit_rate"),
    KIND_GENERATIVE: ("tpt_p25_ms", "tpt_p50_ms", "tpt_p95_ms", "ttft_p99_ms",
                      "sequence_accuracy", "exit_rate",
                      "throughput_tokens_per_s"),
    KIND_GENERATIVE_CLUSTER: ("tpt_p50_ms", "tpt_p95_ms", "token_p99_ms",
                              "ttft_p99_ms", "sequence_accuracy", "exit_rate",
                              "throughput_tokens_per_s", "dispatch_imbalance",
                              "peak_replicas"),
    KIND_GENERATIVE_DISAGG: ("ttft_p99_ms", "ttft_mean_ms", "tpt_p50_ms",
                             "token_p99_ms", "sequence_accuracy", "exit_rate",
                             "throughput_tokens_per_s", "peak_replicas",
                             "prefill_peak_replicas"),
}


def labels_for_kind(kind: str) -> Dict[str, str]:
    """Metric labels, specialized per kind (cluster metrics are fleet-wide)."""
    labels = dict(METRIC_LABELS)
    if kind == KIND_CLUSTER:
        labels["throughput_qps"] = "fleet throughput"
    if kind in (KIND_GENERATIVE_CLUSTER, KIND_GENERATIVE_DISAGG):
        labels["throughput_tokens_per_s"] = "fleet tokens/s"
    return labels


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays and other simple types to JSON-safe ones."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "tolist"):          # numpy arrays and scalars
        return _jsonable(value.tolist())
    if hasattr(value, "item") and not isinstance(value, (int, float, str, bool)):
        return value.item()
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    return str(value)


@dataclass
class RunResult:
    """One system's outcome on one experiment, in the shared schema.

    ``summary`` holds the named metric keys (floats); ``details`` holds
    JSON-safe extras (per-replica dispatch counts, tuned thresholds, …);
    ``raw`` keeps the system's legacy result object for code that wants the
    full surface (and for the ``run_*`` shims, which return it).

    ``trace`` holds the live :class:`~repro.obs.TraceRecorder` when the
    experiment ran with ``trace=...`` (``None`` otherwise) — feed it to
    :func:`repro.obs.write_chrome_trace` / :func:`repro.obs.write_jsonl`.
    Like ``raw`` it is an in-process object: excluded from ``to_json``
    (the JSON-safe rollup lives in ``details["obs"]``).
    """

    system: str
    kind: str
    model: str
    summary: Dict[str, float]
    params: Dict[str, Any] = field(default_factory=dict)
    details: Dict[str, Any] = field(default_factory=dict)
    raw: Any = field(default=None, repr=False, compare=False)
    trace: Any = field(default=None, repr=False, compare=False)

    def metric(self, key: str, default: Optional[float] = None) -> Optional[float]:
        return self.summary.get(key, default)

    def to_json(self) -> Dict[str, Any]:
        """Machine-readable dict (stable schema, numpy-free)."""
        return {
            "schema": "repro.run_result/v1",
            "system": self.system,
            "kind": self.kind,
            "model": self.model,
            "params": _jsonable(self.params),
            "summary": {str(k): float(v) for k, v in self.summary.items()},
            "details": _jsonable(self.details),
        }


@dataclass
class RunReport:
    """Cross-system comparison: the results of one ``Experiment.run`` call."""

    results: List[RunResult]
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._by_system = {r.system: r for r in self.results}

    def systems(self) -> List[str]:
        return [r.system for r in self.results]

    def result(self, system: str) -> RunResult:
        try:
            return self._by_system[system]
        except KeyError as exc:
            raise ValueError(f"no result for system {system!r}; "
                             f"report covers {self.systems()}") from exc

    @property
    def kind(self) -> str:
        return self.results[0].kind if self.results else KIND_CLASSIFICATION

    def metric_keys(self) -> List[str]:
        """Union of summary keys, in first-seen order across systems."""
        keys: List[str] = []
        for result in self.results:
            for key in result.summary:
                if key not in keys:
                    keys.append(key)
        return keys

    # ---------------------------------------------------------------- output
    def format_table(self, metrics: Optional[Sequence[str]] = None,
                     labels: Optional[Dict[str, str]] = None,
                     label_width: int = 22, column_width: int = 12) -> str:
        """Render the systems-by-metrics comparison table.

        This is the one formatter behind every CLI comparison printout:
        columns are systems (display names), rows are metrics, and a metric a
        system does not report renders as ``-``.
        """
        if metrics is None:
            preferred = _DISPLAY_METRICS.get(self.kind, ())
            available = set(self.metric_keys())
            metrics = [m for m in preferred if m in available] or self.metric_keys()
        labels = labels if labels is not None else labels_for_kind(self.kind)
        header = f"{'metric':<{label_width}s}" + "".join(
            f"{SYSTEM_DISPLAY_NAMES.get(name, name):>{column_width}s}"
            for name in self.systems())
        lines = [header]
        for key in metrics:
            cells = []
            for result in self.results:
                value = result.summary.get(key)
                cells.append(f"{'-':>{column_width}s}" if value is None
                             else f"{value:{column_width}.3f}")
            lines.append(f"{labels.get(key, key):<{label_width}s}" + "".join(cells))
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": "repro.run_report/v1",
            "params": _jsonable(self.params),
            "results": [r.to_json() for r in self.results],
        }


@dataclass
class SweepPoint:
    """One grid point of a sweep: the varied parameters and their report.

    A point that raised at run time carries ``error`` (``{"type", "message"}``)
    instead of a report — the sweep executors capture per-point failures so
    one bad grid point cannot kill its siblings.  Config errors still fail
    the whole sweep up front: every point's specs are validated before any
    point runs.

    ``wall_s`` (wall-clock seconds the point took) and ``cache`` (workload
    trace-cache ``{"hits", "misses"}`` deltas observed while it ran) are
    execution telemetry for progress reporting.  They depend on machine and
    scheduling, so ``to_json`` excludes them — serial and parallel sweeps of
    the same grid stay byte-identical.
    """

    params: Dict[str, Any]
    report: Optional[RunReport]
    error: Optional[Dict[str, str]] = None
    wall_s: Optional[float] = field(default=None, compare=False)
    cache: Optional[Dict[str, int]] = field(default=None, compare=False)

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepReport:
    """All grid points of one ``Experiment.sweep`` call, in grid order."""

    points: List[SweepPoint]
    base_params: Dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterable[SweepPoint]:
        return iter(self.points)

    def results(self, system: str) -> List[RunResult]:
        """The given system's result at every grid point, in grid order.

        Raises :class:`ValueError` if any grid point failed — a partial
        column would silently misalign against the grid.
        """
        failed = self.errors()
        if failed:
            first = failed[0]
            raise ValueError(
                f"{len(failed)} of {len(self.points)} sweep points failed; "
                f"first: params={first.params} error={first.error}")
        return [point.report.result(system) for point in self.points]

    def errors(self) -> List[SweepPoint]:
        """The grid points that failed at run time, in grid order."""
        return [point for point in self.points if point.error is not None]

    def format_table(self, metrics: Optional[Sequence[str]] = None,
                     column_width: int = 12) -> str:
        """One row per (grid point, system) with the selected metric columns."""
        if not self.points:
            return "(empty sweep)"
        if metrics is None:
            # A failed point has no report, so key the default metric columns
            # off the first point that succeeded (no columns if none did).
            first_ok = next((p for p in self.points if p.report is not None), None)
            if first_ok is None:
                metrics = []
            else:
                preferred = _DISPLAY_METRICS.get(first_ok.report.kind, ())
                available = set(first_ok.report.metric_keys())
                metrics = [m for m in preferred if m in available][:6]
        param_keys = list(self.points[0].params)
        param_widths = {
            key: max(column_width, len(key) + 2,
                     max(len(str(p.params[key])) for p in self.points) + 2)
            for key in param_keys}
        header = "".join(f"{k:>{param_widths[k]}s}" for k in param_keys) \
            + f"{'system':>{column_width}s}" \
            + "".join(f"{m:>{max(column_width, len(m) + 2)}s}" for m in metrics)
        lines = [header]
        for point in self.points:
            prefix = "".join(f"{str(point.params[k]):>{param_widths[k]}s}"
                             for k in param_keys)
            if point.error is not None:
                lines.append(prefix + f"  ERROR {point.error['type']}: "
                             f"{point.error['message']}")
                continue
            for result in point.report.results:
                cells = []
                for m in metrics:
                    value = result.summary.get(m)
                    width = max(column_width, len(m) + 2)
                    cells.append(f"{'-':>{width}s}" if value is None
                                 else f"{value:{width}.3f}")
                lines.append(prefix + f"{result.system:>{column_width}s}"
                             + "".join(cells))
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": "repro.sweep_report/v1",
            "base_params": _jsonable(self.base_params),
            "points": [{"params": _jsonable(p.params),
                        "report": None if p.report is None
                        else p.report.to_json(),
                        **({} if p.error is None
                           else {"error": dict(p.error)})}
                       for p in self.points],
        }
