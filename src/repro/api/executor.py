"""Sweep execution engine: serial and process-pool backends.

``Experiment.sweep`` produces an embarrassingly parallel unit of work — a
list of fully validated experiment variants, one per grid point, each of
which runs independently and deterministically.  This module turns that list
into results through a :class:`SweepExecutor`:

* :class:`SerialSweepExecutor` runs points in grid order in the calling
  process — the executable specification of sweep semantics.
* :class:`ProcessSweepExecutor` fans points out to a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Results are reassembled
  **in grid order** regardless of completion order, and every run is seeded,
  so the parallel ``SweepReport`` is bit-identical to the serial one.

Both backends capture per-point *runtime* failures as structured
``{"type", "message"}`` errors on the :class:`~repro.api.result.SweepPoint`
instead of killing the whole sweep — one pathological grid point cannot
discard its siblings' work.  Configuration errors still fail fast:
``Experiment.sweep`` validates every grid point's specs (and canonicalizes
system names) before handing anything to an executor.

Workers inherit the materialized workload trace from the parent's
:mod:`repro.workloads.cache` copy-on-write when the ``fork`` start method is
available; elsewhere (spawn-only platforms) the trace ships to workers by
pickle as part of the experiment variant.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Union)

from repro.api.result import RunReport

__all__ = ["SweepTask", "SweepOutcome", "SweepExecutor", "SerialSweepExecutor",
           "ProcessSweepExecutor", "SWEEP_EXECUTORS", "resolve_sweep_executor"]

#: Called after each grid point finishes: ``progress(outcome, done, total)``.
ProgressCallback = Callable[["SweepOutcome", int, int], None]


@dataclass
class SweepTask:
    """One grid point, ready to run: its index, parameters and variant."""

    index: int
    params: Dict[str, Any]
    experiment: Any                       # the Experiment variant to run
    systems: Optional[Sequence[str]] = None


@dataclass
class SweepOutcome:
    """What running one grid point produced (a report or a structured error)."""

    index: int
    params: Dict[str, Any]
    report: Optional[RunReport] = None
    error: Optional[Dict[str, str]] = None
    wall_s: float = 0.0
    #: Trace-cache activity while this point ran: ``{"hits", "misses"}``
    #: deltas of the worker's :data:`repro.workloads.cache.TRACE_CACHE`.
    cache: Optional[Dict[str, int]] = None


def _structured_error(exc: BaseException) -> Dict[str, str]:
    """The portable error shape: class name + message, no traceback.

    Tracebacks embed file paths and process details that differ between the
    serial and process backends; type + message is identical in both, which
    keeps failed points inside the bit-identity guarantee too.
    """
    return {"type": type(exc).__name__, "message": str(exc)}


def _run_sweep_task(task: SweepTask, keep_raw: bool = True) -> SweepOutcome:
    """Run one grid point, capturing runtime failures as structured errors.

    Module-level so process-pool workers can unpickle it.  ``keep_raw=False``
    drops each :class:`RunResult`'s legacy ``raw`` object (simulator
    internals, often unpicklable) before the outcome crosses the process
    boundary; ``raw`` is excluded from ``to_json``, so stripping it cannot
    perturb bit-identity.
    """
    from repro.workloads.cache import TRACE_CACHE

    before = TRACE_CACHE.info()
    start = time.perf_counter()
    try:
        report = task.experiment.run(task.systems)
    except Exception as exc:
        return SweepOutcome(index=task.index, params=task.params,
                            error=_structured_error(exc),
                            wall_s=time.perf_counter() - start,
                            cache=_cache_delta(before, TRACE_CACHE.info()))
    if not keep_raw:
        for result in report.results:
            result.raw = None
    return SweepOutcome(index=task.index, params=task.params, report=report,
                        wall_s=time.perf_counter() - start,
                        cache=_cache_delta(before, TRACE_CACHE.info()))


def _cache_delta(before: Dict[str, int], after: Dict[str, int]) -> Dict[str, int]:
    """Trace-cache hits/misses attributable to one grid point."""
    return {"hits": after["hits"] - before["hits"],
            "misses": after["misses"] - before["misses"]}


class SweepExecutor:
    """How a validated list of sweep tasks becomes an ordered outcome list.

    Subclasses implement :meth:`map`; callers rely on two invariants that
    hold for every backend:

    * outcomes come back **in task-index order**, independent of completion
      order, and
    * a point that raises at run time yields an outcome with ``error`` set
      while its siblings run to completion.
    """

    name = "abstract"

    #: Whether ``Experiment.sweep`` should drop the parent's materialized
    #: workload from task variants before dispatch (workers recover it from
    #: the fork-inherited trace cache instead of paying pickle freight).
    strip_workload_cache = False

    def map(self, tasks: Sequence[SweepTask],
            progress: Optional[ProgressCallback] = None) -> List[SweepOutcome]:
        raise NotImplementedError


class SerialSweepExecutor(SweepExecutor):
    """Run grid points one after another in the calling process."""

    name = "serial"

    def map(self, tasks: Sequence[SweepTask],
            progress: Optional[ProgressCallback] = None) -> List[SweepOutcome]:
        outcomes: List[SweepOutcome] = []
        for done, task in enumerate(tasks, start=1):
            outcome = _run_sweep_task(task, keep_raw=True)
            outcomes.append(outcome)
            if progress is not None:
                progress(outcome, done, len(tasks))
        return outcomes


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    """The ``fork`` multiprocessing context, or ``None`` where unsupported."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:
        return None


class ProcessSweepExecutor(SweepExecutor):
    """Fan grid points out to a process pool; reassemble in grid order.

    ``workers`` defaults to the machine's CPU count.  The pool prefers the
    ``fork`` start method so workers inherit the parent's materialized
    workload trace copy-on-write; on spawn-only platforms the trace travels
    to workers inside the pickled experiment variant instead.

    A worker death (e.g. the OOM killer) surfaces as a structured error on
    the points it took down, not as a sweep-wide exception.
    """

    name = "process"

    def __init__(self, workers: Optional[int] = None) -> None:
        if workers is not None and int(workers) < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers) if workers is not None \
            else (multiprocessing.cpu_count() or 2)
        self._mp_context = _fork_context()

    @property
    def strip_workload_cache(self) -> bool:
        # Only safe to strip when fork gives workers the parent's trace
        # cache for free; under spawn the pickled variant IS the transport.
        return self._mp_context is not None

    def map(self, tasks: Sequence[SweepTask],
            progress: Optional[ProgressCallback] = None) -> List[SweepOutcome]:
        if not tasks:
            return []
        outcomes: List[Optional[SweepOutcome]] = [None] * len(tasks)
        max_workers = min(self.workers, len(tasks))
        done_count = 0
        with ProcessPoolExecutor(max_workers=max_workers,
                                 mp_context=self._mp_context) as pool:
            pending = {pool.submit(_run_sweep_task, task, False): task
                       for task in tasks}
            while pending:
                finished, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in finished:
                    task = pending.pop(future)
                    try:
                        outcome = future.result()
                    except Exception as exc:   # worker died / unpicklable
                        outcome = SweepOutcome(index=task.index,
                                               params=task.params,
                                               error=_structured_error(exc))
                    outcomes[task.index] = outcome
                    done_count += 1
                    if progress is not None:
                        progress(outcome, done_count, len(tasks))
        return [outcome for outcome in outcomes if outcome is not None]


#: Executor names accepted by ``Experiment.sweep`` and the CLI.
SWEEP_EXECUTORS: Mapping[str, type] = {
    "serial": SerialSweepExecutor,
    "process": ProcessSweepExecutor,
}


def resolve_sweep_executor(executor: Union[str, SweepExecutor, None] = None,
                           workers: Optional[int] = None) -> SweepExecutor:
    """Turn ``(executor, workers)`` into a ready :class:`SweepExecutor`.

    * ``executor=None``: ``workers`` decides — ``workers > 1`` selects the
      process backend, otherwise serial (the default).
    * ``executor="serial"``/``"process"``: that backend; ``workers`` only
      makes sense for ``process`` (``serial`` with ``workers > 1`` raises).
    * an already-built :class:`SweepExecutor` passes through unchanged
      (``workers`` must then be ``None`` — it would be silently ignored).
    """
    if workers is not None and int(workers) < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if isinstance(executor, SweepExecutor):
        if workers is not None:
            raise ValueError("pass workers via the executor instance, not "
                             "alongside one")
        return executor
    if executor is None:
        if workers is not None and int(workers) > 1:
            return ProcessSweepExecutor(workers=workers)
        return SerialSweepExecutor()
    try:
        cls = SWEEP_EXECUTORS[executor]
    except (KeyError, TypeError):
        raise ValueError(f"unknown sweep executor {executor!r}; "
                         f"choose from {tuple(SWEEP_EXECUTORS)}") from None
    if cls is SerialSweepExecutor:
        if workers is not None and int(workers) > 1:
            raise ValueError(f"executor='serial' runs one point at a time; "
                             f"workers={workers} would be silently ignored")
        return SerialSweepExecutor()
    return ProcessSweepExecutor(workers=workers)
