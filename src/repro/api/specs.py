"""Declarative experiment specs: workload, cluster and exit-policy configs.

These small frozen dataclasses describe *what* to run without building any of
it.  An :class:`~repro.api.experiment.Experiment` composes them and only
materializes workloads/platforms when a run starts, which makes experiments
cheap to copy (``dataclasses.replace``) — the mechanism behind
``Experiment.sweep``.

All validation happens at construction time and raises :class:`ValueError`
naming the offending value, so a bad spec fails before any compute is spent
and every front end (Python API, CLI, benchmarks) reports the same error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.core.controller import FleetController
from repro.exits.ramps import RampStyle
from repro.faults import FaultSchedule, FaultSpec, coerce_faults
from repro.serving.autoscaler import Autoscaler, canonical_autoscaler_name
from repro.serving.cluster import (LoadBalancer, ReplicaProfile,
                                   canonical_balancer_name)
from repro.obs.spec import TraceSpec
from repro.tenancy import (TENANT_POLICIES, TenancyConfig, TenantSpec,
                           coerce_tenancy)

# TraceSpec lives in repro.obs (the observability subsystem owns its own
# validation) but is re-exported here: it is an experiment spec like the rest.
__all__ = ["WorkloadSpec", "ClusterSpec", "ExitPolicySpec", "TraceSpec",
           "WORKLOAD_KINDS"]

#: Workload families an experiment can declare.
WORKLOAD_KINDS = ("video", "nlp", "generative")

#: Default per-kind sources and arrival rates (mirroring the CLI defaults).
_KIND_DEFAULTS = {
    "video": {"source": "urban-day", "rate": 30.0},
    "nlp": {"source": "amazon", "rate": 20.0},
    "generative": {"source": "cnn-dailymail", "rate": 2.0},
}


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload described by name, not yet generated.

    Attributes
    ----------
    kind:
        ``"video"``, ``"nlp"`` or ``"generative"``.
    source:
        Scene / dataset preset name; empty selects the kind's default
        (``urban-day`` / ``amazon`` / ``cnn-dailymail``).
    requests:
        Stream length (frames, requests or sequences).
    rate:
        Arrival rate (fps for video, qps otherwise); ``None`` selects the
        kind's default.
    seed:
        Workload seed; ``None`` inherits the experiment seed.
    arrival_process:
        ``None`` selects the kind's default process.  NLP: ``"maf"``
        (bursty, the default) or ``"poisson"``.  Generative: ``"poisson"``
        (the default) or ``"diurnal"`` (day/night rate cycle for autoscaling
        and pool-sizing studies).  Both kinds also accept ``"flash_crowd"``
        (Poisson baseline plus one sudden sustained spike) and
        ``"trace:<path>"`` (replay a CSV of arrival timestamps in ms).  An
        explicit process the kind's workload factory does not know raises
        :class:`ValueError`.
    overrides:
        Optional preset-parameter overrides forwarded to the workload factory.
    prefix_groups / prefix_share / prefix_tokens:
        Shared-prefix structure (generative only): with ``prefix_groups > 0``
        each sequence joins one of that many prefix groups with probability
        ``prefix_share`` and prepends the group's shared prefix (~
        ``prefix_tokens`` tokens) to its prompt.  Drawn from a dedicated RNG
        stream, so ``prefix_groups=0`` (the default) leaves every existing
        trace bit-identical.
    """

    kind: str
    source: str = ""
    requests: int = 4000
    rate: Optional[float] = None
    seed: Optional[int] = None
    arrival_process: Optional[str] = None
    overrides: Optional[Dict[str, float]] = None
    prefix_groups: int = 0
    prefix_share: float = 0.8
    prefix_tokens: int = 256

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(f"unknown workload kind {self.kind!r}; "
                             f"choose from {WORKLOAD_KINDS}")
        if int(self.requests) < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if int(self.prefix_groups) < 0:
            raise ValueError(f"prefix_groups must be >= 0, "
                             f"got {self.prefix_groups}")
        if int(self.prefix_groups) > 0:
            if self.kind != "generative":
                raise ValueError("prefix_groups only applies to generative "
                                 f"workloads, not kind={self.kind!r}")
            if not 0.0 < float(self.prefix_share) <= 1.0:
                raise ValueError(f"prefix_share must be in (0, 1], "
                                 f"got {self.prefix_share}")
            if int(self.prefix_tokens) < 1:
                raise ValueError(f"prefix_tokens must be >= 1, "
                                 f"got {self.prefix_tokens}")

    @classmethod
    def parse(cls, text: str, requests: int = 4000, rate: Optional[float] = None,
              seed: Optional[int] = None) -> "WorkloadSpec":
        """Parse ``"video:urban-day"`` / ``"nlp:imdb"`` / ``"generative:squad"``."""
        kind, _, source = str(text).partition(":")
        return cls(kind=kind, source=source, requests=requests, rate=rate, seed=seed)

    @property
    def is_generative(self) -> bool:
        return self.kind == "generative"

    def resolved_source(self) -> str:
        return self.source or _KIND_DEFAULTS[self.kind]["source"]

    def resolved_rate(self) -> float:
        return self.rate if self.rate is not None else _KIND_DEFAULTS[self.kind]["rate"]

    def build(self, default_seed: int = 0):
        """Materialize the workload, memoized by content in the trace cache.

        Generation is fully seeded, so the same resolved spec + seed always
        produces a bit-identical stream; :mod:`repro.workloads.cache` keys on
        exactly those inputs and hands back the shared materialized trace.
        Runs never mutate workloads, so sharing is safe.
        """
        # Imported here to keep spec construction free of workload machinery.
        from repro.workloads.cache import get_or_materialize

        return get_or_materialize(self, default_seed)

    def materialize(self, default_seed: int = 0):
        """Generate the workload, bypassing the trace cache."""
        # Imported here to keep spec construction free of workload machinery.
        from repro.generative.sequences import make_generative_workload
        from repro.workloads.nlp import make_nlp_workload
        from repro.workloads.video import make_video_workload

        seed = self.seed if self.seed is not None else default_seed
        source = self.resolved_source()
        rate = self.resolved_rate()
        if self.kind == "video":
            return make_video_workload(source, num_frames=self.requests, fps=rate,
                                       seed=seed, preset_overrides=self.overrides)
        if self.kind == "nlp":
            return make_nlp_workload(source, num_requests=self.requests, rate_qps=rate,
                                     seed=seed,
                                     arrival_process=self.arrival_process or "maf",
                                     preset_overrides=self.overrides)
        # An explicitly named process the generative factory does not know
        # (e.g. the NLP-only "maf") raises ValueError there.
        return make_generative_workload(source, num_sequences=self.requests,
                                        rate_qps=rate, seed=seed,
                                        arrival_process=self.arrival_process
                                        or "poisson",
                                        preset_overrides=self.overrides,
                                        prefix_groups=int(self.prefix_groups),
                                        prefix_share=float(self.prefix_share),
                                        prefix_tokens=int(self.prefix_tokens))

    def describe(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "kind": self.kind,
            "source": self.resolved_source(),
            "requests": int(self.requests),
            "rate": self.resolved_rate(),
        }
        if int(self.prefix_groups) > 0:
            data.update({
                "prefix_groups": int(self.prefix_groups),
                "prefix_share": float(self.prefix_share),
                "prefix_tokens": int(self.prefix_tokens),
            })
        return data


@dataclass(frozen=True)
class ClusterSpec:
    """Fleet shape, control topology and elasticity for cluster serving.

    ``replicas`` platforms sit behind ``balancer``; ``fleet_mode`` selects the
    EE control topology (one controller per replica, or one shared controller
    syncing every ``sync_period`` samples).  ``autoscaler`` makes the fleet
    elastic within ``[min_replicas, max_replicas]`` (defaults: 1 and
    ``2 * replicas`` when a scaler is enabled, frozen at ``replicas``
    otherwise), and ``profiles`` makes it heterogeneous — one
    :class:`~repro.serving.fleet.ReplicaProfile` (or speed float /
    ``"speed[:cost]"`` string, or one comma-separated string) per replica.
    Every profile's speed/cost multiplier must be strictly positive
    (validated here, so weighted balancers can never divide by zero).

    The same spec drives both serving families: on classification models it
    builds a :class:`~repro.serving.cluster.ClusterPlatform`, on generative
    models a :class:`~repro.serving.generative_cluster.GenerativeClusterPlatform`
    (token-level engines on the fleet control plane; ``fleet_mode="shared"``
    feeds every replica's token feedback into one fleet-wide policy and
    ``sync_period`` is ignored there — the shared policy is always in sync).

    ``disaggregate=True`` (generative models only) splits the fleet into a
    prefill pool and a decode pool connected by a KV-transfer handoff queue
    (:class:`~repro.serving.disagg.DisaggregatedPlatform`).  The
    ``prefill_*`` / ``decode_*`` knobs then size, balance, autoscale and
    profile each pool independently; unset pool knobs inherit the fleet-wide
    value (``prefill_replicas``/``decode_replicas`` default to ``replicas``,
    pool balancers default to ``balancer``, pool autoscalers to
    ``autoscaler``).  Pool knobs on a non-disaggregated spec raise
    :class:`ValueError` — they would be silently dead configuration — and so
    do the fleet-wide ``min_replicas``/``max_replicas``/``profiles`` on a
    disaggregated one (bounds and profiles are strictly per-pool).

    ``tenants`` turns on multi-tenant serving: requests are tagged with a
    tenant, dispatched under ``tenant_policy`` (weighted-fair or
    strict-priority, layered over the balancer), and reported per tenant in
    the run details.  ``faults`` injects replica crash/recovery events on the
    simulation clock; ``"prefill"``-pool faults require ``disaggregate=True``.
    Both default to off, preserving the single-tenant fault-free fast path.

    ``kv_capacity`` (generative models only) gives every replica a KV-cache
    budget in bytes: shared prefixes already resident shorten prefill, and
    oversubscription triggers LRU eviction with recompute (see
    :class:`~repro.generative.decoding.KVCacheAccountant`).  Per-replica
    ``ReplicaProfile.kv_capacity_bytes`` overrides the fleet-wide value.
    ``None`` (the default) keeps cache modelling off and every run
    bit-identical to the uncapped platforms.
    """

    replicas: int = 2
    balancer: Union[str, LoadBalancer] = "round_robin"
    fleet_mode: str = "independent"
    sync_period: int = 64
    autoscaler: Union[str, Autoscaler, None] = "none"
    min_replicas: Optional[int] = None
    max_replicas: Optional[int] = None
    profiles: Optional[Union[str, Sequence[Union[ReplicaProfile, float, str]]]] = None
    #: Monolithic generative fleets only: decode slots also run each prompt's
    #: chunked prefill, stretched by contention with in-flight streams — the
    #: deployment disaggregation removes (the honest comparator for it).
    prefill_in_slot: bool = False
    disaggregate: bool = False
    prefill_replicas: Optional[int] = None
    decode_replicas: Optional[int] = None
    prefill_balancer: Optional[Union[str, LoadBalancer]] = None
    decode_balancer: Optional[Union[str, LoadBalancer]] = None
    prefill_autoscaler: Optional[Union[str, Autoscaler]] = None
    decode_autoscaler: Optional[Union[str, Autoscaler]] = None
    prefill_min_replicas: Optional[int] = None
    prefill_max_replicas: Optional[int] = None
    decode_min_replicas: Optional[int] = None
    decode_max_replicas: Optional[int] = None
    prefill_profiles: Optional[Union[str, Sequence[Union[ReplicaProfile, float, str]]]] = None
    decode_profiles: Optional[Union[str, Sequence[Union[ReplicaProfile, float, str]]]] = None
    #: Multi-tenant serving: ``None`` keeps the single-default-tenant fast
    #: path; otherwise a :class:`~repro.tenancy.TenancyConfig`, a sequence of
    #: :class:`~repro.tenancy.TenantSpec`, or a ``"name:key=value,...;..."``
    #: string (see :func:`repro.tenancy.parse_tenants`).
    tenants: Union[None, str, TenancyConfig, Sequence[TenantSpec]] = None
    #: Dispatch discipline layered over the balancer when ``tenants`` is set.
    tenant_policy: str = "weighted_fair"
    #: Failure injection: ``None`` disables it; otherwise a
    #: :class:`~repro.faults.FaultSpec`/:class:`~repro.faults.FaultSchedule`
    #: or a ``"crash:down[:pool]"`` / ``"mtbf=..,mttr=..,horizon=.."`` string
    #: (see :func:`repro.faults.parse_faults`).
    faults: Union[None, str, FaultSpec, FaultSchedule] = None
    #: Per-replica KV-cache budget in bytes (generative only); ``None``
    #: disables cache modelling entirely.
    kv_capacity: Optional[float] = None

    #: every pool-scoped field; set on a non-disaggregated spec they would be
    #: dead configuration, so construction rejects that combination.
    POOL_KEYS = ("prefill_replicas", "decode_replicas", "prefill_balancer",
                 "decode_balancer", "prefill_autoscaler", "decode_autoscaler",
                 "prefill_min_replicas", "prefill_max_replicas",
                 "decode_min_replicas", "decode_max_replicas",
                 "prefill_profiles", "decode_profiles")

    def __post_init__(self) -> None:
        if int(self.replicas) < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        canonical_balancer_name(self.balancer)   # raises on unknown names
        if self.fleet_mode not in FleetController.MODES:
            raise ValueError(f"unknown fleet mode {self.fleet_mode!r}; "
                             f"choose from {tuple(FleetController.MODES)}")
        if int(self.sync_period) < 1:
            raise ValueError(f"sync_period must be >= 1, got {self.sync_period}")
        if self.autoscaler is None:
            object.__setattr__(self, "autoscaler", "none")
        canonical_autoscaler_name(self.autoscaler)   # raises on unknown names
        if self.profiles is not None:
            object.__setattr__(self, "profiles",
                               self._coerce_profiles("profiles", self.profiles,
                                                     int(self.replicas)))
        if self.min_replicas is not None \
                and not 1 <= int(self.min_replicas) <= int(self.replicas):
            raise ValueError(f"min_replicas must be in [1, replicas="
                             f"{self.replicas}], got {self.min_replicas}")
        if self.max_replicas is not None and int(self.max_replicas) < int(self.replicas):
            raise ValueError(f"max_replicas must be >= replicas="
                             f"{self.replicas}, got {self.max_replicas}")
        if self.tenant_policy not in TENANT_POLICIES:
            raise ValueError(f"tenant_policy must be one of {TENANT_POLICIES}, "
                             f"got {self.tenant_policy!r}")
        object.__setattr__(self, "tenants",
                           coerce_tenancy(self.tenants, self.tenant_policy))
        if self.kv_capacity is not None:
            capacity = float(self.kv_capacity)
            if not math.isfinite(capacity) or capacity <= 0.0:
                raise ValueError(f"kv_capacity must be positive and finite, "
                                 f"got {self.kv_capacity}")
        object.__setattr__(self, "faults", coerce_faults(self.faults))
        if self.faults is not None and not self.disaggregate:
            bad = [f for f in self.faults if f.pool == "prefill"]
            if bad:
                raise ValueError("faults targeting pool='prefill' only apply "
                                 "to disaggregated serving; set "
                                 "disaggregate=True")
        self._validate_pools()

    @staticmethod
    def _coerce_profiles(name: str, value, count: int):
        profiles = ReplicaProfile.parse_list(value) if isinstance(value, str) \
            else tuple(ReplicaProfile.coerce(p) for p in value)
        if len(profiles) != count:
            raise ValueError(f"got {len(profiles)} {name} for {count} replicas")
        return profiles

    def _validate_pools(self) -> None:
        if not self.disaggregate:
            dead = [key for key in self.POOL_KEYS
                    if getattr(self, key) is not None]
            if dead:
                raise ValueError(f"cluster key(s) {dead} only apply to "
                                 "disaggregated serving; set disaggregate=True")
            return
        # The converse dead-configuration class: fleet-wide sizing knobs have
        # no meaning once the fleet is split into pools (replicas/balancer/
        # autoscaler survive as pool *defaults*, but bounds and profiles are
        # strictly per-pool).
        dead = [key for key in ("min_replicas", "max_replicas", "profiles")
                if getattr(self, key) is not None]
        if dead:
            raise ValueError(f"cluster key(s) {dead} do not apply to "
                             "disaggregated serving; use the prefill_*/"
                             "decode_* pool equivalents")
        if self.prefill_in_slot:
            raise ValueError("prefill_in_slot is the monolithic deployment "
                             "(prefill running in decode slots); it cannot "
                             "be combined with disaggregate=True")
        for name in ("prefill_replicas", "decode_replicas"):
            value = getattr(self, name)
            if value is not None and int(value) < 1:
                raise ValueError(f"{name} must be >= 1, got {value}")
        for name in ("prefill_balancer", "decode_balancer"):
            value = getattr(self, name)
            if value is not None:
                canonical_balancer_name(value)
        for name in ("prefill_autoscaler", "decode_autoscaler"):
            value = getattr(self, name)
            if value is not None:
                canonical_autoscaler_name(value)
        for name, pool in (("prefill_profiles", self.resolved_prefill_replicas()),
                           ("decode_profiles", self.resolved_decode_replicas())):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name,
                                   self._coerce_profiles(name, value, pool))
        for low_name, high_name, pool_name in (
                ("prefill_min_replicas", "prefill_max_replicas", "prefill"),
                ("decode_min_replicas", "decode_max_replicas", "decode")):
            pool = self.resolved_prefill_replicas() if pool_name == "prefill" \
                else self.resolved_decode_replicas()
            low = getattr(self, low_name)
            high = getattr(self, high_name)
            if low is not None and not 1 <= int(low) <= pool:
                raise ValueError(f"{low_name} must be in [1, {pool_name} "
                                 f"pool={pool}], got {low}")
            if high is not None and int(high) < pool:
                raise ValueError(f"{high_name} must be >= the {pool_name} "
                                 f"pool size ({pool}), got {high}")

    def balancer_name(self) -> str:
        return canonical_balancer_name(self.balancer)

    def autoscaler_name(self) -> str:
        return canonical_autoscaler_name(self.autoscaler)

    def resolved_min_replicas(self) -> int:
        """The lower fleet bound (frozen at ``replicas`` without a scaler)."""
        if self.min_replicas is not None:
            return int(self.min_replicas)
        return int(self.replicas) if self.autoscaler_name() == "none" else 1

    def resolved_max_replicas(self) -> int:
        """The upper fleet bound (defaults to ``2 * replicas`` with a scaler)."""
        if self.max_replicas is not None:
            return int(self.max_replicas)
        return int(self.replicas) if self.autoscaler_name() == "none" \
            else 2 * int(self.replicas)

    # ------------------------------------------------------ disaggregated pools
    def resolved_prefill_replicas(self) -> int:
        """Initial prefill pool size (defaults to the fleet-wide count)."""
        return int(self.prefill_replicas) if self.prefill_replicas is not None \
            else int(self.replicas)

    def resolved_decode_replicas(self) -> int:
        """Initial decode pool size (defaults to the fleet-wide count)."""
        return int(self.decode_replicas) if self.decode_replicas is not None \
            else int(self.replicas)

    def prefill_balancer_name(self) -> str:
        return canonical_balancer_name(self.prefill_balancer
                                       if self.prefill_balancer is not None
                                       else self.balancer)

    def decode_balancer_name(self) -> str:
        return canonical_balancer_name(self.decode_balancer
                                       if self.decode_balancer is not None
                                       else self.balancer)

    def prefill_autoscaler_name(self) -> str:
        return canonical_autoscaler_name(self.prefill_autoscaler
                                         if self.prefill_autoscaler is not None
                                         else self.autoscaler)

    def decode_autoscaler_name(self) -> str:
        return canonical_autoscaler_name(self.decode_autoscaler
                                         if self.decode_autoscaler is not None
                                         else self.autoscaler)

    def _pool_band(self, pool: int, scaler: str, lower: Optional[int],
                   upper: Optional[int]) -> Tuple[int, int]:
        low = int(lower) if lower is not None \
            else (pool if scaler == "none" else 1)
        high = int(upper) if upper is not None \
            else (pool if scaler == "none" else 2 * pool)
        return low, high

    def resolved_prefill_band(self) -> Tuple[int, int]:
        """(min, max) prefill pool bounds under the prefill autoscaler."""
        return self._pool_band(self.resolved_prefill_replicas(),
                               self.prefill_autoscaler_name(),
                               self.prefill_min_replicas,
                               self.prefill_max_replicas)

    def resolved_decode_band(self) -> Tuple[int, int]:
        """(min, max) decode pool bounds under the decode autoscaler."""
        return self._pool_band(self.resolved_decode_replicas(),
                               self.decode_autoscaler_name(),
                               self.decode_min_replicas,
                               self.decode_max_replicas)

    def describe(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "replicas": int(self.replicas),
            "balancer": self.balancer_name(),
            "fleet_mode": self.fleet_mode,
            "sync_period": int(self.sync_period),
            "autoscaler": self.autoscaler_name(),
            "disaggregate": bool(self.disaggregate),
        }
        if not self.disaggregate:
            # Fleet-wide bounds/profiles are rejected on disaggregated specs
            # (per-pool only), so they are reported only for monolithic ones.
            data.update({
                "min_replicas": self.resolved_min_replicas(),
                "max_replicas": self.resolved_max_replicas(),
                "profiles": None if self.profiles is None
                else [p.describe() for p in self.profiles],
                "prefill_in_slot": bool(self.prefill_in_slot),
            })
        if self.disaggregate:
            prefill_band = self.resolved_prefill_band()
            decode_band = self.resolved_decode_band()
            data.update({
                "prefill_replicas": self.resolved_prefill_replicas(),
                "decode_replicas": self.resolved_decode_replicas(),
                "prefill_balancer": self.prefill_balancer_name(),
                "decode_balancer": self.decode_balancer_name(),
                "prefill_autoscaler": self.prefill_autoscaler_name(),
                "decode_autoscaler": self.decode_autoscaler_name(),
                "prefill_min_replicas": prefill_band[0],
                "prefill_max_replicas": prefill_band[1],
                "decode_min_replicas": decode_band[0],
                "decode_max_replicas": decode_band[1],
                "prefill_profiles": None if self.prefill_profiles is None
                else [p.describe() for p in self.prefill_profiles],
                "decode_profiles": None if self.decode_profiles is None
                else [p.describe() for p in self.decode_profiles],
            })
        if self.tenants is not None:
            data["tenants"] = self.tenants.describe()
        if self.faults is not None:
            data["faults"] = self.faults.describe()
        if self.kv_capacity is not None:
            data["kv_capacity"] = float(self.kv_capacity)
        return data


@dataclass(frozen=True)
class ExitPolicySpec:
    """Early-exit policy knobs shared by every EE-capable system.

    ``accuracy_constraint`` and ``ramp_budget`` are the paper's two user
    inputs (§3); the remaining fields are ablation switches used by the
    sensitivity studies.
    """

    accuracy_constraint: float = 0.01
    ramp_budget: float = 0.02
    ramp_style: RampStyle = RampStyle.LIGHTWEIGHT
    initial_ramp_ids: Optional[Tuple[int, ...]] = None
    ramp_adjustment_enabled: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= float(self.accuracy_constraint) < 1.0:
            raise ValueError("accuracy_constraint must be in [0, 1), "
                             f"got {self.accuracy_constraint}")
        if float(self.ramp_budget) <= 0.0:
            raise ValueError(f"ramp_budget must be positive, got {self.ramp_budget}")
        if self.initial_ramp_ids is not None:
            object.__setattr__(self, "initial_ramp_ids",
                               tuple(int(r) for r in self.initial_ramp_ids))

    def describe(self) -> Dict[str, object]:
        return {
            "accuracy_constraint": float(self.accuracy_constraint),
            "ramp_budget": float(self.ramp_budget),
            "ramp_style": self.ramp_style.value
            if isinstance(self.ramp_style, RampStyle) else str(self.ramp_style),
            "initial_ramp_ids": None if self.initial_ramp_ids is None
            else list(self.initial_ramp_ids),
            "ramp_adjustment_enabled": bool(self.ramp_adjustment_enabled),
        }
