"""Declarative experiment specs: workload, cluster and exit-policy configs.

These small frozen dataclasses describe *what* to run without building any of
it.  An :class:`~repro.api.experiment.Experiment` composes them and only
materializes workloads/platforms when a run starts, which makes experiments
cheap to copy (``dataclasses.replace``) — the mechanism behind
``Experiment.sweep``.

All validation happens at construction time and raises :class:`ValueError`
naming the offending value, so a bad spec fails before any compute is spent
and every front end (Python API, CLI, benchmarks) reports the same error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.core.controller import FleetController
from repro.exits.ramps import RampStyle
from repro.serving.autoscaler import Autoscaler, canonical_autoscaler_name
from repro.serving.cluster import (LoadBalancer, ReplicaProfile,
                                   canonical_balancer_name)

__all__ = ["WorkloadSpec", "ClusterSpec", "ExitPolicySpec", "WORKLOAD_KINDS"]

#: Workload families an experiment can declare.
WORKLOAD_KINDS = ("video", "nlp", "generative")

#: Default per-kind sources and arrival rates (mirroring the CLI defaults).
_KIND_DEFAULTS = {
    "video": {"source": "urban-day", "rate": 30.0},
    "nlp": {"source": "amazon", "rate": 20.0},
    "generative": {"source": "cnn-dailymail", "rate": 2.0},
}


@dataclass(frozen=True)
class WorkloadSpec:
    """A workload described by name, not yet generated.

    Attributes
    ----------
    kind:
        ``"video"``, ``"nlp"`` or ``"generative"``.
    source:
        Scene / dataset preset name; empty selects the kind's default
        (``urban-day`` / ``amazon`` / ``cnn-dailymail``).
    requests:
        Stream length (frames, requests or sequences).
    rate:
        Arrival rate (fps for video, qps otherwise); ``None`` selects the
        kind's default.
    seed:
        Workload seed; ``None`` inherits the experiment seed.
    arrival_process:
        NLP only: ``"maf"`` (bursty) or ``"poisson"``.
    overrides:
        Optional preset-parameter overrides forwarded to the workload factory.
    """

    kind: str
    source: str = ""
    requests: int = 4000
    rate: Optional[float] = None
    seed: Optional[int] = None
    arrival_process: str = "maf"
    overrides: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        if self.kind not in WORKLOAD_KINDS:
            raise ValueError(f"unknown workload kind {self.kind!r}; "
                             f"choose from {WORKLOAD_KINDS}")
        if int(self.requests) < 1:
            raise ValueError(f"requests must be >= 1, got {self.requests}")
        if self.rate is not None and self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")

    @classmethod
    def parse(cls, text: str, requests: int = 4000, rate: Optional[float] = None,
              seed: Optional[int] = None) -> "WorkloadSpec":
        """Parse ``"video:urban-day"`` / ``"nlp:imdb"`` / ``"generative:squad"``."""
        kind, _, source = str(text).partition(":")
        return cls(kind=kind, source=source, requests=requests, rate=rate, seed=seed)

    @property
    def is_generative(self) -> bool:
        return self.kind == "generative"

    def resolved_source(self) -> str:
        return self.source or _KIND_DEFAULTS[self.kind]["source"]

    def resolved_rate(self) -> float:
        return self.rate if self.rate is not None else _KIND_DEFAULTS[self.kind]["rate"]

    def build(self, default_seed: int = 0):
        """Materialize the workload (the only place data is generated)."""
        # Imported here to keep spec construction free of workload machinery.
        from repro.generative.sequences import make_generative_workload
        from repro.workloads.nlp import make_nlp_workload
        from repro.workloads.video import make_video_workload

        seed = self.seed if self.seed is not None else default_seed
        source = self.resolved_source()
        rate = self.resolved_rate()
        if self.kind == "video":
            return make_video_workload(source, num_frames=self.requests, fps=rate,
                                       seed=seed, preset_overrides=self.overrides)
        if self.kind == "nlp":
            return make_nlp_workload(source, num_requests=self.requests, rate_qps=rate,
                                     seed=seed, arrival_process=self.arrival_process,
                                     preset_overrides=self.overrides)
        return make_generative_workload(source, num_sequences=self.requests,
                                        rate_qps=rate, seed=seed,
                                        preset_overrides=self.overrides)

    def describe(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "source": self.resolved_source(),
            "requests": int(self.requests),
            "rate": self.resolved_rate(),
        }


@dataclass(frozen=True)
class ClusterSpec:
    """Fleet shape, control topology and elasticity for cluster serving.

    ``replicas`` platforms sit behind ``balancer``; ``fleet_mode`` selects the
    EE control topology (one controller per replica, or one shared controller
    syncing every ``sync_period`` samples).  ``autoscaler`` makes the fleet
    elastic within ``[min_replicas, max_replicas]`` (defaults: 1 and
    ``2 * replicas`` when a scaler is enabled, frozen at ``replicas``
    otherwise), and ``profiles`` makes it heterogeneous — one
    :class:`~repro.serving.fleet.ReplicaProfile` (or speed float /
    ``"speed[:cost]"`` string, or one comma-separated string) per replica.
    Every profile's speed/cost multiplier must be strictly positive
    (validated here, so weighted balancers can never divide by zero).

    The same spec drives both serving families: on classification models it
    builds a :class:`~repro.serving.cluster.ClusterPlatform`, on generative
    models a :class:`~repro.serving.generative_cluster.GenerativeClusterPlatform`
    (token-level engines on the fleet control plane; ``fleet_mode="shared"``
    feeds every replica's token feedback into one fleet-wide policy and
    ``sync_period`` is ignored there — the shared policy is always in sync).
    """

    replicas: int = 2
    balancer: Union[str, LoadBalancer] = "round_robin"
    fleet_mode: str = "independent"
    sync_period: int = 64
    autoscaler: Union[str, Autoscaler, None] = "none"
    min_replicas: Optional[int] = None
    max_replicas: Optional[int] = None
    profiles: Optional[Union[str, Sequence[Union[ReplicaProfile, float, str]]]] = None

    def __post_init__(self) -> None:
        if int(self.replicas) < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        canonical_balancer_name(self.balancer)   # raises on unknown names
        if self.fleet_mode not in FleetController.MODES:
            raise ValueError(f"unknown fleet mode {self.fleet_mode!r}; "
                             f"choose from {tuple(FleetController.MODES)}")
        if int(self.sync_period) < 1:
            raise ValueError(f"sync_period must be >= 1, got {self.sync_period}")
        if self.autoscaler is None:
            object.__setattr__(self, "autoscaler", "none")
        canonical_autoscaler_name(self.autoscaler)   # raises on unknown names
        if self.profiles is not None:
            profiles = ReplicaProfile.parse_list(self.profiles) \
                if isinstance(self.profiles, str) \
                else tuple(ReplicaProfile.coerce(p) for p in self.profiles)
            if len(profiles) != int(self.replicas):
                raise ValueError(f"got {len(profiles)} replica profiles for "
                                 f"{self.replicas} replicas")
            object.__setattr__(self, "profiles", profiles)
        if self.min_replicas is not None \
                and not 1 <= int(self.min_replicas) <= int(self.replicas):
            raise ValueError(f"min_replicas must be in [1, replicas="
                             f"{self.replicas}], got {self.min_replicas}")
        if self.max_replicas is not None and int(self.max_replicas) < int(self.replicas):
            raise ValueError(f"max_replicas must be >= replicas="
                             f"{self.replicas}, got {self.max_replicas}")

    def balancer_name(self) -> str:
        return canonical_balancer_name(self.balancer)

    def autoscaler_name(self) -> str:
        return canonical_autoscaler_name(self.autoscaler)

    def resolved_min_replicas(self) -> int:
        """The lower fleet bound (frozen at ``replicas`` without a scaler)."""
        if self.min_replicas is not None:
            return int(self.min_replicas)
        return int(self.replicas) if self.autoscaler_name() == "none" else 1

    def resolved_max_replicas(self) -> int:
        """The upper fleet bound (defaults to ``2 * replicas`` with a scaler)."""
        if self.max_replicas is not None:
            return int(self.max_replicas)
        return int(self.replicas) if self.autoscaler_name() == "none" \
            else 2 * int(self.replicas)

    def describe(self) -> Dict[str, object]:
        return {
            "replicas": int(self.replicas),
            "balancer": self.balancer_name(),
            "fleet_mode": self.fleet_mode,
            "sync_period": int(self.sync_period),
            "autoscaler": self.autoscaler_name(),
            "min_replicas": self.resolved_min_replicas(),
            "max_replicas": self.resolved_max_replicas(),
            "profiles": None if self.profiles is None
            else [p.describe() for p in self.profiles],
        }


@dataclass(frozen=True)
class ExitPolicySpec:
    """Early-exit policy knobs shared by every EE-capable system.

    ``accuracy_constraint`` and ``ramp_budget`` are the paper's two user
    inputs (§3); the remaining fields are ablation switches used by the
    sensitivity studies.
    """

    accuracy_constraint: float = 0.01
    ramp_budget: float = 0.02
    ramp_style: RampStyle = RampStyle.LIGHTWEIGHT
    initial_ramp_ids: Optional[Tuple[int, ...]] = None
    ramp_adjustment_enabled: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= float(self.accuracy_constraint) < 1.0:
            raise ValueError("accuracy_constraint must be in [0, 1), "
                             f"got {self.accuracy_constraint}")
        if float(self.ramp_budget) <= 0.0:
            raise ValueError(f"ramp_budget must be positive, got {self.ramp_budget}")
        if self.initial_ramp_ids is not None:
            object.__setattr__(self, "initial_ramp_ids",
                               tuple(int(r) for r in self.initial_ramp_ids))

    def describe(self) -> Dict[str, object]:
        return {
            "accuracy_constraint": float(self.accuracy_constraint),
            "ramp_budget": float(self.ramp_budget),
            "ramp_style": self.ramp_style.value
            if isinstance(self.ramp_style, RampStyle) else str(self.ramp_style),
            "initial_ramp_ids": None if self.initial_ramp_ids is None
            else list(self.initial_ramp_ids),
            "ramp_adjustment_enabled": bool(self.ramp_adjustment_enabled),
        }
