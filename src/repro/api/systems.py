"""Registered serving systems: every comparable system behind one interface.

Each runner adapts one of the repo's serving implementations (Apparate,
vanilla, and the paper's baselines) to the registry contract: take an
:class:`~repro.api.experiment.Experiment`, dispatch on its kind
(classification / cluster / generative / generative_cluster), and return a
:class:`~repro.api.result.RunResult` in the shared schema.  The legacy
``run_*`` entry points are thin shims over these registrations.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

import numpy as np

from repro.api.registry import register_system
from repro.api.result import (KIND_CLASSIFICATION, KIND_CLUSTER, KIND_GENERATIVE,
                              KIND_GENERATIVE_CLUSTER, KIND_GENERATIVE_DISAGG,
                              RunResult)
from repro.baselines.free import (_free_generative_cluster_impl,
                                  _free_generative_disagg_impl,
                                  _free_generative_impl)
from repro.baselines.oracle import (_optimal_classification_impl,
                                    _optimal_generative_cluster_impl,
                                    _optimal_generative_disagg_impl,
                                    _optimal_generative_impl)
from repro.baselines.static_ee import StaticEEVariant, _static_ee_impl
from repro.baselines.two_layer import _two_layer_impl
from repro.core.generative import (_generative_apparate_cluster_impl,
                                   _generative_apparate_disagg_impl,
                                   _generative_apparate_impl,
                                   _generative_vanilla_cluster_impl,
                                   _generative_vanilla_disagg_impl,
                                   _generative_vanilla_impl)
from repro.core.pipeline import (_apparate_cluster_impl, _apparate_impl,
                                 _vanilla_cluster_impl, _vanilla_impl)
from repro.obs import build_recorder

__all__ = ["REGISTERED_SYSTEMS"]

#: Canonical registry contents; tests assert the registry matches this set.
REGISTERED_SYSTEMS = ("apparate", "free", "optimal", "static_ee", "two_layer",
                      "vanilla")

_CLASSIFY_BATCH = 16
_GENERATIVE_BATCH = 8


def _result(experiment, system: str, kind: str, summary: Dict[str, float],
            raw: Any, details: Optional[Dict[str, Any]] = None,
            trace=None) -> RunResult:
    details = dict(details) if details else {}
    if trace is not None and trace.enabled:
        details["obs"] = trace.summary()
    return RunResult(system=system, kind=kind, model=experiment.spec.name,
                     summary=dict(summary), params=experiment.describe(),
                     details=details, raw=raw, trace=trace)


def _recorder_for(experiment):
    """The live recorder for ``Experiment.trace``, or ``None`` when off.

    ``None`` (not :data:`~repro.obs.NULL_RECORDER`) keeps untraced runs on
    the exact pre-observability code path: impls skip the ``engine.obs``
    assignment entirely and the platforms keep their module-level null
    recorder singleton.
    """
    recorder = build_recorder(experiment.trace)
    return recorder if recorder.enabled else None


def _cluster_kwargs(experiment) -> Dict[str, Any]:
    cluster = experiment.cluster
    return {
        "replicas": cluster.replicas,
        "balancer": cluster.balancer,
        "platform": experiment.platform,
        "slo_ms": experiment.slo_ms,
        "max_batch_size": experiment.batch_size(_CLASSIFY_BATCH),
        "seed": experiment.seed,
        "drop_expired": experiment.drop_expired,
        "autoscaler": cluster.autoscaler,
        "min_replicas": cluster.resolved_min_replicas(),
        "max_replicas": cluster.resolved_max_replicas(),
        "profiles": cluster.profiles,
        "tenancy": cluster.tenants,
        "faults": cluster.faults,
    }


def _fleet_details(metrics) -> Dict[str, Any]:
    """Cluster extras every fleet system reports: dispatch balance plus the
    autoscaling fleet-size timeline and replica-seconds consumed."""
    details = {
        "dispatch_counts": list(metrics.dispatch_counts),
        "fleet_timeline": [[float(t), int(n)] for t, n in metrics.fleet_timeline],
        "replica_seconds": float(metrics.replica_seconds),
    }
    if hasattr(metrics, "rerouted"):
        details["rerouted"] = int(metrics.rerouted)
    if getattr(metrics, "crashes", 0) or getattr(metrics, "recoveries", 0):
        details["crashes"] = int(metrics.crashes)
        details["recoveries"] = int(metrics.recoveries)
        details["requeued"] = int(metrics.requeued)
    rollups = getattr(metrics, "tenant_rollups", None)
    if rollups:
        details["tenant_rollups"] = {tenant: dict(stats)
                                     for tenant, stats in rollups.items()}
    kernel = getattr(metrics, "kernel_stats", None)
    if kernel:
        details["kernel"] = dict(kernel)
    if hasattr(metrics, "aggregate"):
        aggregate = metrics.aggregate()
        if getattr(aggregate, "kv_enabled", False):
            details["kv_cache"] = {
                "hit_rate": aggregate.kv_hit_rate(),
                "hit_tokens": int(aggregate.kv_hit_tokens),
                "miss_tokens": int(aggregate.kv_miss_tokens),
                "evictions": int(aggregate.kv_evictions),
                "evicted_tokens": int(aggregate.kv_evicted_tokens),
                "recompute_tokens": int(aggregate.kv_recompute_tokens),
            }
    return details


def _generative_cluster_kwargs(experiment) -> Dict[str, Any]:
    """ClusterSpec knobs threaded into every generative fleet system."""
    cluster = experiment.cluster
    return {
        "replicas": cluster.replicas,
        "balancer": cluster.balancer,
        "max_batch_size": experiment.batch_size(_GENERATIVE_BATCH),
        "seed": experiment.seed,
        "autoscaler": cluster.autoscaler,
        "min_replicas": cluster.resolved_min_replicas(),
        "max_replicas": cluster.resolved_max_replicas(),
        "profiles": cluster.profiles,
        "prefill_in_slot": cluster.prefill_in_slot,
        "ttft_slo_ms": experiment.slo_ms,
        "tenancy": cluster.tenants,
        "faults": cluster.faults,
        "kv_capacity": cluster.kv_capacity,
    }


def _disagg_kwargs(experiment) -> Dict[str, Any]:
    """Per-pool ClusterSpec knobs threaded into every disaggregated system."""
    cluster = experiment.cluster
    prefill_min, prefill_max = cluster.resolved_prefill_band()
    decode_min, decode_max = cluster.resolved_decode_band()
    return {
        "prefill_replicas": cluster.resolved_prefill_replicas(),
        "decode_replicas": cluster.resolved_decode_replicas(),
        # Raw values (not canonical names) so balancer/autoscaler *instances*
        # reach the platform with their configuration intact.
        "prefill_balancer": cluster.prefill_balancer
        if cluster.prefill_balancer is not None else cluster.balancer,
        "decode_balancer": cluster.decode_balancer
        if cluster.decode_balancer is not None else cluster.balancer,
        "max_batch_size": experiment.batch_size(_GENERATIVE_BATCH),
        "seed": experiment.seed,
        "prefill_autoscaler": cluster.prefill_autoscaler
        if cluster.prefill_autoscaler is not None else cluster.autoscaler,
        "decode_autoscaler": cluster.decode_autoscaler
        if cluster.decode_autoscaler is not None else cluster.autoscaler,
        "prefill_min_replicas": prefill_min,
        "prefill_max_replicas": prefill_max,
        "decode_min_replicas": decode_min,
        "decode_max_replicas": decode_max,
        "prefill_profiles": cluster.prefill_profiles,
        "decode_profiles": cluster.decode_profiles,
        "ttft_slo_ms": experiment.slo_ms,
        "tenancy": cluster.tenants,
        "faults": cluster.faults,
        "kv_capacity": cluster.kv_capacity,
    }


def _disagg_details(metrics) -> Dict[str, Any]:
    """Fleet extras of a disaggregated run: both pools' dispatch counts,
    fleet-size timelines and replica-seconds."""
    details = _fleet_details(metrics)
    details.update({
        "prefill_dispatch_counts": list(metrics.prefill_dispatch_counts),
        "prefill_token_counts": list(metrics.prefill_token_counts),
        "prefill_fleet_timeline": [[float(t), int(n)]
                                   for t, n in metrics.prefill_fleet_timeline],
        "prefill_replica_seconds": float(metrics.prefill_replica_seconds),
    })
    return details


# ---------------------------------------------------------------------------
# Core systems.
# ---------------------------------------------------------------------------

@register_system(
    "vanilla",
    kinds=(KIND_CLASSIFICATION, KIND_CLUSTER, KIND_GENERATIVE,
           KIND_GENERATIVE_CLUSTER, KIND_GENERATIVE_DISAGG),
    description="the original model with no early exits (the paper's baseline)",
    aliases=("baseline",))
def _vanilla_system(experiment, **kw) -> RunResult:
    obs = _recorder_for(experiment)
    if experiment.kind == KIND_GENERATIVE_DISAGG:
        metrics = _generative_vanilla_disagg_impl(
            experiment.spec, experiment.workload_obj(),
            **_disagg_kwargs(experiment), obs=obs, **kw)
        return _result(experiment, "vanilla", KIND_GENERATIVE_DISAGG,
                       metrics.summary(), raw=metrics,
                       details=_disagg_details(metrics), trace=obs)
    if experiment.kind == KIND_GENERATIVE_CLUSTER:
        metrics = _generative_vanilla_cluster_impl(
            experiment.spec, experiment.workload_obj(),
            **_generative_cluster_kwargs(experiment), obs=obs, **kw)
        return _result(experiment, "vanilla", KIND_GENERATIVE_CLUSTER,
                       metrics.summary(), raw=metrics,
                       details=_fleet_details(metrics), trace=obs)
    if experiment.kind == KIND_GENERATIVE:
        metrics = _generative_vanilla_impl(
            experiment.spec, experiment.workload_obj(),
            max_batch_size=experiment.batch_size(_GENERATIVE_BATCH),
            seed=experiment.seed, ttft_slo_ms=experiment.slo_ms, obs=obs, **kw)
        return _result(experiment, "vanilla", KIND_GENERATIVE, metrics.summary(),
                       raw=metrics, trace=obs)
    if experiment.kind == KIND_CLUSTER:
        metrics = _vanilla_cluster_impl(experiment.spec, experiment.workload_obj(),
                                        **_cluster_kwargs(experiment), obs=obs,
                                        **kw)
        return _result(experiment, "vanilla", KIND_CLUSTER, metrics.summary(),
                       raw=metrics, details=_fleet_details(metrics), trace=obs)
    metrics = _vanilla_impl(experiment.spec, experiment.workload_obj(),
                            platform=experiment.platform, slo_ms=experiment.slo_ms,
                            max_batch_size=experiment.batch_size(_CLASSIFY_BATCH),
                            seed=experiment.seed,
                            drop_expired=experiment.drop_expired, obs=obs, **kw)
    return _result(experiment, "vanilla", KIND_CLASSIFICATION, metrics.summary(),
                   raw=metrics, trace=obs)


@register_system(
    "apparate",
    kinds=(KIND_CLASSIFICATION, KIND_CLUSTER, KIND_GENERATIVE,
           KIND_GENERATIVE_CLUSTER, KIND_GENERATIVE_DISAGG),
    description="Apparate: adaptive early exits managed at runtime (the system)")
def _apparate_system(experiment, **kw) -> RunResult:
    ee = experiment.ee
    obs = _recorder_for(experiment)
    if experiment.kind == KIND_GENERATIVE_DISAGG:
        cluster = experiment.cluster
        outcome = _generative_apparate_disagg_impl(
            experiment.spec, experiment.workload_obj(),
            fleet_mode=cluster.fleet_mode,
            accuracy_constraint=ee.accuracy_constraint,
            **_disagg_kwargs(experiment), obs=obs, **kw)
        summary = outcome.summary()
        details = _disagg_details(outcome.metrics)
        details["fleet_mode"] = cluster.fleet_mode
        details["ramp_depth"] = summary.get("ramp_depth", 0.0)
        details["threshold"] = summary.get("threshold", 0.0)
        return _result(experiment, "apparate", KIND_GENERATIVE_DISAGG,
                       summary, raw=outcome, details=details, trace=obs)
    if experiment.kind == KIND_GENERATIVE_CLUSTER:
        cluster = experiment.cluster
        outcome = _generative_apparate_cluster_impl(
            experiment.spec, experiment.workload_obj(),
            fleet_mode=cluster.fleet_mode,
            accuracy_constraint=ee.accuracy_constraint,
            **_generative_cluster_kwargs(experiment), obs=obs, **kw)
        summary = outcome.summary()
        details = _fleet_details(outcome.metrics)
        details["fleet_mode"] = cluster.fleet_mode
        details["ramp_depth"] = summary.get("ramp_depth", 0.0)
        details["threshold"] = summary.get("threshold", 0.0)
        return _result(experiment, "apparate", KIND_GENERATIVE_CLUSTER,
                       summary, raw=outcome, details=details, trace=obs)
    if experiment.kind == KIND_GENERATIVE:
        outcome = _generative_apparate_impl(
            experiment.spec, experiment.workload_obj(),
            accuracy_constraint=ee.accuracy_constraint,
            max_batch_size=experiment.batch_size(_GENERATIVE_BATCH),
            seed=experiment.seed, ttft_slo_ms=experiment.slo_ms, obs=obs, **kw)
        return _result(experiment, "apparate", KIND_GENERATIVE, outcome.summary(),
                       raw=outcome,
                       details={"ramp_depth": outcome.policy.ramp_depth,
                                "threshold": outcome.policy.threshold},
                       trace=obs)
    if experiment.kind == KIND_CLUSTER:
        cluster = experiment.cluster
        outcome = _apparate_cluster_impl(
            experiment.spec, experiment.workload_obj(),
            fleet_mode=cluster.fleet_mode, sync_period=cluster.sync_period,
            accuracy_constraint=ee.accuracy_constraint,
            ramp_budget=ee.ramp_budget, ramp_style=ee.ramp_style,
            initial_ramp_ids=ee.initial_ramp_ids,
            **_cluster_kwargs(experiment), obs=obs, **kw)
        details = _fleet_details(outcome.metrics)
        details["fleet_mode"] = cluster.fleet_mode
        return _result(
            experiment, "apparate", KIND_CLUSTER, outcome.summary(), raw=outcome,
            details=details, trace=obs)
    outcome = _apparate_impl(experiment.spec, experiment.workload_obj(),
                             platform=experiment.platform, slo_ms=experiment.slo_ms,
                             accuracy_constraint=ee.accuracy_constraint,
                             ramp_budget=ee.ramp_budget, ramp_style=ee.ramp_style,
                             max_batch_size=experiment.batch_size(_CLASSIFY_BATCH),
                             seed=experiment.seed,
                             drop_expired=experiment.drop_expired,
                             ramp_adjustment_enabled=ee.ramp_adjustment_enabled,
                             initial_ramp_ids=ee.initial_ramp_ids, obs=obs, **kw)
    return _result(experiment, "apparate", KIND_CLASSIFICATION, outcome.summary(),
                   raw=outcome,
                   details={"final_config": outcome.controller.config.describe()},
                   trace=obs)


# ---------------------------------------------------------------------------
# Paper baselines.
# ---------------------------------------------------------------------------

@register_system(
    "static_ee",
    kinds=(KIND_CLASSIFICATION,),
    description="BranchyNet/DeeBERT-style static early exits, one-time tuning",
    aliases=("static",))
def _static_ee_system(experiment, variant=StaticEEVariant.SHARED,
                      **kw) -> RunResult:
    obs = _recorder_for(experiment)
    outcome = _static_ee_impl(experiment.spec, experiment.workload_obj(),
                              variant=StaticEEVariant(variant),
                              ramp_style=experiment.ee.ramp_style,
                              platform=experiment.platform,
                              slo_ms=experiment.slo_ms,
                              accuracy_constraint=experiment.ee.accuracy_constraint,
                              max_batch_size=experiment.batch_size(_CLASSIFY_BATCH),
                              seed=experiment.seed, obs=obs, **kw)
    return _result(experiment, "static_ee", KIND_CLASSIFICATION, outcome.summary(),
                   raw=outcome,
                   details={"variant": StaticEEVariant(variant).value,
                            "thresholds": list(outcome.thresholds),
                            "ramp_depths": list(outcome.ramp_depths)},
                   trace=obs)


@register_system(
    "two_layer",
    kinds=(KIND_CLASSIFICATION,),
    description="two-layer cascade (Tabi/FilterForward): compressed model + escalation")
def _two_layer_system(experiment, **kw) -> RunResult:
    obs = _recorder_for(experiment)
    outcome = _two_layer_impl(experiment.spec, experiment.workload_obj(),
                              platform=experiment.platform,
                              slo_ms=experiment.slo_ms,
                              accuracy_constraint=experiment.ee.accuracy_constraint,
                              max_batch_size=experiment.batch_size(_CLASSIFY_BATCH),
                              seed=experiment.seed, obs=obs, **kw)
    return _result(experiment, "two_layer", KIND_CLASSIFICATION, outcome.summary(),
                   raw=outcome, trace=obs)


@register_system(
    "free",
    kinds=(KIND_GENERATIVE, KIND_GENERATIVE_CLUSTER, KIND_GENERATIVE_DISAGG),
    description="FREE (Bae et al.): one fixed generative ramp, no runtime adaptation")
def _free_system(experiment, **kw) -> RunResult:
    obs = _recorder_for(experiment)
    if experiment.kind == KIND_GENERATIVE_DISAGG:
        metrics = _free_generative_disagg_impl(
            experiment.spec, experiment.workload_obj(),
            accuracy_constraint=experiment.ee.accuracy_constraint,
            **_disagg_kwargs(experiment), obs=obs, **kw)
        return _result(experiment, "free", KIND_GENERATIVE_DISAGG,
                       metrics.summary(), raw=metrics,
                       details=_disagg_details(metrics), trace=obs)
    if experiment.kind == KIND_GENERATIVE_CLUSTER:
        metrics = _free_generative_cluster_impl(
            experiment.spec, experiment.workload_obj(),
            accuracy_constraint=experiment.ee.accuracy_constraint,
            **_generative_cluster_kwargs(experiment), obs=obs, **kw)
        return _result(experiment, "free", KIND_GENERATIVE_CLUSTER,
                       metrics.summary(), raw=metrics,
                       details=_fleet_details(metrics), trace=obs)
    metrics = _free_generative_impl(
        experiment.spec, experiment.workload_obj(),
        accuracy_constraint=experiment.ee.accuracy_constraint,
        max_batch_size=experiment.batch_size(_GENERATIVE_BATCH),
        seed=experiment.seed, ttft_slo_ms=experiment.slo_ms, obs=obs, **kw)
    return _result(experiment, "free", KIND_GENERATIVE, metrics.summary(),
                   raw=metrics, trace=obs)


@register_system(
    "optimal",
    kinds=(KIND_CLASSIFICATION, KIND_GENERATIVE, KIND_GENERATIVE_CLUSTER,
           KIND_GENERATIVE_DISAGG),
    description="optimal oracle: every input exits at its earliest correct ramp",
    aliases=("oracle",))
def _optimal_system(experiment, **kw) -> RunResult:
    obs = _recorder_for(experiment)
    if experiment.kind == KIND_GENERATIVE_DISAGG:
        metrics = _optimal_generative_disagg_impl(
            experiment.spec, experiment.workload_obj(),
            **_disagg_kwargs(experiment), obs=obs, **kw)
        return _result(experiment, "optimal", KIND_GENERATIVE_DISAGG,
                       metrics.summary(), raw=metrics,
                       details=_disagg_details(metrics), trace=obs)
    if experiment.kind == KIND_GENERATIVE_CLUSTER:
        metrics = _optimal_generative_cluster_impl(
            experiment.spec, experiment.workload_obj(),
            **_generative_cluster_kwargs(experiment), obs=obs, **kw)
        return _result(experiment, "optimal", KIND_GENERATIVE_CLUSTER,
                       metrics.summary(), raw=metrics,
                       details=_fleet_details(metrics), trace=obs)
    if experiment.kind == KIND_GENERATIVE:
        metrics = _optimal_generative_impl(
            experiment.spec, experiment.workload_obj(),
            max_batch_size=experiment.batch_size(_GENERATIVE_BATCH),
            seed=experiment.seed, ttft_slo_ms=experiment.slo_ms, obs=obs, **kw)
        return _result(experiment, "optimal", KIND_GENERATIVE, metrics.summary(),
                       raw=metrics, trace=obs)
    # Classification spans record the replayed vanilla timeline (the oracle
    # discounts its latencies analytically) — see _optimal_classification_impl.
    latencies = _optimal_classification_impl(
        experiment.spec, experiment.workload_obj(),
        platform=experiment.platform, slo_ms=experiment.slo_ms,
        max_batch_size=experiment.batch_size(_CLASSIFY_BATCH),
        seed=experiment.seed, drop_expired=experiment.drop_expired, obs=obs, **kw)
    summary = _latency_summary(latencies)
    return _result(experiment, "optimal", KIND_CLASSIFICATION, summary,
                   raw=latencies, trace=obs)


def _latency_summary(latencies: np.ndarray) -> Dict[str, float]:
    """Shared-schema summary for the oracle's bare latency array."""
    arr = np.asarray(latencies, dtype=float)
    if arr.size == 0:
        return {"p25_ms": 0.0, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
                "mean_ms": 0.0, "accuracy": 1.0, "num_served": 0.0}
    return {
        "p25_ms": float(np.percentile(arr, 25)),
        "p50_ms": float(np.percentile(arr, 50)),
        "p95_ms": float(np.percentile(arr, 95)),
        "p99_ms": float(np.percentile(arr, 99)),
        "mean_ms": float(arr.mean()),
        # The oracle exits where the prediction already matches the original
        # model, so it is lossless by construction.
        "accuracy": 1.0,
        "num_served": float(arr.size),
    }
