"""The declarative ``Experiment``: one entry point over all systems.

An experiment declares *what* to serve (model + workload), *where* (single
platform or a cluster spec) and *under which exit policy*; ``run`` executes
any set of registered systems on that configuration and returns a
:class:`~repro.api.result.RunReport` for cross-system comparison, while
``sweep`` runs a parameter grid (replica counts, balancers, seeds, …) in one
call.

>>> from repro.api import Experiment, WorkloadSpec, ClusterSpec
>>> exp = Experiment(model="resnet50",
...                  workload=WorkloadSpec("video", "urban-day", requests=2000))
>>> report = exp.run(systems=["vanilla", "apparate"])
>>> report.result("apparate").summary["p50_ms"]       # doctest: +SKIP
>>> sweep = exp.sweep(replicas=[1, 2, 4], balancer=["round_robin", "jsq"])
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Union)

from repro.api.registry import canonical_system_name, get_system
from repro.api.result import (KIND_CLASSIFICATION, KIND_CLUSTER, KIND_GENERATIVE,
                              KIND_GENERATIVE_CLUSTER, KIND_GENERATIVE_DISAGG,
                              RunReport, RunResult, SweepPoint, SweepReport)
from repro.api.specs import ClusterSpec, ExitPolicySpec, WorkloadSpec
from repro.models.zoo import ModelSpec, get_model

__all__ = ["Experiment", "DEFAULT_SYSTEMS"]

#: Systems run when ``Experiment.run`` is called without an explicit list.
DEFAULT_SYSTEMS = ("vanilla", "apparate")

#: Sweepable parameter names, grouped by the spec they modify.
_CLUSTER_KEYS = ("replicas", "balancer", "fleet_mode", "sync_period",
                 "autoscaler", "min_replicas", "max_replicas", "profiles",
                 "prefill_in_slot",
                 "disaggregate", "prefill_replicas", "decode_replicas",
                 "prefill_balancer", "decode_balancer", "prefill_autoscaler",
                 "decode_autoscaler", "prefill_min_replicas",
                 "prefill_max_replicas", "decode_min_replicas",
                 "decode_max_replicas", "prefill_profiles", "decode_profiles",
                 "tenants", "tenant_policy", "faults", "kv_capacity")
_EE_KEYS = ("accuracy_constraint", "ramp_budget", "ramp_style",
            "initial_ramp_ids", "ramp_adjustment_enabled")
_WORKLOAD_KEYS = ("requests", "rate", "source", "prefix_groups",
                  "prefix_share", "prefix_tokens")
_TOP_KEYS = ("platform", "seed", "slo_ms", "max_batch_size", "drop_expired")
_SWEEP_KEYS = _CLUSTER_KEYS + _EE_KEYS + _WORKLOAD_KEYS + _TOP_KEYS


@dataclass
class Experiment:
    """A declarative serving experiment over the system registry.

    Attributes
    ----------
    model:
        Registered model name or a custom :class:`ModelSpec`.
    workload:
        A :class:`WorkloadSpec` (materialized lazily, enabling sweeps over
        workload parameters) or an already-built workload object.
    cluster:
        ``None`` for single-replica serving, or a :class:`ClusterSpec` for a
        fleet behind a load balancer.
    ee:
        Early-exit policy knobs shared by the EE-capable systems.
    platform:
        Serving platform name (``clockwork`` or ``tfserve``).
    slo_ms:
        Response-time SLO; ``None`` uses the model's default.
    max_batch_size:
        ``None`` selects the per-kind default (16 classification, 8 generative).
    overrides:
        Per-system keyword overrides, e.g. ``{"static_ee": {"variant": ...}}``,
        for knobs that only one system understands.
    trace:
        Observability knob (:mod:`repro.obs`): ``None``/``False`` (default)
        runs untraced, ``True`` records spans + gauges with default settings,
        a :class:`~repro.obs.TraceSpec` (or its kwargs as a dict) customizes
        them.  Each traced system's :class:`~repro.obs.TraceRecorder` comes
        back on ``RunResult.trace`` with a JSON rollup in
        ``details["obs"]``; tracing never changes the reported metrics.
    """

    model: Union[str, ModelSpec]
    workload: Union[WorkloadSpec, Any]
    cluster: Optional[ClusterSpec] = None
    ee: ExitPolicySpec = field(default_factory=ExitPolicySpec)
    platform: str = "clockwork"
    slo_ms: Optional[float] = None
    max_batch_size: Optional[int] = None
    drop_expired: bool = True
    seed: int = 0
    overrides: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    trace: Any = None

    _workload_cache: Any = field(default=None, init=False, repr=False, compare=False)

    # ------------------------------------------------------------ properties
    @property
    def spec(self) -> ModelSpec:
        return get_model(self.model) if isinstance(self.model, str) else self.model

    @property
    def is_generative(self) -> bool:
        return bool(self.spec.is_generative)

    @property
    def kind(self) -> str:
        """``classification``, ``cluster``, ``generative``,
        ``generative_cluster`` or ``generative_disagg``."""
        if self.is_generative:
            if self.cluster is None:
                return KIND_GENERATIVE
            return KIND_GENERATIVE_DISAGG if self.cluster.disaggregate \
                else KIND_GENERATIVE_CLUSTER
        if self.cluster is not None:
            if self.cluster.disaggregate:
                raise ValueError(
                    f"disaggregate=True requires a generative model; "
                    f"{self.spec.name!r} is not generative")
            if self.cluster.prefill_in_slot:
                raise ValueError(
                    f"prefill_in_slot=True requires a generative model; "
                    f"{self.spec.name!r} is not generative")
            if self.cluster.kv_capacity is not None:
                raise ValueError(
                    f"kv_capacity requires a generative model; "
                    f"{self.spec.name!r} is not generative")
            return KIND_CLUSTER
        return KIND_CLASSIFICATION

    # ---------------------------------------------------------- materialize
    def workload_obj(self) -> Any:
        """The materialized workload (built once and cached per experiment)."""
        if self._workload_cache is None:
            self._workload_cache = self._materialize_workload()
        return self._workload_cache

    def _materialize_workload(self) -> Any:
        spec = self.spec
        workload = self.workload
        if isinstance(workload, WorkloadSpec):
            if spec.is_generative != workload.is_generative:
                raise ValueError(
                    f"model {spec.name!r} is "
                    f"{'generative' if spec.is_generative else 'not generative'} "
                    f"but the workload kind is {workload.kind!r}")
            return workload.build(default_seed=self.seed)
        generative_workload = hasattr(workload, "sequences")
        if spec.is_generative and not generative_workload:
            raise ValueError(f"model {spec.name!r} is generative but the workload "
                             f"({type(workload).__name__}) is not")
        if not spec.is_generative and generative_workload:
            raise ValueError(f"model {spec.name!r} is not generative but the "
                             f"workload ({type(workload).__name__}) is")
        return workload

    def resolved_slo_ms(self) -> Optional[float]:
        return self.slo_ms if self.slo_ms is not None else self.spec.default_slo_ms

    def overrides_for(self, system: str) -> Dict[str, Any]:
        """Per-system overrides with every key resolved through the registry.

        Canonicalizing here means overrides keyed by an alias (``oracle``)
        reach the canonical system (``optimal``), and a typoed system name
        raises :class:`ValueError` instead of being silently dropped.
        """
        merged: Dict[str, Any] = {}
        for key, value in self.overrides.items():
            if canonical_system_name(key) == system:
                merged.update(value)
        return merged

    def batch_size(self, default: int) -> int:
        return int(self.max_batch_size) if self.max_batch_size is not None else default

    def describe(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the experiment configuration."""
        params: Dict[str, Any] = {
            "model": self.spec.name,
            "kind": self.kind,
            "platform": self.platform,
            "seed": int(self.seed),
            "slo_ms": self.resolved_slo_ms(),
            "max_batch_size": None if self.max_batch_size is None
            else int(self.max_batch_size),
            "drop_expired": bool(self.drop_expired),
        }
        if isinstance(self.workload, WorkloadSpec):
            params["workload"] = self.workload.describe()
        else:
            params["workload"] = {"kind": KIND_GENERATIVE if self.is_generative
                                  else "materialized",
                                  "name": getattr(self.workload, "name", "custom")}
        if self.cluster is not None:
            params["cluster"] = self.cluster.describe()
        params["ee"] = self.ee.describe()
        if self.trace is not None and self.trace is not False:
            from repro.obs import coerce_trace

            spec = coerce_trace(self.trace)
            if spec is not None:
                params["trace"] = spec.describe()
        return params

    # ------------------------------------------------------------------ run
    def run(self, systems: Optional[Sequence[str]] = None) -> RunReport:
        """Run every named system on this configuration; compare in one report.

        Raises :class:`ValueError` for unknown system names and for systems
        that do not support this experiment's kind (e.g. ``free`` on a
        classification workload).
        """
        import repro.api.systems  # noqa: F401  (ensure registrations ran)

        names: List[str] = []
        for name in (systems if systems is not None else DEFAULT_SYSTEMS):
            canonical = canonical_system_name(name)
            if canonical not in names:
                names.append(canonical)
        if not names:
            raise ValueError("systems must name at least one registered system")
        results: List[RunResult] = [get_system(name).run(self) for name in names]
        return RunReport(results=results, params=self.describe())

    # ---------------------------------------------------------------- sweep
    def sweep(self, systems: Optional[Sequence[str]] = None,
              workers: Optional[int] = None,
              executor: Union[str, "SweepExecutor", None] = None,
              progress: Optional[Callable[..., None]] = None,
              **grid: Any) -> SweepReport:
        """Run a full parameter grid, one ``RunReport`` per grid point.

        Grid keys may target the cluster spec (``replicas``, ``balancer``,
        ``fleet_mode``, ``sync_period``, ``disaggregate`` and the
        ``prefill_*``/``decode_*`` pool knobs — sweeping a pool knob implies
        ``disaggregate=True``), the exit policy
        (``accuracy_constraint``, ``ramp_budget``, …), the workload spec
        (``requests``, ``rate``, ``source`` — requires a
        :class:`WorkloadSpec` workload) or the experiment itself
        (``platform``, ``seed``, ``slo_ms``, ``max_batch_size``,
        ``drop_expired``).  Values may be scalars or lists; the grid is the
        cross product in the given key order, so sweeps are deterministic.

        ``workers``/``executor`` select the execution backend
        (:mod:`repro.api.executor`): the default runs points serially in this
        process; ``workers=N`` (N > 1) or ``executor="process"`` fans points
        out to a process pool.  Every run is seeded, and the report is
        reassembled in grid order regardless of completion order, so the
        parallel ``SweepReport`` is bit-identical to the serial one.  A grid
        point that raises at *run time* becomes a point with a structured
        ``error`` while its siblings complete; configuration errors (bad
        grid values, unknown systems) still raise here before anything runs.
        ``progress`` is called as ``progress(outcome, done, total)`` after
        each point completes.

        >>> Experiment(...).sweep(replicas=[1, 2, 4],
        ...                       balancer=["round_robin", "jsq"],
        ...                       workers=4)   # doctest: +SKIP
        """
        import repro.api.systems  # noqa: F401  (registrations, for name check)
        from repro.api.executor import (SweepTask, resolve_sweep_executor)

        if not grid:
            raise ValueError("sweep needs at least one parameter grid, "
                             f"e.g. replicas=[1, 2, 4]; valid keys: {_SWEEP_KEYS}")
        exec_ = resolve_sweep_executor(executor, workers)
        # Canonicalize system names up front: a typoed system is a config
        # error and must fail the sweep, not be captured per point.
        if systems is not None:
            systems = [canonical_system_name(name) for name in systems]
        axes: List[List[Any]] = []
        keys = list(grid)
        for key in keys:
            if key not in _SWEEP_KEYS:
                raise ValueError(f"unknown sweep parameter {key!r}; "
                                 f"valid keys: {_SWEEP_KEYS}")
            if key in _WORKLOAD_KEYS and not isinstance(self.workload, WorkloadSpec):
                raise ValueError(f"sweeping {key!r} requires the experiment to hold "
                                 "a WorkloadSpec, not an already-built workload")
            values = grid[key]
            if isinstance(values, (str, bytes)) or not hasattr(values, "__iter__"):
                values = [values]
            axes.append(list(values))

        # When nothing workload-shaping is swept, materialize the workload
        # once and share it across grid points instead of regenerating the
        # identical trace per point.
        if not any(key in _WORKLOAD_KEYS or key == "seed" for key in keys):
            self.workload_obj()

        # Build (and thereby validate) every grid point's specs before running
        # anything, so a bad value fails fast instead of aborting mid-sweep.
        combos = [dict(zip(keys, combo)) for combo in itertools.product(*axes)]
        variants = [(params, self._apply_sweep_params(params)) for params in combos]
        if exec_.strip_workload_cache:
            # Forked workers inherit the parent's trace cache copy-on-write;
            # dropping the materialized object from the pickled variant saves
            # the serialization freight without losing the shared trace.
            for _, variant in variants:
                if isinstance(variant.workload, WorkloadSpec):
                    variant._workload_cache = None
        tasks = [SweepTask(index=i, params=params, experiment=variant,
                           systems=systems)
                 for i, (params, variant) in enumerate(variants)]
        outcomes = exec_.map(tasks, progress=progress)
        points = [SweepPoint(params=o.params, report=o.report, error=o.error,
                             wall_s=o.wall_s, cache=o.cache)
                  for o in outcomes]
        return SweepReport(points=points, base_params=self.describe())

    def _apply_sweep_params(self, params: Mapping[str, Any]) -> "Experiment":
        """A copy of this experiment with one grid point's parameters applied."""
        top = {k: v for k, v in params.items() if k in _TOP_KEYS}
        cluster_updates = {k: v for k, v in params.items() if k in _CLUSTER_KEYS}
        ee_updates = {k: v for k, v in params.items() if k in _EE_KEYS}
        workload_updates = {k: v for k, v in params.items() if k in _WORKLOAD_KEYS}

        replacements: Dict[str, Any] = dict(top)
        if cluster_updates:
            base = self.cluster if self.cluster is not None else ClusterSpec(replicas=1)
            # Sweeping a pool knob implies disaggregated serving; without
            # this, pool axes on a monolithic base spec would be rejected by
            # ClusterSpec as dead configuration.
            if any(key in ClusterSpec.POOL_KEYS for key in cluster_updates):
                cluster_updates.setdefault("disaggregate", True)
            # Unknown cluster keys never reach this replace: sweep() rejects
            # any key outside _SWEEP_KEYS up front, with a ValueError naming
            # the key.
            replacements["cluster"] = dataclasses.replace(base, **cluster_updates)
        if ee_updates:
            replacements["ee"] = dataclasses.replace(self.ee, **ee_updates)
        if workload_updates:
            replacements["workload"] = dataclasses.replace(self.workload,
                                                           **workload_updates)
        variant = dataclasses.replace(self, **replacements)
        if not workload_updates and "seed" not in params:
            # dataclasses.replace resets the init=False cache; carry the
            # already-materialized workload over when this point cannot
            # change it.
            variant._workload_cache = self._workload_cache
        return variant
