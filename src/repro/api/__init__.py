"""``repro.api`` — the declarative facade over every serving system.

One :class:`Experiment` describes a serving configuration (model, workload,
optional cluster, exit policy); the **system registry** maps short names
(``vanilla``, ``apparate``, ``free``, ``optimal``, ``static_ee``,
``two_layer``) to uniform runners; ``Experiment.run(systems=[...])`` returns
a :class:`RunReport` comparison and ``Experiment.sweep(replicas=[1, 2, 4])``
runs parameter grids in one line.

>>> from repro.api import Experiment, WorkloadSpec, list_systems
>>> exp = Experiment(model="resnet50", workload=WorkloadSpec("video"))
>>> report = exp.run(systems=["vanilla", "apparate"])      # doctest: +SKIP
>>> print(report.format_table())                           # doctest: +SKIP

New systems register with :func:`register_system` and become reachable from
``Experiment.run``, the CLI's ``--systems`` flag, and the benchmarks without
touching any of them.
"""

from repro.api.executor import (SWEEP_EXECUTORS, ProcessSweepExecutor,
                                SerialSweepExecutor, SweepExecutor,
                                SweepOutcome, SweepTask,
                                resolve_sweep_executor)
from repro.api.experiment import DEFAULT_SYSTEMS, Experiment
from repro.api.registry import (SystemRunner, canonical_system_name, get_system,
                                list_systems, register_system,
                                system_descriptions)
from repro.api.result import (KIND_CLASSIFICATION, KIND_CLUSTER, KIND_GENERATIVE,
                              KIND_GENERATIVE_CLUSTER, KIND_GENERATIVE_DISAGG,
                              RunReport, RunResult, SweepPoint, SweepReport,
                              labels_for_kind)
from repro.api.specs import (WORKLOAD_KINDS, ClusterSpec, ExitPolicySpec,
                             TraceSpec, WorkloadSpec)

# Importing the runners registers every built-in system.
from repro.api import systems as _systems  # noqa: F401
from repro.api.systems import REGISTERED_SYSTEMS

__all__ = [
    "Experiment",
    "DEFAULT_SYSTEMS",
    "WorkloadSpec",
    "ClusterSpec",
    "ExitPolicySpec",
    "TraceSpec",
    "WORKLOAD_KINDS",
    "RunResult",
    "RunReport",
    "SweepPoint",
    "SweepReport",
    "KIND_CLASSIFICATION",
    "KIND_CLUSTER",
    "KIND_GENERATIVE",
    "KIND_GENERATIVE_CLUSTER",
    "KIND_GENERATIVE_DISAGG",
    "SystemRunner",
    "register_system",
    "get_system",
    "list_systems",
    "canonical_system_name",
    "system_descriptions",
    "labels_for_kind",
    "REGISTERED_SYSTEMS",
    "SweepExecutor",
    "SerialSweepExecutor",
    "ProcessSweepExecutor",
    "SweepTask",
    "SweepOutcome",
    "SWEEP_EXECUTORS",
    "resolve_sweep_executor",
]
