"""System registry: serving systems discovered by name, not by import.

Every comparable system (Apparate, vanilla, the paper's baselines, future
ROADMAP systems) registers once under a short name with the experiment kinds
it supports.  ``Experiment.run(systems=[...])``, the CLI's ``--systems`` flag
and the benchmarks all resolve systems through this registry, so adding a new
system is one ``@register_system`` decorator — not an eleventh ad-hoc
``run_*`` function threaded through every front end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.api.result import (KIND_CLASSIFICATION, KIND_CLUSTER, KIND_GENERATIVE,
                              KIND_GENERATIVE_CLUSTER, KIND_GENERATIVE_DISAGG,
                              RunResult)

__all__ = ["SystemRunner", "register_system", "get_system", "list_systems",
           "canonical_system_name", "system_descriptions"]

_ALL_KINDS = (KIND_CLASSIFICATION, KIND_CLUSTER, KIND_GENERATIVE,
              KIND_GENERATIVE_CLUSTER, KIND_GENERATIVE_DISAGG)


@dataclass(frozen=True)
class SystemRunner:
    """A registered serving system: name, supported kinds, and the runner.

    ``fn`` takes the experiment plus any per-system override keywords and
    returns a :class:`~repro.api.result.RunResult` in the shared schema.
    """

    name: str
    kinds: FrozenSet[str]
    description: str
    fn: Callable[..., RunResult]

    def supports(self, kind: str) -> bool:
        return kind in self.kinds

    def run(self, experiment, **overrides) -> RunResult:
        """Run the system on ``experiment`` after checking kind support."""
        kind = experiment.kind
        if not self.supports(kind):
            # Name every offending piece of the combination — the system, the
            # experiment kind it cannot serve, and the model that induced it —
            # so a bad config is diagnosable from the message alone.
            raise ValueError(
                f"system {self.name!r} does not support {kind} experiments "
                f"(model {experiment.spec.name!r}; {self.name!r} supports: "
                f"{sorted(self.kinds)})")
        merged = dict(experiment.overrides_for(self.name))
        merged.update(overrides)
        try:
            return self.fn(experiment, **merged)
        except TypeError as exc:
            # A keyword the runner does not understand is a configuration
            # error, and the API boundary reports those as ValueError.
            if merged and "unexpected keyword argument" in str(exc):
                raise ValueError(f"invalid override for system {self.name!r} "
                                 f"({sorted(merged)}): {exc}") from exc
            raise


_REGISTRY: Dict[str, SystemRunner] = {}
_ALIASES: Dict[str, str] = {}


def register_system(name: str, *, kinds: Iterable[str], description: str = "",
                    aliases: Tuple[str, ...] = ()) -> Callable:
    """Class/function decorator that registers a system runner under ``name``."""
    kind_set = frozenset(kinds)
    unknown = kind_set.difference(_ALL_KINDS)
    if unknown:
        raise ValueError(f"unknown experiment kinds {sorted(unknown)} for system "
                         f"{name!r}; choose from {_ALL_KINDS}")

    def decorator(fn: Callable[..., RunResult]) -> Callable[..., RunResult]:
        if name in _REGISTRY:
            raise ValueError(f"system {name!r} is already registered")
        _REGISTRY[name] = SystemRunner(name=name, kinds=kind_set,
                                       description=description or (fn.__doc__ or "").strip(),
                                       fn=fn)
        for alias in aliases:
            _ALIASES[alias] = name
        return fn

    return decorator


def canonical_system_name(name: str) -> str:
    """Resolve a system name or alias; raise ValueError naming the value."""
    key = str(name).strip().lower().replace("-", "_")
    key = _ALIASES.get(key, key)
    if key not in _REGISTRY:
        raise ValueError(f"unknown system {name!r}; "
                         f"registered systems: {list_systems()}")
    return key


def get_system(name: str) -> SystemRunner:
    """Look up a registered system by name or alias."""
    return _REGISTRY[canonical_system_name(name)]


def list_systems(kind: Optional[str] = None) -> List[str]:
    """Sorted names of registered systems, optionally filtered by kind."""
    if kind is None:
        return sorted(_REGISTRY)
    if kind not in _ALL_KINDS:
        raise ValueError(f"unknown experiment kind {kind!r}; choose from {_ALL_KINDS}")
    return sorted(n for n, runner in _REGISTRY.items() if runner.supports(kind))


def system_descriptions() -> Dict[str, str]:
    """Name -> one-line description for every registered system."""
    return {name: _REGISTRY[name].description for name in list_systems()}
