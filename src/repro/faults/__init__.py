"""Deterministic replica failure injection for serving scenarios."""

from repro.faults.spec import (FAULT_POOLS, FaultSchedule, FaultSpec,
                               coerce_faults, parse_faults)

__all__ = ["FaultSpec", "FaultSchedule", "FAULT_POOLS", "parse_faults",
           "coerce_faults"]
