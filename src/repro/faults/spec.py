"""Replica failure injection.

A :class:`FaultSpec` is one crash/recover cycle: at ``crash_ms`` a replica
is force-retired (its queued work requeues through the balancer, in-flight
work is salvaged) and ``down_ms`` later a replacement boots through the
normal provisioning path.  A :class:`FaultSchedule` is an ordered set of
faults — either hand-written or drawn from seeded exponential MTBF/MTTR
processes via :meth:`FaultSchedule.poisson` — injected into the runners as
kernel events, so autoscalers and balancers observe churn as ordinary
fleet state changes on the shared simulation clock.

``pool`` selects the target pool on the disaggregated platform
(``"prefill"`` or ``"decode"``); the monolithic platforms have a single
pool and ignore it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = ["FaultSpec", "FaultSchedule", "FAULT_POOLS", "parse_faults", "coerce_faults"]

FAULT_POOLS: Tuple[str, ...] = ("decode", "prefill")


@dataclass(frozen=True)
class FaultSpec:
    """One replica crash at ``crash_ms``, recovered ``down_ms`` later."""

    crash_ms: float
    down_ms: float
    pool: str = "decode"

    def __post_init__(self) -> None:
        crash = float(self.crash_ms)
        if not math.isfinite(crash) or crash < 0:
            raise ValueError(f"fault crash_ms must be finite and >= 0, got {self.crash_ms!r}")
        object.__setattr__(self, "crash_ms", crash)
        down = float(self.down_ms)
        if not math.isfinite(down) or down <= 0:
            raise ValueError(f"fault down_ms must be finite and positive, got {self.down_ms!r}")
        object.__setattr__(self, "down_ms", down)
        if self.pool not in FAULT_POOLS:
            raise ValueError(f"fault pool must be one of {FAULT_POOLS}, got {self.pool!r}")

    @property
    def recover_ms(self) -> float:
        return self.crash_ms + self.down_ms


@dataclass(frozen=True)
class FaultSchedule:
    """An ordered, immutable set of fault injections."""

    faults: Tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        faults = tuple(self.faults)
        for fault in faults:
            if not isinstance(fault, FaultSpec):
                raise ValueError(f"faults must be FaultSpec instances, got {fault!r}")
        object.__setattr__(self, "faults",
                           tuple(sorted(faults, key=lambda f: (f.crash_ms, f.pool))))

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def for_pool(self, pool: str) -> Tuple[FaultSpec, ...]:
        if pool not in FAULT_POOLS:
            raise ValueError(f"fault pool must be one of {FAULT_POOLS}, got {pool!r}")
        return tuple(f for f in self.faults if f.pool == pool)

    def describe(self) -> str:
        if not self.faults:
            return "none"
        return "; ".join(f"{f.pool}@{f.crash_ms:g}+{f.down_ms:g}" for f in self.faults)

    @classmethod
    def of(cls, *faults: FaultSpec) -> "FaultSchedule":
        return cls(faults=tuple(faults))

    @classmethod
    def poisson(cls, mtbf_ms: float, mttr_ms: float, horizon_ms: float,
                seed: int = 0, pool: str = "decode") -> "FaultSchedule":
        """Draw a seeded crash/recover process over ``[0, horizon_ms)``.

        Inter-crash gaps are exponential with mean ``mtbf_ms`` and each
        outage's duration is exponential with mean ``mttr_ms`` (clamped to
        at least 1 ms so a recovery event always exists).
        """
        for key, value in (("mtbf_ms", mtbf_ms), ("mttr_ms", mttr_ms),
                           ("horizon_ms", horizon_ms)):
            value = float(value)
            if not math.isfinite(value) or value <= 0:
                raise ValueError(f"fault {key} must be finite and positive, got {value!r}")
        rng = np.random.default_rng(int(seed))
        faults = []
        now = float(rng.exponential(mtbf_ms))
        while now < horizon_ms:
            down = max(float(rng.exponential(mttr_ms)), 1.0)
            faults.append(FaultSpec(crash_ms=now, down_ms=down, pool=pool))
            now += float(rng.exponential(mtbf_ms))
        return cls(faults=tuple(faults))


def _parse_fault_clause(clause: str) -> FaultSpec:
    parts = [p.strip() for p in clause.split(":")]
    if len(parts) not in (2, 3) or not all(parts[:2]):
        raise ValueError(f"fault clause must be crash_ms:down_ms[:pool], got {clause!r}")
    kwargs: Dict[str, object] = {"crash_ms": float(parts[0]), "down_ms": float(parts[1])}
    if len(parts) == 3 and parts[2]:
        kwargs["pool"] = parts[2]
    return FaultSpec(**kwargs)


def parse_faults(text: str) -> FaultSchedule:
    """Parse a CLI fault string into a :class:`FaultSchedule`.

    Two formats:

    * explicit — ``crash_ms:down_ms[:pool]`` clauses joined by ``;``,
      e.g. ``"5000:2000;9000:1500:prefill"``;
    * random process — ``mtbf=<ms>,mttr=<ms>,horizon=<ms>[,seed=<n>][,pool=<p>]``,
      drawn via :meth:`FaultSchedule.poisson`.
    """
    text = text.strip()
    if not text:
        raise ValueError("empty fault schedule string")
    if "=" in text:
        kwargs: Dict[str, Union[float, int, str]] = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not value:
                raise ValueError(f"fault schedule: expected key=value, got {item!r}")
            if key in ("mtbf", "mttr", "horizon"):
                kwargs[f"{key}_ms"] = float(value)
            elif key == "seed":
                kwargs["seed"] = int(value)
            elif key == "pool":
                kwargs["pool"] = value
            else:
                raise ValueError(f"fault schedule: unknown key {key!r}; choose from "
                                 "('mtbf', 'mttr', 'horizon', 'seed', 'pool')")
        missing = [k for k in ("mtbf_ms", "mttr_ms", "horizon_ms") if k not in kwargs]
        if missing:
            raise ValueError(f"fault schedule is missing required keys {missing} in {text!r}")
        return FaultSchedule.poisson(**kwargs)  # type: ignore[arg-type]
    clauses = [clause for clause in text.split(";") if clause.strip()]
    if not clauses:
        raise ValueError(f"could not parse any faults from {text!r}")
    return FaultSchedule(faults=tuple(_parse_fault_clause(c) for c in clauses))


def coerce_faults(value: Union[None, str, FaultSchedule, FaultSpec,
                               Sequence[FaultSpec]]) -> Optional[FaultSchedule]:
    """Coerce user-facing spellings of a fault schedule; ``None`` = no faults."""
    if value is None:
        return None
    if isinstance(value, FaultSchedule):
        return value if len(value) else None
    if isinstance(value, FaultSpec):
        return FaultSchedule.of(value)
    if isinstance(value, str):
        schedule = parse_faults(value)
        return schedule if len(schedule) else None
    if isinstance(value, Sequence):
        schedule = FaultSchedule(faults=tuple(value))
        return schedule if len(schedule) else None
    raise ValueError(f"faults must be None, a string, a FaultSpec/FaultSchedule or a "
                     f"sequence of FaultSpec, got {value!r}")
