"""Baselines the paper compares against.

* :mod:`repro.baselines.oracle` — optimal early exiting (§2.2): every input
  exits at the earliest ramp that would have produced the original model's
  prediction, with zero ramp overhead.
* :mod:`repro.baselines.static_ee` — existing EE models (BranchyNet, DeeBERT):
  always-on ramps at every feasible position with one-time threshold tuning
  (shared, per-ramp "+", or test-set-oracle "opt" variants), no runtime
  adaptation (§4.4, Table 2).
* :mod:`repro.baselines.two_layer` — two-layer inference systems (Tabi,
  FilterForward): a compressed model serves every input and low-confidence
  inputs are escalated to the base model (§4.2, Figure 16).
* :mod:`repro.baselines.free` — FREE-style generative early exiting: a single
  fixed ramp whose position/threshold are tuned once on bootstrap data
  (§4.4, Figure 18).
"""

from repro.baselines.oracle import (
    OracleTokenPolicy,
    optimal_exit_depths,
    optimal_latencies,
    run_optimal_classification,
    run_optimal_generative,
)
from repro.baselines.static_ee import StaticEEVariant, StaticEEResult, run_static_ee
from repro.baselines.two_layer import TwoLayerSystem, TwoLayerResult, run_two_layer
from repro.baselines.free import FreeTokenPolicy, calibrate_free_policy, run_free_generative

__all__ = [
    "OracleTokenPolicy",
    "optimal_exit_depths",
    "optimal_latencies",
    "run_optimal_classification",
    "run_optimal_generative",
    "StaticEEVariant",
    "StaticEEResult",
    "run_static_ee",
    "TwoLayerSystem",
    "TwoLayerResult",
    "run_two_layer",
    "FreeTokenPolicy",
    "calibrate_free_policy",
    "run_free_generative",
]
