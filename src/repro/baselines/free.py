"""FREE-style generative early exiting (§4.4, Figure 18).

FREE (Bae et al., EMNLP'23) attaches a single fixed ramp to a generative
model, fine-tunes against it, and picks the ramp position and threshold once
on a representative dataset (the first ~3% of samples) subject to a 1%
accuracy constraint.  There is no runtime adaptation, so workload drift can
push accuracy below the constraint (the paper measures up to 5.5% loss) while
Apparate's adaptive ramp stays within it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.generative import generative_ramp_depths
from repro.exits.ramps import RampStyle, ramp_overhead_fraction
from repro.generative.decoding import DecodeTimingModel
from repro.generative.parallel import TokenFeedback
from repro.generative.sequences import GenerativeWorkload
from repro.models.prediction import PredictionModel, ramp_error_score
from repro.models.zoo import ModelSpec, get_model
from repro.serving.hf_pipelines import ContinuousBatchingEngine, GenerativeMetrics, TokenDecision

__all__ = ["FreeTokenPolicy", "calibrate_free_policy", "run_free_generative"]


@dataclass
class FreeTokenPolicy:
    """Single fixed ramp with a fixed threshold; no adaptation."""

    prediction: PredictionModel
    ramp_depth: float
    threshold: float

    def decide(self, sequence_id: int, token_index: int, raw_difficulty: float,
               sharpness: float) -> TokenDecision:
        error = self.prediction.error_score(raw_difficulty, self.ramp_depth, sharpness)
        correct = self.prediction.is_correct(raw_difficulty, self.ramp_depth)
        exited = self.threshold > 0.0 and error < self.threshold
        return TokenDecision(exited=exited, exit_depth=self.ramp_depth if exited else None,
                             error_score=error, correct=correct)

    def feedback(self, records: Sequence[TokenFeedback]) -> None:
        return None   # FREE performs no runtime adaptation.


def calibrate_free_policy(prediction: PredictionModel, workload: GenerativeWorkload,
                          candidate_depths: Sequence[float],
                          accuracy_constraint: float = 0.01,
                          calibration_fraction: float = 0.03) -> Tuple[float, float]:
    """One-time (depth, threshold) selection on the leading slice of the workload.

    The pair maximizing expected per-token savings (exit rate times depth
    saved) subject to the accuracy constraint on the calibration tokens wins.
    """
    num_calibration = max(1, int(len(workload.sequences) * calibration_fraction))
    difficulties: List[float] = []
    sharpness: List[float] = []
    for sample in workload.sequences[:num_calibration]:
        difficulties.extend(sample.token_difficulty.tolist())
        sharpness.extend(sample.token_sharpness.tolist())
    required = prediction.required_depths(difficulties)
    sharpness_arr = np.asarray(sharpness, dtype=float)

    best_depth = sorted(candidate_depths)[len(candidate_depths) // 2]
    best_threshold = 0.0
    best_savings = -np.inf
    n = max(required.size, 1)
    for depth in sorted(candidate_depths):
        errors = np.asarray(ramp_error_score(required, depth, sharpness_arr))
        correct = required <= depth
        for threshold in np.arange(0.05, 0.99, 0.05):
            exits = errors < threshold
            num_exited = int(exits.sum())
            accuracy = (int(correct[exits].sum()) + (n - num_exited)) / n
            if accuracy < 1.0 - accuracy_constraint:
                continue
            savings = num_exited * (1.0 - depth)
            if savings > best_savings:
                best_savings = savings
                best_depth = float(depth)
                best_threshold = float(threshold)
    return best_depth, best_threshold


def _free_generative_impl(model: Union[str, ModelSpec], workload: GenerativeWorkload,
                          accuracy_constraint: float = 0.01, max_batch_size: int = 8,
                          calibration_fraction: float = 0.03,
                          seed: int = 0,
                          ttft_slo_ms: Optional[float] = None,
                          obs=None) -> GenerativeMetrics:
    from repro.core.generative import _normalize_ttft_slo
    spec = get_model(model) if isinstance(model, str) else model
    prediction = PredictionModel(spec, seed=seed)
    depths = generative_ramp_depths(spec, seed=seed)
    depth, threshold = calibrate_free_policy(prediction, workload, depths,
                                             accuracy_constraint=accuracy_constraint,
                                             calibration_fraction=calibration_fraction)
    policy = FreeTokenPolicy(prediction=prediction, ramp_depth=depth, threshold=threshold)
    overhead = ramp_overhead_fraction(spec, RampStyle.DECODE_HEAD)
    timing = DecodeTimingModel(spec, ramp_overhead_fraction=overhead)
    engine = ContinuousBatchingEngine(timing, max_batch_size=max_batch_size,
                                      ttft_slo_ms=_normalize_ttft_slo(ttft_slo_ms))
    if obs is not None:
        engine.obs = obs
    return engine.run(workload, policy)


def _free_generative_cluster_impl(model: Union[str, ModelSpec],
                                  workload: GenerativeWorkload,
                                  replicas: int = 2, balancer="round_robin",
                                  accuracy_constraint: float = 0.01,
                                  max_batch_size: int = 8,
                                  calibration_fraction: float = 0.03,
                                  seed: int = 0, autoscaler="none",
                                  min_replicas=None, max_replicas=None,
                                  profiles=None, prefill_in_slot: bool = False,
                                  ttft_slo_ms: Optional[float] = None,
                                  tenancy=None, faults=None, kv_capacity=None,
                                  obs=None):
    """FREE at fleet scale: one (depth, threshold) pair calibrated once on the
    leading workload slice, then deployed frozen on every replica (including
    any the autoscaler boots mid-run) — no runtime adaptation anywhere."""
    from repro.core.generative import build_generative_cluster
    spec = get_model(model) if isinstance(model, str) else model
    policy = _calibrated_free_policy(spec, workload, accuracy_constraint,
                                     calibration_fraction, seed)
    overhead = ramp_overhead_fraction(spec, RampStyle.DECODE_HEAD)
    cluster = build_generative_cluster(spec, replicas, balancer=balancer,
                                       max_batch_size=max_batch_size,
                                       ramp_overhead=overhead, seed=seed,
                                       profiles=profiles, autoscaler=autoscaler,
                                       min_replicas=min_replicas,
                                       max_replicas=max_replicas,
                                       prefill_in_slot=prefill_in_slot,
                                       ttft_slo_ms=ttft_slo_ms,
                                       tenancy=tenancy, faults=faults,
                                       kv_capacity=kv_capacity, obs=obs)
    return cluster.run(workload, lambda ordinal: policy)


def _calibrated_free_policy(spec: ModelSpec, workload: GenerativeWorkload,
                            accuracy_constraint: float,
                            calibration_fraction: float,
                            seed: int) -> FreeTokenPolicy:
    """One-time (depth, threshold) calibration shared by the fleet impls."""
    prediction = PredictionModel(spec, seed=seed)
    depths = generative_ramp_depths(spec, seed=seed)
    depth, threshold = calibrate_free_policy(prediction, workload, depths,
                                             accuracy_constraint=accuracy_constraint,
                                             calibration_fraction=calibration_fraction)
    return FreeTokenPolicy(prediction=prediction, ramp_depth=depth,
                           threshold=threshold)


def _free_generative_disagg_impl(model: Union[str, ModelSpec],
                                 workload: GenerativeWorkload,
                                 accuracy_constraint: float = 0.01,
                                 max_batch_size: int = 8,
                                 calibration_fraction: float = 0.03,
                                 seed: int = 0, **pool_kwargs):
    """FREE on disaggregated pools: the frozen calibrated policy runs on
    every decode replica; the prefill pool is policy-free."""
    from repro.core.generative import build_disaggregated_platform
    spec = get_model(model) if isinstance(model, str) else model
    policy = _calibrated_free_policy(spec, workload, accuracy_constraint,
                                     calibration_fraction, seed)
    overhead = ramp_overhead_fraction(spec, RampStyle.DECODE_HEAD)
    platform = build_disaggregated_platform(spec, max_batch_size=max_batch_size,
                                            ramp_overhead=overhead, seed=seed,
                                            **pool_kwargs)
    return platform.run(workload, lambda ordinal: policy)


def run_free_generative(model: Union[str, ModelSpec], workload: GenerativeWorkload,
                        accuracy_constraint: float = 0.01, max_batch_size: int = 8,
                        seed: int = 0) -> GenerativeMetrics:
    """Serve a generative workload with the FREE baseline.

    Equivalent to ``Experiment(...).run(systems=["free"])``.
    """
    from repro.api import Experiment, ExitPolicySpec
    experiment = Experiment(model=model, workload=workload,
                            ee=ExitPolicySpec(accuracy_constraint=accuracy_constraint),
                            max_batch_size=max_batch_size, seed=seed)
    return experiment.run(["free"]).result("free").raw
