"""Existing early-exit models: BranchyNet / DeeBERT style static EEs (§4.4).

These proposals ship a fixed EE architecture — ramps after *every* layer, all
always active — and prescribe one-time threshold tuning on a sample of data.
Three tuning variants are modelled, matching Table 2:

* ``shared``  — the default recommendation: one threshold shared by all ramps,
  tuned on bootstrap data;
* ``per_ramp`` ("+" in the paper) — per-ramp thresholds tuned on the same
  bootstrap data with the greedy search;
* ``oracle`` ("opt") — per-ramp thresholds tuned directly on the test stream
  (an upper bound no deployed system can achieve).

None of the variants adapt at runtime, so workload drift degrades accuracy
and always-on ramps tax tail latency — the two failure modes Apparate fixes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.pipeline import Workload, build_platform, model_stack
from repro.exits.config import EEConfig
from repro.exits.evaluation import evaluate_thresholds
from repro.exits.ramps import RampStyle
from repro.exits.thresholds import tune_thresholds_greedy
from repro.models.prediction import PredictionModel, ramp_error_score
from repro.models.zoo import ModelSpec, get_model
from repro.serving.metrics import ServingMetrics
from repro.serving.platform import BatchResult
from repro.serving.request import Request, make_requests
from repro.workloads.difficulty import DifficultyTrace

__all__ = ["StaticEEVariant", "StaticEEResult", "run_static_ee", "calibrate_static_thresholds"]


class StaticEEVariant(str, enum.Enum):
    """Threshold-tuning variants of the static EE baselines (Table 2)."""

    SHARED = "shared"
    PER_RAMP = "per_ramp"
    ORACLE = "oracle"


@dataclass
class StaticEEResult:
    """Outcome of serving with a static EE baseline."""

    metrics: ServingMetrics
    thresholds: List[float]
    ramp_depths: List[float]

    def summary(self) -> Dict[str, float]:
        data = self.metrics.summary()
        data["num_ramps"] = float(len(self.ramp_depths))
        return data


def _observation_matrices(trace: DifficultyTrace, prediction: PredictionModel,
                          depths: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Error/correctness matrices of a trace at the given ramp depths."""
    depths_arr = np.asarray(list(depths), dtype=float)
    required = prediction.required_depths(trace.raw_difficulty)
    sharpness = trace.sharpness
    shift = trace.confidence_shift
    errors = ramp_error_score(required[:, None], depths_arr[None, :], sharpness[:, None],
                              shift[:, None])
    correct = required[:, None] <= depths_arr[None, :]
    return np.asarray(errors, dtype=float), np.asarray(correct, dtype=bool)


def calibrate_static_thresholds(trace: DifficultyTrace, prediction: PredictionModel,
                                depths: Sequence[float], overheads_ms: Sequence[float],
                                full_latency_ms: float, variant: StaticEEVariant,
                                accuracy_constraint: float = 0.01) -> List[float]:
    """One-time threshold tuning on ``trace`` for the given variant."""
    errors, correct = _observation_matrices(trace, prediction, depths)
    if variant is StaticEEVariant.SHARED:
        best = 0.0
        best_savings = -np.inf
        for candidate in np.arange(0.0, 1.0001, 0.05):
            thresholds = [float(candidate)] * len(depths)
            evaluation = evaluate_thresholds(errors, correct, thresholds, depths,
                                             overheads_ms, full_latency_ms)
            if evaluation.accuracy >= 1.0 - accuracy_constraint and \
                    evaluation.mean_savings_ms > best_savings:
                best_savings = evaluation.mean_savings_ms
                best = float(candidate)
        return [best] * len(depths)
    result = tune_thresholds_greedy(errors, correct, depths, overheads_ms, full_latency_ms,
                                    accuracy_constraint=accuracy_constraint)
    return list(result.thresholds)


class _StaticEEExecutor:
    """Batch executor with a frozen EE configuration (no adaptation)."""

    def __init__(self, executor, ramp_ids: Sequence[int], depths: Sequence[float],
                 thresholds: Sequence[float], overheads: Sequence[float]) -> None:
        self.executor = executor
        self.ramp_ids = list(ramp_ids)
        self.depths = list(depths)
        self.thresholds = list(thresholds)
        self.overheads = list(overheads)

    def __call__(self, batch: Sequence[Request], batch_start_ms: float) -> BatchResult:
        difficulties = [r.sample.raw_difficulty for r in batch]
        sharpness = [r.sample.sharpness for r in batch]
        shifts = [r.sample.confidence_shift for r in batch]
        execution = self.executor.execute_batch(difficulties, sharpness, self.ramp_ids,
                                                self.depths, self.thresholds, self.overheads,
                                                confidence_shifts=shifts)
        return BatchResult(
            gpu_time_ms=execution.gpu_time_ms,
            result_offsets_ms=[r.result_latency_ms for r in execution.results],
            exited=[r.exited for r in execution.results],
            exit_depths=[r.exit_depth for r in execution.results],
            correct=[r.final_correct for r in execution.results],
        )


def _static_ee_impl(model: Union[str, ModelSpec], workload: Workload,
                    variant: StaticEEVariant = StaticEEVariant.SHARED,
                    ramp_style: RampStyle = RampStyle.LIGHTWEIGHT,
                    platform: str = "clockwork", slo_ms: Optional[float] = None,
                    accuracy_constraint: float = 0.01, calibration_fraction: float = 0.10,
                    max_batch_size: int = 16, seed: int = 0,
                    obs=None) -> StaticEEResult:
    spec, profile, prediction, catalog, executor = model_stack(
        model, seed=seed, ramp_budget=1.0, ramp_style=ramp_style)
    slo = slo_ms if slo_ms is not None else spec.default_slo_ms

    # Ramps after every layer/block are always active (the prescribed
    # architecture): one ramp per coarse block, as in BranchyNet / DeeBERT.
    num_ramps = max(1, min(len(catalog), spec.num_blocks or len(catalog)))
    stride = max(1, len(catalog) // num_ramps)
    selected = list(catalog.ramps[::stride])[:num_ramps]
    ramp_ids = [r.ramp_id for r in selected]
    depths = [r.depth_fraction for r in selected]
    overhead_fractions = [r.overhead_fraction for r in selected]
    overheads_ms = [f * spec.bs1_latency_ms for f in overhead_fractions]

    if variant is StaticEEVariant.ORACLE:
        calibration = workload.trace
    else:
        count = max(1, int(len(workload.trace) * calibration_fraction))
        calibration = workload.trace.slice(0, count)
    thresholds = calibrate_static_thresholds(calibration, prediction, depths, overheads_ms,
                                             spec.bs1_latency_ms, variant,
                                             accuracy_constraint=accuracy_constraint)

    requests = make_requests(workload.trace, workload.arrival_times_ms, slo)
    engine = build_platform(platform, profile, max_batch_size=max_batch_size,
                            obs=obs)
    static_executor = _StaticEEExecutor(executor, ramp_ids, depths, thresholds,
                                        overhead_fractions)
    metrics = engine.run(requests, static_executor)
    return StaticEEResult(metrics=metrics, thresholds=thresholds, ramp_depths=depths)


def run_static_ee(model: Union[str, ModelSpec], workload: Workload,
                  variant: StaticEEVariant = StaticEEVariant.SHARED,
                  ramp_style: RampStyle = RampStyle.LIGHTWEIGHT,
                  platform: str = "clockwork", slo_ms: Optional[float] = None,
                  accuracy_constraint: float = 0.01, calibration_fraction: float = 0.10,
                  max_batch_size: int = 16, seed: int = 0) -> StaticEEResult:
    """Serve ``workload`` with a BranchyNet/DeeBERT-style static EE model.

    ``ramp_style`` selects BranchyNet-like lightweight ramps (CV) or
    DeeBERT-like deep-pooler ramps (NLP).  ``variant`` selects the tuning
    strategy; the ``oracle`` variant calibrates on the full test stream.

    Equivalent to ``Experiment(...).run(systems=["static_ee"])`` with the
    variant/calibration knobs passed as per-system overrides.
    """
    from repro.api import Experiment, ExitPolicySpec
    experiment = Experiment(
        model=model, workload=workload,
        ee=ExitPolicySpec(accuracy_constraint=accuracy_constraint,
                          ramp_style=ramp_style),
        platform=platform, slo_ms=slo_ms, max_batch_size=max_batch_size,
        seed=seed,
        overrides={"static_ee": {"variant": variant,
                                 "calibration_fraction": calibration_fraction}})
    return experiment.run(["static_ee"]).result("static_ee").raw
