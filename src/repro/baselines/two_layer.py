"""Two-layer inference systems: Tabi (NLP) and FilterForward (CV) style (§4.2).

These systems run a compressed model on every input and escalate only
low-confidence inputs to the base model.  We model the compressed model as a
predictor with capability equal to a fraction of the base model's depth
(i.e. it behaves like the base model truncated at that depth) and a runtime
that is a fraction of the base model's.  As in the paper's evaluation, the
comparison is deliberately favourable to the baseline: hosting overheads,
data-pruning compute and queuing between the two models are all ignored —
per-request latency is simply the vanilla queuing delay plus the compressed
model time, plus the base-model serving time for escalated inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.pipeline import Workload, _vanilla_impl, model_stack
from repro.models.prediction import PredictionModel, ramp_error_score
from repro.models.zoo import ModelSpec, Task, get_model
from repro.serving.metrics import ServingMetrics
from repro.workloads.difficulty import DifficultyTrace

__all__ = ["TwoLayerSystem", "TwoLayerResult", "run_two_layer"]


@dataclass
class TwoLayerSystem:
    """Compressed-model front end in front of a base model.

    Attributes
    ----------
    capability_depth:
        The compressed model behaves like the base model truncated at this
        depth fraction (its predictions are reliable for inputs whose
        required depth is below it).
    runtime_fraction:
        Compressed-model runtime as a fraction of the base model's bs=1 time.
    confidence_threshold:
        Escalation rule: inputs whose compressed-model error score is below
        the threshold are answered by the compressed model alone.
    """

    capability_depth: float
    runtime_fraction: float
    confidence_threshold: float = 0.5

    def calibrate(self, trace: DifficultyTrace, prediction: PredictionModel,
                  accuracy_constraint: float = 0.01) -> float:
        """Pick the largest escalation threshold that meets the accuracy budget."""
        required = prediction.required_depths(trace.raw_difficulty)
        errors = np.asarray(ramp_error_score(required, self.capability_depth, trace.sharpness,
                                             trace.confidence_shift))
        correct = required <= self.capability_depth
        best = 0.0
        n = len(trace)
        for candidate in np.arange(0.02, 0.99, 0.02):
            served_by_compressed = errors < candidate
            num_compressed = int(served_by_compressed.sum())
            num_correct = int(correct[served_by_compressed].sum()) + (n - num_compressed)
            if num_correct / n >= 1.0 - accuracy_constraint:
                best = float(candidate)
            else:
                break
        self.confidence_threshold = best
        return best


@dataclass
class TwoLayerResult:
    """Outcome of a two-layer serving run."""

    latencies_ms: np.ndarray
    accuracy: float
    escalation_rate: float

    def summary(self) -> Dict[str, float]:
        return {
            "p25_ms": float(np.percentile(self.latencies_ms, 25)) if self.latencies_ms.size else 0.0,
            "p50_ms": float(np.percentile(self.latencies_ms, 50)) if self.latencies_ms.size else 0.0,
            "p95_ms": float(np.percentile(self.latencies_ms, 95)) if self.latencies_ms.size else 0.0,
            "accuracy": self.accuracy,
            "escalation_rate": self.escalation_rate,
        }


# Default two-layer configurations per task, loosely matching the paper's
# comparators: FilterForward's micro-classifiers for CV, Tabi's compressed
# language model (DistilBERT-like) for NLP.
_DEFAULTS = {
    Task.CV_CLASSIFICATION: {"capability_depth": 0.42, "runtime_fraction": 0.40},
    Task.NLP_CLASSIFICATION: {"capability_depth": 0.55, "runtime_fraction": 0.50},
}


def _two_layer_impl(model: Union[str, ModelSpec], workload: Workload,
                    platform: str = "clockwork", slo_ms: Optional[float] = None,
                    accuracy_constraint: float = 0.01, calibration_fraction: float = 1.0,
                    capability_depth: Optional[float] = None,
                    runtime_fraction: Optional[float] = None,
                    max_batch_size: int = 16, seed: int = 0,
                    obs=None) -> TwoLayerResult:
    spec, _profile, prediction, _catalog, _executor = model_stack(model, seed=seed)
    defaults = _DEFAULTS.get(spec.task, _DEFAULTS[Task.NLP_CLASSIFICATION])
    system = TwoLayerSystem(
        capability_depth=capability_depth if capability_depth is not None
        else defaults["capability_depth"],
        runtime_fraction=runtime_fraction if runtime_fraction is not None
        else defaults["runtime_fraction"],
    )
    calibration_count = max(1, int(len(workload.trace) * calibration_fraction))
    system.calibrate(workload.trace.slice(0, calibration_count), prediction,
                     accuracy_constraint=accuracy_constraint)

    # Like the oracle, the two-layer comparator replays the vanilla run's
    # schedule and discounts latencies analytically, so recorded spans show
    # the vanilla serving timeline.
    vanilla = _vanilla_impl(spec, workload, platform=platform, slo_ms=slo_ms,
                            max_batch_size=max_batch_size, seed=seed, obs=obs)

    required = prediction.required_depths(workload.trace.raw_difficulty)
    sharpness = workload.trace.sharpness
    compressed_time = system.runtime_fraction * spec.bs1_latency_ms

    latencies: List[float] = []
    correct_count = 0
    escalations = 0
    shifts = workload.trace.confidence_shift
    for response in vanilla.served():
        rid = response.request_id
        error = float(ramp_error_score(required[rid], system.capability_depth,
                                       sharpness[rid], shifts[rid]))
        if error < system.confidence_threshold:
            latency = response.queueing_ms + compressed_time
            correct = bool(required[rid] <= system.capability_depth) or \
                prediction.is_correct(float(workload.trace.raw_difficulty[rid]),
                                      system.capability_depth)
        else:
            escalations += 1
            latency = response.queueing_ms + compressed_time + response.serving_ms
            correct = True
        latencies.append(latency)
        correct_count += int(correct)

    n = max(len(latencies), 1)
    return TwoLayerResult(latencies_ms=np.asarray(latencies, dtype=float),
                          accuracy=correct_count / n,
                          escalation_rate=escalations / n)


def run_two_layer(model: Union[str, ModelSpec], workload: Workload,
                  platform: str = "clockwork", slo_ms: Optional[float] = None,
                  accuracy_constraint: float = 0.01, calibration_fraction: float = 1.0,
                  capability_depth: Optional[float] = None,
                  runtime_fraction: Optional[float] = None,
                  max_batch_size: int = 16, seed: int = 0) -> TwoLayerResult:
    """Serve ``workload`` with a two-layer (compressed + base) system.

    As in the paper, the evaluation is favourable to the baseline: by default
    the escalation threshold is calibrated on the full stream (so the system
    operates within the same accuracy budget as Apparate), and the costs of
    hosting the compressed model and of moving data between the two models
    are ignored.

    Equivalent to ``Experiment(...).run(systems=["two_layer"])`` with the
    cascade shape passed as per-system overrides.
    """
    from repro.api import Experiment, ExitPolicySpec
    experiment = Experiment(
        model=model, workload=workload,
        ee=ExitPolicySpec(accuracy_constraint=accuracy_constraint),
        platform=platform, slo_ms=slo_ms, max_batch_size=max_batch_size,
        seed=seed,
        overrides={"two_layer": {"calibration_fraction": calibration_fraction,
                                 "capability_depth": capability_depth,
                                 "runtime_fraction": runtime_fraction}})
    return experiment.run(["two_layer"]).result("two_layer").raw
