"""Optimal early exiting (§2.2): the upper bound Apparate is compared against.

For classification, the optimal strategy knows — for every input — the
earliest ramp position whose prediction matches the original model, exits
there with zero ramp overhead, and leaves queuing/scheduling untouched
(latencies of the vanilla run are reduced by exactly the serving time the
exit avoided).  For generative serving, every token exits at the earliest
candidate ramp that produces the correct value, ignoring the delay of
generating the remaining KV states (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.core.pipeline import Workload, _vanilla_impl, model_stack
from repro.generative.parallel import TokenFeedback
from repro.generative.sequences import GenerativeWorkload
from repro.generative.decoding import DecodeTimingModel
from repro.models.prediction import PredictionModel
from repro.models.zoo import ModelSpec, get_model
from repro.serving.hf_pipelines import ContinuousBatchingEngine, GenerativeMetrics, TokenDecision
from repro.serving.metrics import ServingMetrics
from repro.workloads.difficulty import DifficultyTrace

__all__ = ["optimal_exit_depths", "optimal_latencies", "run_optimal_classification",
           "OracleTokenPolicy", "run_optimal_generative"]


def optimal_exit_depths(trace: DifficultyTrace, prediction: PredictionModel,
                        candidate_depths: Sequence[float]) -> np.ndarray:
    """Earliest candidate depth at which each input's prediction is correct.

    Inputs whose prediction never emerges before the model end get depth 1.0
    (no exit).
    """
    depths = np.asarray(sorted(candidate_depths), dtype=float)
    required = prediction.required_depths(trace.raw_difficulty)
    result = np.ones(len(trace), dtype=float)
    if depths.size == 0:
        return result
    # For each input, the first candidate depth >= required depth.
    idx = np.searchsorted(depths, required, side="left")
    has_exit = idx < depths.size
    result[has_exit] = depths[idx[has_exit]]
    return result


def optimal_latencies(vanilla: ServingMetrics, trace: DifficultyTrace,
                      prediction: PredictionModel,
                      candidate_depths: Sequence[float]) -> np.ndarray:
    """Per-request latencies under optimal exiting, derived from a vanilla run.

    As in §2.2, queuing and scheduling decisions are untouched: each request's
    vanilla latency is reduced by the serving time between its optimal exit
    point and the end of the model.
    """
    exit_depths = optimal_exit_depths(trace, prediction, candidate_depths)
    latencies: List[float] = []
    for response in vanilla.served():
        depth = float(exit_depths[response.request_id])
        saved = response.serving_ms * (1.0 - depth)
        latencies.append(response.latency_ms - saved)
    return np.asarray(latencies, dtype=float)


def _optimal_classification_impl(model: Union[str, ModelSpec], workload: Workload,
                                 platform: str = "clockwork",
                                 slo_ms: Optional[float] = None,
                                 max_batch_size: int = 16, seed: int = 0,
                                 drop_expired: bool = True, obs=None) -> np.ndarray:
    # The oracle replays the vanilla run's schedule, so the recorded spans
    # are the vanilla serving timeline (its latencies are then discounted
    # analytically and do not correspond to any simulated timeline).
    spec, _profile, prediction, catalog, _executor = model_stack(model, seed=seed)
    vanilla = _vanilla_impl(spec, workload, platform=platform, slo_ms=slo_ms,
                            max_batch_size=max_batch_size, seed=seed,
                            drop_expired=drop_expired, obs=obs)
    return optimal_latencies(vanilla, workload.trace, prediction,
                             [r.depth_fraction for r in catalog.ramps])


def run_optimal_classification(model: Union[str, ModelSpec], workload: Workload,
                               platform: str = "clockwork", slo_ms: Optional[float] = None,
                               max_batch_size: int = 16, seed: int = 0) -> np.ndarray:
    """Run vanilla serving and return per-request latencies under optimal exits.

    Equivalent to ``Experiment(...).run(systems=["optimal"])``.
    """
    from repro.api import Experiment
    experiment = Experiment(model=model, workload=workload, platform=platform,
                            slo_ms=slo_ms, max_batch_size=max_batch_size, seed=seed)
    return experiment.run(["optimal"]).result("optimal").raw


class OracleTokenPolicy:
    """Generative oracle: exit every token at its earliest correct ramp."""

    def __init__(self, prediction: PredictionModel, candidate_depths: Sequence[float]) -> None:
        self.prediction = prediction
        self.candidate_depths = sorted(float(d) for d in candidate_depths)

    def decide(self, sequence_id: int, token_index: int, raw_difficulty: float,
               sharpness: float) -> TokenDecision:
        required = self.prediction.required_depth(raw_difficulty)
        for depth in self.candidate_depths:
            if depth >= required:
                return TokenDecision(exited=True, exit_depth=depth, error_score=0.0,
                                     correct=True)
        return TokenDecision(exited=False, exit_depth=None, error_score=1.0, correct=True)

    def feedback(self, records: Sequence[TokenFeedback]) -> None:
        return None


def _oracle_token_policy(spec: ModelSpec, seed: int) -> "OracleTokenPolicy":
    prediction = PredictionModel(spec, seed=seed)
    _spec, _profile, _prediction, catalog, _executor = model_stack(spec, seed=seed)
    return OracleTokenPolicy(prediction, [r.depth_fraction for r in catalog.ramps])


def _optimal_generative_impl(model: Union[str, ModelSpec], workload: GenerativeWorkload,
                             max_batch_size: int = 8, seed: int = 0,
                             ttft_slo_ms: Optional[float] = None,
                             obs=None) -> GenerativeMetrics:
    from repro.core.generative import _normalize_ttft_slo
    spec = get_model(model) if isinstance(model, str) else model
    policy = _oracle_token_policy(spec, seed)
    timing = DecodeTimingModel(spec, ramp_overhead_fraction=0.0)
    engine = ContinuousBatchingEngine(timing, max_batch_size=max_batch_size,
                                      ttft_slo_ms=_normalize_ttft_slo(ttft_slo_ms))
    if obs is not None:
        engine.obs = obs
    return engine.run(workload, policy)


def _optimal_generative_cluster_impl(model: Union[str, ModelSpec],
                                     workload: GenerativeWorkload,
                                     replicas: int = 2, balancer="round_robin",
                                     max_batch_size: int = 8, seed: int = 0,
                                     autoscaler="none", min_replicas=None,
                                     max_replicas=None, profiles=None,
                                     prefill_in_slot: bool = False,
                                     ttft_slo_ms: Optional[float] = None,
                                     tenancy=None, faults=None,
                                     kv_capacity=None, obs=None):
    """The generative oracle at fleet scale: every token on every replica
    exits at its earliest correct ramp with zero overhead."""
    from repro.core.generative import build_generative_cluster
    spec = get_model(model) if isinstance(model, str) else model
    policy = _oracle_token_policy(spec, seed)
    cluster = build_generative_cluster(spec, replicas, balancer=balancer,
                                       max_batch_size=max_batch_size,
                                       ramp_overhead=0.0, seed=seed,
                                       profiles=profiles, autoscaler=autoscaler,
                                       min_replicas=min_replicas,
                                       max_replicas=max_replicas,
                                       prefill_in_slot=prefill_in_slot,
                                       ttft_slo_ms=ttft_slo_ms,
                                       tenancy=tenancy, faults=faults,
                                       kv_capacity=kv_capacity, obs=obs)
    return cluster.run(workload, lambda ordinal: policy)


def _optimal_generative_disagg_impl(model: Union[str, ModelSpec],
                                    workload: GenerativeWorkload,
                                    max_batch_size: int = 8, seed: int = 0,
                                    **pool_kwargs):
    """The generative oracle on disaggregated pools: zero-overhead earliest
    correct exits on every decode replica."""
    from repro.core.generative import build_disaggregated_platform
    spec = get_model(model) if isinstance(model, str) else model
    policy = _oracle_token_policy(spec, seed)
    platform = build_disaggregated_platform(spec, max_batch_size=max_batch_size,
                                            ramp_overhead=0.0, seed=seed,
                                            **pool_kwargs)
    return platform.run(workload, lambda ordinal: policy)


def run_optimal_generative(model: Union[str, ModelSpec], workload: GenerativeWorkload,
                           max_batch_size: int = 8, seed: int = 0) -> GenerativeMetrics:
    """Serve a generative workload with the oracle exit policy (zero overhead).

    Equivalent to ``Experiment(...).run(systems=["optimal"])``.
    """
    from repro.api import Experiment
    experiment = Experiment(model=model, workload=workload,
                            max_batch_size=max_batch_size, seed=seed)
    return experiment.run(["optimal"]).result("optimal").raw
