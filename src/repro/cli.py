"""Command-line interface for the Apparate reproduction.

The CLI is a thin shell over the declarative :class:`repro.api.Experiment`
facade: each subcommand assembles an ``Experiment`` (model + workload spec +
optional cluster spec) and runs any set of registered systems through the
system registry (``repro.api.list_systems()``).

``repro-apparate models``
    List the registered model zoo (Table 5 latencies, SLOs, tasks).

``repro-apparate classify --model resnet50 --workload video:urban-day``
    Serve a classification workload and print the cross-system comparison.
    ``--systems`` picks the systems (default ``vanilla,apparate``; the
    baselines ``static_ee``, ``two_layer`` and ``optimal`` are also
    registered).  With ``--replicas N`` (plus ``--balancer`` and
    ``--fleet-mode``) the same comparison runs on an N-replica cluster;
    ``--autoscaler reactive --min-replicas 1 --max-replicas 8`` makes the
    fleet elastic and ``--replica-profiles 2,2,0.5,0.5`` heterogeneous.

``repro-apparate generate --model t5-large --dataset cnn-dailymail``
    Serve a generative workload; ``--systems`` may add ``free`` and
    ``optimal`` (``--with-baselines`` is a shorthand for both).  With
    ``--replicas N`` the token-level engines run on the fleet control plane —
    the same ``--balancer``/``--autoscaler``/``--min-replicas``/
    ``--max-replicas``/``--replica-profiles`` flags as ``classify``, with
    balancers costing replicas by outstanding decode work.

``repro-apparate sweep --replicas 1,2,4 --balancer round_robin,jsq``
    Run a parameter grid over replica counts / balancers / fleet modes in one
    command and print one row per grid point and system.  Generative models
    sweep too (``--model t5-large --workload generative:squad``).

``classify`` and ``generate`` also take ``--trace`` (record request spans +
fleet gauges and print a per-phase latency breakdown), ``--trace-out
trace.json`` (export Chrome trace-event JSON for Perfetto), and
``--gauge-interval MS`` (fleet-gauge sampling period on the simulated clock).

Every subcommand accepts ``--json`` for machine-readable output
(``RunReport.to_json()`` / ``SweepReport.to_json()``).  Validation errors
raise :class:`ValueError` inside the API and are converted to ``SystemExit``
only here, at the process boundary.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.api import (ClusterSpec, Experiment, ExitPolicySpec, RunReport,
                       WorkloadSpec, list_systems)
from repro.models.zoo import Task, get_model, list_models
from repro.serving.autoscaler import AUTOSCALER_NAMES
from repro.serving.cluster import balancer_names
from repro.tenancy import TENANT_POLICIES

__all__ = ["build_parser", "main"]


def _split_csv(text: str) -> List[str]:
    return [item.strip() for item in str(text).split(",") if item.strip()]


def _balancer_arg(text: str) -> str:
    """Normalize a CLI balancer spelling (``prefix-affinity`` ==
    ``prefix_affinity``) before argparse checks it against ``choices``."""
    return str(text).strip().lower().replace("-", "_")


def _parse_int_list(text: str, option: str) -> List[int]:
    try:
        values = [int(item) for item in _split_csv(text)]
    except ValueError as exc:
        raise ValueError(f"{option} expects a comma-separated list of integers, "
                         f"got {text!r}") from exc
    if not values:
        raise ValueError(f"{option} expects at least one value, got {text!r}")
    return values


def _parse_float_list(text: str, option: str) -> List[float]:
    try:
        values = [float(item) for item in _split_csv(text)]
    except ValueError as exc:
        raise ValueError(f"{option} expects a comma-separated list of numbers, "
                         f"got {text!r}") from exc
    if not values:
        raise ValueError(f"{option} expects at least one value, got {text!r}")
    return values


def _add_trace_args(parser) -> None:
    """Observability flags shared by the classify and generate commands."""
    parser.add_argument("--trace", action="store_true",
                        help="record request spans and fleet gauges; prints "
                             "a per-phase latency breakdown after the run")
    parser.add_argument("--trace-out", default=None, metavar="PATH",
                        help="write the recorded trace as Chrome trace-event "
                             "JSON (load in Perfetto / chrome://tracing); "
                             "implies --trace.  With multiple systems, one "
                             "file per system (suffixed with the system name)")
    parser.add_argument("--gauge-interval", type=float, default=None,
                        metavar="MS",
                        help="fleet-gauge sampling period in simulated ms "
                             "(default 50; requires --trace/--trace-out)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-apparate",
        description="Apparate (SOSP 2024) reproduction: early exits for ML serving.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the registered model zoo")

    classify = sub.add_parser("classify", help="serve a classification workload")
    classify.add_argument("--model", default="resnet50",
                          help="registered model name (see the 'models' command)")
    classify.add_argument("--workload", default="video:urban-day",
                          help="'video:<scene>' or 'nlp:<dataset>'")
    classify.add_argument("--systems", default="vanilla,apparate",
                          help="comma-separated registered systems to compare "
                               f"(classification systems: "
                               f"{','.join(list_systems('classification'))})")
    classify.add_argument("--requests", type=int, default=4000,
                          help="number of requests to serve")
    classify.add_argument("--rate", type=float, default=None,
                          help="arrival rate in qps (video default: 30 fps)")
    classify.add_argument("--platform", default="clockwork",
                          choices=["clockwork", "tfserve"])
    classify.add_argument("--accuracy-constraint", type=float, default=0.01)
    classify.add_argument("--ramp-budget", type=float, default=0.02)
    classify.add_argument("--seed", type=int, default=0)
    classify.add_argument("--replicas", type=int, default=1,
                          help="number of model replicas (>1 enables cluster serving)")
    classify.add_argument("--balancer", default=None, type=_balancer_arg,
                          choices=list(balancer_names("classification")),
                          help="load-balancing policy for cluster serving "
                               "(default: round_robin)")
    classify.add_argument("--fleet-mode", default=None,
                          choices=["independent", "shared"],
                          help="EE control topology: one controller per replica "
                               "(independent, the default) or one shared fleet "
                               "controller with periodic sync")
    classify.add_argument("--autoscaler", default=None,
                          choices=list(AUTOSCALER_NAMES),
                          help="fleet autoscaling policy (default: none, a "
                               "fixed fleet)")
    classify.add_argument("--min-replicas", type=int, default=None,
                          help="lower fleet bound for the autoscaler "
                               "(default: 1 when a scaler is enabled)")
    classify.add_argument("--max-replicas", type=int, default=None,
                          help="upper fleet bound for the autoscaler "
                               "(default: 2x --replicas when a scaler is enabled)")
    classify.add_argument("--replica-profiles", default=None,
                          help="comma-separated per-replica speed[:cost] "
                               "multipliers for a heterogeneous fleet, e.g. "
                               "'2,2,0.5,0.5' (must match --replicas)")
    classify.add_argument("--tenants", default=None,
                          help="multi-tenant mix as 'name:key=value,...;...' "
                               "(keys: weight/share/priority/slo/ttft/exits), "
                               "e.g. 'chat:weight=4;batch:priority=batch'")
    classify.add_argument("--tenant-policy", default=None,
                          choices=list(TENANT_POLICIES),
                          help="dispatch discipline across tenants "
                               "(default: weighted_fair)")
    classify.add_argument("--faults", default=None,
                          help="replica failure injection: "
                               "'crash_ms:down_ms[:pool];...' or "
                               "'mtbf=..,mttr=..,horizon=..[,seed=..][,pool=..]' "
                               "for a seeded random schedule")
    _add_trace_args(classify)
    classify.add_argument("--json", action="store_true",
                          help="print the RunReport as JSON instead of a table")

    generate = sub.add_parser("generate", help="serve a generative workload")
    generate.add_argument("--model", default="t5-large")
    generate.add_argument("--dataset", default="cnn-dailymail",
                          choices=["cnn-dailymail", "squad"])
    generate.add_argument("--systems", default="vanilla,apparate",
                          help="comma-separated registered systems to compare "
                               f"(generative systems: "
                               f"{','.join(list_systems('generative'))})")
    generate.add_argument("--sequences", type=int, default=150)
    generate.add_argument("--rate", type=float, default=2.0)
    generate.add_argument("--accuracy-constraint", type=float, default=0.01)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--with-baselines", action="store_true",
                          help="also run the FREE baseline and the optimal oracle")
    generate.add_argument("--replicas", type=int, default=1,
                          help="number of decode replicas (>1 enables "
                               "generative cluster serving)")
    generate.add_argument("--balancer", default=None, type=_balancer_arg,
                          choices=list(balancer_names("generative")),
                          help="load-balancing policy for cluster serving "
                               "(default: round_robin; work-aware policies "
                               "cost replicas by outstanding decode tokens; "
                               "kv_aware_least_work / prefix_affinity also "
                               "read each replica's KV-cache state)")
    generate.add_argument("--fleet-mode", default=None,
                          choices=["independent", "shared"],
                          help="token-EE control topology: one policy per "
                               "replica (independent, the default) or one "
                               "fleet-wide policy fed by every replica")
    generate.add_argument("--autoscaler", default=None,
                          choices=list(AUTOSCALER_NAMES),
                          help="fleet autoscaling policy (default: none, a "
                               "fixed fleet)")
    generate.add_argument("--min-replicas", type=int, default=None,
                          help="lower fleet bound for the autoscaler "
                               "(default: 1 when a scaler is enabled; with "
                               "--disaggregate this bounds the decode pool)")
    generate.add_argument("--max-replicas", type=int, default=None,
                          help="upper fleet bound for the autoscaler "
                               "(default: 2x --replicas when a scaler is "
                               "enabled; with --disaggregate this bounds "
                               "the decode pool)")
    generate.add_argument("--replica-profiles", default=None,
                          help="comma-separated per-replica speed[:cost] "
                               "multipliers for a heterogeneous decode fleet "
                               "(must match --replicas; with --disaggregate "
                               "these profile the decode pool and must match "
                               "--decode-replicas)")
    generate.add_argument("--kv-capacity", type=float, default=None,
                          help="per-replica KV-cache budget in bytes; when the "
                               "working set overflows it, LRU sequences are "
                               "evicted and pay a recompute penalty (default: "
                               "unbounded, the pre-existing behavior)")
    generate.add_argument("--prefix-groups", type=int, default=None,
                          help="number of shared-prefix groups in the workload "
                               "(0, the default, disables prefix structure)")
    generate.add_argument("--prefix-share", type=float, default=None,
                          help="fraction of sequences that belong to a shared-"
                               "prefix group (default: 0.8)")
    generate.add_argument("--prefix-tokens", type=int, default=None,
                          help="length in tokens of each group's shared prefix "
                               "(default: 256)")
    generate.add_argument("--prefill-in-slot", action="store_true",
                          help="monolithic fleets only: charge each prompt's "
                               "chunked prefill inside the claiming decode "
                               "slot (stretched by busy-slot contention) — "
                               "the honest comparator for --disaggregate")
    generate.add_argument("--disaggregate", action="store_true",
                          help="split the fleet into a prefill pool and a "
                               "decode pool with a KV-transfer handoff queue "
                               "(each pool balanced and autoscaled "
                               "independently)")
    generate.add_argument("--prefill-replicas", type=int, default=None,
                          help="initial prefill pool size (disaggregated "
                               "serving; default: --replicas)")
    generate.add_argument("--decode-replicas", type=int, default=None,
                          help="initial decode pool size (disaggregated "
                               "serving; default: --replicas)")
    generate.add_argument("--prefill-autoscaler", default=None,
                          choices=list(AUTOSCALER_NAMES),
                          help="prefill pool autoscaling policy, scaling on "
                               "queued prompt tokens (default: --autoscaler)")
    generate.add_argument("--decode-autoscaler", default=None,
                          choices=list(AUTOSCALER_NAMES),
                          help="decode pool autoscaling policy, scaling on "
                               "outstanding decode work (default: "
                               "--autoscaler)")
    generate.add_argument("--ttft-slo", type=float, default=None,
                          help="time-to-first-token SLO in ms; sequences "
                               "whose wait already blew it are shed "
                               "(counted in the 'shed' metric)")
    generate.add_argument("--tenants", default=None,
                          help="multi-tenant mix as 'name:key=value,...;...' "
                               "(keys: weight/share/priority/slo/ttft/exits), "
                               "e.g. 'chat:weight=4;batch:priority=batch'")
    generate.add_argument("--tenant-policy", default=None,
                          choices=list(TENANT_POLICIES),
                          help="dispatch discipline across tenants "
                               "(default: weighted_fair)")
    generate.add_argument("--faults", default=None,
                          help="replica failure injection: "
                               "'crash_ms:down_ms[:pool];...' or "
                               "'mtbf=..,mttr=..,horizon=..[,seed=..][,pool=..]' "
                               "for a seeded random schedule")
    _add_trace_args(generate)
    generate.add_argument("--json", action="store_true",
                          help="print the RunReport as JSON instead of a table")

    sweep = sub.add_parser(
        "sweep", help="run a parameter grid (replicas x balancer x fleet mode)")
    sweep.add_argument("--model", default="resnet50")
    sweep.add_argument("--workload", default=None,
                       help="'video:<scene>', 'nlp:<dataset>' or "
                            "'generative:<dataset>' (default: video:urban-day, "
                            "or generative:cnn-dailymail for generative models)")
    sweep.add_argument("--systems", default="vanilla,apparate",
                       help="comma-separated registered systems to run at "
                            "every grid point")
    sweep.add_argument("--requests", type=int, default=2000)
    sweep.add_argument("--rate", type=float, default=None)
    sweep.add_argument("--platform", default="clockwork",
                       choices=["clockwork", "tfserve"])
    sweep.add_argument("--replicas", default="1,2,4",
                       help="comma-separated replica counts (e.g. 1,2,4)")
    sweep.add_argument("--balancer", default=None,
                       help="comma-separated balancer names to sweep")
    sweep.add_argument("--fleet-mode", default=None,
                       help="comma-separated fleet modes to sweep "
                            "(independent,shared)")
    sweep.add_argument("--autoscaler", default=None,
                       help="comma-separated autoscaling policies to sweep "
                            f"({','.join(AUTOSCALER_NAMES)})")
    sweep.add_argument("--min-replicas", type=int, default=None,
                       help="lower fleet bound applied at every grid point "
                            "(bounds the decode pool in disaggregated grids)")
    sweep.add_argument("--max-replicas", type=int, default=None,
                       help="upper fleet bound applied at every grid point "
                            "(bounds the decode pool in disaggregated grids)")
    sweep.add_argument("--replica-profiles", default=None,
                       help="per-replica speed[:cost] list applied at every "
                            "grid point (must match the replica counts swept; "
                            "profiles the decode pool in disaggregated grids)")
    sweep.add_argument("--disaggregate", action="store_true",
                       help="run every grid point on disaggregated "
                            "prefill/decode pools (generative models only)")
    sweep.add_argument("--prefill-replicas", default=None,
                       help="comma-separated prefill pool sizes to sweep "
                            "(implies --disaggregate)")
    sweep.add_argument("--decode-replicas", default=None,
                       help="comma-separated decode pool sizes to sweep "
                            "(implies --disaggregate)")
    sweep.add_argument("--kv-capacity", default=None,
                       help="comma-separated per-replica KV-cache budgets in "
                            "bytes to sweep (generative models only)")
    sweep.add_argument("--prefix-groups", default=None,
                       help="comma-separated shared-prefix group counts to "
                            "sweep (generative workloads only; 0 = no "
                            "prefix structure)")
    sweep.add_argument("--prefix-share", type=float, default=None,
                       help="fraction of sequences in a shared-prefix group, "
                            "applied at every grid point (default: 0.8)")
    sweep.add_argument("--prefix-tokens", type=int, default=None,
                       help="shared-prefix length in tokens, applied at "
                            "every grid point (default: 256)")
    sweep.add_argument("--tenants", default=None,
                       help="tenant mix(es); separate grid values with '|' "
                            "(an empty segment means no tenants), e.g. "
                            "'chat:weight=4;batch:priority=batch|'")
    sweep.add_argument("--tenant-policy", default=None,
                       choices=list(TENANT_POLICIES),
                       help="tenant dispatch discipline applied at every "
                            "grid point (default: weighted_fair)")
    sweep.add_argument("--faults", default=None,
                       help="fault schedule(s); separate grid values with "
                            "'|' (an empty segment means fault-free), e.g. "
                            "'2000:1000|'")
    sweep.add_argument("--accuracy-constraint", type=float, default=0.01)
    sweep.add_argument("--ramp-budget", type=float, default=0.02)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--workers", type=int, default=None,
                       help="run grid points on N worker processes "
                            "(default: serial in this process); results are "
                            "bit-identical to serial")
    sweep.add_argument("--executor", choices=("serial", "process"),
                       default=None,
                       help="sweep backend (default: process when "
                            "--workers > 1, else serial)")
    sweep.add_argument("--json", action="store_true",
                       help="print the SweepReport as JSON instead of a table")
    return parser


def _cmd_models(_args: argparse.Namespace) -> int:
    print(f"{'name':<18s} {'task':<20s} {'params (M)':>11s} {'bs=1 (ms)':>10s} {'SLO (ms)':>9s}")
    for spec in list_models():
        slo = f"{spec.default_slo_ms:.1f}" if spec.default_slo_ms else "-"
        print(f"{spec.name:<18s} {spec.task.value:<20s} {spec.params_millions:11.1f} "
              f"{spec.bs1_latency_ms:10.1f} {slo:>9s}")
    return 0


def _print_win_line(report: RunReport) -> None:
    """Print the headline vanilla-vs-Apparate win when both systems ran."""
    systems = report.systems()
    if "vanilla" not in systems or "apparate" not in systems:
        return
    v, a = report.result("vanilla").summary, report.result("apparate").summary
    if report.kind in ("generative", "generative_cluster", "generative_disagg"):
        win = 100.0 * (v["tpt_p50_ms"] - a["tpt_p50_ms"]) / max(v["tpt_p50_ms"], 1e-9)
        details = report.result("apparate").details
        print(f"median TPT win: {win:.1f}%  (ramp depth {details['ramp_depth']:.2f}, "
              f"threshold {details['threshold']:.2f})")
        if report.kind in ("generative_cluster", "generative_disagg"):
            p99_win = 100.0 * (v["token_p99_ms"] - a["token_p99_ms"]) \
                / max(v["token_p99_ms"], 1e-9)
            print(f"per-token p99 win: {p99_win:.1f}%  "
                  f"({a['deferred_flushes']:.0f} deferred flushes)")
        if report.kind == "generative_disagg":
            ttft_win = 100.0 * (v["ttft_p99_ms"] - a["ttft_p99_ms"]) \
                / max(v["ttft_p99_ms"], 1e-9)
            print(f"TTFT p99 win: {ttft_win:.1f}%")
    else:
        win = 100.0 * (v["p50_ms"] - a["p50_ms"]) / max(v["p50_ms"], 1e-9)
        print(f"median latency win: {win:.1f}%")


def _print_dispatch_lines(report: RunReport) -> None:
    """Per-replica dispatch counts for every cluster system that reports them."""
    counts = {r.system: r.details["dispatch_counts"] for r in report.results
              if r.details.get("dispatch_counts")}
    if not counts:
        return
    replicas = max(len(c) for c in counts.values())
    for i in range(replicas):
        cells = " ".join(f"{system}={c[i]}" for system, c in counts.items()
                         if i < len(c))
        print(f"replica {i}: {cells} requests dispatched")


def _print_fleet_size_lines(report: RunReport) -> None:
    """Fleet-size trajectory + replica-seconds for systems that scaled."""
    for result in report.results:
        timeline = result.details.get("fleet_timeline") or []
        sizes = [int(n) for _, n in timeline]
        if len(set(sizes)) <= 1:
            continue
        trajectory = [sizes[0]] + [n for prev, n in zip(sizes, sizes[1:])
                                   if n != prev]
        print(f"{result.system} fleet size: "
              + " -> ".join(str(n) for n in trajectory)
              + f" (peak {max(sizes)}), "
              f"{result.details.get('replica_seconds', 0.0):.1f} replica-seconds, "
              f"{result.details.get('rerouted', 0)} rerouted")


def _print_pool_lines(report: RunReport) -> None:
    """Prefill-pool trajectory + TTFT pipeline stages for disagg systems."""
    for result in report.results:
        timeline = result.details.get("prefill_fleet_timeline")
        if timeline is None:
            continue
        sizes = [int(n) for _, n in timeline] or [0]
        trajectory = [sizes[0]] + [n for prev, n in zip(sizes, sizes[1:])
                                   if n != prev]
        summary = result.summary
        print(f"{result.system} prefill pool: "
              + " -> ".join(str(n) for n in trajectory)
              + f" (peak {max(sizes)}), "
              f"{result.details.get('prefill_replica_seconds', 0.0):.1f} "
              f"replica-seconds; "
              f"prefill delay {summary.get('prefill_delay_mean_ms', 0.0):.1f}ms, "
              f"KV transfer {summary.get('transfer_ms_mean', 0.0):.2f}ms, "
              f"TTFT p99 {summary.get('ttft_p99_ms', 0.0):.1f}ms, "
              f"{summary.get('shed', 0.0):.0f} shed")


def _print_tenant_lines(report: RunReport) -> None:
    """Fault-injection churn and the per-tenant rollup table, when present."""
    for result in report.results:
        crashes = result.details.get("crashes")
        if crashes is not None:
            print(f"{result.system} faults: {crashes} crashes, "
                  f"{result.details.get('recoveries', 0)} recoveries, "
                  f"{result.details.get('requeued', 0)} requeued")
        rollups = result.details.get("tenant_rollups")
        if not rollups:
            continue
        print(f"{result.system} tenants:")
        if "sequences" in next(iter(rollups.values())):
            print(f"  {'tenant':<14s} {'seqs':>6s} {'served':>6s} "
                  f"{'tokens':>8s} {'shed%':>6s} {'ttft p99':>10s} "
                  f"{'token p99':>10s}")
            for name, stats in rollups.items():
                print(f"  {name:<14s} {stats['sequences']:6.0f} "
                      f"{stats['served']:6.0f} {stats['tokens']:8.0f} "
                      f"{100.0 * stats['shed_rate']:5.1f}% "
                      f"{stats['ttft_p99_ms']:8.1f}ms "
                      f"{stats['token_p99_ms']:8.1f}ms")
        else:
            print(f"  {'tenant':<14s} {'reqs':>6s} {'served':>6s} "
                  f"{'drop%':>6s} {'p99':>9s} {'slo-att':>8s} "
                  f"{'goodput':>9s}")
            for name, stats in rollups.items():
                print(f"  {name:<14s} {stats['requests']:6.0f} "
                      f"{stats['served']:6.0f} "
                      f"{100.0 * stats['drop_rate']:5.1f}% "
                      f"{stats['p99_ms']:7.1f}ms "
                      f"{100.0 * stats['slo_attainment']:7.1f}% "
                      f"{stats['goodput_qps']:7.1f}/s")


def _print_kv_lines(report: RunReport) -> None:
    """Per-system KV-cache rollup for runs with a capacity budget."""
    for result in report.results:
        kv = result.details.get("kv_cache")
        if not kv:
            continue
        print(f"{result.system} kv-cache: {100.0 * kv['hit_rate']:.1f}% hit "
              f"({kv['hit_tokens']} of "
              f"{kv['hit_tokens'] + kv['miss_tokens']} tokens), "
              f"{kv['evictions']} evictions "
              f"({kv['evicted_tokens']} tokens), "
              f"{kv['recompute_tokens']} recomputed")


def _print_fleet_stats(report: RunReport) -> None:
    """EE-control adaptation stats for cluster systems that carry them."""
    for result in report.results:
        summary = result.summary
        if "num_controllers" not in summary:
            continue
        mode = result.details.get("fleet_mode", "independent")
        print(f"fleet controllers: {summary['num_controllers']:.0f} ({mode}), "
              f"{summary['threshold_tunings']:.0f} threshold tunings, "
              f"{summary['ramp_adjustments']:.0f} ramp adjustments")


def _trace_spec(args: argparse.Namespace):
    """The ``Experiment.trace`` knob for the parsed CLI flags (or ``None``)."""
    if not (args.trace or args.trace_out):
        if args.gauge_interval is not None:
            raise ValueError("--gauge-interval requires --trace or --trace-out")
        return None
    from repro.obs import TraceSpec
    if args.gauge_interval is not None:
        return TraceSpec(gauge_interval_ms=float(args.gauge_interval))
    return TraceSpec()


def _print_obs_lines(report: RunReport) -> None:
    """Per-system phase-breakdown tables for traced runs."""
    from repro.obs import format_phase_table
    for result in report.results:
        obs = result.details.get("obs")
        if not obs or not obs.get("phases"):
            continue
        spans = obs["spans"]
        outcomes = " ".join(f"{k}={v}" for k, v in spans["outcomes"].items())
        print(f"{result.system} spans: {spans['total']} "
              f"({outcomes or 'none closed'})")
        print("\n".join("  " + line for line in
                        format_phase_table(obs["phases"]).splitlines()))


def _write_traces(report: RunReport, path: str) -> None:
    """One Chrome trace file per traced system under ``--trace-out``."""
    from repro.obs import write_chrome_trace
    traced = [r for r in report.results if r.trace is not None]
    root, ext = os.path.splitext(path)
    for result in traced:
        out = path if len(traced) == 1 else f"{root}.{result.system}{ext}"
        write_chrome_trace(result.trace, out)
        print(f"wrote {result.system} trace to {out}", file=sys.stderr)


def _tenancy_header(cluster: Optional[ClusterSpec]) -> str:
    parts = ""
    if cluster is not None and cluster.tenants is not None:
        parts += f" tenants={cluster.tenants.describe()}"
    if cluster is not None and cluster.faults is not None:
        parts += f" faults={cluster.faults.describe()}"
    return parts


def _classification_experiment(args: argparse.Namespace) -> Experiment:
    spec = get_model(args.model)
    if spec.task is Task.GENERATIVE:
        raise ValueError(f"{spec.name} is generative; use the 'generate' command")
    workload = WorkloadSpec.parse(args.workload, requests=args.requests,
                                  rate=args.rate)
    ee = ExitPolicySpec(accuracy_constraint=args.accuracy_constraint,
                        ramp_budget=args.ramp_budget)
    replicas = int(args.replicas)
    cluster: Optional[ClusterSpec] = None
    fleet_flags = any(value is not None for value in
                      (args.autoscaler, args.min_replicas, args.max_replicas,
                       args.replica_profiles, args.tenants, args.faults))
    if replicas != 1 or fleet_flags:
        cluster = ClusterSpec(replicas=replicas,
                              balancer=args.balancer or "round_robin",
                              fleet_mode=args.fleet_mode or "independent",
                              autoscaler=args.autoscaler or "none",
                              min_replicas=args.min_replicas,
                              max_replicas=args.max_replicas,
                              profiles=args.replica_profiles,
                              tenants=args.tenants,
                              tenant_policy=args.tenant_policy or "weighted_fair",
                              faults=args.faults)
    elif args.balancer or args.fleet_mode:
        print("note: --balancer/--fleet-mode only apply to cluster serving; "
              "pass --replicas N (N > 1) to enable it", file=sys.stderr)
    return Experiment(model=spec, workload=workload, cluster=cluster, ee=ee,
                      platform=args.platform, seed=args.seed,
                      trace=_trace_spec(args))


def _cmd_classify(args: argparse.Namespace) -> int:
    experiment = _classification_experiment(args)
    report = experiment.run(_split_csv(args.systems))
    if args.trace_out:
        _write_traces(report, args.trace_out)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
        return 0
    header = (f"model={experiment.spec.name} workload={args.workload} "
              f"platform={args.platform} requests={args.requests}")
    if experiment.cluster is not None:
        cluster = experiment.cluster
        header += (f" replicas={cluster.replicas} balancer={cluster.balancer_name()} "
                   f"fleet-mode={cluster.fleet_mode}")
        if cluster.autoscaler_name() != "none":
            header += (f" autoscaler={cluster.autoscaler_name()}"
                       f"[{cluster.resolved_min_replicas()}"
                       f"..{cluster.resolved_max_replicas()}]")
    header += _tenancy_header(experiment.cluster)
    print(header)
    print(report.format_table())
    _print_dispatch_lines(report)
    _print_fleet_size_lines(report)
    _print_fleet_stats(report)
    _print_tenant_lines(report)
    _print_obs_lines(report)
    _print_win_line(report)
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = get_model(args.model)
    if not spec.is_generative:
        raise ValueError(f"{spec.name} is not generative; use the 'classify' command")
    systems = _split_csv(args.systems)
    if args.with_baselines:
        systems += [name for name in ("free", "optimal") if name not in systems]
    workload = WorkloadSpec(kind="generative", source=args.dataset,
                            requests=args.sequences, rate=args.rate,
                            prefix_groups=args.prefix_groups or 0,
                            prefix_share=args.prefix_share
                            if args.prefix_share is not None else 0.8,
                            prefix_tokens=args.prefix_tokens
                            if args.prefix_tokens is not None else 256)
    replicas = int(args.replicas)
    cluster: Optional[ClusterSpec] = None
    if args.ttft_slo is not None and args.ttft_slo <= 0:
        # An explicit flag value gets explicit validation (the zero-means-off
        # rule exists only to absorb model default_slo_ms=0.0 internally).
        raise ValueError(f"--ttft-slo must be positive, got {args.ttft_slo}")
    disagg_flags = args.disaggregate or any(
        value is not None for value in
        (args.prefill_replicas, args.decode_replicas,
         args.prefill_autoscaler, args.decode_autoscaler))
    fleet_flags = args.prefill_in_slot or any(
        value is not None for value in
        (args.autoscaler, args.min_replicas, args.max_replicas,
         args.replica_profiles, args.tenants, args.faults,
         args.kv_capacity))
    if disagg_flags and args.prefill_in_slot:
        raise ValueError("--prefill-in-slot is the monolithic deployment; "
                         "it cannot be combined with --disaggregate")
    if disagg_flags:
        # Fleet-wide --min/--max-replicas and --replica-profiles apply to the
        # decode pool (the pool --replicas sizes by default); the prefill
        # pool is bounded by its own autoscaler band.
        cluster = ClusterSpec(replicas=replicas,
                              balancer=args.balancer or "round_robin",
                              fleet_mode=args.fleet_mode or "independent",
                              autoscaler=args.autoscaler or "none",
                              disaggregate=True,
                              prefill_replicas=args.prefill_replicas,
                              decode_replicas=args.decode_replicas,
                              prefill_autoscaler=args.prefill_autoscaler,
                              decode_autoscaler=args.decode_autoscaler,
                              decode_min_replicas=args.min_replicas,
                              decode_max_replicas=args.max_replicas,
                              decode_profiles=args.replica_profiles,
                              kv_capacity=args.kv_capacity,
                              tenants=args.tenants,
                              tenant_policy=args.tenant_policy or "weighted_fair",
                              faults=args.faults)
    elif replicas != 1 or fleet_flags:
        cluster = ClusterSpec(replicas=replicas,
                              balancer=args.balancer or "round_robin",
                              fleet_mode=args.fleet_mode or "independent",
                              autoscaler=args.autoscaler or "none",
                              min_replicas=args.min_replicas,
                              max_replicas=args.max_replicas,
                              profiles=args.replica_profiles,
                              prefill_in_slot=args.prefill_in_slot,
                              kv_capacity=args.kv_capacity,
                              tenants=args.tenants,
                              tenant_policy=args.tenant_policy or "weighted_fair",
                              faults=args.faults)
    elif args.balancer or args.fleet_mode:
        print("note: --balancer/--fleet-mode only apply to cluster serving; "
              "pass --replicas N (N > 1) to enable it", file=sys.stderr)
    experiment = Experiment(
        model=spec, workload=workload, cluster=cluster,
        ee=ExitPolicySpec(accuracy_constraint=args.accuracy_constraint),
        slo_ms=args.ttft_slo, seed=args.seed, trace=_trace_spec(args))
    report = experiment.run(systems)
    if args.trace_out:
        _write_traces(report, args.trace_out)
    if args.json:
        print(json.dumps(report.to_json(), indent=2))
        return 0
    header = f"model={spec.name} dataset={args.dataset} sequences={args.sequences}"
    if cluster is not None and cluster.disaggregate:
        prefill_band = cluster.resolved_prefill_band()
        decode_band = cluster.resolved_decode_band()
        header += (f" disaggregated prefill={cluster.resolved_prefill_replicas()}"
                   f"[{prefill_band[0]}..{prefill_band[1]},"
                   f"{cluster.prefill_autoscaler_name()}]"
                   f" decode={cluster.resolved_decode_replicas()}"
                   f"[{decode_band[0]}..{decode_band[1]},"
                   f"{cluster.decode_autoscaler_name()}]")
    elif cluster is not None:
        header += (f" replicas={cluster.replicas} "
                   f"balancer={cluster.balancer_name()} "
                   f"fleet-mode={cluster.fleet_mode}")
        if cluster.autoscaler_name() != "none":
            header += (f" autoscaler={cluster.autoscaler_name()}"
                       f"[{cluster.resolved_min_replicas()}"
                       f"..{cluster.resolved_max_replicas()}]")
    if cluster is not None and cluster.kv_capacity is not None:
        header += f" kv-capacity={cluster.kv_capacity:.4g}B"
    if workload.prefix_groups:
        header += (f" prefix={workload.prefix_groups}x"
                   f"{workload.prefix_tokens}tok"
                   f"@{workload.prefix_share:.0%}")
    header += _tenancy_header(cluster)
    print(header)
    print(report.format_table())
    _print_dispatch_lines(report)
    _print_fleet_size_lines(report)
    _print_pool_lines(report)
    _print_kv_lines(report)
    _print_tenant_lines(report)
    _print_obs_lines(report)
    _print_win_line(report)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = get_model(args.model)
    default_workload = "generative:cnn-dailymail" if spec.is_generative \
        else "video:urban-day"
    workload = WorkloadSpec.parse(args.workload or default_workload,
                                  requests=args.requests, rate=args.rate)
    experiment = Experiment(
        model=spec, workload=workload,
        ee=ExitPolicySpec(accuracy_constraint=args.accuracy_constraint,
                          ramp_budget=args.ramp_budget),
        platform=args.platform, seed=args.seed)
    disaggregated = bool(args.disaggregate or args.prefill_replicas
                         or args.decode_replicas)
    grid = {"replicas": _parse_int_list(args.replicas, "--replicas")}
    if args.balancer:
        grid["balancer"] = [_balancer_arg(b) for b in _split_csv(args.balancer)]
    if args.fleet_mode:
        grid["fleet_mode"] = _split_csv(args.fleet_mode)
    if args.autoscaler:
        grid["autoscaler"] = _split_csv(args.autoscaler)
    # Fleet-wide bounds/profiles target the decode pool in disaggregated
    # grids (matching the 'generate' command's remapping) — the ClusterSpec
    # fleet-wide keys are rejected as dead configuration there.
    if args.min_replicas is not None:
        grid["decode_min_replicas" if disaggregated
             else "min_replicas"] = args.min_replicas
    if args.max_replicas is not None:
        grid["decode_max_replicas" if disaggregated
             else "max_replicas"] = args.max_replicas
    if args.replica_profiles:
        grid["decode_profiles" if disaggregated
             else "profiles"] = args.replica_profiles
    if disaggregated:
        grid["disaggregate"] = True
    if args.prefill_replicas:
        grid["prefill_replicas"] = _parse_int_list(args.prefill_replicas,
                                                   "--prefill-replicas")
    if args.decode_replicas:
        grid["decode_replicas"] = _parse_int_list(args.decode_replicas,
                                                  "--decode-replicas")
    if args.kv_capacity:
        grid["kv_capacity"] = _parse_float_list(args.kv_capacity,
                                                "--kv-capacity")
    if args.prefix_groups:
        grid["prefix_groups"] = _parse_int_list(args.prefix_groups,
                                                "--prefix-groups")
    if args.prefix_share is not None:
        grid["prefix_share"] = args.prefix_share
    if args.prefix_tokens is not None:
        grid["prefix_tokens"] = args.prefix_tokens
    # '|' separates grid values for tenants/faults (the specs themselves use
    # ',' and ';'); an empty segment sweeps the off state.
    if args.tenants is not None:
        mixes = [m.strip() or None for m in args.tenants.split("|")]
        grid["tenants"] = mixes if len(mixes) > 1 else mixes[0]
    if args.tenant_policy is not None:
        grid["tenant_policy"] = args.tenant_policy
    if args.faults is not None:
        schedules = [f.strip() or None for f in args.faults.split("|")]
        grid["faults"] = schedules if len(schedules) > 1 else schedules[0]
    # Live per-point progress on stderr (table mode only: --json output must
    # stay a single parseable document, and stderr keeps pipelines clean).
    progress = None if args.json else _sweep_progress_printer()
    sweep = experiment.sweep(systems=_split_csv(args.systems),
                             workers=args.workers, executor=args.executor,
                             progress=progress, **grid)
    if args.json:
        print(json.dumps(sweep.to_json(), indent=2))
        return 0
    axis_sizes = [len(v) if isinstance(v, (list, tuple)) else 1
                  for v in grid.values()]
    print(f"model={spec.name} workload={workload.kind}:{workload.resolved_source()} "
          f"platform={args.platform} requests={args.requests} "
          f"grid={'x'.join(str(n) for n in axis_sizes)}")
    print(sweep.format_table())
    failed = sweep.errors()
    for point in failed:
        print(f"FAILED {point.params}: {point.error['type']}: "
              f"{point.error['message']}", file=sys.stderr)
    return 1 if failed else 0


def _sweep_progress_printer():
    """A progress callback printing one line per finished grid point."""
    def emit(outcome, done: int, total: int) -> None:
        params = " ".join(f"{k}={v}" for k, v in outcome.params.items())
        status = "ok" if outcome.error is None \
            else f"ERROR {outcome.error['type']}: {outcome.error['message']}"
        cache = ""
        if outcome.cache is not None:
            # Whether this point reused a sibling's materialized workload
            # trace ("hit"), paid to generate its own ("miss"), or arrived
            # with the parent's pre-materialized workload attached ("warm").
            hits, misses = outcome.cache["hits"], outcome.cache["misses"]
            tag = "miss" if misses else ("hit" if hits else "warm")
            cache = f" trace-cache {tag} ({hits}h/{misses}m)"
        print(f"[{done}/{total}] {params} {status} "
              f"{outcome.wall_s:.2f}s{cache}",
              file=sys.stderr, flush=True)
    return emit


_COMMANDS = {
    "models": _cmd_models,
    "classify": _cmd_classify,
    "generate": _cmd_generate,
    "sweep": _cmd_sweep,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-apparate`` console script.

    The API layer signals every invalid configuration with ``ValueError``;
    this is the single place it becomes a ``SystemExit`` for the shell.
    """
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}")


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
