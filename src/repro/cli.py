"""Command-line interface for the Apparate reproduction.

Three subcommands cover the common flows without writing any Python:

``repro-apparate models``
    List the registered model zoo (Table 5 latencies, SLOs, tasks).

``repro-apparate classify --model resnet50 --workload video:urban-day``
    Serve a classification workload with and without Apparate and print the
    latency/accuracy/throughput comparison.  With ``--replicas N`` (plus
    ``--balancer`` and ``--fleet-mode``) the same comparison runs on an
    N-replica cluster behind a load balancer.

``repro-apparate generate --model t5-large --dataset cnn-dailymail``
    Serve a generative workload with Apparate, FREE and the optimal oracle and
    print the time-per-token comparison.

The CLI is intentionally a thin veneer over the public API (`repro.core.*`);
every option maps one-to-one to a keyword argument documented there.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.baselines.free import run_free_generative
from repro.baselines.oracle import run_optimal_generative
from repro.core.generative import run_generative_apparate, run_generative_vanilla
from repro.core.pipeline import (run_apparate, run_apparate_cluster,
                                 run_vanilla, run_vanilla_cluster)
from repro.serving.cluster import BALANCER_NAMES
from repro.generative.sequences import make_generative_workload
from repro.models.zoo import Task, get_model, list_models
from repro.workloads.nlp import make_nlp_workload
from repro.workloads.video import make_video_workload

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-apparate",
        description="Apparate (SOSP 2024) reproduction: early exits for ML serving.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the registered model zoo")

    classify = sub.add_parser("classify", help="serve a classification workload")
    classify.add_argument("--model", default="resnet50",
                          help="registered model name (see the 'models' command)")
    classify.add_argument("--workload", default="video:urban-day",
                          help="'video:<scene>' or 'nlp:<dataset>'")
    classify.add_argument("--requests", type=int, default=4000,
                          help="number of requests to serve")
    classify.add_argument("--rate", type=float, default=None,
                          help="arrival rate in qps (video default: 30 fps)")
    classify.add_argument("--platform", default="clockwork",
                          choices=["clockwork", "tfserve"])
    classify.add_argument("--accuracy-constraint", type=float, default=0.01)
    classify.add_argument("--ramp-budget", type=float, default=0.02)
    classify.add_argument("--seed", type=int, default=0)
    classify.add_argument("--replicas", type=int, default=1,
                          help="number of model replicas (>1 enables cluster serving)")
    classify.add_argument("--balancer", default=None,
                          choices=list(BALANCER_NAMES),
                          help="load-balancing policy for cluster serving "
                               "(default: round_robin)")
    classify.add_argument("--fleet-mode", default=None,
                          choices=["independent", "shared"],
                          help="EE control topology: one controller per replica "
                               "(independent, the default) or one shared fleet "
                               "controller with periodic sync")

    generate = sub.add_parser("generate", help="serve a generative workload")
    generate.add_argument("--model", default="t5-large")
    generate.add_argument("--dataset", default="cnn-dailymail",
                          choices=["cnn-dailymail", "squad"])
    generate.add_argument("--sequences", type=int, default=150)
    generate.add_argument("--rate", type=float, default=2.0)
    generate.add_argument("--accuracy-constraint", type=float, default=0.01)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--with-baselines", action="store_true",
                          help="also run the FREE baseline and the optimal oracle")
    return parser


def _cmd_models(_args: argparse.Namespace) -> int:
    print(f"{'name':<18s} {'task':<20s} {'params (M)':>11s} {'bs=1 (ms)':>10s} {'SLO (ms)':>9s}")
    for spec in list_models():
        slo = f"{spec.default_slo_ms:.1f}" if spec.default_slo_ms else "-"
        print(f"{spec.name:<18s} {spec.task.value:<20s} {spec.params_millions:11.1f} "
              f"{spec.bs1_latency_ms:10.1f} {slo:>9s}")
    return 0


def _build_classification_workload(args: argparse.Namespace):
    kind, _, source = args.workload.partition(":")
    source = source or ("urban-day" if kind == "video" else "amazon")
    if kind == "video":
        fps = args.rate if args.rate else 30.0
        return make_video_workload(source, num_frames=args.requests, fps=fps, seed=args.seed)
    if kind == "nlp":
        rate = args.rate if args.rate else 20.0
        return make_nlp_workload(source, num_requests=args.requests, rate_qps=rate,
                                 seed=args.seed)
    raise SystemExit(f"unknown workload kind {kind!r}; use 'video:<scene>' or 'nlp:<dataset>'")


def _cmd_classify_cluster(args: argparse.Namespace, spec, workload) -> int:
    balancer = args.balancer or "round_robin"
    fleet_mode = args.fleet_mode or "independent"
    vanilla = run_vanilla_cluster(spec, workload, replicas=args.replicas,
                                  balancer=balancer, platform=args.platform,
                                  seed=args.seed)
    apparate = run_apparate_cluster(spec, workload, replicas=args.replicas,
                                    balancer=balancer,
                                    fleet_mode=fleet_mode,
                                    platform=args.platform, seed=args.seed,
                                    accuracy_constraint=args.accuracy_constraint,
                                    ramp_budget=args.ramp_budget)
    v, a = vanilla.summary(), apparate.metrics.summary()
    print(f"model={spec.name} workload={args.workload} platform={args.platform} "
          f"replicas={args.replicas} balancer={balancer} "
          f"fleet-mode={fleet_mode} requests={args.requests}")
    print(f"{'fleet metric':<22s} {'vanilla':>12s} {'Apparate':>12s}")
    for key, label in [("p50_ms", "median latency"), ("p95_ms", "p95 latency"),
                       ("p99_ms", "p99 latency"), ("throughput_qps", "fleet throughput"),
                       ("accuracy", "accuracy"), ("drop_rate", "drop rate"),
                       ("dispatch_imbalance", "dispatch imbalance")]:
        print(f"{label:<22s} {v[key]:12.3f} {a[key]:12.3f}")
    print(f"{'exit rate':<22s} {'-':>12s} {a['exit_rate']:12.3f}")
    for i, (vc, ac) in enumerate(zip(vanilla.dispatch_counts,
                                     apparate.metrics.dispatch_counts)):
        print(f"replica {i}: vanilla={vc} apparate={ac} requests dispatched")
    stats = apparate.fleet.stats_summary()
    print(f"fleet controllers: {stats['num_controllers']:.0f} "
          f"({fleet_mode}), {stats['threshold_tunings']:.0f} threshold tunings, "
          f"{stats['ramp_adjustments']:.0f} ramp adjustments")
    return 0


def _cmd_classify(args: argparse.Namespace) -> int:
    spec = get_model(args.model)
    if spec.task is Task.GENERATIVE:
        raise SystemExit(f"{spec.name} is generative; use the 'generate' command")
    if args.replicas < 1:
        raise SystemExit("--replicas must be >= 1")
    if args.replicas == 1 and (args.balancer or args.fleet_mode):
        print("note: --balancer/--fleet-mode only apply to cluster serving; "
              "pass --replicas N (N > 1) to enable it", file=sys.stderr)
    workload = _build_classification_workload(args)
    if args.replicas > 1:
        return _cmd_classify_cluster(args, spec, workload)
    vanilla = run_vanilla(spec, workload, platform=args.platform, seed=args.seed)
    apparate = run_apparate(spec, workload, platform=args.platform, seed=args.seed,
                            accuracy_constraint=args.accuracy_constraint,
                            ramp_budget=args.ramp_budget)
    v, a = vanilla.summary(), apparate.summary()
    win = 100.0 * (v["p50_ms"] - a["p50_ms"]) / max(v["p50_ms"], 1e-9)
    print(f"model={spec.name} workload={args.workload} platform={args.platform} "
          f"requests={args.requests}")
    print(f"{'metric':<18s} {'vanilla':>12s} {'Apparate':>12s}")
    for key, label in [("p25_ms", "p25 latency"), ("p50_ms", "median latency"),
                       ("p95_ms", "p95 latency"), ("throughput_qps", "throughput"),
                       ("accuracy", "accuracy")]:
        print(f"{label:<18s} {v[key]:12.3f} {a[key]:12.3f}")
    print(f"{'exit rate':<18s} {'-':>12s} {a['exit_rate']:12.3f}")
    print(f"median latency win: {win:.1f}%")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    spec = get_model(args.model)
    if not spec.is_generative:
        raise SystemExit(f"{spec.name} is not generative; use the 'classify' command")
    workload = make_generative_workload(args.dataset, num_sequences=args.sequences,
                                        rate_qps=args.rate, seed=args.seed)
    vanilla = run_generative_vanilla(spec, workload, seed=args.seed)
    apparate = run_generative_apparate(spec, workload, seed=args.seed,
                                       accuracy_constraint=args.accuracy_constraint)
    rows = [("vanilla", vanilla), ("Apparate", apparate.metrics)]
    if args.with_baselines:
        rows.append(("FREE", run_free_generative(spec, workload, seed=args.seed)))
        rows.append(("optimal", run_optimal_generative(spec, workload, seed=args.seed)))
    print(f"model={spec.name} dataset={args.dataset} sequences={args.sequences}")
    print(f"{'system':<10s} {'TPT p25':>9s} {'TPT p50':>9s} {'TPT p95':>9s} "
          f"{'seq accuracy':>13s} {'exit rate':>10s}")
    for name, metrics in rows:
        summary = metrics.summary()
        print(f"{name:<10s} {summary['tpt_p25_ms']:9.2f} {summary['tpt_p50_ms']:9.2f} "
              f"{summary['tpt_p95_ms']:9.2f} {summary['sequence_accuracy']:13.3f} "
              f"{summary['exit_rate']:10.2%}")
    win = 100.0 * (vanilla.median_tpt() - apparate.metrics.median_tpt()) \
        / max(vanilla.median_tpt(), 1e-9)
    print(f"median TPT win: {win:.1f}%  (ramp depth {apparate.policy.ramp_depth:.2f}, "
          f"threshold {apparate.policy.threshold:.2f})")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-apparate`` console script."""
    args = build_parser().parse_args(argv)
    if args.command == "models":
        return _cmd_models(args)
    if args.command == "classify":
        return _cmd_classify(args)
    if args.command == "generate":
        return _cmd_generate(args)
    raise SystemExit(f"unknown command {args.command!r}")   # pragma: no cover


if __name__ == "__main__":   # pragma: no cover
    sys.exit(main())
