"""Statistics helpers shared by the controller, serving metrics and benches."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Sequence

import numpy as np

__all__ = [
    "percentile",
    "summarize_latencies",
    "WindowedAccuracy",
    "LatencyAccumulator",
]


def percentile(values: Sequence[float], pct: float) -> float:
    """Return the ``pct``-th percentile of ``values`` (empty -> 0.0)."""
    if len(values) == 0:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=float), pct))


def summarize_latencies(values: Sequence[float]) -> Dict[str, float]:
    """Return the latency summary used throughout the evaluation.

    Keys mirror the statistics the paper reports: 25th percentile, median,
    95th/99th percentile, mean and count.
    """
    arr = np.asarray(list(values), dtype=float)
    # Non-finite samples (e.g. sentinel NaNs from runs where nothing
    # completed) would poison every percentile; drop them so an empty or
    # degenerate run reports zeroed statistics instead of NaN/raising.
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        return {"p25": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "count": 0}
    # One vectorized quantile pass: np.percentile sorts (partitions) per
    # call, so a single call over all four ranks does a quarter of the work
    # of four separate calls — this runs once per batch flush fleet-wide.
    p25, p50, p95, p99 = np.percentile(arr, (25.0, 50.0, 95.0, 99.0))
    return {
        "p25": float(p25),
        "p50": float(p50),
        "p95": float(p95),
        "p99": float(p99),
        "mean": float(arr.mean()),
        "count": int(arr.size),
    }


class WindowedAccuracy:
    """Sliding-window accuracy monitor.

    Apparate triggers threshold tuning whenever the accuracy of exited results
    over the most recent ``window`` samples (16 in the paper) drops below the
    user constraint.  ``record`` ingests one sample; ``accuracy`` returns the
    current window accuracy (1.0 when the window is empty so that a cold start
    never triggers tuning).
    """

    def __init__(self, window: int = 16) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = int(window)
        self._hits: Deque[bool] = deque(maxlen=self.window)

    def record(self, correct: bool) -> None:
        self._hits.append(bool(correct))

    def accuracy(self) -> float:
        if not self._hits:
            return 1.0
        return sum(self._hits) / len(self._hits)

    def full(self) -> bool:
        return len(self._hits) == self.window

    def reset(self) -> None:
        self._hits.clear()

    def __len__(self) -> int:
        return len(self._hits)


@dataclass
class LatencyAccumulator:
    """Accumulates per-request latencies and exposes summary statistics."""

    values: List[float] = field(default_factory=list)

    def add(self, latency: float) -> None:
        self.values.append(float(latency))

    def extend(self, latencies: Iterable[float]) -> None:
        self.values.extend(float(v) for v in latencies)

    def summary(self) -> Dict[str, float]:
        return summarize_latencies(self.values)

    def median(self) -> float:
        return percentile(self.values, 50)

    def p95(self) -> float:
        return percentile(self.values, 95)

    def p25(self) -> float:
        return percentile(self.values, 25)

    def mean(self) -> float:
        if not self.values:
            return 0.0
        return float(np.mean(self.values))

    def __len__(self) -> int:
        return len(self.values)


def savings_percent(baseline: float, improved: float) -> float:
    """Relative latency saving (%) of ``improved`` over ``baseline``."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline
