"""Deterministic random-number management.

Every stochastic component in the simulator (workload difficulty processes,
arrival traces, prediction noise) draws from a generator produced by an
:class:`RngFactory`.  A factory is created from a single integer seed and hands
out independent, reproducible streams keyed by a string label, so that adding
a new consumer of randomness never perturbs the streams of existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "RngFactory"]


def derive_seed(base_seed: int, label: str) -> int:
    """Derive a stable 63-bit child seed from ``base_seed`` and ``label``.

    The derivation hashes both inputs so that streams with different labels
    are statistically independent while remaining fully reproducible.
    """
    digest = hashlib.sha256(f"{base_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)


class RngFactory:
    """Factory of named, independent :class:`numpy.random.Generator` streams.

    Parameters
    ----------
    seed:
        Root seed for the whole experiment.  Two factories constructed with
        the same seed produce identical streams for identical labels.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def generator(self, label: str) -> np.random.Generator:
        """Return a fresh generator for ``label`` (always the same sequence)."""
        return np.random.default_rng(derive_seed(self.seed, label))

    def spawn(self, label: str) -> "RngFactory":
        """Return a child factory whose streams are independent of this one."""
        return RngFactory(derive_seed(self.seed, f"spawn:{label}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self.seed})"
