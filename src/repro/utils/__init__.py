"""Shared utilities: seeded randomness, windowed statistics, event primitives."""

from repro.utils.rng import RngFactory, derive_seed
from repro.utils.stats import (
    LatencyAccumulator,
    WindowedAccuracy,
    percentile,
    summarize_latencies,
)

__all__ = [
    "RngFactory",
    "derive_seed",
    "LatencyAccumulator",
    "WindowedAccuracy",
    "percentile",
    "summarize_latencies",
]
