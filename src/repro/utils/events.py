"""Minimal discrete-event primitives used by the serving simulators."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Event", "EventQueue", "SimClock"]


@dataclass(order=True)
class Event:
    """A scheduled event: fires ``callback(payload)`` at ``time``."""

    time: float
    order: int
    callback: Callable[[Any], None] = field(compare=False)
    payload: Any = field(default=None, compare=False)


class EventQueue:
    """Priority queue of timestamped events with stable FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: Callable[[Any], None], payload: Any = None) -> None:
        heapq.heappush(self._heap, Event(float(time), next(self._counter), callback, payload))

    def pop(self) -> Event:
        return heapq.heappop(self._heap)

    def peek_time(self) -> Optional[float]:
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class SimClock:
    """Monotonic simulation clock (milliseconds)."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, time: float) -> None:
        if time < self._now - 1e-9:
            raise ValueError(f"clock cannot move backwards: {time} < {self._now}")
        self._now = max(self._now, float(time))

    def advance_by(self, delta: float) -> float:
        if delta < 0:
            raise ValueError("delta must be non-negative")
        self._now += float(delta)
        return self._now
