"""Per-tenant metric rollups.

The cluster runners attach these to their metrics objects after a run:
``request_rollups`` summarizes classification responses per tenant
(goodput, p50/p99, drop and SLO-attainment rates against each tenant's
effective SLO), ``sequence_rollups`` summarizes generative token records
(TTFT p99, token-latency p99, shed rate, accuracy — the same definitions
as :class:`~repro.serving.hf_pipelines.GenerativeMetrics`, filtered by
tenant).  :func:`isolation_ratios` compares a tenant's tail latency under
mixed load against its solo baseline — the isolation guarantee a
weighted-fair dispatcher is supposed to deliver.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.tenancy.schedule import TenantRuntime

__all__ = ["request_rollups", "sequence_rollups", "isolation_ratios",
           "tenant_backlog"]


def tenant_backlog(item_ids: Iterable[int],
                   tenant_of: Dict[int, str]) -> Dict[str, int]:
    """Count queued items per tenant (items without a tenant are skipped).

    Shared by the gauge samplers: each platform walks its queues and feeds
    the ids here, so the ``tenant_backlog`` time series uses one definition
    across classification, generative and disaggregated runs.
    """
    backlog: Dict[str, int] = {}
    for item_id in item_ids:
        name = tenant_of.get(item_id)
        if name is not None:
            backlog[name] = backlog.get(name, 0) + 1
    return backlog


def _percentile(values: Iterable[float], q: float) -> float:
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, q))


def request_rollups(responses, runtime: Optional[TenantRuntime],
                    default_slo_ms: float,
                    makespan_ms: float) -> Dict[str, Dict[str, float]]:
    """Per-tenant rollup of classification responses."""
    if runtime is None:
        return {}
    tenant_of = runtime.tenant_of
    buckets: Dict[str, list] = {name: [] for name in runtime.config.names}
    for response in responses:
        name = tenant_of.get(response.request_id)
        if name is not None:
            buckets[name].append(response)
    rollups: Dict[str, Dict[str, float]] = {}
    span_s = max(makespan_ms, 1e-9) / 1000.0
    for name, rows in buckets.items():
        slo = runtime.slo_of.get(name)
        slo = default_slo_ms if slo is None else slo
        served = [r for r in rows if not r.dropped]
        met = sum(1 for r in rows if r.met_slo(slo))
        latencies = [r.latency_ms for r in served]
        rollups[name] = {
            "requests": float(len(rows)),
            "served": float(len(served)),
            "dropped": float(len(rows) - len(served)),
            "drop_rate": (len(rows) - len(served)) / len(rows) if rows else 0.0,
            "p50_ms": _percentile(latencies, 50.0),
            "p99_ms": _percentile(latencies, 99.0),
            "slo_ms": float(slo),
            "slo_attainment": met / len(rows) if rows else 1.0,
            "goodput_qps": met / span_s,
        }
    return rollups


def sequence_rollups(metrics, runtime: Optional[TenantRuntime]) -> Dict[str, Dict[str, float]]:
    """Per-tenant rollup of a :class:`GenerativeMetrics` aggregate."""
    if runtime is None:
        return {}
    tenant_of = runtime.tenant_of
    names = runtime.config.names
    delays = metrics.queueing_delays_ms
    token_latencies: Dict[str, list] = {name: [] for name in names}
    ttfts: Dict[str, list] = {name: [] for name in names}
    token_counts: Dict[str, int] = {name: 0 for name in names}
    for record in metrics.tokens:
        name = tenant_of.get(record.sequence_id)
        if name is None:
            continue
        token_counts[name] += 1
        if record.token_index == 0:
            ttft = record.tpt_ms + delays.get(record.sequence_id, 0.0)
            ttfts[name].append(ttft)
            token_latencies[name].append(ttft)
        else:
            token_latencies[name].append(record.tpt_ms)
    served: Dict[str, list] = {name: [] for name in names}
    for seq_id, accuracy in metrics.sequence_accuracy.items():
        name = tenant_of.get(seq_id)
        if name is not None:
            served[name].append(accuracy)
    shed: Dict[str, int] = {name: 0 for name in names}
    for seq_id in metrics.shed_sequence_ids:
        name = tenant_of.get(seq_id)
        if name is not None:
            shed[name] += 1
    rollups: Dict[str, Dict[str, float]] = {}
    for name in names:
        num_served = len(served[name])
        total = num_served + shed[name]
        rollups[name] = {
            "sequences": float(total),
            "served": float(num_served),
            "tokens": float(token_counts[name]),
            "shed": float(shed[name]),
            "shed_rate": shed[name] / total if total else 0.0,
            "ttft_p99_ms": _percentile(ttfts[name], 99.0),
            "token_p99_ms": _percentile(token_latencies[name], 99.0),
            "sequence_accuracy": float(np.mean(served[name])) if served[name] else 1.0,
        }
    return rollups


def isolation_ratios(mixed: Dict[str, Dict[str, float]],
                     solo: Dict[str, Dict[str, float]],
                     metric: str = "p99_ms") -> Dict[str, float]:
    """Per-tenant ``mixed / solo`` ratio of a tail metric (1.0 = isolated).

    ``mixed`` comes from a run where all tenants share the fleet, ``solo``
    from per-tenant baseline runs.  A tenant absent from either side, or
    with a zero solo value, is skipped.
    """
    ratios: Dict[str, float] = {}
    for name, stats in mixed.items():
        base = solo.get(name, {}).get(metric, 0.0)
        if base > 0.0 and metric in stats:
            ratios[name] = stats[metric] / base
    return ratios
