"""Multi-tenant serving: tenant classes, fair dispatch, per-tenant rollups."""

from repro.tenancy.spec import (DEFAULT_TENANT, TENANT_POLICIES, TENANT_PRIORITIES,
                                TenancyConfig, TenantSpec, coerce_tenancy,
                                parse_tenants)
from repro.tenancy.schedule import (TenantRuntime, build_request_runtime,
                                    build_sequence_runtime)
from repro.tenancy.rollup import (isolation_ratios, request_rollups,
                                  sequence_rollups, tenant_backlog)

__all__ = ["TenantSpec", "TenancyConfig", "TENANT_POLICIES", "TENANT_PRIORITIES",
           "DEFAULT_TENANT", "parse_tenants", "coerce_tenancy", "TenantRuntime",
           "build_request_runtime", "build_sequence_runtime", "request_rollups",
           "sequence_rollups", "isolation_ratios", "tenant_backlog"]
