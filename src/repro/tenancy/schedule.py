"""Tenant assignment and dispatch ordering.

The runners call :func:`build_request_runtime` (classification) or
:func:`build_sequence_runtime` (generative / disaggregated) once per run,
before any simulation work.  Both walk the arrival-sorted workload,
assign every item a tenant (honouring pre-tagged items whose tag names a
configured tenant, drawing the rest from the tenants' traffic shares with
a seeded generator) and stamp each item with a *dispatch rank*:

* ``weighted_fair`` — a start-time-fair-queueing finish tag.  A virtual
  clock advances by ``1 / total_weight`` per arrival; tenant ``t``'s next
  item starts at ``max(virtual_now, last_finish[t])`` and finishes
  ``1 / weight[t]`` later.  Sorting queued work by the tag gives each
  backlogged tenant service proportional to its weight while idle tenants
  accumulate no credit (no starvation).
* ``strict_priority`` — the rank is the priority class index, so every
  queued ``interactive`` item precedes every queued ``batch`` item and
  order within a class stays FIFO.

Ranks are consumed in two ways: classification platforms sort their batch
queues by ``(rank, arrival_ms, request_id)`` (rank 0.0 for untenanted
traffic keeps that sort bit-identical to the historical arrival-order
sort), and the generative/disaggregated runners keep replica queues
rank-ordered via :meth:`TenantRuntime.reposition` at admission.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.tenancy.spec import TenancyConfig

__all__ = ["TenantRuntime", "build_request_runtime", "build_sequence_runtime"]


class TenantRuntime:
    """Per-run tenant state consumed by the platform runners."""

    __slots__ = ("config", "tenant_of", "rank_of", "ttft_of", "slo_of",
                 "no_exit_ids", "counts")

    def __init__(self, config: TenancyConfig) -> None:
        self.config = config
        #: item id (request_id / sequence_id) -> tenant name
        self.tenant_of: Dict[int, str] = {}
        #: item id -> dispatch rank (generative queues reorder through this)
        self.rank_of: Dict[int, float] = {}
        #: sequence id -> resolved per-tenant TTFT SLO override (None = no shed)
        self.ttft_of: Dict[int, Optional[float]] = {}
        #: tenant name -> effective SLO for rollups (None = cluster default)
        self.slo_of: Dict[str, Optional[float]] = {}
        #: ids pinned to the full model (tenant allow_exits=False)
        self.no_exit_ids: Set[int] = set()
        #: tenant name -> number of items assigned
        self.counts: Dict[str, int] = {name: 0 for name in config.names}

    def reposition(self, queue: List[object]) -> None:
        """Binary-insert the just-appended tail item into rank order.

        ``queue`` holds objects with ``sequence_id`` and ``arrival_ms``
        attributes; ties break by arrival then id, so untenanted runs
        (all ranks equal) keep pure FIFO order.
        """
        if len(queue) < 2:
            return
        item = queue.pop()
        rank_of = self.rank_of
        key = (rank_of.get(item.sequence_id, 0.0), item.arrival_ms, item.sequence_id)
        lo, hi = 0, len(queue)
        while lo < hi:
            mid = (lo + hi) // 2
            probe = queue[mid]
            probe_key = (rank_of.get(probe.sequence_id, 0.0), probe.arrival_ms,
                         probe.sequence_id)
            if probe_key <= key:
                lo = mid + 1
            else:
                hi = mid
        queue.insert(lo, item)


def _assign_tenants(runtime: TenantRuntime, ids: Sequence[int],
                    pre_tags: Sequence[Optional[str]], seed: int) -> List[str]:
    """Assign a tenant per item: honour valid pre-tags, draw the rest."""
    config = runtime.config
    shares = config.resolved_shares()
    names = list(config.names)
    cumulative = np.cumsum([shares[name] for name in names])
    rng = np.random.default_rng(seed if seed is not None else 0)
    draws = rng.random(len(ids))
    assigned: List[str] = []
    known = set(names)
    for i, item_id in enumerate(ids):
        tag = pre_tags[i]
        if tag is not None and tag in known:
            name = tag
        else:
            idx = int(np.searchsorted(cumulative, draws[i], side="right"))
            name = names[min(idx, len(names) - 1)]
        assigned.append(name)
        runtime.tenant_of[item_id] = name
        runtime.counts[name] += 1
    return assigned


def _stamp_ranks(runtime: TenantRuntime, ids: Sequence[int],
                 assigned: Sequence[str]) -> None:
    """Compute dispatch ranks over the arrival-sorted items."""
    config = runtime.config
    if config.policy == "strict_priority":
        rank_by_tenant = {spec.name: float(spec.class_rank) for spec in config.tenants}
        for item_id, name in zip(ids, assigned):
            runtime.rank_of[item_id] = rank_by_tenant[name]
        return
    # weighted_fair: start-time fair queueing finish tags.
    weight = {spec.name: spec.weight for spec in config.tenants}
    total_weight = sum(weight.values())
    finish = {name: 0.0 for name in config.names}
    for i, (item_id, name) in enumerate(zip(ids, assigned)):
        virtual_now = i / total_weight
        start = max(virtual_now, finish[name])
        finish[name] = start + 1.0 / weight[name]
        runtime.rank_of[item_id] = finish[name]


def build_request_runtime(requests: Sequence,
                          config: Optional[TenancyConfig],
                          seed: int) -> Tuple[List, Optional[TenantRuntime]]:
    """Tag arrival-sorted classification requests with tenants and ranks.

    Returns re-built :class:`~repro.serving.request.Request` records (frozen
    dataclass — tags are applied via ``dataclasses.replace``) plus the
    runtime.  ``config=None`` is the fast path: the input list is returned
    unchanged and no runtime is built.
    """
    if config is None:
        return list(requests), None
    runtime = TenantRuntime(config)
    ids = [request.request_id for request in requests]
    pre_tags = [getattr(request, "tenant", None) or None for request in requests]
    pre_tags = [tag if tag != "default" else None for tag in pre_tags]
    assigned = _assign_tenants(runtime, ids, pre_tags, seed)
    _stamp_ranks(runtime, ids, assigned)
    slo_by_tenant = {spec.name: spec.slo_ms for spec in config.tenants}
    no_exit = {spec.name for spec in config.tenants if not spec.allow_exits}
    tagged = []
    for request, name in zip(requests, assigned):
        overrides = {"tenant": name, "rank": runtime.rank_of[request.request_id]}
        if slo_by_tenant[name] is not None:
            overrides["slo_ms"] = slo_by_tenant[name]
        tagged.append(replace(request, **overrides))
        if name in no_exit:
            runtime.no_exit_ids.add(request.request_id)
        runtime.slo_of.setdefault(name, slo_by_tenant[name])
    for spec in config.tenants:
        runtime.slo_of.setdefault(spec.name, spec.slo_ms)
    return tagged, runtime


def build_sequence_runtime(samples: Sequence,
                           config: Optional[TenancyConfig],
                           seed: int) -> Optional[TenantRuntime]:
    """Build the tenant runtime for arrival-sorted generative sequences.

    Samples are shared across sweep grid points, so they are never
    mutated: the runtime's maps (tenant, rank, TTFT override, exit gate)
    carry all per-run tenant state keyed by ``sequence_id``.
    """
    if config is None:
        return None
    runtime = TenantRuntime(config)
    ids = [sample.sequence_id for sample in samples]
    pre_tags = [getattr(sample, "tenant", None) or None for sample in samples]
    pre_tags = [tag if tag != "default" else None for tag in pre_tags]
    assigned = _assign_tenants(runtime, ids, pre_tags, seed)
    _stamp_ranks(runtime, ids, assigned)
    ttft_by_tenant = {spec.name: spec.ttft_slo_ms for spec in config.tenants}
    no_exit = {spec.name for spec in config.tenants if not spec.allow_exits}
    for seq_id, name in zip(ids, assigned):
        ttft = ttft_by_tenant[name]
        if ttft is not None:
            # 0 (or any non-positive value) disables shedding for the tenant.
            self_ttft = ttft if ttft > 0 else None
            runtime.ttft_of[seq_id] = self_ttft
        if name in no_exit:
            runtime.no_exit_ids.add(seq_id)
    for spec in config.tenants:
        runtime.slo_of[spec.name] = spec.ttft_slo_ms
    return runtime
