"""Tenant classes for multi-tenant serving scenarios.

A :class:`TenantSpec` names one traffic class (an *interactive* product
surface, a *batch* backfill job, ...) with a dispatch weight, an optional
traffic share, and per-tenant overrides of the cluster-wide SLO, TTFT SLO
and early-exit policy.  A :class:`TenancyConfig` bundles the tenant set
with the dispatch policy that orders their work:

* ``weighted_fair`` — start-time fair queueing over the tenants' weights:
  each tenant's requests are stamped with a virtual finish tag, so a
  4:1 weight split yields a 4:1 service split under contention while idle
  tenants cannot starve anyone.
* ``strict_priority`` — every ``interactive`` request is served before any
  ``batch`` request that is queued at the same time; within a class the
  order stays FIFO.

Both policies only *order* work; replica placement still goes through the
configured balancer, so tenancy layers cleanly over the existing fleet
control plane.  When no tenancy is configured the runners take a
single-default-tenant fast path that adds no per-request work.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple, Union

__all__ = ["TenantSpec", "TenancyConfig", "TENANT_POLICIES", "TENANT_PRIORITIES",
           "DEFAULT_TENANT", "parse_tenants", "coerce_tenancy"]

TENANT_POLICIES: Tuple[str, ...] = ("weighted_fair", "strict_priority")
TENANT_PRIORITIES: Tuple[str, ...] = ("interactive", "batch")

#: Tenant name used for untagged traffic when no tenancy is configured.
DEFAULT_TENANT = "default"


def _require_finite(key: str, value: float) -> float:
    value = float(value)
    if not math.isfinite(value):
        raise ValueError(f"{key} must be finite, got {value!r}")
    return value


@dataclass(frozen=True)
class TenantSpec:
    """One tenant class.

    ``weight`` is the weighted-fair dispatch weight; ``share`` is the
    fraction of untagged traffic assigned to this tenant (tenants with
    ``share=None`` split the remainder equally).  ``slo_ms`` /
    ``ttft_slo_ms`` override the cluster-wide values for this tenant's
    requests (``ttft_slo_ms=0`` disables TTFT shedding for the tenant);
    ``allow_exits=False`` pins the tenant's traffic to the full model, an
    exit-policy override for accuracy-critical tenants.
    """

    name: str
    weight: float = 1.0
    share: Optional[float] = None
    priority: str = "interactive"
    slo_ms: Optional[float] = None
    ttft_slo_ms: Optional[float] = None
    allow_exits: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"tenant name must be a non-empty string, got {self.name!r}")
        weight = _require_finite(f"tenant {self.name!r} weight", self.weight)
        if weight <= 0:
            raise ValueError(f"tenant {self.name!r} weight must be positive, got {self.weight!r}")
        object.__setattr__(self, "weight", weight)
        if self.share is not None:
            share = _require_finite(f"tenant {self.name!r} share", self.share)
            if not 0.0 < share <= 1.0:
                raise ValueError(
                    f"tenant {self.name!r} share must be in (0, 1], got {self.share!r}")
            object.__setattr__(self, "share", share)
        if self.priority not in TENANT_PRIORITIES:
            raise ValueError(f"tenant {self.name!r} priority must be one of "
                             f"{TENANT_PRIORITIES}, got {self.priority!r}")
        if self.slo_ms is not None:
            slo = _require_finite(f"tenant {self.name!r} slo_ms", self.slo_ms)
            if slo <= 0:
                raise ValueError(
                    f"tenant {self.name!r} slo_ms must be positive, got {self.slo_ms!r}")
            object.__setattr__(self, "slo_ms", slo)
        if self.ttft_slo_ms is not None:
            ttft = _require_finite(f"tenant {self.name!r} ttft_slo_ms", self.ttft_slo_ms)
            if ttft < 0:
                raise ValueError(f"tenant {self.name!r} ttft_slo_ms must be >= 0 "
                                 f"(0 disables shedding), got {self.ttft_slo_ms!r}")
            object.__setattr__(self, "ttft_slo_ms", ttft)
        if not isinstance(self.allow_exits, bool):
            raise ValueError(f"tenant {self.name!r} allow_exits must be a bool, "
                             f"got {self.allow_exits!r}")

    @property
    def class_rank(self) -> int:
        """Strict-priority rank: interactive before batch."""
        return TENANT_PRIORITIES.index(self.priority)


@dataclass(frozen=True)
class TenancyConfig:
    """A tenant set plus the dispatch policy that orders their work."""

    tenants: Tuple[TenantSpec, ...]
    policy: str = "weighted_fair"

    def __post_init__(self) -> None:
        tenants = tuple(self.tenants)
        if not tenants:
            raise ValueError("tenancy needs at least one tenant")
        for spec in tenants:
            if not isinstance(spec, TenantSpec):
                raise ValueError(f"tenants must be TenantSpec instances, got {spec!r}")
        names = [spec.name for spec in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"tenant names must be unique, got {names}")
        object.__setattr__(self, "tenants", tenants)
        if self.policy not in TENANT_POLICIES:
            raise ValueError(f"tenant_policy must be one of {TENANT_POLICIES}, "
                             f"got {self.policy!r}")
        explicit = sum(spec.share for spec in tenants if spec.share is not None)
        if explicit > 1.0 + 1e-9:
            raise ValueError(f"tenant shares sum to {explicit}, must be <= 1")
        free = [spec for spec in tenants if spec.share is None]
        if not free and abs(explicit - 1.0) > 1e-6:
            raise ValueError(f"tenant shares sum to {explicit}, must be 1 when all "
                             "tenants pin an explicit share")
        if free and explicit > 1.0 - 1e-9:
            raise ValueError("tenant shares leave no traffic for tenants without an "
                             f"explicit share: {[spec.name for spec in free]}")

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(spec.name for spec in self.tenants)

    def get(self, name: str) -> TenantSpec:
        for spec in self.tenants:
            if spec.name == name:
                return spec
        raise KeyError(name)

    def resolved_shares(self) -> Dict[str, float]:
        """Traffic share per tenant with ``None`` shares splitting the remainder."""
        explicit = sum(spec.share for spec in self.tenants if spec.share is not None)
        free = [spec for spec in self.tenants if spec.share is None]
        leftover = max(0.0, 1.0 - explicit)
        shares: Dict[str, float] = {}
        for spec in self.tenants:
            if spec.share is not None:
                shares[spec.name] = spec.share
            else:
                shares[spec.name] = leftover / len(free)
        total = sum(shares.values())
        return {name: value / total for name, value in shares.items()}

    def describe(self) -> str:
        parts = []
        for spec in self.tenants:
            bits = [f"w={spec.weight:g}", spec.priority]
            if spec.slo_ms is not None:
                bits.append(f"slo={spec.slo_ms:g}")
            if spec.ttft_slo_ms is not None:
                bits.append(f"ttft={spec.ttft_slo_ms:g}")
            if not spec.allow_exits:
                bits.append("no-exits")
            parts.append(f"{spec.name}({','.join(bits)})")
        return f"{self.policy}[{'; '.join(parts)}]"


_PARSE_KEYS = ("weight", "share", "priority", "slo", "ttft", "exits")


def _parse_tenant_clause(clause: str) -> TenantSpec:
    clause = clause.strip()
    if not clause:
        raise ValueError("empty tenant clause")
    name, _, rest = clause.partition(":")
    name = name.strip()
    kwargs: Dict[str, object] = {}
    if rest.strip():
        for item in rest.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, value = item.partition("=")
            key = key.strip()
            value = value.strip()
            if not sep or not value:
                raise ValueError(f"tenant {name!r}: expected key=value, got {item!r}")
            if key == "weight":
                kwargs["weight"] = float(value)
            elif key == "share":
                kwargs["share"] = float(value)
            elif key == "priority":
                kwargs["priority"] = value
            elif key == "slo":
                kwargs["slo_ms"] = float(value)
            elif key == "ttft":
                kwargs["ttft_slo_ms"] = float(value)
            elif key == "exits":
                lowered = value.lower()
                if lowered in ("1", "true", "yes", "on"):
                    kwargs["allow_exits"] = True
                elif lowered in ("0", "false", "no", "off"):
                    kwargs["allow_exits"] = False
                else:
                    raise ValueError(f"tenant {name!r}: exits must be a boolean "
                                     f"(true/false), got {value!r}")
            else:
                raise ValueError(f"tenant {name!r}: unknown key {key!r}; "
                                 f"choose from {_PARSE_KEYS}")
    return TenantSpec(name=name, **kwargs)


def parse_tenants(text: str, policy: str = "weighted_fair") -> TenancyConfig:
    """Parse a CLI tenant string into a :class:`TenancyConfig`.

    Format: ``name[:key=value,...]`` clauses joined by ``;`` — e.g.
    ``"interactive:weight=4,slo=80;backfill:weight=1,priority=batch"``.
    Keys: ``weight``, ``share``, ``priority``, ``slo`` (ms), ``ttft`` (ms,
    0 disables shedding), ``exits`` (true/false).
    """
    clauses = [clause for clause in text.split(";") if clause.strip()]
    if not clauses:
        raise ValueError(f"could not parse any tenants from {text!r}")
    return TenancyConfig(tenants=tuple(_parse_tenant_clause(c) for c in clauses),
                         policy=policy)


def coerce_tenancy(value: Union[None, str, TenancyConfig, Sequence[TenantSpec]],
                   policy: str = "weighted_fair") -> Optional[TenancyConfig]:
    """Coerce user-facing spellings of a tenant set into a TenancyConfig.

    Accepts ``None`` (no tenancy), an existing :class:`TenancyConfig`
    (re-wrapped if ``policy`` differs), a CLI-style string, or a sequence
    of :class:`TenantSpec`.
    """
    if value is None:
        return None
    if isinstance(value, TenancyConfig):
        if value.policy != policy:
            return replace(value, policy=policy)
        return value
    if isinstance(value, str):
        return parse_tenants(value, policy=policy)
    if isinstance(value, Sequence):
        return TenancyConfig(tenants=tuple(value), policy=policy)
    raise ValueError(f"tenants must be None, a string, a TenancyConfig or a sequence "
                     f"of TenantSpec, got {value!r}")
