"""Exporters for recorded traces: JSONL, Chrome trace-event JSON, tables.

Three consumers, three formats:

- :func:`write_jsonl` — one JSON object per line (``{"type": "span", ...}``
  and ``{"type": "gauge", ...}``) for ad-hoc ``jq``/pandas analysis.
- :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Chrome
  trace-event format (``{"displayTimeUnit": "ms", "traceEvents": [...]}``),
  loadable in Perfetto / ``chrome://tracing``.  Pools map to processes
  (``pid``) and replicas to threads (``tid``), so every replica renders as
  its own track; span phases are complete (``"X"``) events and gauges are
  counter (``"C"``) events.  Events are emitted sorted by ``(pid, tid,
  ts)`` so timestamps are monotone per track.
- :func:`phase_breakdown` / :func:`format_phase_table` — the p50/p99
  per-phase latency table surfaced in ``RunResult.details["obs"]`` and the
  CLI printout.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["phase_breakdown", "gauge_summary", "format_phase_table",
           "to_chrome_trace", "write_chrome_trace", "write_jsonl"]

#: Stable pool → Chrome ``pid`` mapping (unknown pools are appended after).
_POOL_PIDS = {"serve": 1, "prefill": 2, "decode": 3}


def phase_breakdown(spans: Sequence[Any]) -> Dict[str, Dict[str, float]]:
    """Per-phase duration stats over all recorded phase intervals.

    Returns ``{phase: {count, mean_ms, p50_ms, p99_ms, total_ms}}`` in
    first-seen phase order.
    """
    durations: Dict[str, List[float]] = {}
    for span in spans:
        for name, start, end, _, _ in span.phases:
            durations.setdefault(name, []).append(end - start)
    breakdown: Dict[str, Dict[str, float]] = {}
    for name, values in durations.items():
        arr = np.asarray(values, dtype=float)
        breakdown[name] = {
            "count": int(arr.size),
            "mean_ms": float(arr.mean()),
            "p50_ms": float(np.percentile(arr, 50.0)),
            "p99_ms": float(np.percentile(arr, 99.0)),
            "total_ms": float(arr.sum()),
        }
    return breakdown


def gauge_summary(gauges: Sequence[Tuple]) -> Dict[str, Dict[str, float]]:
    """Per-series rollup ``{name: {samples, last, min, max, mean}}``."""
    by_name: Dict[str, List[float]] = {}
    for ts, name, value, pool, tenant, replica in gauges:
        key = name if pool is None else f"{pool}.{name}"
        if tenant is not None:
            key = f"{key}.{tenant}"
        by_name.setdefault(key, []).append(value)
    summary: Dict[str, Dict[str, float]] = {}
    for key, values in by_name.items():
        arr = np.asarray(values, dtype=float)
        summary[key] = {
            "samples": int(arr.size),
            "last": float(arr[-1]),
            "min": float(arr.min()),
            "max": float(arr.max()),
            "mean": float(arr.mean()),
        }
    return summary


def format_phase_table(breakdown: Dict[str, Dict[str, float]],
                       label_width: int = 14, column_width: int = 12) -> str:
    """Render the phase breakdown as the CLI's fixed-width table."""
    columns = ("count", "mean_ms", "p50_ms", "p99_ms", "total_ms")
    header = f"{'phase':<{label_width}s}" + "".join(
        f"{c:>{column_width}s}" for c in columns)
    lines = [header]
    for name, stats in breakdown.items():
        cells = [f"{int(stats['count']):{column_width}d}"] + [
            f"{stats[c]:{column_width}.3f}" for c in columns[1:]]
        lines.append(f"{name:<{label_width}s}" + "".join(cells))
    return "\n".join(lines)


def _pid_maps(recorder: Any) -> Tuple[Dict[Optional[str], int],
                                      Dict[Tuple[int, int], str]]:
    """Assign pids to pools and collect (pid, tid) → thread-name labels."""
    pids: Dict[Optional[str], int] = {}
    threads: Dict[Tuple[int, int], str] = {}

    def pid_for(pool: Optional[str]) -> int:
        key = pool if pool is not None else "serve"
        if key not in pids:
            pids[key] = _POOL_PIDS.get(key, len(_POOL_PIDS) + len(pids) + 1)
        return pids[key]

    for span in recorder.spans():
        for name, start, end, pool, replica in span.phases:
            pid = pid_for(pool)
            tid = int(replica) if replica is not None else 0
            threads.setdefault((pid, tid), f"replica {tid}")
    for ts, name, value, pool, tenant, replica in recorder.gauges:
        pid_for(pool)
    return pids, threads


def to_chrome_trace(recorder: Any) -> Dict[str, Any]:
    """The run's spans + gauges as a Chrome trace-event JSON document."""
    pids, threads = _pid_maps(recorder)
    meta: List[Dict[str, Any]] = []
    for pool, pid in sorted(pids.items(), key=lambda kv: kv[1]):
        meta.append({"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                     "args": {"name": f"{pool} pool"}})
    for (pid, tid), label in sorted(threads.items()):
        meta.append({"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                     "args": {"name": label}})

    events: List[Dict[str, Any]] = []
    for span in recorder.spans():
        for name, start, end, pool, replica in span.phases:
            pid = pids.get(pool if pool is not None else "serve", 1)
            tid = int(replica) if replica is not None else 0
            args: Dict[str, Any] = {"request_id": str(span.request_id)}
            if span.tenant is not None:
                args["tenant"] = span.tenant
            if span.outcome is not None:
                args["outcome"] = span.outcome
            if span.tags:
                args.update({k: v for k, v in span.tags.items()
                             if isinstance(v, (int, float, str, bool))})
            events.append({"name": name, "cat": span.kind, "ph": "X",
                           "ts": start * 1000.0,
                           "dur": max(end - start, 0.0) * 1000.0,
                           "pid": pid, "tid": tid, "args": args})
    for ts, name, value, pool, tenant, replica in recorder.gauges:
        pid = pids.get(pool if pool is not None else "serve", 1)
        series = name if tenant is None else f"{name}.{tenant}"
        events.append({"name": series, "ph": "C", "ts": ts * 1000.0,
                       "pid": pid, "tid": 0, "args": {"value": value}})
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    return {"displayTimeUnit": "ms", "traceEvents": meta + events}


def write_chrome_trace(recorder: Any, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(to_chrome_trace(recorder), fh)


def write_jsonl(recorder: Any, path: str) -> None:
    """Dump spans then gauges, one JSON object per line."""
    with open(path, "w") as fh:
        for span in recorder.spans():
            fh.write(json.dumps({"type": "span", **span.to_json()}) + "\n")
        for ts, name, value, pool, tenant, replica in recorder.gauges:
            record: Dict[str, Any] = {"type": "gauge", "ts_ms": ts,
                                      "name": name, "value": value}
            if pool is not None:
                record["pool"] = pool
            if tenant is not None:
                record["tenant"] = tenant
            if replica is not None:
                record["replica"] = replica
            fh.write(json.dumps(record) + "\n")
