"""Kernel-native observability: request spans, fleet gauges, exporters.

Enable per experiment with ``Experiment(trace=True)`` (or a
:class:`TraceSpec`), or on the CLI with ``--trace`` / ``--trace-out`` /
``--gauge-interval``.  Disabled (the default) every hook is a no-op and runs
are bit-identical to an uninstrumented build — enforced by the
kernel-equivalence suite and ``benchmarks/test_obs_overhead.py``.
"""

from repro.obs.export import (format_phase_table, phase_breakdown,
                              to_chrome_trace, write_chrome_trace, write_jsonl)
from repro.obs.recorder import (NULL_RECORDER, OUTCOME_DROPPED, OUTCOME_SERVED,
                                OUTCOME_SHED, NullRecorder, Span,
                                TraceRecorder, build_recorder)
from repro.obs.spec import TraceSpec, coerce_trace

__all__ = ["TraceSpec", "coerce_trace", "Span", "NullRecorder",
           "TraceRecorder", "NULL_RECORDER", "build_recorder",
           "OUTCOME_SERVED", "OUTCOME_DROPPED", "OUTCOME_SHED",
           "phase_breakdown", "format_phase_table", "to_chrome_trace",
           "write_chrome_trace", "write_jsonl"]
