"""Request-lifecycle spans and fleet gauges on the simulated clock.

The simulator is instrumented with a tiny hook surface — ``admit`` /
``phase`` / ``annotate`` / ``close`` for spans, ``gauge`` for time series —
called from the kernel and the platform runners.  Two implementations exist:

- :class:`NullRecorder` (the shared :data:`NULL_RECORDER`): every hook is a
  ``pass`` and ``enabled`` is ``False``, so runners guard hot paths with a
  single attribute check.  This is the default everywhere; with it installed
  a run is bit-identical to a build without observability.
- :class:`TraceRecorder`: appends spans/phases/gauge samples to in-memory
  lists.  Hooks only *read* times the simulator already computed — they
  never synthesize timestamps or alter control flow — so traced runs report
  bit-identical metrics too, and every closed span reconciles exactly with
  the run's :class:`~repro.serving.metrics.ServingMetrics` /
  :class:`~repro.serving.hf_pipelines.GenerativeMetrics` latencies.

Exporters (JSONL, Chrome trace-event JSON, phase-breakdown tables) live in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.spec import TraceSpec

__all__ = ["Span", "NullRecorder", "TraceRecorder", "NULL_RECORDER",
           "build_recorder", "OUTCOME_SERVED", "OUTCOME_DROPPED",
           "OUTCOME_SHED"]

OUTCOME_SERVED = "served"
OUTCOME_DROPPED = "dropped"
OUTCOME_SHED = "shed"


class Span:
    """One request's (or sequence's) lifecycle: ordered phase intervals.

    ``phases`` holds closed ``(name, start_ms, end_ms, pool, replica)``
    intervals in recording order; ``tags`` carries annotations (tenant,
    exit ramp, KV prefix hit, reroutes, …).  A span is *closed* once an
    outcome is set; open spans at end-of-run mean the request never left
    the system (the span-conservation property test counts them).
    """

    __slots__ = ("request_id", "kind", "arrival_ms", "end_ms", "outcome",
                 "tenant", "pool", "replica", "phases", "tags")

    def __init__(self, request_id: Any, arrival_ms: float, kind: str = "request",
                 pool: Optional[str] = None, replica: Optional[int] = None,
                 tenant: Optional[str] = None) -> None:
        self.request_id = request_id
        self.kind = kind
        self.arrival_ms = float(arrival_ms)
        self.end_ms: Optional[float] = None
        self.outcome: Optional[str] = None
        self.tenant = tenant
        self.pool = pool
        self.replica = replica
        self.phases: List[Tuple[str, float, float, Optional[str], Optional[int]]] = []
        self.tags: Dict[str, Any] = {}

    @property
    def closed(self) -> bool:
        return self.outcome is not None

    def duration_ms(self) -> Optional[float]:
        return None if self.end_ms is None else self.end_ms - self.arrival_ms

    def phase_total_ms(self) -> float:
        return sum(end - start for _, start, end, _, _ in self.phases)

    def phase_durations(self) -> Dict[str, float]:
        """Total time per phase name (a phase may recur, e.g. after reroute)."""
        totals: Dict[str, float] = {}
        for name, start, end, _, _ in self.phases:
            totals[name] = totals.get(name, 0.0) + (end - start)
        return totals

    def to_json(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "request_id": self.request_id,
            "kind": self.kind,
            "arrival_ms": self.arrival_ms,
            "end_ms": self.end_ms,
            "outcome": self.outcome,
            "phases": [{"name": name, "start_ms": start, "end_ms": end,
                        **({} if pool is None else {"pool": pool}),
                        **({} if replica is None else {"replica": replica})}
                       for name, start, end, pool, replica in self.phases],
        }
        if self.tenant is not None:
            data["tenant"] = self.tenant
        if self.pool is not None:
            data["pool"] = self.pool
        if self.replica is not None:
            data["replica"] = self.replica
        if self.tags:
            data["tags"] = dict(self.tags)
        return data


class NullRecorder:
    """The disabled recorder: every hook is a no-op.

    Shared as :data:`NULL_RECORDER` so hot paths pay one attribute load and
    branch (``if obs.enabled:``) and nothing else.
    """

    __slots__ = ()

    enabled = False
    spans_enabled = False
    gauges_enabled = False
    gauge_interval_ms: Optional[float] = None

    def admit(self, request_id: Any, ts: float, **tags: Any) -> None:
        pass

    def phase(self, request_id: Any, name: str, start_ms: float, end_ms: float,
              pool: Optional[str] = None, replica: Optional[int] = None) -> None:
        pass

    def annotate(self, request_id: Any, **tags: Any) -> None:
        pass

    def last_phase_end(self, request_id: Any) -> Optional[float]:
        return None

    def close(self, request_id: Any, ts: float, outcome: str = OUTCOME_SERVED,
              **tags: Any) -> None:
        pass

    def gauge(self, ts: float, name: str, value: float,
              pool: Optional[str] = None, tenant: Optional[str] = None,
              replica: Optional[int] = None) -> None:
        pass


#: The process-wide disabled recorder every hook defaults to.
NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """The live recorder: collects spans and gauge samples for one run."""

    __slots__ = ("spec", "spans_enabled", "gauges_enabled", "_spans",
                 "_order", "gauges")

    enabled = True

    def __init__(self, spec: Optional[TraceSpec] = None) -> None:
        self.spec = spec if spec is not None else TraceSpec()
        self.spans_enabled = bool(self.spec.spans)
        self.gauges_enabled = bool(self.spec.gauges)
        self._spans: Dict[Any, Span] = {}
        self._order: List[Any] = []
        #: Gauge samples as ``(ts_ms, name, value, pool, tenant, replica)``.
        self.gauges: List[Tuple[float, str, float, Optional[str],
                                Optional[str], Optional[int]]] = []

    @property
    def gauge_interval_ms(self) -> Optional[float]:
        return float(self.spec.gauge_interval_ms) if self.gauges_enabled else None

    # ----------------------------------------------------------------- spans
    def admit(self, request_id: Any, ts: float, kind: str = "request",
              pool: Optional[str] = None, replica: Optional[int] = None,
              tenant: Optional[str] = None) -> None:
        """Open a span (idempotent: re-admission keeps the original span)."""
        if not self.spans_enabled or request_id in self._spans:
            return
        self._spans[request_id] = Span(request_id, ts, kind=kind, pool=pool,
                                       replica=replica, tenant=tenant)
        self._order.append(request_id)

    def phase(self, request_id: Any, name: str, start_ms: float, end_ms: float,
              pool: Optional[str] = None, replica: Optional[int] = None) -> None:
        """Record a closed phase interval on an open span."""
        if not self.spans_enabled:
            return
        span = self._spans.get(request_id)
        if span is not None:
            span.phases.append((name, float(start_ms), float(end_ms),
                                pool if pool is not None else span.pool,
                                replica if replica is not None else span.replica))

    def annotate(self, request_id: Any, **tags: Any) -> None:
        if not self.spans_enabled:
            return
        span = self._spans.get(request_id)
        if span is not None:
            tenant = tags.pop("tenant", None)
            if tenant is not None:
                span.tenant = tenant
            if tags:
                span.tags.update(tags)

    def last_phase_end(self, request_id: Any) -> Optional[float]:
        """End time of the span's latest phase (``None`` without phases).

        Lets a pipeline stage start its wait phase where the previous stage
        ended (disaggregated decode queueing begins at KV-transfer arrival,
        not at the sequence's original arrival)."""
        span = self._spans.get(request_id)
        if span is None or not span.phases:
            return None
        return span.phases[-1][2]

    def close(self, request_id: Any, ts: float, outcome: str = OUTCOME_SERVED,
              **tags: Any) -> None:
        if not self.spans_enabled:
            return
        span = self._spans.get(request_id)
        if span is not None and span.outcome is None:
            span.end_ms = float(ts)
            span.outcome = outcome
            if tags:
                span.tags.update(tags)

    # ---------------------------------------------------------------- gauges
    def gauge(self, ts: float, name: str, value: float,
              pool: Optional[str] = None, tenant: Optional[str] = None,
              replica: Optional[int] = None) -> None:
        if self.gauges_enabled:
            self.gauges.append((float(ts), name, float(value), pool, tenant,
                                replica))

    # ----------------------------------------------------------------- views
    def spans(self) -> List[Span]:
        """All spans in admission order."""
        return [self._spans[rid] for rid in self._order]

    def span(self, request_id: Any) -> Optional[Span]:
        return self._spans.get(request_id)

    def closed_spans(self) -> List[Span]:
        return [s for s in self.spans() if s.closed]

    def open_spans(self) -> List[Span]:
        return [s for s in self.spans() if not s.closed]

    def summary(self) -> Dict[str, Any]:
        """JSON-safe rollup for ``RunResult.details['obs']``."""
        # Imported here: export pulls in numpy for percentiles; keep the
        # hook-surface module import-light for the simulator.
        from repro.obs.export import gauge_summary, phase_breakdown

        spans = self.spans()
        outcomes: Dict[str, int] = {}
        for span in spans:
            if span.outcome is not None:
                outcomes[span.outcome] = outcomes.get(span.outcome, 0) + 1
        worst = None
        served = [s for s in spans
                  if s.outcome == OUTCOME_SERVED and s.end_ms is not None]
        if served:
            worst_span = max(served, key=lambda s: (s.duration_ms(),
                                                    str(s.request_id)))
            worst = {
                "request_id": worst_span.request_id,
                "latency_ms": worst_span.duration_ms(),
                "phases": worst_span.phase_durations(),
            }
        return {
            "spans": {
                "total": len(spans),
                "closed": sum(1 for s in spans if s.closed),
                "open": sum(1 for s in spans if not s.closed),
                "outcomes": outcomes,
            },
            "phases": phase_breakdown(spans),
            "gauges": gauge_summary(self.gauges),
            "worst_request": worst,
        }


def build_recorder(trace: Union[None, bool, TraceSpec]
                   ) -> Union[NullRecorder, TraceRecorder]:
    """The live recorder for a trace knob, or :data:`NULL_RECORDER` when off."""
    from repro.obs.spec import coerce_trace

    spec = coerce_trace(trace)
    return NULL_RECORDER if spec is None else TraceRecorder(spec)
