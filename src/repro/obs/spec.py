"""Declarative tracing config: what to record, and how often to sample.

A :class:`TraceSpec` travels with the experiment exactly like the other
frozen specs in :mod:`repro.api.specs` — cheap to copy, validated at
construction, JSON-describable — and is turned into a live
:class:`~repro.obs.recorder.TraceRecorder` only when a run starts.
``None`` (the default everywhere) keeps observability completely off: every
hook in the simulator is a no-op against the shared
:data:`~repro.obs.recorder.NULL_RECORDER` and the run is bit-identical to a
build without tracing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Union

__all__ = ["TraceSpec", "coerce_trace"]

#: Default fleet-gauge sampling period (simulated milliseconds).
DEFAULT_GAUGE_INTERVAL_MS = 50.0


@dataclass(frozen=True)
class TraceSpec:
    """Observability knobs for one experiment run.

    Attributes
    ----------
    spans:
        Record per-request / per-sequence lifecycle spans (admit → queue →
        dispatch → prefill → transfer → decode → exit/drop/shed).
    gauges:
        Sample fleet time series (queue depth, slot occupancy, KV bytes,
        fleet size, per-tenant backlog) on the simulated clock.
    gauge_interval_ms:
        Sampling period for the periodic fleet gauges.  Sampling happens in
        the kernel's time-advance path, so it never perturbs the simulated
        trajectory — traced runs report bit-identical metrics.
    """

    spans: bool = True
    gauges: bool = True
    gauge_interval_ms: float = DEFAULT_GAUGE_INTERVAL_MS

    def __post_init__(self) -> None:
        interval = float(self.gauge_interval_ms)
        if not math.isfinite(interval) or interval <= 0.0:
            raise ValueError(f"gauge_interval_ms must be positive and finite, "
                             f"got {self.gauge_interval_ms}")

    def describe(self) -> Dict[str, object]:
        return {
            "spans": bool(self.spans),
            "gauges": bool(self.gauges),
            "gauge_interval_ms": float(self.gauge_interval_ms),
        }


def coerce_trace(value: Union[None, bool, TraceSpec, Dict[str, object]]
                 ) -> Optional[TraceSpec]:
    """Normalize the ``Experiment(trace=...)`` knob to ``TraceSpec | None``.

    Accepts ``None``/``False`` (off), ``True`` (defaults), an explicit
    :class:`TraceSpec`, or a keyword dict; anything else raises
    :class:`ValueError` naming the value, matching the spec-validation
    discipline of :mod:`repro.api.specs`.
    """
    if value is None or value is False:
        return None
    if value is True:
        return TraceSpec()
    if isinstance(value, TraceSpec):
        return value
    if isinstance(value, dict):
        return TraceSpec(**value)
    raise ValueError(f"trace must be None, bool, TraceSpec or a kwargs dict, "
                     f"got {value!r}")
