"""Apparate itself: the end-to-end system assembled from the substrates.

The public entry points are:

* :class:`repro.core.apparate.Apparate` — register a model, let the system
  prepare it with early exits, and serve workloads on a chosen platform;
* :func:`repro.core.pipeline.run_vanilla` / :func:`repro.core.pipeline.run_apparate`
  — one-call classification serving runs used by the examples and benchmarks;
* :func:`repro.core.generative.run_generative_vanilla` /
  :func:`repro.core.generative.run_generative_apparate` — the generative
  counterparts (§3.4, §4.3).
"""

from repro.core.apparate import Apparate, ApparateDeployment, PreparationReport
from repro.core.controller import ApparateController, ControllerStats
from repro.core.pipeline import ApparateRunResult, run_apparate, run_vanilla
from repro.core.generative import (
    ApparateTokenPolicy,
    GenerativeRunResult,
    run_generative_apparate,
    run_generative_vanilla,
)

__all__ = [
    "Apparate",
    "ApparateDeployment",
    "PreparationReport",
    "ApparateController",
    "ControllerStats",
    "ApparateRunResult",
    "run_apparate",
    "run_vanilla",
    "ApparateTokenPolicy",
    "GenerativeRunResult",
    "run_generative_apparate",
    "run_generative_vanilla",
]
