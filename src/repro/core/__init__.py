"""Apparate itself: the end-to-end system assembled from the substrates.

The public entry points are:

* :class:`repro.api.Experiment` — the declarative facade: one configuration,
  any set of registered systems (``vanilla``, ``apparate``, the baselines),
  cross-system reports and parameter sweeps;
* :class:`repro.core.apparate.Apparate` — register a model, let the system
  prepare it with early exits, and serve workloads on a chosen platform;
* the ``run_*`` helpers below — one-call serving runs kept as thin shims
  over the system registry (classification, generative, and fleet-scale
  cluster serving with EE control per replica or shared fleet-wide via
  :class:`repro.core.controller.FleetController`).
"""

from repro.core.apparate import Apparate, ApparateDeployment, PreparationReport
from repro.core.controller import ApparateController, ControllerStats, FleetController
from repro.core.pipeline import (ApparateClusterRunResult, ApparateRunResult,
                                 run_apparate, run_apparate_cluster,
                                 run_vanilla, run_vanilla_cluster)
from repro.core.generative import (
    ApparateTokenPolicy,
    GenerativeClusterRunResult,
    GenerativeRunResult,
    run_generative_apparate,
    run_generative_apparate_cluster,
    run_generative_vanilla,
    run_generative_vanilla_cluster,
)

__all__ = [
    "Apparate",
    "ApparateDeployment",
    "PreparationReport",
    "ApparateController",
    "ControllerStats",
    "FleetController",
    "ApparateRunResult",
    "ApparateClusterRunResult",
    "run_apparate",
    "run_vanilla",
    "run_apparate_cluster",
    "run_vanilla_cluster",
    "ApparateTokenPolicy",
    "GenerativeRunResult",
    "GenerativeClusterRunResult",
    "run_generative_apparate",
    "run_generative_vanilla",
    "run_generative_apparate_cluster",
    "run_generative_vanilla_cluster",
]
