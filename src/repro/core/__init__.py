"""Apparate itself: the end-to-end system assembled from the substrates.

The public entry points are:

* :class:`repro.core.apparate.Apparate` — register a model, let the system
  prepare it with early exits, and serve workloads on a chosen platform;
* :func:`repro.core.pipeline.run_vanilla` / :func:`repro.core.pipeline.run_apparate`
  — one-call classification serving runs used by the examples and benchmarks;
* :func:`repro.core.generative.run_generative_vanilla` /
  :func:`repro.core.generative.run_generative_apparate` — the generative
  counterparts (§3.4, §4.3);
* :func:`repro.core.pipeline.run_vanilla_cluster` /
  :func:`repro.core.pipeline.run_apparate_cluster` — fleet-scale serving
  across N replicas behind a load balancer, with EE control per replica or
  shared fleet-wide (:class:`repro.core.controller.FleetController`).
"""

from repro.core.apparate import Apparate, ApparateDeployment, PreparationReport
from repro.core.controller import ApparateController, ControllerStats, FleetController
from repro.core.pipeline import (ApparateClusterRunResult, ApparateRunResult,
                                 run_apparate, run_apparate_cluster,
                                 run_vanilla, run_vanilla_cluster)
from repro.core.generative import (
    ApparateTokenPolicy,
    GenerativeRunResult,
    run_generative_apparate,
    run_generative_vanilla,
)

__all__ = [
    "Apparate",
    "ApparateDeployment",
    "PreparationReport",
    "ApparateController",
    "ControllerStats",
    "FleetController",
    "ApparateRunResult",
    "ApparateClusterRunResult",
    "run_apparate",
    "run_vanilla",
    "run_apparate_cluster",
    "run_vanilla_cluster",
    "ApparateTokenPolicy",
    "GenerativeRunResult",
    "run_generative_apparate",
    "run_generative_vanilla",
]
