"""Generative serving with Apparate (§3.4, §4.3).

For generative LLMs Apparate deploys a *single* adaptive ramp (a ramp budget
of one, as in §4.4's comparison against FREE) that reuses the model's own
decode head, so no ramp training is needed.  The token policy below manages
the two runtime knobs the paper describes:

* the ramp's **threshold**, re-tuned from windowed token feedback whenever the
  achieved accuracy of exited tokens dips below the constraint and refreshed
  periodically to maximize exits otherwise; and
* the ramp's **position**, shifted later when too few tokens exit (the ramp is
  too shallow to be confident) and probed earlier when almost everything exits
  and accuracy headroom remains (more savings available).

Feedback is truncated at the first deviating token of each parallel-decoding
instance (see :func:`repro.generative.parallel.truncate_feedback`).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.controller import FleetController
from repro.core.pipeline import model_stack
from repro.exits.ramps import RampStyle, ramp_overhead_fraction
from repro.generative.decoding import DecodeTimingModel, PrefillModel
from repro.generative.parallel import TokenFeedback
from repro.generative.sequences import GenerativeWorkload
from repro.models.prediction import PredictionModel
from repro.models.zoo import ModelSpec, get_model
from repro.serving.autoscaler import (Autoscaler, build_autoscaler,
                                      canonical_autoscaler_name)
from repro.serving.cluster import LoadBalancer
from repro.serving.disagg import DisaggregatedMetrics, DisaggregatedPlatform
from repro.serving.fleet import ReplicaProfile
from repro.serving.generative_cluster import (GenerativeClusterMetrics,
                                              GenerativeClusterPlatform,
                                              PolicyFactory)
from repro.serving.hf_pipelines import (
    ContinuousBatchingEngine,
    GenerativeMetrics,
    TokenDecision,
    TokenExitPolicy,
    VanillaTokenPolicy,
)

__all__ = ["ApparateTokenPolicy", "GenerativeRunResult",
           "GenerativeClusterRunResult", "build_generative_cluster",
           "build_disaggregated_platform",
           "run_generative_vanilla", "run_generative_apparate",
           "run_generative_vanilla_cluster", "run_generative_apparate_cluster",
           "run_generative_vanilla_disagg", "run_generative_apparate_disagg",
           "generative_ramp_depths"]


def generative_ramp_depths(model: Union[str, ModelSpec], seed: int = 0) -> List[float]:
    """Candidate ramp depths (block boundaries) for a generative model."""
    _spec, _profile, _prediction, catalog, _executor = model_stack(model, seed=seed)
    return [r.depth_fraction for r in catalog.ramps]


class ApparateTokenPolicy:
    """Adaptive single-ramp exit policy for generative decoding."""

    def __init__(self, prediction: PredictionModel, candidate_depths: Sequence[float],
                 accuracy_constraint: float = 0.01, window: int = 768,
                 refresh_period: int = 32, adjustment_period: int = 128,
                 initial_position: Optional[int] = None,
                 low_exit_rate: float = 0.50, high_exit_rate: float = 0.90,
                 tuning_safety: float = 0.25) -> None:
        if not candidate_depths:
            raise ValueError("candidate_depths must be non-empty")
        self.prediction = prediction
        self.candidate_depths = sorted(float(d) for d in candidate_depths)
        self.accuracy_constraint = float(accuracy_constraint)
        self.refresh_period = int(refresh_period)
        self.adjustment_period = int(adjustment_period)
        self.low_exit_rate = float(low_exit_rate)
        self.high_exit_rate = float(high_exit_rate)
        # Thresholds are tuned against a fraction of the allowed accuracy loss
        # so that drift between tuning rounds does not breach the constraint.
        self.tuning_safety = float(tuning_safety)

        self.position = int(initial_position) if initial_position is not None \
            else len(self.candidate_depths) // 2
        self.threshold = 0.0
        self._window: Deque[Tuple[float, bool]] = deque(maxlen=int(window))
        self.tokens_seen = 0
        self.tokens_since_move = 0
        self.threshold_tunings = 0
        self.position_moves = 0

    # --------------------------------------------------------------- helpers
    @property
    def ramp_depth(self) -> float:
        return self.candidate_depths[self.position]

    def _released_accuracy(self, threshold: float) -> Tuple[float, float]:
        """(accuracy, exit rate) on the feedback window under ``threshold``."""
        if not self._window:
            return 1.0, 0.0
        errors = np.array([e for e, _ in self._window])
        correct = np.array([c for _, c in self._window], dtype=bool)
        exits = errors < threshold if threshold > 0 else np.zeros_like(correct)
        n = errors.size
        num_exited = int(exits.sum())
        num_correct = int(correct[exits].sum()) + (n - num_exited)
        return num_correct / n, num_exited / n

    def _tune_threshold(self) -> None:
        """Pick the largest threshold that satisfies the (tightened) constraint."""
        target = 1.0 - self.accuracy_constraint * self.tuning_safety
        best = 0.0
        for candidate in np.arange(0.02, 0.99, 0.02):
            accuracy, _rate = self._released_accuracy(float(candidate))
            if accuracy >= target:
                best = float(candidate)
            else:
                break
        self.threshold = best
        self.threshold_tunings += 1

    def _adjust_position(self) -> None:
        """Move the ramp later when exits are rare, probe earlier when abundant.

        Moving later uses a coarse stride (a tenth of the candidate list) so
        that a badly placed ramp converges within a few adjustment rounds;
        probing earlier is conservative (one position at a time), matching the
        low-risk probing phase of §3.3.
        """
        accuracy, exit_rate = self._released_accuracy(self.threshold)
        moved = False
        later_stride = max(1, len(self.candidate_depths) // 10)
        if exit_rate < self.low_exit_rate and self.position < len(self.candidate_depths) - 1:
            self.position = min(self.position + later_stride, len(self.candidate_depths) - 1)
            moved = True
        elif (exit_rate > self.high_exit_rate
              and accuracy >= 1.0 - 0.5 * self.accuracy_constraint
              and self.position > 0):
            self.position -= 1
            moved = True
        if moved:
            self.position_moves += 1
            self.threshold = 0.0     # new position starts conservative (§3.3)
            self._window.clear()
            self.tokens_since_move = 0

    # --------------------------------------------------------------- policy API
    def decide(self, sequence_id: int, token_index: int, raw_difficulty: float,
               sharpness: float) -> TokenDecision:
        depth = self.ramp_depth
        error = self.prediction.error_score(raw_difficulty, depth, sharpness)
        correct = self.prediction.is_correct(raw_difficulty, depth)
        exited = self.threshold > 0.0 and error < self.threshold
        return TokenDecision(exited=exited, exit_depth=depth if exited else None,
                             error_score=error, correct=correct)

    def feedback(self, records: Sequence[TokenFeedback]) -> None:
        for record in records:
            self._window.append((record.error_score, record.correct))
            self.tokens_seen += 1
            self.tokens_since_move += 1

            accuracy, _ = self._released_accuracy(self.threshold)
            accuracy_violation = accuracy < 1.0 - self.accuracy_constraint
            periodic_refresh = self.tokens_seen % self.refresh_period == 0
            if (accuracy_violation or periodic_refresh) and len(self._window) >= 96:
                self._tune_threshold()
            # Position moves are rate-limited: the ramp must have been in
            # place (and its threshold re-tuned) for a full adjustment period
            # before its exit rate is judged, which prevents oscillation.
            if (self.tokens_since_move >= 2 * self.adjustment_period
                    and self.tokens_seen % self.adjustment_period == 0
                    and len(self._window) >= 128 and self.threshold > 0.0):
                self._adjust_position()


@dataclass
class GenerativeRunResult:
    """Outcome of one generative Apparate run."""

    metrics: GenerativeMetrics
    policy: ApparateTokenPolicy

    def summary(self) -> Dict[str, float]:
        data = self.metrics.summary()
        data.update({
            "ramp_depth": self.policy.ramp_depth,
            "threshold": self.policy.threshold,
            "threshold_tunings": float(self.policy.threshold_tunings),
            "position_moves": float(self.policy.position_moves),
        })
        return data


@dataclass
class GenerativeClusterRunResult:
    """Outcome of one Apparate generative *cluster* run.

    ``policies`` holds the per-replica token policies in ordinal order; in
    ``shared`` fleet mode every entry is the same object (one fleet-wide
    policy fed by every replica's token feedback).
    """

    metrics: GenerativeClusterMetrics
    policies: List[ApparateTokenPolicy]
    fleet_mode: str = "independent"

    def _unique_policies(self) -> List[ApparateTokenPolicy]:
        seen: Dict[int, ApparateTokenPolicy] = {}
        for policy in self.policies:
            seen.setdefault(id(policy), policy)
        return list(seen.values())

    def summary(self) -> Dict[str, float]:
        data = self.metrics.summary()
        unique = self._unique_policies()
        data.update({
            "num_policies": float(len(unique)),
            "threshold_tunings": float(sum(p.threshold_tunings for p in unique)),
            "position_moves": float(sum(p.position_moves for p in unique)),
        })
        if unique:
            data["ramp_depth"] = float(np.mean([p.ramp_depth for p in unique]))
            data["threshold"] = float(np.mean([p.threshold for p in unique]))
        return data


# ---------------------------------------------------------------------------
# Generative serving implementations (called through the system registry).
# ---------------------------------------------------------------------------

def _generative_vanilla_impl(model: Union[str, ModelSpec], workload: GenerativeWorkload,
                             max_batch_size: int = 8, seed: int = 0,
                             ttft_slo_ms: Optional[float] = None,
                             obs=None) -> GenerativeMetrics:
    spec = get_model(model) if isinstance(model, str) else model
    timing = DecodeTimingModel(spec, ramp_overhead_fraction=0.0)
    engine = ContinuousBatchingEngine(timing, max_batch_size=max_batch_size,
                                      ttft_slo_ms=_normalize_ttft_slo(ttft_slo_ms))
    if obs is not None:
        engine.obs = obs
    return engine.run(workload, VanillaTokenPolicy())


def _generative_apparate_impl(model: Union[str, ModelSpec], workload: GenerativeWorkload,
                              accuracy_constraint: float = 0.01, max_batch_size: int = 8,
                              flush_limit: int = 8, seed: int = 0,
                              ttft_slo_ms: Optional[float] = None,
                              obs=None) -> GenerativeRunResult:
    spec = get_model(model) if isinstance(model, str) else model
    prediction = PredictionModel(spec, seed=seed)
    depths = generative_ramp_depths(spec, seed=seed)
    policy = ApparateTokenPolicy(prediction, depths, accuracy_constraint=accuracy_constraint)
    overhead = ramp_overhead_fraction(spec, RampStyle.DECODE_HEAD)
    timing = DecodeTimingModel(spec, ramp_overhead_fraction=overhead)
    engine = ContinuousBatchingEngine(timing, max_batch_size=max_batch_size,
                                      flush_limit=flush_limit,
                                      ttft_slo_ms=_normalize_ttft_slo(ttft_slo_ms))
    if obs is not None:
        engine.obs = obs
    metrics = engine.run(workload, policy)
    return GenerativeRunResult(metrics=metrics, policy=policy)


# ---------------------------------------------------------------------------
# Generative cluster serving (the fleet control plane driving the continuous
# batching engine; see repro.serving.generative_cluster).
# ---------------------------------------------------------------------------

def _normalize_ttft_slo(ttft_slo_ms: Optional[float]) -> Optional[float]:
    """Treat ``None`` and non-positive values as "no TTFT SLO".

    Generative model specs carry ``default_slo_ms=0.0`` (the paper sets no
    response-time SLO for generation), so a zero flowing down from the
    experiment layer means shedding is off, not an instant deadline.
    """
    if ttft_slo_ms is None or float(ttft_slo_ms) <= 0.0:
        return None
    return float(ttft_slo_ms)


def _resolve_generative_autoscaler(autoscaler: Union[str, Autoscaler, None],
                                   slots: int) -> Union[Autoscaler, None]:
    """Build a name-selected autoscaler with decode-slot-aware watermarks.

    The reactive policy's default queue watermarks assume one-at-a-time
    request serving; a decode replica with ``slots`` concurrent streams is
    only saturated once jobs in system approach the slot count, so the
    hysteresis band is scaled to it.  Instances pass through untouched.
    """
    if autoscaler is None or isinstance(autoscaler, Autoscaler):
        return autoscaler
    key = canonical_autoscaler_name(autoscaler)
    if key == "reactive":
        return build_autoscaler(key, scale_out_load=1.25 * slots,
                                scale_in_load=0.25 * slots)
    return build_autoscaler(key)


def build_generative_cluster(model: Union[str, ModelSpec], replicas: int,
                             balancer: Union[str, LoadBalancer] = "round_robin",
                             max_batch_size: int = 8, flush_limit: int = 8,
                             ramp_overhead: float = 0.0, seed: int = 0,
                             profiles: Optional[Sequence] = None,
                             autoscaler: Union[str, Autoscaler, None] = "none",
                             min_replicas: Optional[int] = None,
                             max_replicas: Optional[int] = None,
                             prefill_in_slot: bool = False,
                             ttft_slo_ms: Optional[float] = None,
                             tenancy=None, faults=None,
                             kv_capacity: Optional[float] = None,
                             obs=None) -> GenerativeClusterPlatform:
    """Construct a fleet of continuous-batching decode replicas.

    The engine is stateless, so one instance (model timing + slot count +
    flush limit) is shared by every replica, including ones the autoscaler
    boots mid-run; heterogeneity comes from ``profiles`` speed multipliers.

    ``prefill_in_slot=True`` makes the fleet *monolithic* in the
    prefill/decode sense: a sequence claiming a decode slot first runs its
    prompt's chunked prefill on that replica, stretched by contention with
    the decode streams in flight — the behaviour disaggregation removes
    (compare with :func:`build_disaggregated_platform`).  ``ttft_slo_ms``
    enables deadline shedding of sequences whose wait already blew the SLO.
    ``kv_capacity`` gives each replica a KV-cache byte budget (prefix reuse
    plus LRU eviction with recompute); ``None`` keeps cache modelling off.
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    spec = get_model(model) if isinstance(model, str) else model
    timing = DecodeTimingModel(spec, ramp_overhead_fraction=ramp_overhead)
    engine = ContinuousBatchingEngine(
        timing, max_batch_size=max_batch_size, flush_limit=flush_limit,
        prefill=PrefillModel(spec) if prefill_in_slot else None)
    return GenerativeClusterPlatform(
        [engine] * replicas, balancer=balancer, seed=seed, profiles=profiles,
        autoscaler=_resolve_generative_autoscaler(autoscaler, max_batch_size),
        min_replicas=min_replicas, max_replicas=max_replicas,
        ttft_slo_ms=_normalize_ttft_slo(ttft_slo_ms),
        tenancy=tenancy, faults=faults, kv_capacity=kv_capacity, obs=obs)


def _generative_vanilla_cluster_impl(model: Union[str, ModelSpec],
                                     workload: GenerativeWorkload,
                                     replicas: int = 2,
                                     balancer: Union[str, LoadBalancer] = "round_robin",
                                     max_batch_size: int = 8, seed: int = 0,
                                     autoscaler: Union[str, Autoscaler, None] = "none",
                                     min_replicas: Optional[int] = None,
                                     max_replicas: Optional[int] = None,
                                     profiles: Optional[Sequence] = None,
                                     prefill_in_slot: bool = False,
                                     ttft_slo_ms: Optional[float] = None,
                                     tenancy=None, faults=None,
                                     kv_capacity: Optional[float] = None,
                                     obs=None) -> GenerativeClusterMetrics:
    cluster = build_generative_cluster(model, replicas, balancer=balancer,
                                       max_batch_size=max_batch_size,
                                       ramp_overhead=0.0, seed=seed,
                                       profiles=profiles, autoscaler=autoscaler,
                                       min_replicas=min_replicas,
                                       max_replicas=max_replicas,
                                       prefill_in_slot=prefill_in_slot,
                                       ttft_slo_ms=ttft_slo_ms,
                                       tenancy=tenancy, faults=faults,
                                       kv_capacity=kv_capacity, obs=obs)
    # The vanilla policy is stateless: every replica (including scaled-out
    # ones) shares it.
    policy = VanillaTokenPolicy()
    return cluster.run(workload, lambda ordinal: policy)


def _generative_apparate_cluster_impl(model: Union[str, ModelSpec],
                                      workload: GenerativeWorkload,
                                      replicas: int = 2,
                                      balancer: Union[str, LoadBalancer] = "round_robin",
                                      fleet_mode: str = "independent",
                                      accuracy_constraint: float = 0.01,
                                      max_batch_size: int = 8,
                                      flush_limit: int = 8, seed: int = 0,
                                      autoscaler: Union[str, Autoscaler, None] = "none",
                                      min_replicas: Optional[int] = None,
                                      max_replicas: Optional[int] = None,
                                      profiles: Optional[Sequence] = None,
                                      prefill_in_slot: bool = False,
                                      ttft_slo_ms: Optional[float] = None,
                                      tenancy=None, faults=None,
                                      kv_capacity: Optional[float] = None,
                                      obs=None) -> GenerativeClusterRunResult:
    if fleet_mode not in FleetController.MODES:
        raise ValueError(f"unknown fleet mode {fleet_mode!r}; "
                         f"choose from {tuple(FleetController.MODES)}")
    spec = get_model(model) if isinstance(model, str) else model
    prediction = PredictionModel(spec, seed=seed)
    depths = generative_ramp_depths(spec, seed=seed)
    overhead = ramp_overhead_fraction(spec, RampStyle.DECODE_HEAD)
    cluster = build_generative_cluster(model, replicas, balancer=balancer,
                                       max_batch_size=max_batch_size,
                                       flush_limit=flush_limit,
                                       ramp_overhead=overhead, seed=seed,
                                       profiles=profiles, autoscaler=autoscaler,
                                       min_replicas=min_replicas,
                                       max_replicas=max_replicas,
                                       prefill_in_slot=prefill_in_slot,
                                       ttft_slo_ms=ttft_slo_ms,
                                       tenancy=tenancy, faults=faults,
                                       kv_capacity=kv_capacity, obs=obs)

    policies: List[ApparateTokenPolicy] = []
    shared = ApparateTokenPolicy(prediction, depths,
                                 accuracy_constraint=accuracy_constraint) \
        if fleet_mode == "shared" else None

    def policy_factory(ordinal: int) -> ApparateTokenPolicy:
        policy = shared if shared is not None else ApparateTokenPolicy(
            prediction, depths, accuracy_constraint=accuracy_constraint)
        policies.append(policy)
        return policy

    metrics = cluster.run(workload, policy_factory)
    return GenerativeClusterRunResult(metrics=metrics, policies=policies,
                                      fleet_mode=fleet_mode)


# ---------------------------------------------------------------------------
# Prefill/decode disaggregated serving (two pools on one global clock; see
# repro.serving.disagg).
# ---------------------------------------------------------------------------

def _resolve_prefill_autoscaler(autoscaler: Union[str, Autoscaler, None]
                                ) -> Union[Autoscaler, None]:
    """Build a name-selected autoscaler with prompt-chunk-aware watermarks.

    A prefill replica's "jobs in system" are pending prefill *chunks*
    (queued prompt tokens in chunk units), each worth roughly one decode
    step of accelerator time, so the reactive hysteresis band is set in
    chunks of backlog per replica.  Instances pass through untouched.
    """
    if autoscaler is None or isinstance(autoscaler, Autoscaler):
        return autoscaler
    key = canonical_autoscaler_name(autoscaler)
    if key == "reactive":
        return build_autoscaler(key, scale_out_load=6.0, scale_in_load=0.75)
    return build_autoscaler(key)


def build_disaggregated_platform(model: Union[str, ModelSpec],
                                 prefill_replicas: int = 2,
                                 decode_replicas: int = 2,
                                 prefill_balancer: Union[str, LoadBalancer] = "round_robin",
                                 decode_balancer: Union[str, LoadBalancer] = "round_robin",
                                 max_batch_size: int = 8,
                                 prefill_batch: int = 4,
                                 flush_limit: int = 8,
                                 ramp_overhead: float = 0.0, seed: int = 0,
                                 prefill_profiles: Optional[Sequence] = None,
                                 decode_profiles: Optional[Sequence] = None,
                                 prefill_autoscaler: Union[str, Autoscaler, None] = "none",
                                 decode_autoscaler: Union[str, Autoscaler, None] = "none",
                                 prefill_min_replicas: Optional[int] = None,
                                 prefill_max_replicas: Optional[int] = None,
                                 decode_min_replicas: Optional[int] = None,
                                 decode_max_replicas: Optional[int] = None,
                                 ttft_slo_ms: Optional[float] = None,
                                 transfer_gbps: float = 16.0,
                                 tenancy=None, faults=None,
                                 kv_capacity: Optional[float] = None,
                                 obs=None) -> DisaggregatedPlatform:
    """Construct a prefill pool + decode pool behind one handoff queue.

    Decode engines carry no in-slot prefill model (their prompts arrive
    prefilled); the prefill pool charges chunked prefill compute, and every
    handoff pays the KV-transfer time over a ``transfer_gbps`` interconnect.
    ``kv_capacity`` gives each decode replica a KV-cache byte budget (prefix
    reuse plus LRU eviction with recompute); ``None`` keeps it off.
    """
    spec = get_model(model) if isinstance(model, str) else model
    timing = DecodeTimingModel(spec, ramp_overhead_fraction=ramp_overhead)
    engine = ContinuousBatchingEngine(timing, max_batch_size=max_batch_size,
                                      flush_limit=flush_limit)
    prefill = PrefillModel(spec, transfer_gbps=transfer_gbps)
    return DisaggregatedPlatform(
        prefill, [engine] * decode_replicas,
        prefill_replicas=prefill_replicas, prefill_batch=prefill_batch,
        prefill_balancer=prefill_balancer, decode_balancer=decode_balancer,
        seed=seed, prefill_profiles=prefill_profiles,
        decode_profiles=decode_profiles,
        prefill_autoscaler=_resolve_prefill_autoscaler(prefill_autoscaler),
        decode_autoscaler=_resolve_generative_autoscaler(decode_autoscaler,
                                                         max_batch_size),
        prefill_min_replicas=prefill_min_replicas,
        prefill_max_replicas=prefill_max_replicas,
        decode_min_replicas=decode_min_replicas,
        decode_max_replicas=decode_max_replicas,
        ttft_slo_ms=_normalize_ttft_slo(ttft_slo_ms),
        tenancy=tenancy, faults=faults, kv_capacity=kv_capacity, obs=obs)


def _generative_vanilla_disagg_impl(model: Union[str, ModelSpec],
                                    workload: GenerativeWorkload,
                                    max_batch_size: int = 8, seed: int = 0,
                                    **pool_kwargs) -> DisaggregatedMetrics:
    platform = build_disaggregated_platform(model, max_batch_size=max_batch_size,
                                            ramp_overhead=0.0, seed=seed,
                                            **pool_kwargs)
    policy = VanillaTokenPolicy()
    return platform.run(workload, lambda ordinal: policy)


def _generative_apparate_disagg_impl(model: Union[str, ModelSpec],
                                     workload: GenerativeWorkload,
                                     fleet_mode: str = "independent",
                                     accuracy_constraint: float = 0.01,
                                     max_batch_size: int = 8,
                                     flush_limit: int = 8, seed: int = 0,
                                     **pool_kwargs) -> GenerativeClusterRunResult:
    """Apparate on the disaggregated platform: per-decode-replica (or one
    fleet-wide, with ``fleet_mode="shared"``) adaptive token policies; the
    prefill pool is policy-free (no tokens are released there)."""
    if fleet_mode not in FleetController.MODES:
        raise ValueError(f"unknown fleet mode {fleet_mode!r}; "
                         f"choose from {tuple(FleetController.MODES)}")
    spec = get_model(model) if isinstance(model, str) else model
    prediction = PredictionModel(spec, seed=seed)
    depths = generative_ramp_depths(spec, seed=seed)
    overhead = ramp_overhead_fraction(spec, RampStyle.DECODE_HEAD)
    platform = build_disaggregated_platform(model, max_batch_size=max_batch_size,
                                            flush_limit=flush_limit,
                                            ramp_overhead=overhead, seed=seed,
                                            **pool_kwargs)

    policies: List[ApparateTokenPolicy] = []
    shared = ApparateTokenPolicy(prediction, depths,
                                 accuracy_constraint=accuracy_constraint) \
        if fleet_mode == "shared" else None

    def policy_factory(ordinal: int) -> ApparateTokenPolicy:
        policy = shared if shared is not None else ApparateTokenPolicy(
            prediction, depths, accuracy_constraint=accuracy_constraint)
        policies.append(policy)
        return policy

    metrics = platform.run(workload, policy_factory)
    return GenerativeClusterRunResult(metrics=metrics, policies=policies,
                                      fleet_mode=fleet_mode)


# ---------------------------------------------------------------------------
# One-call generative runs: thin shims over the system registry.
# ---------------------------------------------------------------------------

def run_generative_vanilla(model: Union[str, ModelSpec], workload: GenerativeWorkload,
                           max_batch_size: int = 8, seed: int = 0) -> GenerativeMetrics:
    """Serve a generative workload with the original model (no exits).

    Equivalent to ``Experiment(...).run(systems=["vanilla"])``.
    """
    from repro.api import Experiment
    experiment = Experiment(model=model, workload=workload,
                            max_batch_size=max_batch_size, seed=seed)
    return experiment.run(["vanilla"]).result("vanilla").raw


def run_generative_apparate(model: Union[str, ModelSpec], workload: GenerativeWorkload,
                            accuracy_constraint: float = 0.01, max_batch_size: int = 8,
                            flush_limit: int = 8, seed: int = 0) -> GenerativeRunResult:
    """Serve a generative workload with Apparate's adaptive single ramp.

    Equivalent to ``Experiment(...).run(systems=["apparate"])``.
    """
    from repro.api import Experiment, ExitPolicySpec
    experiment = Experiment(model=model, workload=workload,
                            ee=ExitPolicySpec(accuracy_constraint=accuracy_constraint),
                            max_batch_size=max_batch_size, seed=seed,
                            overrides={"apparate": {"flush_limit": flush_limit}})
    return experiment.run(["apparate"]).result("apparate").raw


def run_generative_vanilla_cluster(model: Union[str, ModelSpec],
                                   workload: GenerativeWorkload,
                                   replicas: int = 2,
                                   balancer: Union[str, LoadBalancer] = "round_robin",
                                   max_batch_size: int = 8, seed: int = 0,
                                   autoscaler: Union[str, Autoscaler, None] = "none",
                                   min_replicas: Optional[int] = None,
                                   max_replicas: Optional[int] = None,
                                   profiles: Optional[Sequence] = None
                                   ) -> GenerativeClusterMetrics:
    """Serve a generative workload with a fleet of the original model.

    Equivalent to ``Experiment(..., cluster=ClusterSpec(...)).run(["vanilla"])``.
    """
    from repro.api import ClusterSpec, Experiment
    cluster = ClusterSpec(replicas=replicas, balancer=balancer,
                          autoscaler=autoscaler, min_replicas=min_replicas,
                          max_replicas=max_replicas, profiles=profiles)
    experiment = Experiment(model=model, workload=workload, cluster=cluster,
                            max_batch_size=max_batch_size, seed=seed)
    return experiment.run(["vanilla"]).result("vanilla").raw


def run_generative_apparate_cluster(model: Union[str, ModelSpec],
                                    workload: GenerativeWorkload,
                                    replicas: int = 2,
                                    balancer: Union[str, LoadBalancer] = "round_robin",
                                    fleet_mode: str = "independent",
                                    accuracy_constraint: float = 0.01,
                                    max_batch_size: int = 8,
                                    flush_limit: int = 8, seed: int = 0,
                                    autoscaler: Union[str, Autoscaler, None] = "none",
                                    min_replicas: Optional[int] = None,
                                    max_replicas: Optional[int] = None,
                                    profiles: Optional[Sequence] = None
                                    ) -> GenerativeClusterRunResult:
    """Serve a generative workload across a fleet of Apparate decode replicas.

    ``fleet_mode`` selects the token-level EE control topology: ``independent``
    gives each replica its own :class:`ApparateTokenPolicy`; ``shared`` feeds
    every replica's token feedback into one fleet-wide policy.

    Equivalent to ``Experiment(..., cluster=ClusterSpec(...)).run(["apparate"])``.
    """
    from repro.api import ClusterSpec, Experiment, ExitPolicySpec
    cluster = ClusterSpec(replicas=replicas, balancer=balancer,
                          fleet_mode=fleet_mode, autoscaler=autoscaler,
                          min_replicas=min_replicas, max_replicas=max_replicas,
                          profiles=profiles)
    experiment = Experiment(model=model, workload=workload, cluster=cluster,
                            ee=ExitPolicySpec(accuracy_constraint=accuracy_constraint),
                            max_batch_size=max_batch_size, seed=seed,
                            overrides={"apparate": {"flush_limit": flush_limit}})
    return experiment.run(["apparate"]).result("apparate").raw


def run_generative_vanilla_disagg(model: Union[str, ModelSpec],
                                  workload: GenerativeWorkload,
                                  prefill_replicas: int = 2,
                                  decode_replicas: int = 2,
                                  max_batch_size: int = 8, seed: int = 0,
                                  **cluster_kwargs) -> DisaggregatedMetrics:
    """Serve a generative workload on disaggregated prefill/decode pools
    with the original model (no exits).

    Equivalent to ``Experiment(..., cluster=ClusterSpec(disaggregate=True,
    ...)).run(["vanilla"])``; extra keywords go to :class:`ClusterSpec`.
    """
    from repro.api import ClusterSpec, Experiment
    cluster = ClusterSpec(replicas=max(prefill_replicas, decode_replicas),
                          disaggregate=True,
                          prefill_replicas=prefill_replicas,
                          decode_replicas=decode_replicas, **cluster_kwargs)
    experiment = Experiment(model=model, workload=workload, cluster=cluster,
                            max_batch_size=max_batch_size, seed=seed)
    return experiment.run(["vanilla"]).result("vanilla").raw


def run_generative_apparate_disagg(model: Union[str, ModelSpec],
                                   workload: GenerativeWorkload,
                                   prefill_replicas: int = 2,
                                   decode_replicas: int = 2,
                                   fleet_mode: str = "independent",
                                   accuracy_constraint: float = 0.01,
                                   max_batch_size: int = 8, seed: int = 0,
                                   **cluster_kwargs) -> GenerativeClusterRunResult:
    """Serve a generative workload on disaggregated prefill/decode pools
    with Apparate's adaptive token exits on the decode pool.

    Equivalent to ``Experiment(..., cluster=ClusterSpec(disaggregate=True,
    ...)).run(["apparate"])``; extra keywords go to :class:`ClusterSpec`.
    """
    from repro.api import ClusterSpec, Experiment, ExitPolicySpec
    cluster = ClusterSpec(replicas=max(prefill_replicas, decode_replicas),
                          disaggregate=True, fleet_mode=fleet_mode,
                          prefill_replicas=prefill_replicas,
                          decode_replicas=decode_replicas, **cluster_kwargs)
    experiment = Experiment(model=model, workload=workload, cluster=cluster,
                            ee=ExitPolicySpec(accuracy_constraint=accuracy_constraint),
                            max_batch_size=max_batch_size, seed=seed)
    return experiment.run(["apparate"]).result("apparate").raw
