"""The Apparate system: the public, end-to-end API (Figure 6).

Workflow (mirroring the paper's system architecture):

1. ``register`` a model along with its SLO, an accuracy constraint and a ramp
   budget ("ramp aggression").  Apparate analyzes the model graph, enumerates
   feasible ramp positions (cut vertices), sizes lightweight ramps, trains
   them on bootstrap data and deploys the EE-enabled model with evenly spaced
   ramps whose thresholds all start at 0.
2. ``serve`` a workload on a chosen serving platform.  During serving the
   controller continuously tunes thresholds (accuracy preservation) and
   adjusts the active ramp set (latency optimization).

The class is a thin orchestration layer over :mod:`repro.core.pipeline`; it
exists so that the examples read like the real system's user-facing API.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.core.controller import ApparateController
from repro.core.pipeline import ApparateExecutor, ApparateRunResult, Workload, \
    build_platform, model_stack
from repro.exits.placement import initial_ramp_selection
from repro.exits.ramps import RampStyle
from repro.exits.training import RampTrainer, RampTrainingReport
from repro.models.zoo import ModelSpec, get_model
from repro.serving.metrics import ServingMetrics
from repro.serving.platform import VanillaExecutor
from repro.serving.request import make_requests

__all__ = ["PreparationReport", "ApparateDeployment", "Apparate"]


@dataclass
class PreparationReport:
    """Summary of the model-preparation phase (§3.1)."""

    model_name: str
    num_candidate_ramps: int
    num_initial_ramps: int
    ramp_budget: float
    ramp_params_fraction: float
    training: Optional[RampTrainingReport] = None


@dataclass
class ApparateDeployment:
    """A registered model ready to serve workloads."""

    spec: ModelSpec
    slo_ms: float
    accuracy_constraint: float
    ramp_budget: float
    ramp_style: RampStyle
    seed: int
    preparation: PreparationReport
    _stack: tuple = field(repr=False, default=())

    def new_controller(self) -> ApparateController:
        _spec, profile, _prediction, catalog, _executor = self._stack
        return ApparateController(self.spec, catalog, profile,
                                  accuracy_constraint=self.accuracy_constraint)

    def serve(self, workload: Workload, platform: str = "clockwork",
              max_batch_size: int = 16, drop_expired: bool = True) -> ApparateRunResult:
        """Serve a workload with Apparate managing exits on the given platform."""
        _spec, profile, _prediction, _catalog, executor = self._stack
        controller = self.new_controller()
        requests = make_requests(workload.trace, workload.arrival_times_ms, self.slo_ms)
        engine = build_platform(platform, profile, max_batch_size=max_batch_size,
                                drop_expired=drop_expired)
        metrics = engine.run(requests, ApparateExecutor(executor, controller))
        return ApparateRunResult(metrics=metrics, controller=controller)

    def serve_vanilla(self, workload: Workload, platform: str = "clockwork",
                      max_batch_size: int = 16, drop_expired: bool = True) -> ServingMetrics:
        """Serve the same workload with the original model (for comparison)."""
        _spec, profile, _prediction, _catalog, executor = self._stack
        requests = make_requests(workload.trace, workload.arrival_times_ms, self.slo_ms)
        engine = build_platform(platform, profile, max_batch_size=max_batch_size,
                                drop_expired=drop_expired)
        return engine.run(requests, VanillaExecutor(executor))


class Apparate:
    """Top-level system object: register models, then serve workloads."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self.deployments: Dict[str, ApparateDeployment] = {}

    def register(self, model: Union[str, ModelSpec], slo_ms: Optional[float] = None,
                 accuracy_constraint: float = 0.01, ramp_budget: float = 0.02,
                 ramp_style: RampStyle = RampStyle.LIGHTWEIGHT,
                 bootstrap_workload: Optional[Workload] = None) -> ApparateDeployment:
        """Register a model and prepare it with early exits.

        Parameters
        ----------
        model:
            Registered model name or a custom :class:`ModelSpec`.
        slo_ms:
            Response-time SLO; defaults to the model's Table 5 SLO.
        accuracy_constraint:
            Tolerable accuracy loss relative to the original model (default 1%).
        ramp_budget:
            Bound on the active ramps' impact on worst-case latency (default 2%).
        bootstrap_workload:
            Optional workload whose leading 10% is used to train/calibrate the
            ramps; when omitted, ramps deploy untrained with threshold 0 and
            are calibrated from live feedback (the paper supports both).
        """
        stack = model_stack(model, seed=self.seed, ramp_budget=ramp_budget,
                            ramp_style=ramp_style)
        spec, _profile, prediction, catalog, _executor = stack
        slo = slo_ms if slo_ms is not None else spec.default_slo_ms

        training_report: Optional[RampTrainingReport] = None
        if bootstrap_workload is not None:
            trainer = RampTrainer(spec, catalog, prediction)
            training_report = trainer.train(bootstrap_workload.trace)

        initial = initial_ramp_selection(catalog)
        ramp_params = sum(catalog.ramp(r).params for r in range(len(catalog)))
        model_params = max(spec.params_millions * 1e6, 1.0)
        preparation = PreparationReport(
            model_name=spec.name,
            num_candidate_ramps=len(catalog),
            num_initial_ramps=len(initial),
            ramp_budget=ramp_budget,
            ramp_params_fraction=ramp_params / model_params,
            training=training_report,
        )
        deployment = ApparateDeployment(
            spec=spec, slo_ms=slo, accuracy_constraint=accuracy_constraint,
            ramp_budget=ramp_budget, ramp_style=ramp_style, seed=self.seed,
            preparation=preparation, _stack=stack)
        self.deployments[spec.name] = deployment
        return deployment

    def deployment(self, model_name: str) -> ApparateDeployment:
        try:
            return self.deployments[model_name]
        except KeyError as exc:
            raise KeyError(f"model {model_name!r} has not been registered") from exc

    def registered_models(self) -> List[str]:
        return sorted(self.deployments)
