"""Classification serving pipelines: vanilla and Apparate-managed.

These helpers glue together the substrates for one serving run: build the
model graph, latency profile and prediction model; construct the requested
platform; and run the workload through either the vanilla executor or the
Apparate executor (which consults the controller for the deployed EE
configuration before every batch and streams feedback back afterwards).

The public ``run_vanilla`` / ``run_apparate`` / ``run_*_cluster`` entry
points are thin shims over the system registry: each builds a declarative
:class:`repro.api.Experiment` and delegates to the registered system
(``vanilla`` or ``apparate``), so new front ends (the CLI's ``--systems``
flag, sweeps, benchmarks) and these legacy helpers all execute the exact
same code path.  The serving logic itself lives in the private ``_*_impl``
functions that the registry runners call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.controller import ApparateController, FleetController
from repro.exits.placement import RampCatalog, build_ramp_catalog
from repro.exits.ramps import RampStyle
from repro.graph.builders import build_graph_for_model
from repro.models.execution import ModelExecutor
from repro.models.latency import LatencyProfile, build_latency_profile
from repro.models.prediction import PredictionModel
from repro.models.zoo import ModelSpec, get_model
from repro.serving.autoscaler import (Autoscaler, build_autoscaler,
                                      canonical_autoscaler_name)
from repro.serving.clockwork import ClockworkPlatform
from repro.serving.cluster import ClusterPlatform, LoadBalancer, ReplicaProfile
from repro.serving.metrics import ClusterMetrics, ServingMetrics
from repro.serving.platform import BatchResult, ServingPlatform, VanillaExecutor
from repro.serving.request import Request, make_requests
from repro.serving.tfserve import TFServingPlatform
from repro.workloads.nlp import NLPWorkload
from repro.workloads.video import VideoWorkload

__all__ = ["ApparateExecutor", "ApparateRunResult", "ApparateClusterRunResult",
           "build_platform", "build_cluster", "run_vanilla", "run_apparate",
           "run_vanilla_cluster", "run_apparate_cluster", "model_stack"]

Workload = Union[VideoWorkload, NLPWorkload]


@dataclass
class ApparateRunResult:
    """Outcome of one Apparate serving run."""

    metrics: ServingMetrics
    controller: ApparateController

    def summary(self) -> Dict[str, float]:
        data = self.metrics.summary()
        data.update({
            "threshold_tunings": float(self.controller.stats.threshold_tunings),
            "ramp_adjustments": float(self.controller.stats.ramp_adjustments),
            "ramp_set_changes": float(self.controller.stats.ramp_set_changes),
            "active_ramps": float(self.controller.config.num_active()),
        })
        return data


@dataclass
class ApparateClusterRunResult:
    """Outcome of one Apparate cluster serving run."""

    metrics: ClusterMetrics
    fleet: FleetController

    def summary(self) -> Dict[str, float]:
        data = self.metrics.summary()
        data.update(self.fleet.stats_summary())
        return data


class ApparateExecutor:
    """Batch executor that serves through the deployed EE configuration.

    ``controller`` may be an :class:`ApparateController` or any object with
    the same ``deployed_config()`` / ``observe_batch()`` surface (e.g. the
    per-replica views handed out by a :class:`FleetController`).
    """

    def __init__(self, executor: ModelExecutor, controller) -> None:
        self.executor = executor
        self.controller = controller

    def __call__(self, batch: Sequence[Request], batch_start_ms: float) -> BatchResult:
        ramp_ids, depths, thresholds, overheads = self.controller.deployed_config()
        difficulties = [r.sample.raw_difficulty for r in batch]
        sharpness = [r.sample.sharpness for r in batch]
        shifts = [r.sample.confidence_shift for r in batch]
        execution = self.executor.execute_batch(difficulties, sharpness, ramp_ids, depths,
                                                thresholds, overheads,
                                                confidence_shifts=shifts)
        self.controller.observe_batch(execution)
        return BatchResult(
            gpu_time_ms=execution.gpu_time_ms,
            result_offsets_ms=[r.result_latency_ms for r in execution.results],
            exited=[r.exited for r in execution.results],
            exit_depths=[r.exit_depth for r in execution.results],
            correct=[r.final_correct for r in execution.results],
        )


# ---------------------------------------------------------------------------
# Stack construction helpers.
# ---------------------------------------------------------------------------

def model_stack(model: Union[str, ModelSpec], seed: int = 0,
                ramp_budget: float = 0.02,
                ramp_style: RampStyle = RampStyle.LIGHTWEIGHT
                ) -> Tuple[ModelSpec, LatencyProfile, PredictionModel, RampCatalog, ModelExecutor]:
    """Build the (spec, profile, prediction, catalog, executor) stack for a model."""
    spec = get_model(model) if isinstance(model, str) else model
    graph = build_graph_for_model(_graph_name(spec))
    profile = build_latency_profile(spec, graph)
    prediction = PredictionModel(spec, seed=seed)
    catalog = build_ramp_catalog(spec, graph, profile, budget_fraction=ramp_budget,
                                 style=ramp_style)
    executor = ModelExecutor(spec, profile, prediction)
    return spec, profile, prediction, catalog, executor


def _graph_name(spec: ModelSpec) -> str:
    """Map derived specs (e.g. quantized variants) back to a buildable graph."""
    name = spec.name
    if name.endswith("-int8"):
        return name.removesuffix("-int8")
    return name


def build_platform(platform: str, profile: LatencyProfile, max_batch_size: int = 16,
                   batch_timeout_ms: float = 5.0, drop_expired: bool = True,
                   obs=None) -> ServingPlatform:
    """Construct a serving platform by name (``clockwork`` or ``tfserve``)."""
    platform = platform.lower()
    if platform == "clockwork":
        engine: ServingPlatform = ClockworkPlatform(
            profile, max_batch_size=max_batch_size, drop_expired=drop_expired)
    elif platform in ("tfserve", "tf-serving", "tensorflow-serving"):
        engine = TFServingPlatform(max_batch_size=max_batch_size,
                                   batch_timeout_ms=batch_timeout_ms,
                                   drop_expired=drop_expired,
                                   profile=profile)
    else:
        raise ValueError(f"unknown platform {platform!r}")
    if obs is not None:
        engine.obs = obs
    return engine


def build_cluster(platform: str, profile: LatencyProfile, replicas: int,
                  balancer: Union[str, LoadBalancer] = "round_robin",
                  max_batch_size: int = 16, batch_timeout_ms: float = 5.0,
                  drop_expired: bool = True, seed: int = 0,
                  profiles: Optional[Sequence[Union[ReplicaProfile, float, str]]] = None,
                  autoscaler: Union[str, Autoscaler, None] = "none",
                  min_replicas: Optional[int] = None,
                  max_replicas: Optional[int] = None,
                  tenancy=None, faults=None, obs=None) -> ClusterPlatform:
    """Construct a fleet of platforms behind a load balancer.

    ``profiles`` makes the fleet heterogeneous: each replica's platform is
    built on ``profile.scaled(p.speed)`` so its batching policy and the
    work-aware balancers cost its queue in true milliseconds.  ``autoscaler``
    plus the ``min_replicas``/``max_replicas`` band make the fleet elastic;
    scaled-out replicas run base-speed platforms from a factory.  ``tenancy``
    and ``faults`` turn on multi-tenant dispatch and replica failure
    injection (see :class:`~repro.serving.cluster.ClusterPlatform`).
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    resolved = [ReplicaProfile.coerce(p) for p in profiles] \
        if profiles is not None else [ReplicaProfile() for _ in range(replicas)]
    if len(resolved) != replicas:
        raise ValueError(f"got {len(resolved)} replica profiles for "
                         f"{replicas} replicas")
    fleet = [build_platform(platform, profile.scaled(p.speed),
                            max_batch_size=max_batch_size,
                            batch_timeout_ms=batch_timeout_ms,
                            drop_expired=drop_expired)
             for p in resolved]

    def replica_factory() -> ServingPlatform:
        return build_platform(platform, profile, max_batch_size=max_batch_size,
                              batch_timeout_ms=batch_timeout_ms,
                              drop_expired=drop_expired)

    return ClusterPlatform(fleet, balancer=balancer, seed=seed,
                           profiles=resolved, autoscaler=autoscaler,
                           min_replicas=min_replicas, max_replicas=max_replicas,
                           replica_factory=replica_factory,
                           tenancy=tenancy, faults=faults, obs=obs)


# ---------------------------------------------------------------------------
# Serving implementations (called through the system registry).
# ---------------------------------------------------------------------------

def _workload_requests(workload: Workload, slo_ms: float) -> List[Request]:
    return make_requests(workload.trace, workload.arrival_times_ms, slo_ms)


def _resolve_autoscaler(autoscaler: Union[str, Autoscaler, None],
                        slo_ms: float) -> Union[Autoscaler, str, None]:
    """Build a name-selected autoscaler with the run's SLO threaded in.

    ``reactive`` scales on queue depth *and* SLO headroom; the headroom
    signal needs the serving SLO, which only the run knows — so name-based
    construction (ClusterSpec / CLI) resolves here.  Instances pass through
    untouched (the caller already chose their knobs).
    """
    if autoscaler is None or isinstance(autoscaler, Autoscaler):
        return autoscaler
    key = canonical_autoscaler_name(autoscaler)
    if key == "reactive":
        return build_autoscaler(key, slo_ms=slo_ms)
    return build_autoscaler(key)


def _vanilla_impl(model: Union[str, ModelSpec], workload: Workload,
                  platform: str = "clockwork", slo_ms: Optional[float] = None,
                  max_batch_size: int = 16, seed: int = 0,
                  drop_expired: bool = True, obs=None) -> ServingMetrics:
    spec, profile, _prediction, _catalog, executor = model_stack(model, seed=seed)
    slo = slo_ms if slo_ms is not None else spec.default_slo_ms
    requests = _workload_requests(workload, slo)
    engine = build_platform(platform, profile, max_batch_size=max_batch_size,
                            drop_expired=drop_expired, obs=obs)
    return engine.run(requests, VanillaExecutor(executor))


def _apparate_impl(model: Union[str, ModelSpec], workload: Workload,
                   platform: str = "clockwork", slo_ms: Optional[float] = None,
                   accuracy_constraint: float = 0.01, ramp_budget: float = 0.02,
                   ramp_style: RampStyle = RampStyle.LIGHTWEIGHT,
                   max_batch_size: int = 16, seed: int = 0,
                   drop_expired: bool = True,
                   ramp_adjustment_enabled: bool = True,
                   initial_ramp_ids: Optional[Sequence[int]] = None,
                   obs=None) -> ApparateRunResult:
    spec, profile, _prediction, catalog, executor = model_stack(
        model, seed=seed, ramp_budget=ramp_budget, ramp_style=ramp_style)
    slo = slo_ms if slo_ms is not None else spec.default_slo_ms
    requests = _workload_requests(workload, slo)

    controller = ApparateController(spec, catalog, profile,
                                    accuracy_constraint=accuracy_constraint,
                                    initial_ramp_ids=initial_ramp_ids)
    if not ramp_adjustment_enabled:
        # Ablation switch (§4.5): keep the initial ramp set for the whole run.
        controller.ramp_adjustment_period = 10 ** 9

    engine = build_platform(platform, profile, max_batch_size=max_batch_size,
                            drop_expired=drop_expired, obs=obs)
    metrics = engine.run(requests, ApparateExecutor(executor, controller))
    return ApparateRunResult(metrics=metrics, controller=controller)


def _vanilla_cluster_impl(model: Union[str, ModelSpec], workload: Workload,
                          replicas: int = 2,
                          balancer: Union[str, LoadBalancer] = "round_robin",
                          platform: str = "clockwork", slo_ms: Optional[float] = None,
                          max_batch_size: int = 16, seed: int = 0,
                          drop_expired: bool = True,
                          autoscaler: Union[str, Autoscaler, None] = "none",
                          min_replicas: Optional[int] = None,
                          max_replicas: Optional[int] = None,
                          profiles: Optional[Sequence] = None,
                          tenancy=None, faults=None, obs=None) -> ClusterMetrics:
    spec, profile, _prediction, _catalog, executor = model_stack(model, seed=seed)
    slo = slo_ms if slo_ms is not None else spec.default_slo_ms
    requests = _workload_requests(workload, slo)
    cluster = build_cluster(platform, profile, replicas, balancer=balancer,
                            max_batch_size=max_batch_size,
                            drop_expired=drop_expired, seed=seed,
                            profiles=profiles,
                            autoscaler=_resolve_autoscaler(autoscaler, slo),
                            min_replicas=min_replicas, max_replicas=max_replicas,
                            tenancy=tenancy, faults=faults, obs=obs)
    # The vanilla executor is stateless, so every replica can share it
    # (including replicas the autoscaler brings online mid-run).
    return cluster.run(requests, VanillaExecutor(executor))


def _apparate_cluster_impl(model: Union[str, ModelSpec], workload: Workload,
                           replicas: int = 2,
                           balancer: Union[str, LoadBalancer] = "round_robin",
                           fleet_mode: str = "independent", sync_period: int = 64,
                           platform: str = "clockwork", slo_ms: Optional[float] = None,
                           accuracy_constraint: float = 0.01, ramp_budget: float = 0.02,
                           ramp_style: RampStyle = RampStyle.LIGHTWEIGHT,
                           max_batch_size: int = 16, seed: int = 0,
                           drop_expired: bool = True,
                           initial_ramp_ids: Optional[Sequence[int]] = None,
                           autoscaler: Union[str, Autoscaler, None] = "none",
                           min_replicas: Optional[int] = None,
                           max_replicas: Optional[int] = None,
                           profiles: Optional[Sequence] = None,
                           tenancy=None, faults=None, obs=None
                           ) -> ApparateClusterRunResult:
    spec, profile, _prediction, catalog, executor = model_stack(
        model, seed=seed, ramp_budget=ramp_budget, ramp_style=ramp_style)
    slo = slo_ms if slo_ms is not None else spec.default_slo_ms
    requests = _workload_requests(workload, slo)

    fleet = FleetController(spec, catalog, profile, replicas, mode=fleet_mode,
                            sync_period=sync_period,
                            accuracy_constraint=accuracy_constraint,
                            initial_ramp_ids=initial_ramp_ids)
    cluster = build_cluster(platform, profile, replicas, balancer=balancer,
                            max_batch_size=max_batch_size,
                            drop_expired=drop_expired, seed=seed,
                            profiles=profiles,
                            autoscaler=_resolve_autoscaler(autoscaler, slo),
                            min_replicas=min_replicas, max_replicas=max_replicas,
                            tenancy=tenancy, faults=faults, obs=obs)
    # Executors come from a factory keyed by replica ordinal so replicas the
    # autoscaler adds mid-run get their own controller view (fresh controller
    # in independent mode, synced view of the shared one otherwise).
    metrics = cluster.run(
        requests,
        executor_factory=lambda i: ApparateExecutor(executor,
                                                    fleet.replica_controller(i)))
    fleet.flush()
    return ApparateClusterRunResult(metrics=metrics, fleet=fleet)


# ---------------------------------------------------------------------------
# One-call serving runs: thin shims over the system registry.
# ---------------------------------------------------------------------------

def run_vanilla(model: Union[str, ModelSpec], workload: Workload,
                platform: str = "clockwork", slo_ms: Optional[float] = None,
                max_batch_size: int = 16, seed: int = 0,
                drop_expired: bool = True) -> ServingMetrics:
    """Serve ``workload`` with the original (non-EE) model.

    Equivalent to ``Experiment(...).run(systems=["vanilla"])``.
    """
    from repro.api import Experiment
    experiment = Experiment(model=model, workload=workload, platform=platform,
                            slo_ms=slo_ms, max_batch_size=max_batch_size,
                            seed=seed, drop_expired=drop_expired)
    return experiment.run(["vanilla"]).result("vanilla").raw


def run_apparate(model: Union[str, ModelSpec], workload: Workload,
                 platform: str = "clockwork", slo_ms: Optional[float] = None,
                 accuracy_constraint: float = 0.01, ramp_budget: float = 0.02,
                 ramp_style: RampStyle = RampStyle.LIGHTWEIGHT,
                 max_batch_size: int = 16, seed: int = 0,
                 drop_expired: bool = True,
                 ramp_adjustment_enabled: bool = True,
                 initial_ramp_ids: Optional[Sequence[int]] = None) -> ApparateRunResult:
    """Serve ``workload`` with Apparate managing early exits on top of the platform.

    Equivalent to ``Experiment(...).run(systems=["apparate"])``.
    """
    from repro.api import Experiment, ExitPolicySpec
    ee = ExitPolicySpec(accuracy_constraint=accuracy_constraint,
                        ramp_budget=ramp_budget, ramp_style=ramp_style,
                        initial_ramp_ids=initial_ramp_ids,
                        ramp_adjustment_enabled=ramp_adjustment_enabled)
    experiment = Experiment(model=model, workload=workload, ee=ee,
                            platform=platform, slo_ms=slo_ms,
                            max_batch_size=max_batch_size, seed=seed,
                            drop_expired=drop_expired)
    return experiment.run(["apparate"]).result("apparate").raw


def run_vanilla_cluster(model: Union[str, ModelSpec], workload: Workload,
                        replicas: int = 2, balancer: Union[str, LoadBalancer] = "round_robin",
                        platform: str = "clockwork", slo_ms: Optional[float] = None,
                        max_batch_size: int = 16, seed: int = 0,
                        drop_expired: bool = True,
                        autoscaler: Union[str, Autoscaler, None] = "none",
                        min_replicas: Optional[int] = None,
                        max_replicas: Optional[int] = None,
                        profiles: Optional[Sequence] = None) -> ClusterMetrics:
    """Serve ``workload`` with a fleet of the original (non-EE) model.

    ``autoscaler`` (with the ``min_replicas``/``max_replicas`` band) makes the
    fleet elastic; ``profiles`` makes it heterogeneous.

    Equivalent to ``Experiment(..., cluster=ClusterSpec(...)).run(["vanilla"])``.
    """
    from repro.api import ClusterSpec, Experiment
    cluster = ClusterSpec(replicas=replicas, balancer=balancer,
                          autoscaler=autoscaler, min_replicas=min_replicas,
                          max_replicas=max_replicas, profiles=profiles)
    experiment = Experiment(model=model, workload=workload, cluster=cluster,
                            platform=platform, slo_ms=slo_ms,
                            max_batch_size=max_batch_size, seed=seed,
                            drop_expired=drop_expired)
    return experiment.run(["vanilla"]).result("vanilla").raw


def run_apparate_cluster(model: Union[str, ModelSpec], workload: Workload,
                         replicas: int = 2,
                         balancer: Union[str, LoadBalancer] = "round_robin",
                         fleet_mode: str = "independent", sync_period: int = 64,
                         platform: str = "clockwork", slo_ms: Optional[float] = None,
                         accuracy_constraint: float = 0.01, ramp_budget: float = 0.02,
                         ramp_style: RampStyle = RampStyle.LIGHTWEIGHT,
                         max_batch_size: int = 16, seed: int = 0,
                         drop_expired: bool = True,
                         initial_ramp_ids: Optional[Sequence[int]] = None,
                         autoscaler: Union[str, Autoscaler, None] = "none",
                         min_replicas: Optional[int] = None,
                         max_replicas: Optional[int] = None,
                         profiles: Optional[Sequence] = None
                         ) -> ApparateClusterRunResult:
    """Serve ``workload`` across a fleet of Apparate-managed replicas.

    ``fleet_mode`` selects the EE control topology: ``independent`` gives each
    replica its own :class:`ApparateController`; ``shared`` aggregates the
    fleet's profiling feedback into one controller with a periodic sync of
    ``sync_period`` samples per replica (see :class:`FleetController`).
    ``autoscaler``/``min_replicas``/``max_replicas`` make the fleet elastic
    and ``profiles`` heterogeneous, exactly as in :func:`run_vanilla_cluster`.

    Equivalent to ``Experiment(..., cluster=ClusterSpec(...)).run(["apparate"])``.
    """
    from repro.api import ClusterSpec, Experiment, ExitPolicySpec
    cluster = ClusterSpec(replicas=replicas, balancer=balancer,
                          fleet_mode=fleet_mode, sync_period=sync_period,
                          autoscaler=autoscaler, min_replicas=min_replicas,
                          max_replicas=max_replicas, profiles=profiles)
    ee = ExitPolicySpec(accuracy_constraint=accuracy_constraint,
                        ramp_budget=ramp_budget, ramp_style=ramp_style,
                        initial_ramp_ids=initial_ramp_ids)
    experiment = Experiment(model=model, workload=workload, cluster=cluster,
                            ee=ee, platform=platform, slo_ms=slo_ms,
                            max_batch_size=max_batch_size, seed=seed,
                            drop_expired=drop_expired)
    return experiment.run(["apparate"]).result("apparate").raw
