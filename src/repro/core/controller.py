"""Apparate's runtime controller (§3.2–§3.3).

The controller runs on a CPU next to each model replica.  GPUs stream per-ramp
profiling information (top-prediction error score and agreement with the
original model) for every input; the controller:

* maintains a sliding accuracy window (16 samples) over *released* results and
  triggers threshold tuning whenever it falls below the accuracy constraint;
* periodically refreshes thresholds even without a violation (thresholds start
  at 0 — no exiting — so the first tuning round is what activates exits; the
  paper couples this with the ramp-adjustment cadence);
* every ``ramp_adjustment_period`` requests (128 by default) runs the
  utility-driven ramp adjustment of Algorithm 2 and applies its decision.

All tuning happens by replaying recorded observations; no extra inference is
ever issued (§3.2, "Evaluating threshold configurations").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exits.adjustment import AdjustmentDecision, RampAdjuster
from repro.exits.config import EEConfig
from repro.exits.evaluation import WindowBuffer
from repro.exits.placement import RampCatalog, initial_ramp_selection
from repro.exits.thresholds import tune_thresholds_greedy
from repro.models.execution import BatchExecution
from repro.models.latency import LatencyProfile
from repro.models.zoo import ModelSpec
from repro.utils.stats import WindowedAccuracy

__all__ = ["ControllerStats", "ApparateController", "FleetController"]


@dataclass
class ControllerStats:
    """Bookkeeping about the controller's own activity."""

    samples_seen: int = 0
    threshold_tunings: int = 0
    accuracy_triggered_tunings: int = 0
    ramp_adjustments: int = 0
    ramp_set_changes: int = 0
    tuning_runtime_ms: float = 0.0
    config_history: List[Tuple[int, List[int]]] = field(default_factory=list)

    def record_config(self, sample_index: int, active_ramp_ids: Sequence[int]) -> None:
        self.config_history.append((sample_index, list(active_ramp_ids)))


class ApparateController:
    """Runtime manager of one model replica's early-exit configuration."""

    def __init__(self, spec: ModelSpec, catalog: RampCatalog, profile: LatencyProfile,
                 accuracy_constraint: float = 0.01,
                 accuracy_window: int = 16,
                 tuning_window: int = 256,
                 threshold_refresh_period: int = 32,
                 ramp_adjustment_period: int = 128,
                 min_tuning_samples: int = 48,
                 tuning_safety: float = 0.75,
                 initial_ramp_ids: Optional[Sequence[int]] = None) -> None:
        self.spec = spec
        self.catalog = catalog
        self.profile = profile
        self.accuracy_constraint = float(accuracy_constraint)
        self.tuning_window = int(tuning_window)
        self.threshold_refresh_period = int(threshold_refresh_period)
        self.ramp_adjustment_period = int(ramp_adjustment_period)
        self.min_tuning_samples = int(min_tuning_samples)
        # Thresholds are tuned against a fraction of the allowed accuracy loss
        # so that drift between tuning rounds does not breach the constraint.
        self.tuning_safety = float(tuning_safety)

        ramp_ids = list(initial_ramp_ids) if initial_ramp_ids is not None \
            else initial_ramp_selection(catalog)
        self.config = EEConfig(catalog=catalog, active_ramp_ids=ramp_ids)
        self.window = WindowBuffer(self.config.active_ramp_ids, capacity=max(tuning_window, 512))
        self.accuracy_monitor = WindowedAccuracy(window=accuracy_window)
        self.adjuster = RampAdjuster(catalog, accuracy_constraint=accuracy_constraint)
        self.stats = ControllerStats()
        self._full_latency_ms = spec.bs1_latency_ms
        self.stats.record_config(0, self.config.active_ramp_ids)

    # ----------------------------------------------------------- config view
    def deployed_config(self) -> Tuple[List[int], List[float], List[float], List[float]]:
        """Return (ramp_ids, depths, thresholds, overhead fractions) for the GPU."""
        return (list(self.config.active_ramp_ids),
                self.config.ordered_depths(),
                self.config.ordered_thresholds(),
                self.config.ordered_overheads())

    def overhead_budget_ok(self) -> bool:
        return self.config.within_budget()

    # -------------------------------------------------------------- feedback
    def observe_batch(self, execution: BatchExecution) -> None:
        """Ingest one batch's streamed profiling data and adapt if needed."""
        window_ids = set(self.window.ramp_ids)
        for result in execution.results:
            observed_ids = {obs.ramp_id for obs in result.observations}
            # A ramp-set change mid-batch leaves earlier observations keyed to
            # the previous configuration; only matching records are ingested.
            if self.config.num_active() > 0 and window_ids <= observed_ids:
                self.window.record(result.observations)
            self.accuracy_monitor.record(result.final_correct)
            self.stats.samples_seen += 1

            accuracy_violation = (self.accuracy_monitor.full()
                                  and self.accuracy_monitor.accuracy() < 1.0 - self.accuracy_constraint)
            periodic_refresh = (self.stats.samples_seen % self.threshold_refresh_period == 0)
            if accuracy_violation:
                # Immediate multiplicative backoff: wrong exits are already
                # escaping, so cut every threshold before the (asynchronous)
                # re-tuning settles on new values.
                for ramp_id in self.config.active_ramp_ids:
                    self.config.set_threshold(ramp_id, self.config.thresholds[ramp_id] * 0.5)
            if ((accuracy_violation or periodic_refresh)
                    and len(self.window) >= self.min_tuning_samples):
                self.tune_thresholds(triggered_by_accuracy=accuracy_violation)
                if accuracy_violation:
                    self.accuracy_monitor.reset()

            if (self.stats.samples_seen % self.ramp_adjustment_period == 0
                    and len(self.window) >= self.min_tuning_samples):
                self.adjust_ramps()
                window_ids = set(self.window.ramp_ids)

    # -------------------------------------------------------- threshold loop
    def tune_thresholds(self, triggered_by_accuracy: bool = False) -> None:
        """Re-tune thresholds of the active ramps on the recent window."""
        if self.config.num_active() == 0 or len(self.window) == 0:
            return
        # A violation means the workload just shifted: tune on the freshest
        # samples only, so the new regime dominates the replay.  Periodic
        # refreshes use the full tuning window for stability.
        window = self.min_tuning_samples if triggered_by_accuracy else self.tuning_window
        errors, correct = self.window.latest(window)
        overheads_ms = [o * self._full_latency_ms for o in self.config.ordered_overheads()]
        result = tune_thresholds_greedy(errors, correct, self.config.ordered_depths(),
                                        overheads_ms, self._full_latency_ms,
                                        accuracy_constraint=self.accuracy_constraint
                                        * self.tuning_safety,
                                        conservative_margin=0.5)
        self.config.set_thresholds(result.thresholds_by_ramp(self.config.active_ramp_ids))
        self.stats.threshold_tunings += 1
        self.stats.tuning_runtime_ms += result.runtime_ms
        if triggered_by_accuracy:
            self.stats.accuracy_triggered_tunings += 1

    # ------------------------------------------------------------- ramp loop
    def adjust_ramps(self) -> None:
        """Run Algorithm 2 and apply its decision."""
        decision = self.adjuster.propose(self.config, self.window, self._full_latency_ms)
        self.stats.ramp_adjustments += 1
        self.apply_decision(decision)

    def apply_decision(self, decision: AdjustmentDecision) -> None:
        if decision.new_thresholds:
            self.config.set_thresholds(decision.new_thresholds)
        if decision.changes_ramp_set:
            for ramp_id in decision.ramps_to_remove:
                self.config.remove_ramp(ramp_id)
            for ramp_id in decision.ramps_to_add:
                if len(self.config.active_ramp_ids) < self.catalog.max_active_ramps():
                    self.config.add_ramp(ramp_id, threshold=0.0)
            self.window.rebuild(self.config.active_ramp_ids)
            self.stats.ramp_set_changes += 1
            self.stats.record_config(self.stats.samples_seen, self.config.active_ramp_ids)


# ---------------------------------------------------------------------------
# Fleet-scale control (cluster serving).
# ---------------------------------------------------------------------------

class _SyncedReplicaController:
    """Replica-side view of a shared fleet controller.

    Reads (``deployed_config``) always reflect the shared controller's latest
    decision — configuration changes propagate to every replica immediately.
    Writes (``observe_batch``) are buffered locally and flushed to the shared
    controller every ``sync_period`` samples, modelling the periodic feedback
    sync a real fleet would run instead of a per-batch RPC per replica.
    """

    def __init__(self, shared: ApparateController, sync_period: int) -> None:
        if sync_period < 1:
            raise ValueError("sync_period must be >= 1")
        self.shared = shared
        self.sync_period = int(sync_period)
        self._buffer: List[BatchExecution] = []
        self._buffered_samples = 0

    def deployed_config(self) -> Tuple[List[int], List[float], List[float], List[float]]:
        return self.shared.deployed_config()

    def observe_batch(self, execution: BatchExecution) -> None:
        self._buffer.append(execution)
        self._buffered_samples += len(execution.results)
        if self._buffered_samples >= self.sync_period:
            self.flush()

    def flush(self) -> None:
        """Replay buffered feedback into the shared controller."""
        for execution in self._buffer:
            self.shared.observe_batch(execution)
        self._buffer.clear()
        self._buffered_samples = 0


class FleetController:
    """EE control for a fleet of replicas serving the same model.

    Two modes reproduce the paper's controller at cluster scale:

    ``independent``
        One :class:`ApparateController` per replica.  Each replica adapts its
        thresholds/ramps to the slice of traffic the balancer routes to it —
        robust to skewed dispatch, but every controller pays its own warm-up.
    ``shared``
        One controller for the whole fleet.  Every replica serves the shared
        deployed configuration; profiling feedback is aggregated across
        replicas with a periodic sync (every ``sync_period`` samples per
        replica), so the controller tunes on fleet-wide evidence and converges
        with N× the sample rate of a single replica.

    The membership is *elastic*: ``replica_controller`` grows the view list on
    demand, so a cluster autoscaler can bring replicas online mid-run —
    independent mode gives the newcomer a fresh controller (it pays its own
    warm-up, as a newly booted machine would), shared mode hands it a synced
    view of the fleet controller (it serves the converged configuration
    immediately).
    """

    MODES = ("independent", "shared")

    def __init__(self, spec: ModelSpec, catalog: RampCatalog, profile: LatencyProfile,
                 num_replicas: int, mode: str = "independent",
                 sync_period: int = 64, **controller_kwargs) -> None:
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        mode = mode.lower()
        if mode not in self.MODES:
            raise ValueError(f"unknown fleet mode {mode!r}; choose from {self.MODES}")
        self.mode = mode
        self.num_replicas = int(num_replicas)
        self.sync_period = int(sync_period)
        self._build_controller = lambda: ApparateController(
            spec, catalog, profile, **controller_kwargs)

        if mode == "independent":
            self.shared: Optional[ApparateController] = None
            self.controllers: List[ApparateController] = [
                self._build_controller() for _ in range(self.num_replicas)]
            self._replica_views: List[object] = list(self.controllers)
        else:
            self.shared = self._build_controller()
            self.controllers = [self.shared]
            self._replica_views = [
                _SyncedReplicaController(self.shared, sync_period)
                for _ in range(self.num_replicas)]

    def replica_controller(self, index: int):
        """The controller-like object replica ``index`` should serve through.

        Indices past the initial fleet grow the membership (autoscaling):
        views are created on demand and kept, so a replica ordinal always maps
        to the same controller for the whole run.
        """
        if index < 0:
            raise ValueError(f"replica index must be >= 0, got {index}")
        while index >= len(self._replica_views):
            if self.mode == "independent":
                controller = self._build_controller()
                self.controllers.append(controller)
                self._replica_views.append(controller)
            else:
                self._replica_views.append(
                    _SyncedReplicaController(self.shared, self.sync_period))
        return self._replica_views[index]

    def primary(self) -> ApparateController:
        """The controller used for fleet-level reporting."""
        return self.shared if self.shared is not None else self.controllers[0]

    def flush(self) -> None:
        """Drain any buffered feedback (call once at the end of a run)."""
        if self.shared is not None:
            for view in self._replica_views:
                view.flush()

    # ------------------------------------------------------------- reporting
    def total_samples_seen(self) -> int:
        return sum(c.stats.samples_seen for c in self.controllers)

    def stats_summary(self) -> Dict[str, float]:
        """Fleet-wide controller activity, summed across controllers."""
        return {
            "fleet_mode": float(self.MODES.index(self.mode)),
            "num_controllers": float(len(self.controllers)),
            "samples_seen": float(self.total_samples_seen()),
            "threshold_tunings": float(sum(c.stats.threshold_tunings
                                           for c in self.controllers)),
            "ramp_adjustments": float(sum(c.stats.ramp_adjustments
                                          for c in self.controllers)),
            "ramp_set_changes": float(sum(c.stats.ramp_set_changes
                                          for c in self.controllers)),
        }
