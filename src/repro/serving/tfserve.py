"""TensorFlow-Serving-style platform: ``max_batch_size`` and batch timeout knobs.

TF-Serving's batching scheduler exposes ``max_batch_size`` and
``batch_timeout_micros``: a batch is dispatched either when it is full or when
the oldest queued request has waited for the timeout.  These knobs let users
trade latency against throughput (Figure 2), but — as the paper argues — only
by walking a harsh trade-off curve.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.models.latency import LatencyProfile
from repro.serving.platform import ServingPlatform
from repro.serving.request import Request

__all__ = ["TFServingPlatform"]


class TFServingPlatform(ServingPlatform):
    """Knob-driven batching (max size + timeout).

    The optional latency ``profile`` is never consulted by the batching policy
    (TF-Serving's scheduler is knob-driven, not model-aware); it only feeds
    :meth:`predicted_batch_time_ms` so that work-aware cluster balancers can
    cost this replica's queue.
    """

    def __init__(self, max_batch_size: int = 16, batch_timeout_ms: float = 5.0,
                 drop_expired: bool = False,
                 profile: Optional[LatencyProfile] = None) -> None:
        super().__init__(max_batch_size=max_batch_size, drop_expired=drop_expired)
        if batch_timeout_ms < 0:
            raise ValueError("batch_timeout_ms must be non-negative")
        self.batch_timeout_ms = float(batch_timeout_ms)
        self.profile = profile

    def predicted_batch_time_ms(self, batch_size: int) -> Optional[float]:
        if self.profile is None:
            return None
        return self.profile.total_latency_ms(batch_size)

    def select_batch(self, queue: List[Request], now_ms: float) -> Tuple[List[Request], float]:
        # Rank is the tenancy dispatch key (0.0 for every request in
        # untenanted runs, keeping this a pure arrival-order sort).
        ordered = sorted(queue, key=lambda r: (r.rank, r.arrival_ms, r.request_id))
        if len(ordered) >= self.max_batch_size:
            return ordered[: self.max_batch_size], now_ms
        oldest_arrival = min(r.arrival_ms for r in ordered)
        oldest_wait = now_ms - oldest_arrival
        if oldest_wait >= self.batch_timeout_ms:
            return ordered, now_ms
        # Wait until the timeout of the oldest request expires (or until more
        # requests arrive, whichever the run loop sees first).
        wake_up = oldest_arrival + self.batch_timeout_ms
        return [], wake_up
