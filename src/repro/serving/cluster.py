"""Fleet control plane: dynamic replica membership behind a pluggable balancer.

A :class:`ClusterPlatform` dispatches one arrival stream across a **dynamic
fleet** of :class:`~repro.serving.platform.ServingPlatform` replicas.  The
member set is no longer a frozen constructor list: it is
:class:`~repro.serving.fleet.FleetState` — live replica handles with an
add / drain / retire lifecycle — mutated mid-run by a pluggable
:class:`~repro.serving.autoscaler.Autoscaler` (``none`` / ``reactive`` /
``predictive``) evaluated on the global clock.  Replicas may be heterogeneous:
each carries a :class:`~repro.serving.fleet.ReplicaProfile` (speed multiplier
+ cost weight), and the run loop scales executor results by the replica's
speed so an int8 replica genuinely finishes batches faster than its fp32
neighbour.

Every iteration of the event loop:

1. brings provisioned replicas online (scale-out completes after the
   autoscaler's ``provision_delay_ms``);
2. admits and dispatches every arrival due by ``now`` across the **active**
   members (draining replicas receive no new work);
3. asks the autoscaler for the desired fleet size, clamped to
   ``[min_replicas, max_replicas]`` — scale-in drains the newest replicas;
4. salvages doomed requests: a queued request that can no longer meet its
   deadline where it sits is re-routed **once** to the least-loaded replica
   that still can (counted as ``rerouted`` in
   :class:`~repro.serving.metrics.ClusterMetrics`);
5. steps each serving replica through the ``expire`` / ``select`` /
   ``dispatch`` / ``complete`` phases and retires drained replicas that have
   gone idle;
6. advances the shared clock to the earliest future event (arrival, batch
   completion, policy wake-up, or replica boot).

Balancing policies
------------------
``round_robin``
    Cycle through replicas in dispatch order.  Zero state inspection; fair in
    count but blind to queue skew and replica speed.
``weighted_round_robin``
    Smooth weighted cycling: replicas receive dispatches proportional to
    their profile speed (a 2× replica gets 2× the requests).
``join_shortest_queue``
    Route to the replica with the fewest jobs in system — queued plus the
    in-flight batch (classic JSQ).
``weighted_join_shortest_queue``
    JSQ with jobs normalized by replica speed — four jobs on a 2× replica
    weigh like two on the base hardware.
``least_work_left``
    Route to the replica with the least *expected* work: accelerator backlog
    plus queued requests translated into milliseconds via the replica's
    (speed-scaled) latency profile.  Sees through queues of unequal cost, so
    it prices heterogeneous replicas correctly out of the box.
``power_of_two_choices``
    Sample two replicas uniformly at random and pick the shorter queue —
    near-JSQ balance with O(1) state inspection (Mitzenmacher '01).
``kv_aware_least_work`` (generative platforms only)
    Least-work plus the expected recompute cost of the KV-cache thrash the
    sequence would cause on each replica — long sequences steer away from
    replicas whose cache they are about to overflow.  Identical to
    ``least_work_left`` when the cache model is disabled.
``prefix_affinity`` (generative platforms only)
    Route to the replica whose KV cache holds the longest shared prefix of
    the sequence (skipping that much re-prefill), falling back to least-work
    among replicas with equal residency.

The costing interface
---------------------
Every policy costs replicas through the uniform **resource view** on
:class:`~repro.serving.fleet.ReplicaHandle` — load signals
(``jobs_in_system``, ``work_left_ms``), identity (``weight``, ``profile``)
and KV-cache signals (``kv_prefix_hit_tokens``, ``kv_overflow_ms``, which
read 0 on platforms without a cache model).  Single-signal policies derive
from :class:`CostBalancer` and implement ``cost(view, item, now_ms)``; the
round-robin family keeps its custom rotation state but still touches
replicas only through the view.
"""

from __future__ import annotations

import abc
import math
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.faults import FaultSchedule, FaultSpec, coerce_faults
from repro.obs.recorder import NULL_RECORDER
from repro.serving.autoscaler import Autoscaler, build_autoscaler
from repro.serving.fleet import (ACTIVE, DRAINING, RETIRED, FleetState,
                                 ReplicaEntry, ReplicaHandle, ReplicaProfile)
from repro.serving.kernel import (PoolState, SimPlatform, pool_is_static,
                                  scale_pool)
from repro.serving.metrics import ClusterMetrics
from repro.serving.platform import (BatchExecutorFn, BatchResult, ReplicaState,
                                    ServingPlatform)
from repro.serving.request import Request
from repro.tenancy import (TenancyConfig, build_request_runtime, coerce_tenancy,
                           request_rollups, tenant_backlog)

__all__ = [
    "ReplicaHandle",
    "ReplicaProfile",
    "LoadBalancer",
    "CostBalancer",
    "RoundRobinBalancer",
    "WeightedRoundRobinBalancer",
    "JoinShortestQueueBalancer",
    "WeightedJoinShortestQueueBalancer",
    "LeastWorkLeftBalancer",
    "PowerOfTwoChoicesBalancer",
    "KVAwareLeastWorkBalancer",
    "PrefixAffinityBalancer",
    "build_balancer",
    "canonical_balancer_name",
    "balancer_names",
    "BALANCER_NAMES",
    "ClusterPlatform",
    "gate_exits",
]


class LoadBalancer(abc.ABC):
    """Dispatch policy: pick the replica that receives an arriving request.

    ``replicas`` holds the handles of the currently ACTIVE members only, so a
    balancer never sees draining or retired replicas.  Membership may change
    between calls (autoscaling); stateful balancers must key any per-replica
    state by ``handle.replica_id``, which is stable for a replica's lifetime.
    """

    name: str = "abstract"

    @abc.abstractmethod
    def choose(self, request: Request, replicas: Sequence[ReplicaHandle],
               now_ms: float) -> int:
        """Return the index of the replica that should serve ``request``."""

    def reset(self) -> None:
        """Clear any dispatch state before a fresh run (default: nothing)."""


class CostBalancer(LoadBalancer):
    """A balancer that routes to the replica with the minimum cost.

    Subclasses implement :meth:`cost` against the resource view (a
    :class:`~repro.serving.fleet.ReplicaHandle`); ``choose`` is the shared
    argmin with the handle index as the deterministic tie-break, which is
    exactly the historical JSQ/least-work semantics.  ``cost`` may return a
    float or a tuple (compared lexicographically).
    """

    @abc.abstractmethod
    def cost(self, view: ReplicaHandle, item, now_ms: float):
        """Cost of placing ``item`` on ``view`` now (lower is better)."""

    def choose(self, request, replicas: Sequence[ReplicaHandle],
               now_ms: float) -> int:
        return min(range(len(replicas)),
                   key=lambda i: (self.cost(replicas[i], request, now_ms), i))


class RoundRobinBalancer(LoadBalancer):
    """Cycle through replicas in dispatch order."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, request: Request, replicas: Sequence[ReplicaHandle],
               now_ms: float) -> int:
        index = self._next % len(replicas)
        self._next += 1
        return index

    def reset(self) -> None:
        self._next = 0


class WeightedRoundRobinBalancer(LoadBalancer):
    """Smooth weighted round robin: dispatch shares proportional to speed.

    Nginx-style smooth WRR: every replica accumulates its weight per round,
    the largest accumulator wins and is decremented by the total weight.
    Produces the evenly interleaved sequence (no burst of consecutive picks
    to the heavy replica) and tolerates membership change because the
    accumulators are keyed by stable replica ids.
    """

    name = "weighted_round_robin"

    def __init__(self) -> None:
        self._current: dict = {}

    def choose(self, request: Request, replicas: Sequence[ReplicaHandle],
               now_ms: float) -> int:
        total = 0.0
        for handle in replicas:
            weight = handle.weight
            total += weight
            self._current[handle.replica_id] = \
                self._current.get(handle.replica_id, 0.0) + weight
        best = max(range(len(replicas)),
                   key=lambda i: (self._current[replicas[i].replica_id], -i))
        self._current[replicas[best].replica_id] -= total
        return best

    def reset(self) -> None:
        self._current.clear()


class JoinShortestQueueBalancer(CostBalancer):
    """Route to the replica with the fewest jobs in system (ties: lowest index)."""

    name = "join_shortest_queue"

    def cost(self, view: ReplicaHandle, item, now_ms: float):
        return view.jobs_in_system(now_ms)


class WeightedJoinShortestQueueBalancer(CostBalancer):
    """JSQ with queue lengths normalized by replica speed."""

    name = "weighted_join_shortest_queue"

    def cost(self, view: ReplicaHandle, item, now_ms: float):
        return view.jobs_in_system(now_ms) / view.weight


class LeastWorkLeftBalancer(CostBalancer):
    """Route to the replica with the least expected work (profile-costed)."""

    name = "least_work_left"

    def cost(self, view: ReplicaHandle, item, now_ms: float):
        return view.work_left_ms(now_ms)


class KVAwareLeastWorkBalancer(CostBalancer):
    """Least-work plus the KV-cache thrash the item would cause.

    The penalty is the view's expected recompute cost of admitting the
    item's full footprint (``kv_overflow_ms``): tokens the cache would
    overflow by, priced at the replica's re-prefill rate.  A long sequence
    therefore avoids replicas it is about to thrash even when their decode
    queues are short.  With the cache model disabled the penalty reads 0 and
    the policy is exactly ``least_work_left``.
    """

    name = "kv_aware_least_work"

    def cost(self, view: ReplicaHandle, item, now_ms: float):
        return view.work_left_ms(now_ms) + view.kv_overflow_ms(item, now_ms)


class PrefixAffinityBalancer(CostBalancer):
    """Route by net placement cost: queued work minus the prefill a resident
    shared prefix would save, plus the recompute the admission would thrash.

    All three terms are milliseconds from the resource view, so affinity and
    load trade off in one currency: a replica holding the item's group prefix
    is discounted by exactly the prefill it skips (``kv_prefix_hit_ms``), but
    once its queue grows past that saving the policy spills the group to the
    next-cheapest replica instead of herding the whole group onto one
    hotspot.  With the cache model off every KV term reads 0 and the policy
    is exactly ``least_work_left``.
    """

    name = "prefix_affinity"

    def cost(self, view: ReplicaHandle, item, now_ms: float):
        return (view.work_left_ms(now_ms) - view.kv_prefix_hit_ms(item)
                + view.kv_overflow_ms(item, now_ms))


class PowerOfTwoChoicesBalancer(LoadBalancer):
    """Sample two replicas at random, join the shorter queue."""

    name = "power_of_two_choices"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    def choose(self, request: Request, replicas: Sequence[ReplicaHandle],
               now_ms: float) -> int:
        n = len(replicas)
        if n == 1:
            return 0
        first, second = self._rng.choice(n, size=2, replace=False)
        candidates = sorted((int(first), int(second)))
        return min(candidates, key=lambda i: (replicas[i].jobs_in_system(now_ms), i))

    def reset(self) -> None:
        # Restore the original seed's RNG stream so repeated run() calls on
        # one cluster object make identical choices (regression-tested).
        self._rng = np.random.default_rng(self.seed)


#: platform kinds a balancer may serve.  The load-signal policies work on
#: both; the KV-cache policies read signals only generative replicas expose.
_BOTH = ("classification", "generative")
_GENERATIVE = ("generative",)

#: canonical name -> (factory, platform kinds).
_BALANCERS = {
    "round_robin": (lambda seed: RoundRobinBalancer(), _BOTH),
    "weighted_round_robin": (lambda seed: WeightedRoundRobinBalancer(), _BOTH),
    "join_shortest_queue": (lambda seed: JoinShortestQueueBalancer(), _BOTH),
    "weighted_join_shortest_queue":
        (lambda seed: WeightedJoinShortestQueueBalancer(), _BOTH),
    "least_work_left": (lambda seed: LeastWorkLeftBalancer(), _BOTH),
    "power_of_two_choices":
        (lambda seed: PowerOfTwoChoicesBalancer(seed=seed), _BOTH),
    "kv_aware_least_work":
        (lambda seed: KVAwareLeastWorkBalancer(), _GENERATIVE),
    "prefix_affinity": (lambda seed: PrefixAffinityBalancer(), _GENERATIVE),
}

_ALIASES = {
    "rr": "round_robin",
    "wrr": "weighted_round_robin",
    "jsq": "join_shortest_queue",
    "wjsq": "weighted_join_shortest_queue",
    "lwl": "least_work_left",
    "p2c": "power_of_two_choices",
    "power_of_two": "power_of_two_choices",
    "kv_least_work": "kv_aware_least_work",
    "kvlw": "kv_aware_least_work",
    "affinity": "prefix_affinity",
}

BALANCER_NAMES = tuple(sorted(_BALANCERS))


def balancer_names(kind: Optional[str] = None) -> Tuple[str, ...]:
    """Canonical balancer names available to ``kind`` (sorted).

    ``kind`` is ``"classification"``, ``"generative"``, or ``None`` for the
    union across platforms.
    """
    if kind is None:
        return BALANCER_NAMES
    if kind not in _BOTH:
        raise ValueError(f"unknown platform kind {kind!r}; choose from {_BOTH}")
    return tuple(sorted(name for name, (_, kinds) in _BALANCERS.items()
                        if kind in kinds))


def canonical_balancer_name(name: Union[str, LoadBalancer],
                            kind: Optional[str] = None) -> str:
    """Resolve a balancer name or alias to its canonical registry key.

    Raises :class:`ValueError` enumerating the valid names for ``kind`` (or
    for every platform when ``kind`` is ``None``) when the name is unknown
    or not available on that platform kind — the single validation used by
    ``build_balancer``, the cluster spec and the CLI, so every layer reports
    the same error.
    """
    if isinstance(name, LoadBalancer):
        return name.name
    key = str(name).lower().replace("-", "_")
    key = _ALIASES.get(key, key)
    if key not in _BALANCERS:
        raise ValueError(f"unknown balancer {name!r}; "
                         f"choose from {balancer_names(kind)}")
    if kind is not None and kind not in _BALANCERS[key][1]:
        raise ValueError(f"balancer {key!r} is not available on {kind} "
                         f"platforms; choose from {balancer_names(kind)}")
    return key


def build_balancer(name: Union[str, LoadBalancer], seed: int = 0,
                   kind: Optional[str] = None) -> LoadBalancer:
    """Construct a balancer by name (see :func:`balancer_names`; short
    aliases accepted).  ``kind`` restricts the lookup to the balancers valid
    for that platform kind and shapes the error message accordingly.
    Instances pass through unchanged."""
    if isinstance(name, LoadBalancer):
        return name
    return _BALANCERS[canonical_balancer_name(name, kind)][0](seed)


def _scale_result(result: BatchResult, speed: float) -> BatchResult:
    """Apply a replica's speed multiplier to an executor's batch outcome."""
    if speed == 1.0:
        return result
    return BatchResult(
        gpu_time_ms=result.gpu_time_ms / speed,
        result_offsets_ms=[offset / speed for offset in result.result_offsets_ms],
        exited=list(result.exited),
        exit_depths=list(result.exit_depths),
        correct=list(result.correct),
    )


class ClusterPlatform:
    """A dynamic fleet of replica platforms behind one load balancer.

    The run loop mirrors the single-replica ``ServingPlatform.run`` semantics
    per replica (including the forced-progress livelock guard) while advancing
    a shared clock over mutable membership: the autoscaler may add replicas
    (online after its provisioning delay) or drain them (they finish in-flight
    work, then retire) at any step.

    Parameters
    ----------
    replicas:
        The initial platforms.  ``run()`` always starts from this fleet, so
        repeated runs on one cluster object are reproducible.
    balancer:
        Dispatch policy name/instance (see :data:`BALANCER_NAMES`).
    seed:
        Seed for stochastic balancers (power-of-two-choices).
    profiles:
        Optional per-initial-replica :class:`ReplicaProfile` (or speed
        floats / ``"speed[:cost]"`` strings) for heterogeneous fleets.
    autoscaler:
        Policy name/instance (see :mod:`repro.serving.autoscaler`); the
        default ``none`` keeps the fleet fixed.
    min_replicas / max_replicas:
        Fleet-size band the autoscaler is clamped to.  Defaults freeze the
        fleet at its initial size.
    replica_factory:
        Zero-argument callable producing a fresh platform for scale-out;
        required when ``max_replicas`` exceeds the initial fleet.
    scale_out_profile:
        Profile assigned to scaled-out replicas (default: base speed).
    tenancy:
        Optional :class:`~repro.tenancy.TenancyConfig` (or CLI string /
        TenantSpec sequence): requests are tagged with tenant classes and
        dispatch ranks, batch queues serve in rank order, and the run's
        metrics carry per-tenant rollups.  ``None`` (the default) is the
        single-tenant fast path.
    faults:
        Optional :class:`~repro.faults.FaultSchedule` (or CLI string /
        FaultSpec sequence): each fault crashes one replica at its
        ``crash_ms`` (queued work requeues through the balancer, in-flight
        work is salvaged) and boots a replacement ``down_ms`` later.  The
        single-pool cluster ignores the faults' ``pool`` tag.
    """

    def __init__(self, replicas: Sequence[ServingPlatform],
                 balancer: Union[str, LoadBalancer] = "round_robin",
                 seed: int = 0,
                 profiles: Optional[Sequence[Union[ReplicaProfile, float, str]]] = None,
                 autoscaler: Union[str, Autoscaler, None] = "none",
                 min_replicas: Optional[int] = None,
                 max_replicas: Optional[int] = None,
                 replica_factory: Optional[Callable[[], ServingPlatform]] = None,
                 scale_out_profile: Optional[ReplicaProfile] = None,
                 tenancy: Union[None, str, TenancyConfig] = None,
                 faults: Union[None, str, FaultSpec, FaultSchedule] = None,
                 obs=None) -> None:
        self.platforms = list(replicas)
        if not self.platforms:
            raise ValueError("a cluster needs at least one replica")
        self.seed = int(seed)
        #: Observability recorder shared by every replica (no-op when unset).
        self.obs = obs if obs is not None else NULL_RECORDER
        #: Kernel schedule counters of the most recent ``run()``.
        self.last_kernel_stats = None
        self.balancer = build_balancer(balancer, seed=seed,
                                       kind="classification")
        self.autoscaler = build_autoscaler(autoscaler)
        self.tenancy = coerce_tenancy(tenancy)
        self.faults = coerce_faults(faults)

        n = len(self.platforms)
        if profiles is None:
            self.profiles: List[ReplicaProfile] = [ReplicaProfile() for _ in range(n)]
        else:
            self.profiles = [ReplicaProfile.coerce(p) for p in profiles]
            if len(self.profiles) != n:
                raise ValueError(f"got {len(self.profiles)} replica profiles for "
                                 f"{n} replicas")
        self.min_replicas = n if min_replicas is None else int(min_replicas)
        self.max_replicas = n if max_replicas is None else int(max_replicas)
        if not 1 <= self.min_replicas <= n:
            raise ValueError(f"min_replicas must be in [1, {n}] "
                             f"(the initial fleet size), got {self.min_replicas}")
        if self.max_replicas < n:
            raise ValueError(f"max_replicas must be >= the initial fleet size "
                             f"({n}), got {self.max_replicas}")
        self.replica_factory = replica_factory
        if self.max_replicas > n and replica_factory is None:
            raise ValueError(f"max_replicas={self.max_replicas} exceeds the "
                             f"initial fleet of {n}; scale-out needs a "
                             "replica_factory")
        self.scale_out_profile = scale_out_profile if scale_out_profile is not None \
            else ReplicaProfile()

    @property
    def num_replicas(self) -> int:
        """Size of the initial fleet (the fleet ``run()`` starts from)."""
        return len(self.platforms)

    # ----------------------------------------------------------- executors
    def _executor_factory(self,
                          executors: Union[BatchExecutorFn,
                                           Sequence[BatchExecutorFn], None],
                          executor_factory: Optional[Callable[[int], BatchExecutorFn]]
                          ) -> Callable[[int], BatchExecutorFn]:
        """Resolve the per-replica executor source for one run.

        Accepts a single shared executor (used for every replica, including
        scaled-out ones), a per-initial-replica list, or an explicit factory
        keyed by replica ordinal.  Scale-out past a fixed list requires the
        factory, validated here so a mid-run scale-out cannot fail late.
        """
        if executors is None:
            if executor_factory is None:
                raise ValueError("run() needs executors or an executor_factory")
            return executor_factory
        if callable(executors):
            shared = executors
            return lambda ordinal: shared
        executor_list = list(executors)
        if len(executor_list) != self.num_replicas:
            raise ValueError(f"got {len(executor_list)} executors for "
                             f"{self.num_replicas} replicas")
        if executor_factory is not None:
            return lambda ordinal: (executor_list[ordinal]
                                    if ordinal < len(executor_list)
                                    else executor_factory(ordinal))
        if self.max_replicas > self.num_replicas:
            raise ValueError("scale-out is enabled (max_replicas > initial "
                             "fleet) but the executor list has no factory for "
                             "new replicas; pass executor_factory= or a single "
                             "shared executor")
        return lambda ordinal: executor_list[ordinal]

    def _spawn(self, fleet: FleetState, factory: Callable[[int], BatchExecutorFn],
               now_ms: float) -> ReplicaEntry:
        """Bring one scaled-out replica online."""
        platform = self.replica_factory()
        ordinal = fleet.next_ordinal()
        return fleet.add(platform, factory(ordinal), self.scale_out_profile, now_ms)

    # ------------------------------------------------------------- salvage
    @staticmethod
    def _completion_eta_ms(handle: ReplicaHandle, jobs_ahead: int,
                           now_ms: float) -> float:
        """When a request with ``jobs_ahead - 1`` queued jobs in front of it
        (itself included in the count) would finish on ``handle``."""
        full = handle.platform.max_batch_size
        per_batch = handle.platform.predicted_batch_time_ms(min(jobs_ahead, full))
        if per_batch is None:
            # No latency model: fall back to one unit per request (same
            # degradation as work_left_ms), scaled by replica speed.
            return now_ms + handle.backlog_ms(now_ms) \
                + jobs_ahead / handle.profile.speed
        return now_ms + handle.backlog_ms(now_ms) \
            + per_batch * math.ceil(jobs_ahead / full)

    def _salvage_doomed(self, fleet: FleetState, active: List[ReplicaEntry],
                        handles: List[ReplicaHandle], now_ms: float,
                        rerouted_ids: Set[int]) -> int:
        """Re-route doomed queued requests once to a replica that can serve them.

        A request is *doomed* where it sits when the work queued ahead of it
        (plus the in-flight batch) already overruns its deadline.  Instead of
        letting the replica bury it at expiry, the dispatcher moves it (at
        most once) to the least-loaded other active replica — but only when
        that replica's expected completion still meets the deadline, so
        reroutes convert drops into goodput rather than shuffling lost causes.
        """
        moved = 0
        for entry in fleet.serving():
            if not entry.platform.drop_expired or not entry.state.queue:
                continue
            source = entry.handle
            keep: List[Request] = []
            moved_here = 0
            for request in entry.state.queue:
                deadline = request.deadline_ms()
                if (request.request_id in rerouted_ids
                        or now_ms > deadline
                        or self._completion_eta_ms(source, len(keep) + 1, now_ms)
                        <= deadline + 1e-9):
                    keep.append(request)
                    continue
                candidates = [h for h in handles if h is not source]
                if not candidates:
                    keep.append(request)
                    continue
                target = min(candidates,
                             key=lambda h: (self._completion_eta_ms(
                                 h, h.queue_length() + 1, now_ms), h.index))
                if self._completion_eta_ms(target, target.queue_length() + 1,
                                           now_ms) <= deadline + 1e-9:
                    target_entry = active[target.index]
                    target_entry.platform.admit(target_entry.state, request)
                    if self.obs.enabled:
                        self.obs.annotate(request.request_id, rerouted=True)
                    rerouted_ids.add(request.request_id)
                    moved_here += 1
                else:
                    keep.append(request)
            if moved_here:
                entry.state.queue = keep
                moved += moved_here
        return moved

    # --------------------------------------------------------------- main loop
    def run(self, requests: Sequence[Request],
            executors: Union[BatchExecutorFn, Sequence[BatchExecutorFn], None] = None,
            executor_factory: Optional[Callable[[int], BatchExecutorFn]] = None
            ) -> ClusterMetrics:
        """Serve all requests across the (dynamic) fleet.

        ``executors`` may be one shared executor or a per-initial-replica
        list; ``executor_factory(ordinal)`` supplies executors for replicas
        the autoscaler adds mid-run (ordinals continue past the initial
        fleet).  Returns per-replica + fleet metrics covering every replica
        that served, including ones retired before the run ended.
        """
        factory = self._executor_factory(executors, executor_factory)
        self.balancer.reset()
        self.autoscaler.reset()
        self.autoscaler.set_bounds(self.min_replicas, self.max_replicas)

        pending = sorted(requests, key=lambda r: (r.arrival_ms, r.request_id))
        default_slo_ms = pending[0].slo_ms if pending else 0.0
        pending, tenant_runtime = build_request_runtime(pending, self.tenancy,
                                                        self.seed)
        num_requests = len(pending)
        start = pending[0].arrival_ms if pending else 0.0

        fleet = FleetState()
        fleet.obs = self.obs
        for platform, profile in zip(self.platforms, self.profiles):
            fleet.add(platform, factory(fleet.next_ordinal()), profile, start)

        if num_requests == 0:
            return self._collect(fleet, start, start, rerouted=0)

        runner = _ClusterRun(self, pending, factory, fleet, start,
                             tenant_runtime=tenant_runtime, faults=self.faults)
        runner.drive()
        self.last_kernel_stats = runner.events.stats()

        for entry in fleet.entries:
            entry.state.finalize_makespan()

        last_event = max((e.state.last_event_ms for e in fleet.entries
                          if np.isfinite(e.state.last_event_ms)), default=start)
        metrics = self._collect(fleet, start, last_event, runner.rerouted)
        metrics.crashes = runner.crashes
        metrics.recoveries = runner.recoveries
        metrics.requeued = runner.requeued
        metrics.kernel_stats = self.last_kernel_stats
        if tenant_runtime is not None:
            metrics.tenant_rollups = request_rollups(
                metrics.aggregate().responses, tenant_runtime,
                default_slo_ms, metrics.makespan_ms)
        return metrics

    def _collect(self, fleet: FleetState, start_ms: float, end_ms: float,
                 rerouted: int) -> ClusterMetrics:
        fleet.finalize(end_ms)
        served_anything = any(entry.state.metrics.num_responses()
                              for entry in fleet.entries)
        makespan = max(end_ms - start_ms, 1e-9) if served_anything else 0.0
        return ClusterMetrics(
            replicas=[entry.state.metrics for entry in fleet.entries],
            dispatch_counts=[entry.dispatched for entry in fleet.entries],
            makespan_ms=makespan,
            rerouted=int(rerouted),
            fleet_timeline=list(fleet.timeline),
            replica_seconds=fleet.replica_seconds(end_ms),
            replica_active_ms=fleet.active_replica_ms(end_ms),
            replica_uptimes_ms=[entry.active_ms(end_ms)
                                for entry in fleet.entries],
        )


#: event kinds of the kernel-scheduled cluster run.
_BOOT, _COMPLETION, _TIMER, _CRASH, _RECOVER = 0, 1, 2, 3, 4


def gate_exits(batch: Sequence[Request], result: BatchResult,
               gated_ids: Set[int]) -> BatchResult:
    """Rewrite a batch result so gated requests ran the full model.

    Exit-policy override for tenants with ``allow_exits=False``: their
    requests release at the batch's full duration with no early exit and
    the original model's answer (``correct=True``).  The batch's
    accelerator time is left as computed — the replica genuinely ran the
    ramps for its other requests.  Returns ``result`` unchanged when no
    gated request exited.
    """
    hit = [i for i, request in enumerate(batch)
           if request.request_id in gated_ids and result.exited[i]]
    if not hit:
        return result
    offsets = list(result.result_offsets_ms)
    exited = list(result.exited)
    depths = list(result.exit_depths)
    correct = list(result.correct)
    full = max(result.gpu_time_ms, max(offsets) if offsets else 0.0)
    for i in hit:
        offsets[i] = full
        exited[i] = False
        depths[i] = None
        correct[i] = True
    return BatchResult(gpu_time_ms=result.gpu_time_ms, result_offsets_ms=offsets,
                       exited=exited, exit_depths=depths, correct=correct)


class _ClusterRun(SimPlatform):
    """Kernel-scheduled execution of one :meth:`ClusterPlatform.run`.

    The phase order inside :meth:`step` is exactly the seed rescan loop's
    (boots → admit → autoscale → salvage → expire/select/serve → retire);
    the difference is purely *which replicas* the serving phase touches — the
    dirty set (queue changed, batch completed, policy timer fired) instead of
    the whole fleet — and how the clock advances (event heap instead of a
    collect-and-min over every replica's wake time).
    """

    def __init__(self, cluster: ClusterPlatform, pending: List[Request],
                 factory: Callable[[int], BatchExecutorFn],
                 fleet: FleetState, start_ms: float,
                 tenant_runtime=None,
                 faults: Optional[FaultSchedule] = None) -> None:
        super().__init__(start_ms)
        self.install_obs(cluster.obs, start_ms)
        self.cluster = cluster
        self._tenant_runtime = tenant_runtime
        self.pending = pending
        self.arrival_times = [r.arrival_ms for r in pending]
        self.num_requests = len(pending)
        self.next_arrival = 0
        self.factory = factory
        self.fleet = fleet
        self.pool = PoolState(fleet)
        self.rerouted = 0
        self.rerouted_ids: Set[int] = set()
        #: tenancy exit gating (queue ordering rides on Request.rank).
        self._gated_ids: Set[int] = (tenant_runtime.no_exit_ids
                                     if tenant_runtime is not None else set())
        #: fault injection counters + the crashed hardware awaiting recovery.
        self.crashes = 0
        self.recoveries = 0
        self.requeued = 0
        self._crash_stock: List[Tuple[ServingPlatform, ReplicaProfile]] = []
        if faults is not None:
            for fault in faults:
                # A crash scheduled before the first arrival fires with it.
                self.events.push(max(fault.crash_ms, start_ms), _CRASH, fault)
        #: ``expire``/salvage are global no-ops unless some member drops on
        #: SLO expiry; precomputed so the common fleet skips both phases.
        self._drop_expired = any(e.platform.drop_expired
                                 for e in self.pool.serving)
        self._exhausted = self.num_requests == 0
        #: fixed-size fleet in band: the per-pass autoscaler consult is a
        #: proven no-op, so the hot loop skips it entirely.
        self._autoscaled = not pool_is_static(cluster.autoscaler, self.pool,
                                              cluster.min_replicas,
                                              cluster.max_replicas)

    # ------------------------------------------------------------------ gauges
    def sample_gauges(self, now_ms: float) -> None:
        obs = self.obs
        pool = self.pool
        depth = 0
        busy = 0
        for entry in pool.serving:
            depth += len(entry.state.queue)
            if not entry.state.idle_at(now_ms):
                busy += 1
        obs.gauge(now_ms, "queue_depth", depth, pool="serve")
        obs.gauge(now_ms, "busy_replicas", busy, pool="serve")
        obs.gauge(now_ms, "active_replicas", len(pool.active), pool="serve")
        runtime = self._tenant_runtime
        if runtime is not None:
            backlog = tenant_backlog(
                (request.request_id for entry in pool.serving
                 for request in entry.state.queue), runtime.tenant_of)
            for tenant, count in backlog.items():
                obs.gauge(now_ms, "tenant_backlog", count, pool="serve",
                          tenant=tenant)

    # --------------------------------------------------------- kernel contract
    def done(self, now_ms: float) -> bool:
        if self.next_arrival < self.num_requests:
            return False
        for entry in self.pool.serving:
            if entry.state.queue:
                return False
        return True

    def next_external_ms(self, now_ms: float) -> Optional[float]:
        if self.next_arrival < self.num_requests:
            return self.arrival_times[self.next_arrival]
        return None

    def on_event(self, event) -> None:
        kind = event.kind
        if kind == _COMPLETION:
            self.wake(event.payload)
        elif kind == _TIMER:
            entry = event.payload
            entry._wake_event = None
            self.wake(entry)
        elif kind == _CRASH:
            self._crash(event.payload, self.clock.now_ms)
        elif kind == _RECOVER:
            self._recover(self.clock.now_ms)
        else:  # _BOOT: provisioning completed, bring the replica online.
            pool = self.pool
            pool.boots.remove(event)
            entry = self.cluster._spawn(self.fleet, self.factory,
                                        self.clock.now_ms)
            pool.add(entry)
            if entry.platform.drop_expired:
                self._drop_expired = True

    # ------------------------------------------------------------------ faults
    def _crash(self, fault: FaultSpec, now: float) -> None:
        """Force-retire one replica; requeue its queued work, salvage in-flight.

        The oldest active replica crashes (deterministic victim selection).
        Its in-flight batch is salvaged — classification records results at
        dispatch, so near-finished work stays client-visible — while queued
        requests requeue to the survivors through the run's balancer.  The
        crashed hardware boots back ``down_ms`` later (the outage subsumes
        provisioning).  A crash that would empty the fleet is skipped: the
        last replica never dies, so conservation holds by construction.
        """
        pool = self.pool
        if len(pool.active) < 2:
            return
        victim = min(pool.active, key=lambda e: e.replica_id)
        self.fleet.drain(victim, now)
        pool.draining += 1
        pool.refresh_active()
        orphans = victim.state.queue
        victim.state.queue = []
        self.crashes += 1
        self._crash_stock.append((victim.platform, victim.profile))
        self.events.push(now + fault.down_ms, _RECOVER, fault)
        self.wake(victim)  # retire once its salvaged batch finishes
        if orphans:
            balancer = self.cluster.balancer
            handles = pool.handles
            active = pool.active
            obs = self.obs
            for request in orphans:
                index = int(balancer.choose(request, handles, now))
                if not 0 <= index < len(active):
                    raise ValueError(f"balancer {balancer.name!r} chose replica "
                                     f"{index} of {len(active)}")
                entry = active[index]
                entry.platform.admit(entry.state, request)
                if obs.enabled:
                    obs.annotate(request.request_id, requeued=True)
                self.wake(entry)
            self.requeued += len(orphans)

    def _recover(self, now: float) -> None:
        """Boot a replacement for the oldest still-unrecovered crash."""
        platform, profile = self._crash_stock.pop(0)
        entry = self.fleet.add(platform, self.factory(self.fleet.next_ordinal()),
                               profile, now)
        self.pool.add(entry)
        self.recoveries += 1
        if entry.platform.drop_expired:
            self._drop_expired = True

    # ------------------------------------------------------------------- pass
    def step(self, now: float) -> bool:
        cluster = self.cluster
        pool = self.pool
        fleet = self.fleet
        active = pool.active
        handles = pool.handles
        arrivals = self.arrival_times
        num_requests = self.num_requests
        next_arrival = self.next_arrival

        # Phase 1: admit + dispatch everything that has arrived by now.
        admitted = 0
        if next_arrival < num_requests \
                and arrivals[next_arrival] <= now + 1e-9:
            pending = self.pending
            balancer = cluster.balancer
            obs = self.obs
            runtime = self._tenant_runtime
            tag_tenants = obs.enabled and runtime is not None
            while (next_arrival < num_requests
                   and arrivals[next_arrival] <= now + 1e-9):
                request = pending[next_arrival]
                index = int(balancer.choose(request, handles, now))
                if not 0 <= index < len(active):
                    raise ValueError(f"balancer {balancer.name!r} chose replica "
                                     f"{index} of {len(active)}")
                entry = active[index]
                entry.platform.admit(entry.state, request)
                if tag_tenants:
                    obs.annotate(request.request_id,
                                 tenant=runtime.tenant_of.get(request.request_id))
                entry.dispatched += 1
                next_arrival += 1
                admitted += 1
                self.wake(entry)
            self.next_arrival = next_arrival
        if admitted:
            cluster.autoscaler.observe_admitted(admitted, now)
        if next_arrival >= num_requests and not self._exhausted:
            # The livelock guard switches from "wait for the next arrival" to
            # "force progress" the moment the trace runs out; re-consult every
            # replica still holding work so it can take that branch now.
            self._exhausted = True
            for entry in pool.serving:
                if entry.state.queue:
                    self.wake(entry)

        # Phase 2: autoscaler decision on the global clock.
        if self._autoscaled:
            scale_pool(self, pool, cluster.autoscaler, now,
                       cluster.min_replicas, cluster.max_replicas, _BOOT)
            active = pool.active
            handles = pool.handles

        # Phase 3: cluster-level drop salvage.  One active replica is enough
        # when draining replicas still hold queues — their doomed requests
        # can move to it.
        if self._drop_expired and handles and (
                len(handles) > 1
                or any(e.status == DRAINING and e.state.queue
                       for e in fleet.entries)):
            moved = cluster._salvage_doomed(fleet, active, handles, now,
                                            self.rerouted_ids)
            if moved:
                self.rerouted += moved
                # Queues changed out from under armed timers and idle
                # replicas; re-consult everything that holds or awaited work.
                for entry in pool.serving:
                    if entry.state.queue or entry._wake_event is not None:
                        self.wake(entry)

        # Expiry pre-scan: the seed loop ran ``expire`` on every idle queued
        # replica at every visited timestamp, not only the changed ones.
        if self._drop_expired:
            for entry in pool.serving:
                state = entry.state
                if state.queue and state.idle_at(now):
                    before = len(state.queue)
                    entry.platform.expire(state, now)
                    if len(state.queue) != before:
                        self.wake(entry)

        next_arrival_ms = (arrivals[self.next_arrival]
                           if self.next_arrival < num_requests else np.inf)
        events = self.events
        progressed = False

        # Phase 4 per dirty replica: select, serve (when idle).
        for entry in self.drain_dirty():
            platform, state = entry.platform, entry.state
            if not state.idle_at(now):
                continue  # its completion event is already scheduled
            timer = entry._wake_event
            if not state.queue:
                if timer is not None:
                    events.cancel(timer)
                    entry._wake_event = None
                continue
            batch, wake_up = platform.select(state, now)
            if not batch:
                target = min(wake_up, next_arrival_ms)
                if not np.isfinite(target) or target <= now + 1e-9:
                    batch = platform.force_batch(state)
                else:
                    if timer is not None:
                        if not timer.cancelled and timer.time_ms == wake_up:
                            continue  # already armed for this wake-up
                        events.cancel(timer)
                    entry._wake_event = events.push(wake_up, _TIMER, entry)
                    continue
            if timer is not None:
                events.cancel(timer)
                entry._wake_event = None
            platform.dispatch(state, batch)
            result = entry.executor(batch, now)
            if self._gated_ids:
                result = gate_exits(batch, result, self._gated_ids)
            result = _scale_result(result, entry.profile.speed)
            platform.complete(state, batch, result, now)
            if state.busy_until_ms > now + 1e-9:
                events.push(state.busy_until_ms, _COMPLETION, entry)
            else:
                self.wake(entry)  # instant batch: re-serve this timestamp
            progressed = True

        # Phase 5: drained replicas that have gone idle leave the fleet.
        pool.retire_idle(now)
        return progressed
