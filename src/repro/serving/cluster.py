"""Multi-replica cluster serving: N platforms behind a pluggable balancer.

A :class:`ClusterPlatform` owns one :class:`~repro.serving.platform.ServingPlatform`
per replica and dispatches a single arrival stream across them.  Replicas keep
their own queues, accelerators and batching policies — the cluster only decides
*where* each request goes (the load-balancing policy) and interleaves the
replica timelines on one global clock using the steppable event-loop phases
exposed by ``ServingPlatform`` (``admit`` / ``expire`` / ``select`` /
``dispatch`` / ``complete``).

Balancing policies
------------------
``round_robin``
    Cycle through replicas in dispatch order.  Zero state inspection; fair in
    count but blind to queue skew from batching.
``join_shortest_queue``
    Route to the replica with the fewest jobs in system — queued plus the
    in-flight batch (classic JSQ).
``least_work_left``
    Route to the replica with the least *expected* work: current accelerator
    backlog plus the queued requests translated into milliseconds via the
    platform's latency profile.  Sees through queues of unequal cost.
``power_of_two_choices``
    Sample two replicas uniformly at random and pick the shorter queue —
    near-JSQ balance with O(1) state inspection (Mitzenmacher '01).
"""

from __future__ import annotations

import abc
import math
from typing import Callable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.serving.metrics import ClusterMetrics
from repro.serving.platform import (BatchExecutorFn, ReplicaState,
                                    ServingPlatform)
from repro.serving.request import Request

__all__ = [
    "ReplicaHandle",
    "LoadBalancer",
    "RoundRobinBalancer",
    "JoinShortestQueueBalancer",
    "LeastWorkLeftBalancer",
    "PowerOfTwoChoicesBalancer",
    "build_balancer",
    "canonical_balancer_name",
    "BALANCER_NAMES",
    "ClusterPlatform",
]


class ReplicaHandle:
    """Read-only view of one replica that balancers may inspect."""

    def __init__(self, index: int, platform: ServingPlatform, state: ReplicaState) -> None:
        self.index = index
        self.platform = platform
        self.state = state

    def queue_length(self) -> int:
        return self.state.queue_length()

    def jobs_in_system(self, now_ms: float) -> int:
        """Waiting requests plus the batch currently on the accelerator.

        This is the classic JSQ load signal: a replica that just drained its
        queue into a 16-request batch is *not* empty — ignoring the in-flight
        batch would funnel every arrival to whichever replica dispatched last.
        """
        in_flight = self.state.serving_batch_size if not self.state.idle_at(now_ms) else 0
        return self.state.queue_length() + in_flight

    def backlog_ms(self, now_ms: float) -> float:
        """Remaining accelerator time of the in-flight batch."""
        return max(0.0, self.state.busy_until_ms - now_ms)

    def work_left_ms(self, now_ms: float) -> float:
        """Expected milliseconds until this replica would drain its queue.

        Queued requests are costed with the platform's latency model (batched
        at ``max_batch_size``); platforms without a profile fall back to one
        unit per request, which degrades gracefully to queue-length ordering.
        """
        work = self.backlog_ms(now_ms)
        queued = self.queue_length()
        if queued == 0:
            return work
        full = self.platform.max_batch_size
        per_batch = self.platform.predicted_batch_time_ms(min(queued, full))
        if per_batch is None:
            return work + float(queued)
        return work + per_batch * math.ceil(queued / full)


class LoadBalancer(abc.ABC):
    """Dispatch policy: pick the replica that receives an arriving request."""

    name: str = "abstract"

    @abc.abstractmethod
    def choose(self, request: Request, replicas: Sequence[ReplicaHandle],
               now_ms: float) -> int:
        """Return the index of the replica that should serve ``request``."""

    def reset(self) -> None:
        """Clear any dispatch state before a fresh run (default: nothing)."""


class RoundRobinBalancer(LoadBalancer):
    """Cycle through replicas in dispatch order."""

    name = "round_robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, request: Request, replicas: Sequence[ReplicaHandle],
               now_ms: float) -> int:
        index = self._next % len(replicas)
        self._next += 1
        return index

    def reset(self) -> None:
        self._next = 0


class JoinShortestQueueBalancer(LoadBalancer):
    """Route to the replica with the fewest jobs in system (ties: lowest index)."""

    name = "join_shortest_queue"

    def choose(self, request: Request, replicas: Sequence[ReplicaHandle],
               now_ms: float) -> int:
        return min(range(len(replicas)),
                   key=lambda i: (replicas[i].jobs_in_system(now_ms), i))


class LeastWorkLeftBalancer(LoadBalancer):
    """Route to the replica with the least expected work (profile-costed)."""

    name = "least_work_left"

    def choose(self, request: Request, replicas: Sequence[ReplicaHandle],
               now_ms: float) -> int:
        return min(range(len(replicas)),
                   key=lambda i: (replicas[i].work_left_ms(now_ms), i))


class PowerOfTwoChoicesBalancer(LoadBalancer):
    """Sample two replicas at random, join the shorter queue."""

    name = "power_of_two_choices"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    def choose(self, request: Request, replicas: Sequence[ReplicaHandle],
               now_ms: float) -> int:
        n = len(replicas)
        if n == 1:
            return 0
        first, second = self._rng.choice(n, size=2, replace=False)
        candidates = sorted((int(first), int(second)))
        return min(candidates, key=lambda i: (replicas[i].jobs_in_system(now_ms), i))

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)


_BALANCERS = {
    "round_robin": lambda seed: RoundRobinBalancer(),
    "join_shortest_queue": lambda seed: JoinShortestQueueBalancer(),
    "least_work_left": lambda seed: LeastWorkLeftBalancer(),
    "power_of_two_choices": lambda seed: PowerOfTwoChoicesBalancer(seed=seed),
}

_ALIASES = {
    "rr": "round_robin",
    "jsq": "join_shortest_queue",
    "lwl": "least_work_left",
    "p2c": "power_of_two_choices",
    "power_of_two": "power_of_two_choices",
}

BALANCER_NAMES = tuple(sorted(_BALANCERS))


def canonical_balancer_name(name: Union[str, LoadBalancer]) -> str:
    """Resolve a balancer name or alias to its canonical registry key.

    Raises :class:`ValueError` naming the offending value when the name is
    unknown — the single validation used by ``build_balancer``, the cluster
    spec and the CLI, so every layer reports the same error.
    """
    if isinstance(name, LoadBalancer):
        return name.name
    key = str(name).lower().replace("-", "_")
    key = _ALIASES.get(key, key)
    if key not in _BALANCERS:
        raise ValueError(f"unknown balancer {name!r}; choose from {BALANCER_NAMES}")
    return key


def build_balancer(name: Union[str, LoadBalancer], seed: int = 0) -> LoadBalancer:
    """Construct a balancer by name (``round_robin``, ``join_shortest_queue``,
    ``least_work_left``, ``power_of_two_choices``; short aliases accepted)."""
    if isinstance(name, LoadBalancer):
        return name
    return _BALANCERS[canonical_balancer_name(name)](seed)


class ClusterPlatform:
    """N replica platforms behind one load balancer, on one global clock.

    The run loop mirrors the single-replica ``ServingPlatform.run`` semantics
    per replica (including the forced-progress livelock guard) while advancing
    a shared clock: at each step it admits-and-dispatches every arrival due by
    ``now``, lets each idle replica expire/select/serve, then jumps to the
    earliest future event (next arrival, batch completion or policy wake-up).
    """

    def __init__(self, replicas: Sequence[ServingPlatform],
                 balancer: Union[str, LoadBalancer] = "round_robin",
                 seed: int = 0) -> None:
        self.platforms = list(replicas)
        if not self.platforms:
            raise ValueError("a cluster needs at least one replica")
        self.balancer = build_balancer(balancer, seed=seed)

    @property
    def num_replicas(self) -> int:
        return len(self.platforms)

    def _executors(self, executors: Union[BatchExecutorFn, Sequence[BatchExecutorFn]]
                   ) -> List[BatchExecutorFn]:
        if callable(executors):
            return [executors] * self.num_replicas
        executors = list(executors)
        if len(executors) != self.num_replicas:
            raise ValueError(f"got {len(executors)} executors for "
                             f"{self.num_replicas} replicas")
        return executors

    # --------------------------------------------------------------- main loop
    def run(self, requests: Sequence[Request],
            executors: Union[BatchExecutorFn, Sequence[BatchExecutorFn]]
            ) -> ClusterMetrics:
        """Serve all requests across the fleet and return per-replica + fleet metrics."""
        executor_list = self._executors(executors)
        self.balancer.reset()

        states = [platform.new_state() for platform in self.platforms]
        handles = [ReplicaHandle(i, platform, state)
                   for i, (platform, state) in enumerate(zip(self.platforms, states))]
        dispatch_counts = [0] * self.num_replicas

        pending = sorted(requests, key=lambda r: (r.arrival_ms, r.request_id))
        num_requests = len(pending)
        if num_requests == 0:
            return ClusterMetrics(replicas=[s.metrics for s in states],
                                  dispatch_counts=dispatch_counts)

        next_arrival = 0
        now = pending[0].arrival_ms

        while next_arrival < num_requests or any(state.queue for state in states):
            # Phase 1: admit + dispatch everything that has arrived by now.
            while next_arrival < num_requests and pending[next_arrival].arrival_ms <= now + 1e-9:
                request = pending[next_arrival]
                index = int(self.balancer.choose(request, handles, now))
                if not 0 <= index < self.num_replicas:
                    raise ValueError(f"balancer {self.balancer.name!r} chose replica "
                                     f"{index} of {self.num_replicas}")
                self.platforms[index].admit(states[index], request)
                dispatch_counts[index] += 1
                next_arrival += 1

            next_arrival_ms = (pending[next_arrival].arrival_ms
                               if next_arrival < num_requests else np.inf)
            wake_times: List[float] = []
            progressed = False

            # Phases 2-5 per replica: expire, select, serve (when idle).
            for index, (platform, state) in enumerate(zip(self.platforms, states)):
                if not state.idle_at(now):
                    wake_times.append(state.busy_until_ms)
                    continue
                if not state.queue:
                    continue
                platform.expire(state, now)
                if not state.queue:
                    continue
                batch, wake_up = platform.select(state, now)
                if not batch:
                    target = min(wake_up, next_arrival_ms)
                    if not np.isfinite(target) or target <= now + 1e-9:
                        batch = platform.force_batch(state)
                    else:
                        wake_times.append(wake_up)
                        continue
                platform.dispatch(state, batch)
                result = executor_list[index](batch, now)
                platform.complete(state, batch, result, now)
                wake_times.append(state.busy_until_ms)
                progressed = True

            if progressed:
                # A replica may have finished instantly; re-evaluate at the
                # same timestamp before advancing the clock.
                continue

            # Advance the global clock to the earliest future event.
            if next_arrival < num_requests:
                wake_times.append(next_arrival_ms)
            future = [t for t in wake_times if np.isfinite(t) and t > now + 1e-9]
            if not future:
                break  # nothing can happen anymore (all queues drained)
            now = min(future)

        for state in states:
            state.finalize_makespan()

        first_arrival = pending[0].arrival_ms
        last_event = max((s.last_event_ms for s in states
                          if np.isfinite(s.last_event_ms)), default=first_arrival)
        return ClusterMetrics(
            replicas=[s.metrics for s in states],
            dispatch_counts=dispatch_counts,
            makespan_ms=max(last_event - first_arrival, 1e-9),
        )
