"""Request and response records shared by every serving platform."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.workloads.difficulty import DifficultyTrace, InputSample

__all__ = ["Request", "Response", "make_requests"]


@dataclass(frozen=True)
class Request:
    """One inference request.

    ``tenant`` and ``rank`` carry multi-tenant dispatch state: the tenancy
    layer tags each request with its tenant class and a dispatch rank
    (weighted-fair finish tag or strict-priority class index).  Platforms
    order batch queues by ``(rank, arrival_ms, request_id)``; the defaults
    keep untenanted runs bit-identical to plain arrival order.
    """

    request_id: int
    arrival_ms: float
    sample: InputSample
    slo_ms: float
    tenant: str = "default"
    rank: float = 0.0

    def deadline_ms(self) -> float:
        return self.arrival_ms + self.slo_ms


@dataclass
class Response:
    """Outcome of serving one request."""

    request_id: int
    arrival_ms: float
    scheduled_ms: float
    completion_ms: float
    queueing_ms: float
    serving_ms: float
    latency_ms: float
    batch_size: int
    exited: bool = False
    exit_depth: Optional[float] = None
    correct: bool = True
    dropped: bool = False

    def met_slo(self, slo_ms: float) -> bool:
        return not self.dropped and self.latency_ms <= slo_ms


def make_requests(trace: DifficultyTrace, arrival_times_ms: Sequence[float],
                  slo_ms: float) -> List[Request]:
    """Pair a difficulty trace with arrival times into request records."""
    arrivals = np.asarray(arrival_times_ms, dtype=float)
    if len(trace) != arrivals.size:
        raise ValueError(
            f"trace has {len(trace)} samples but {arrivals.size} arrival times were given")
    return [Request(request_id=i, arrival_ms=float(arrivals[i]),
                    sample=trace.sample(i), slo_ms=float(slo_ms))
            for i in range(len(trace))]
