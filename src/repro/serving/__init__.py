"""Serving-platform substrate: queues, batching policies and platforms.

The paper runs Apparate on top of TensorFlow-Serving, Clockwork and
HuggingFace Pipelines without changing any platform decision (queue
management, batching, scheduling).  This subpackage provides event-driven
simulators of those platforms with the same external behaviour:

* :class:`ClockworkPlatform` — work-conserving, SLO-aware max-batch selection;
* :class:`TFServingPlatform` — ``max_batch_size`` / ``batch_timeout`` knobs;
* :class:`ContinuousBatchingEngine` — generative serving with continuous
  batching (new sequences join as others finish);
* :class:`ClusterPlatform` — N replica platforms behind a pluggable load
  balancer (round-robin, JSQ, least-work-left, power-of-two-choices),
  interleaved on one global clock via the steppable event-loop phases.

Platforms are agnostic to early exits: they hand formed batches to an executor
callback and collect per-request result-release times, which is exactly the
interface Apparate needs to sit on top.
"""

from repro.serving.request import Request, Response, make_requests
from repro.serving.metrics import ClusterMetrics, ServingMetrics
from repro.serving.platform import (BatchExecutorFn, ReplicaState,
                                    ServingPlatform, VanillaExecutor)
from repro.serving.clockwork import ClockworkPlatform
from repro.serving.tfserve import TFServingPlatform
from repro.serving.hf_pipelines import ContinuousBatchingEngine
from repro.serving.cluster import (BALANCER_NAMES, ClusterPlatform,
                                   JoinShortestQueueBalancer,
                                   LeastWorkLeftBalancer, LoadBalancer,
                                   PowerOfTwoChoicesBalancer, ReplicaHandle,
                                   RoundRobinBalancer, build_balancer)

__all__ = [
    "Request",
    "Response",
    "make_requests",
    "ServingMetrics",
    "ClusterMetrics",
    "BatchExecutorFn",
    "ReplicaState",
    "ServingPlatform",
    "VanillaExecutor",
    "ClockworkPlatform",
    "TFServingPlatform",
    "ContinuousBatchingEngine",
    "ClusterPlatform",
    "LoadBalancer",
    "RoundRobinBalancer",
    "JoinShortestQueueBalancer",
    "LeastWorkLeftBalancer",
    "PowerOfTwoChoicesBalancer",
    "ReplicaHandle",
    "build_balancer",
    "BALANCER_NAMES",
]
