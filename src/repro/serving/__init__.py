"""Serving-platform substrate: queues, batching policies and platforms.

The paper runs Apparate on top of TensorFlow-Serving, Clockwork and
HuggingFace Pipelines without changing any platform decision (queue
management, batching, scheduling).  This subpackage provides event-driven
simulators of those platforms with the same external behaviour:

* :class:`ClockworkPlatform` — work-conserving, SLO-aware max-batch selection;
* :class:`TFServingPlatform` — ``max_batch_size`` / ``batch_timeout`` knobs;
* :class:`ContinuousBatchingEngine` — generative serving with continuous
  batching (new sequences join as others finish).

Platforms are agnostic to early exits: they hand formed batches to an executor
callback and collect per-request result-release times, which is exactly the
interface Apparate needs to sit on top.
"""

from repro.serving.request import Request, Response, make_requests
from repro.serving.metrics import ServingMetrics
from repro.serving.platform import BatchExecutorFn, ServingPlatform, VanillaExecutor
from repro.serving.clockwork import ClockworkPlatform
from repro.serving.tfserve import TFServingPlatform
from repro.serving.hf_pipelines import ContinuousBatchingEngine

__all__ = [
    "Request",
    "Response",
    "make_requests",
    "ServingMetrics",
    "BatchExecutorFn",
    "ServingPlatform",
    "VanillaExecutor",
    "ClockworkPlatform",
    "TFServingPlatform",
    "ContinuousBatchingEngine",
]
