"""Serving-platform substrate: queues, batching policies and platforms.

The paper runs Apparate on top of TensorFlow-Serving, Clockwork and
HuggingFace Pipelines without changing any platform decision (queue
management, batching, scheduling).  This subpackage provides event-driven
simulators of those platforms with the same external behaviour:

* :class:`ClockworkPlatform` — work-conserving, SLO-aware max-batch selection;
* :class:`TFServingPlatform` — ``max_batch_size`` / ``batch_timeout`` knobs;
* :class:`ContinuousBatchingEngine` — generative serving with continuous
  batching (new sequences join as others finish);
* :class:`ClusterPlatform` — a dynamic fleet of replica platforms behind a
  pluggable load balancer (round-robin, JSQ, least-work-left,
  power-of-two-choices, speed-weighted variants), interleaved on one global
  clock via the steppable event-loop phases.  Membership is live fleet state
  (:class:`FleetState`: add / drain / retire) mutated by a pluggable
  :class:`Autoscaler` (``none`` / ``reactive`` / ``predictive``), and
  replicas may be heterogeneous via :class:`ReplicaProfile` speed/cost
  multipliers.
* :class:`GenerativeClusterPlatform` — the same fleet control plane driving
  continuous-batching decode replicas: token-level early exits at cluster
  scale, with balancers costed by outstanding decode work (queued tokens ×
  depth-scaled step time) and drain/retire letting in-flight sequences
  finish before a replica leaves the fleet.
* :class:`DisaggregatedPlatform` — prefill/decode disaggregation: a
  chunk-batching prefill pool and a continuous-batching decode pool on one
  global clock, connected by a handoff queue with modeled KV-transfer cost,
  each pool with its own balancer and its own autoscaler.

Platforms are agnostic to early exits: they hand formed batches to an executor
callback and collect per-request result-release times, which is exactly the
interface Apparate needs to sit on top.
"""

from repro.serving.request import Request, Response, make_requests
from repro.serving.metrics import ClusterMetrics, ServingMetrics
from repro.serving.platform import (BatchExecutorFn, ReplicaState,
                                    ServingPlatform, VanillaExecutor)
from repro.serving.clockwork import ClockworkPlatform
from repro.serving.tfserve import TFServingPlatform
from repro.serving.hf_pipelines import ContinuousBatchingEngine, GenerativeMetrics
from repro.serving.fleet import BaseFleet, FleetState, ReplicaProfile
from repro.serving.generative_cluster import (GenerativeClusterMetrics,
                                              GenerativeClusterPlatform,
                                              GenerativeFleetState,
                                              GenerativeReplicaHandle)
from repro.serving.disagg import (DisaggregatedMetrics, DisaggregatedPlatform,
                                  PrefillFleetState, PrefillReplicaHandle)
from repro.serving.autoscaler import (AUTOSCALER_NAMES, Autoscaler,
                                      FixedAutoscaler, PredictiveAutoscaler,
                                      ReactiveAutoscaler, build_autoscaler)
from repro.serving.cluster import (BALANCER_NAMES, ClusterPlatform,
                                   JoinShortestQueueBalancer,
                                   LeastWorkLeftBalancer, LoadBalancer,
                                   PowerOfTwoChoicesBalancer, ReplicaHandle,
                                   RoundRobinBalancer,
                                   WeightedJoinShortestQueueBalancer,
                                   WeightedRoundRobinBalancer, build_balancer)

__all__ = [
    "Request",
    "Response",
    "make_requests",
    "ServingMetrics",
    "ClusterMetrics",
    "BatchExecutorFn",
    "ReplicaState",
    "ServingPlatform",
    "VanillaExecutor",
    "ClockworkPlatform",
    "TFServingPlatform",
    "ContinuousBatchingEngine",
    "GenerativeMetrics",
    "ClusterPlatform",
    "GenerativeClusterPlatform",
    "GenerativeClusterMetrics",
    "GenerativeFleetState",
    "GenerativeReplicaHandle",
    "DisaggregatedMetrics",
    "DisaggregatedPlatform",
    "PrefillFleetState",
    "PrefillReplicaHandle",
    "BaseFleet",
    "FleetState",
    "ReplicaProfile",
    "Autoscaler",
    "FixedAutoscaler",
    "ReactiveAutoscaler",
    "PredictiveAutoscaler",
    "build_autoscaler",
    "AUTOSCALER_NAMES",
    "LoadBalancer",
    "RoundRobinBalancer",
    "WeightedRoundRobinBalancer",
    "JoinShortestQueueBalancer",
    "WeightedJoinShortestQueueBalancer",
    "LeastWorkLeftBalancer",
    "PowerOfTwoChoicesBalancer",
    "ReplicaHandle",
    "build_balancer",
    "BALANCER_NAMES",
]
