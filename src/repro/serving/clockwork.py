"""Clockwork-style platform: work-conserving, SLO-aware max batching (§2.1).

Clockwork (OSDI'20) schedules inference jobs in a work-conserving manner and
selects the largest batch size that keeps queued requests within their SLOs.
The simulator mirrors that policy: whenever the accelerator is free it drains
the queue immediately, choosing the largest batch (up to ``max_batch_size``)
whose predicted serving time still meets the SLO of the oldest request in the
batch.  Requests whose SLO has already expired may optionally be dropped.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.models.latency import LatencyProfile
from repro.serving.platform import ServingPlatform
from repro.serving.request import Request

__all__ = ["ClockworkPlatform"]


class ClockworkPlatform(ServingPlatform):
    """SLO-aware, work-conserving batching."""

    def __init__(self, profile: LatencyProfile, max_batch_size: int = 16,
                 drop_expired: bool = True) -> None:
        super().__init__(max_batch_size=max_batch_size, drop_expired=drop_expired)
        self.profile = profile

    def predicted_batch_time_ms(self, batch_size: int) -> float:
        """Profile-backed estimate (also feeds work-aware cluster balancers)."""
        return self.profile.total_latency_ms(batch_size)

    def select_batch(self, queue: List[Request], now_ms: float) -> Tuple[List[Request], float]:
        """Largest batch whose serving time keeps the oldest request in SLO."""
        # Rank is the tenancy dispatch key (0.0 for every request in
        # untenanted runs, keeping this a pure arrival-order sort).
        ordered = sorted(queue, key=lambda r: (r.rank, r.arrival_ms, r.request_id))
        limit = min(len(ordered), self.max_batch_size)

        chosen = 1
        for batch_size in range(limit, 0, -1):
            batch_time = self.predicted_batch_time_ms(batch_size)
            oldest = ordered[0]
            # Serving completes at now + batch_time; the oldest request's
            # remaining slack governs whether this batch size is safe.
            if now_ms + batch_time <= oldest.deadline_ms():
                chosen = batch_size
                break
        else:
            # Even a batch of one violates the SLO: serve one anyway (work
            # conserving) — the request is already late.
            chosen = 1
        return ordered[:chosen], now_ms
