"""Heap-scheduled discrete-event kernel shared by every serving platform.

The three fleet simulators (:mod:`repro.serving.cluster`,
:mod:`repro.serving.generative_cluster`, :mod:`repro.serving.disagg`) used to
advance time the same hand-rolled way: at every timestamp they re-scanned
every replica, collected candidate wake times into a list, filtered the
finite future ones and set ``now = min(future)``.  That is O(replicas)
bookkeeping per visited timestamp even when nothing changed, and the three
copies had to be kept phase-for-phase in sync by hand.

This module factors the shared machinery into a small discrete-event kernel
in the style of event-driven flow-level network simulators:

:class:`EventQueue`
    A binary heap of :class:`Event` records ordered by ``(time_ms, seq)``.
    The monotonically increasing sequence number makes same-time events pop
    in registration order, so the schedule is fully deterministic.
    Cancellation is lazy (an ``Event`` is flagged and skipped when it
    surfaces), which keeps ``cancel`` O(1).

:class:`Clock`
    The shared simulation clock.  Only :meth:`SimPlatform.drive` advances it.

:class:`SimPlatform`
    The pass/advance skeleton every platform runs on.  A subclass implements

    * :meth:`step` — one fixpoint pass over the phases of its control plane
      (admissions, autoscaling, serving, retirement) at the current
      timestamp, returning whether anything progressed;
    * :meth:`on_event` — react to one due event (typically by waking the
      replica the event belongs to);
    * :meth:`done` — the run's termination condition;
    * :meth:`next_external_ms` — the next event the heap does not know about
      (the arrival cursor into a pre-sorted trace, a handoff-queue head).

    :meth:`drive` then repeats the seed loops' exact visiting discipline:
    run ``step`` passes at the current timestamp until a pass makes no
    progress (checking ``done`` before every pass, exactly like the seed
    loops re-checked their ``while`` condition after every ``continue``),
    advance the clock to the earliest future event, fire everything due at
    the new timestamp, and repeat.  Because the heap holds precisely the
    wake times the seed loops used to collect — batch completions, policy
    timers, replica boots, decode-slot frees — the kernel visits the same
    timestamps in the same order and reproduces the seed metrics
    bit-for-bit, while doing O(changed replicas) work per visit instead of
    O(fleet).

Event ordering guarantees
-------------------------
* Events fire strictly in ``(time_ms, seq)`` order; ties in time fire in
  registration order.
* All events due at a timestamp (within the loops' shared ``1e-9`` epsilon)
  fire *before* the first ``step`` pass at that timestamp — the analogue of
  the seed loops' "phase 0" boot handling.
* ``step`` passes repeat at one timestamp until a pass reports no progress;
  state changes made by a pass are visible to the next pass at the same
  timestamp (the seed loops' ``continue``-on-progress fixpoint).
* A timer whose condition changed (queue grew, batch dispatched) must be
  cancelled or re-armed by the subclass; the kernel never fires a cancelled
  event, so the set of visited timestamps stays exactly the seed set.

Timer discipline required of batching policies: a policy that returns
``(no batch, wake_up)`` is re-consulted only when its replica's queue
changes or ``wake_up`` arrives.  Both shipped policies satisfy this
(``tfserve`` wakes at ``oldest.arrival + timeout``, a pure function of the
queue; ``clockwork`` never waits), as must any future ``select_batch``.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Dict, List, Optional

from repro.obs.recorder import NULL_RECORDER

__all__ = ["Event", "EventQueue", "Clock", "SimPlatform", "PoolState",
           "scale_pool", "pool_is_static"]


class Event:
    """One scheduled occurrence: ``(time_ms, seq)``-ordered, lazily cancellable.

    ``kind`` is a small subclass-defined integer tag (boot, completion,
    timer, slot-free, ...) and ``payload`` whatever the subclass needs to
    route the event — usually the replica entry it should wake.
    """

    __slots__ = ("time_ms", "seq", "kind", "payload", "cancelled")

    def __init__(self, time_ms: float, seq: int, kind: int, payload: Any) -> None:
        self.time_ms = time_ms
        self.seq = seq
        self.kind = kind
        self.payload = payload
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        if self.time_ms != other.time_ms:
            return self.time_ms < other.time_ms
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time_ms}, seq={self.seq}, kind={self.kind}{flag})"


class EventQueue:
    """Deterministic binary-heap schedule of :class:`Event` records.

    Cancellation is lazy — O(1) — but no longer unbounded: policies that
    re-arm a timer on every queue change (tfserve batching, autoscaler
    probes) can cancel far more events than they ever let fire, and on long
    traces the dead records would dominate the heap and every ``heappush``
    would pay their log factor.  :meth:`cancel` therefore counts dead
    records and opportunistically compacts the heap — drop cancelled
    entries, ``heapify`` the survivors — once they exceed half the heap.
    Compaction never touches event identity: the surviving records keep
    their ``(time_ms, seq)`` keys, and a heap of them pops in exactly the
    same total order as the uncompacted heap, so schedules are unchanged
    bit-for-bit.
    """

    __slots__ = ("_heap", "_seq", "_cancelled", "fired", "cancelled_total",
                 "compactions", "peak_size")

    #: Never bother compacting heaps smaller than this: rebuild cost would
    #: rival the lazy-skip cost it saves.
    COMPACT_MIN = 64

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._cancelled = 0
        self.fired = 0
        self.cancelled_total = 0
        self.compactions = 0
        self.peak_size = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time_ms: float, kind: int, payload: Any = None) -> Event:
        """Register an event; returns the handle used for cancellation."""
        event = Event(time_ms, self._seq, kind, payload)
        self._seq += 1
        heappush(self._heap, event)
        if len(self._heap) > self.peak_size:
            self.peak_size = len(self._heap)
        return event

    def cancel(self, event: Event) -> None:
        """Mark an event dead; it is skipped when it reaches the heap top.

        Compacts the heap when cancelled records exceed half of it (and the
        heap is big enough to matter), bounding heap growth under heavy
        timer re-arming at ~2× the live event count.
        """
        if event.cancelled:
            return
        event.cancelled = True
        self._cancelled += 1
        self.cancelled_total += 1
        if self._cancelled >= self.COMPACT_MIN \
                and self._cancelled * 2 >= len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled records and re-heapify the survivors in place."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapify(self._heap)
        self._cancelled = 0
        self.compactions += 1

    def next_time(self) -> Optional[float]:
        """Earliest pending event time, or ``None`` when the heap is empty.

        Cancelled records surfacing at the top are discarded here so the
        advance decision never sees a dead event.
        """
        heap = self._heap
        while heap:
            top = heap[0]
            if top.cancelled:
                heappop(heap)
                if self._cancelled:
                    self._cancelled -= 1
            else:
                return top.time_ms
        return None

    def pop_due(self, now_ms: float) -> List[Event]:
        """Pop every live event due at ``now_ms`` (within the shared epsilon)."""
        due: List[Event] = []
        heap = self._heap
        limit = now_ms + 1e-9
        while heap and heap[0].time_ms <= limit:
            event = heappop(heap)
            if not event.cancelled:
                due.append(event)
            elif self._cancelled:
                self._cancelled -= 1
        self.fired += len(due)
        return due

    def stats(self) -> Dict[str, int]:
        """Lifetime schedule counters for ``RunResult.details['kernel']``.

        ``pushed`` is every event ever registered, ``fired`` the ones that
        actually ran, ``cancelled`` the ones killed before firing,
        ``compactions`` how often the heap was rebuilt to shed dead records,
        and ``peak_heap`` the largest live+dead heap ever held.
        """
        return {
            "pushed": self._seq,
            "fired": self.fired,
            "cancelled": self.cancelled_total,
            "compactions": self.compactions,
            "peak_heap": self.peak_size,
        }


class Clock:
    """The shared simulation clock; advanced only by :meth:`SimPlatform.drive`."""

    __slots__ = ("now_ms",)

    def __init__(self, start_ms: float = 0.0) -> None:
        self.now_ms = start_ms


class PoolState:
    """Incrementally maintained membership views of one replica pool.

    The seed loops rebuilt ``fleet.active()`` / ``fleet.serving()`` and the
    handle index assignments from scratch at every timestamp.  Membership
    only changes on boot, drain and retire, so the kernel keeps the three
    views live instead: ``serving`` (entries order, ACTIVE + DRAINING),
    ``active`` (entries order, balancer-visible) and the parallel ``handles``
    list with positions assigned.  ``boots`` holds the in-flight scale-out
    boot events and ``draining`` counts members awaiting retirement so the
    retire scan can be skipped entirely for the common static-fleet case.
    """

    __slots__ = ("fleet", "serving", "active", "handles", "boots", "draining",
                 "obs_name", "last_desired")

    def __init__(self, fleet: Any, obs_name: str = "serve") -> None:
        self.fleet = fleet
        self.serving: List[Any] = list(fleet.entries)
        self.active: List[Any] = []
        self.handles: List[Any] = []
        self.boots: List[Event] = []
        self.draining = 0
        #: Pool label on emitted gauges ("serve", "prefill", "decode").
        self.obs_name = obs_name
        #: Last autoscaler target emitted as a gauge (decision de-dup).
        self.last_desired: Optional[int] = None
        self.refresh_active()

    def refresh_active(self) -> None:
        active = [e for e in self.serving if e.status == "active"]
        for position, entry in enumerate(active):
            entry.handle.index = position
        self.active = active
        self.handles = [entry.handle for entry in active]

    def add(self, entry: Any) -> None:
        """Record a freshly booted member (already registered in the fleet)."""
        self.serving.append(entry)
        self.refresh_active()

    def retire_idle(self, now_ms: float) -> None:
        """Targeted version of ``BaseFleet.retire_idle`` over the live view."""
        if not self.draining:
            return
        removed = False
        for entry in self.serving:
            if entry.status == "draining" and entry.is_idle(now_ms):
                entry.status = "retired"
                entry.retired_ms = now_ms
                self.draining -= 1
                removed = True
        if removed:
            self.serving = [e for e in self.serving if e.status != "retired"]


class SimPlatform:
    """Base of the kernel-scheduled platforms: clock, heap and drive loop.

    Subclass responsibilities:

    * call :meth:`EventQueue.push` (register) when a future occurrence is
      scheduled and :meth:`EventQueue.cancel` when its condition changes;
    * implement :meth:`wake` bookkeeping so :meth:`step` touches only the
      replicas whose state changed since the last pass (the default
      implementation keeps one dirty list; runners with several pools keep
      their own);
    * keep :meth:`step`'s phase order identical to the seed loop it ports.
    """

    def __init__(self, start_ms: float = 0.0) -> None:
        self.clock = Clock(start_ms)
        self.events = EventQueue()
        self._dirty: List[Any] = []
        #: Observability hooks; the shared no-op unless a runner installs a
        #: live :class:`~repro.obs.recorder.TraceRecorder`.
        self.obs = NULL_RECORDER
        self._gauge_next_ms: Optional[float] = None
        self._gauge_interval_ms: Optional[float] = None

    # ------------------------------------------------------------- primitives
    def register(self, time_ms: float, kind: int, payload: Any = None) -> Event:
        """Schedule a future event (thin alias over ``events.push``)."""
        return self.events.push(time_ms, kind, payload)

    def cancel(self, event: Event) -> None:
        """Cancel a previously registered event."""
        self.events.cancel(event)

    def wake(self, entry: Any) -> None:
        """Mark a replica entry for re-evaluation in the next ``step`` pass."""
        if not entry._kdirty:
            entry._kdirty = True
            self._dirty.append(entry)

    def drain_dirty(self, dirty: Optional[List[Any]] = None) -> List[Any]:
        """Take the current dirty set, in stable replica-id order.

        Entries woken *during* the returned batch's processing land in the
        next pass's set — mirroring how a seed-loop pass only acted on state
        as of its start and re-ran on progress.
        """
        todo = self._dirty if dirty is None else dirty
        if not todo:
            return todo
        if dirty is None:
            self._dirty = []
        else:
            dirty_copy = list(todo)
            del todo[:]
            todo = dirty_copy
        if len(todo) > 1:
            todo.sort(key=_replica_id)
        for entry in todo:
            entry._kdirty = False
        return todo

    # ------------------------------------------------- subclass contract
    def step(self, now_ms: float) -> bool:
        """One fixpoint pass at ``now_ms``; return whether anything progressed."""
        raise NotImplementedError

    def on_event(self, event: Event) -> None:
        """React to one due event before the passes at its timestamp run."""
        raise NotImplementedError

    def done(self, now_ms: float) -> bool:
        """Termination condition, checked before every pass (seed parity)."""
        raise NotImplementedError

    def next_external_ms(self, now_ms: float) -> Optional[float]:
        """Next event the heap does not track (arrival cursor, handoff head)."""
        return None

    # ------------------------------------------------------------------ gauges
    def install_obs(self, obs: Any, start_ms: float) -> None:
        """Attach a recorder and arm the periodic fleet-gauge sampler.

        Sampling is driven from :meth:`drive`'s time-advance path, *not* by
        heap events: ticks between the old and new timestamp invoke
        :meth:`sample_gauges` without adding events or extra ``step``
        passes, so the simulated trajectory — and therefore every metric —
        is bit-identical whether observability is on or off.
        """
        self.obs = obs
        interval = obs.gauge_interval_ms
        if obs.enabled and interval is not None:
            self._gauge_interval_ms = float(interval)
            self._gauge_next_ms = start_ms + float(interval)

    def sample_gauges(self, now_ms: float) -> None:
        """Emit one gauge sample set (subclass hook; default does nothing)."""

    def _run_gauges(self, target_ms: float) -> None:
        tick = self._gauge_next_ms
        interval = self._gauge_interval_ms
        while tick is not None and tick <= target_ms:
            self.sample_gauges(tick)
            tick += interval
        self._gauge_next_ms = tick

    # ------------------------------------------------------------------ drive
    def drive(self) -> None:
        """Run the simulation to completion.

        Mirrors the seed loops exactly: fixpoint passes at each timestamp
        (``done`` re-checked before every pass), then one clock advance to
        the earliest of the heap's next event and the external candidate,
        firing everything due at the new time before the next pass.
        """
        clock = self.clock
        events = self.events
        step = self.step
        done = self.done
        while True:
            now = clock.now_ms
            while True:
                if done(now):
                    return
                if not step(now):
                    break
            target = events.next_time()
            external = self.next_external_ms(now)
            if external is not None and (target is None or external < target):
                target = external
            if target is None:
                return  # nothing can happen anymore
            if self._gauge_next_ms is not None and self._gauge_next_ms <= target:
                self._run_gauges(target)
            clock.now_ms = target
            for event in events.pop_due(target):
                self.on_event(event)


def _replica_id(entry: Any) -> int:
    return entry.replica_id


def scale_pool(sim: SimPlatform, pool: PoolState, autoscaler: Any,
               now_ms: float, min_replicas: int, max_replicas: int,
               boot_kind: int) -> None:
    """One autoscaler evaluation over a pool, the seed loops' "phase 2".

    ``desired`` targets the number of ACTIVE replicas; boots already in
    flight keep provisioning unless the policy asks to shrink below the
    current active set (a "hold" during a boot is not a scale-in).
    Scale-out registers one ``boot_kind`` event per new replica (the
    subclass spawns on firing); scale-in cancels pending boots outright and
    drains the newest active replicas down to the target.
    """
    desired = int(autoscaler.desired_replicas(now_ms, pool.handles))
    desired = max(min_replicas, min(max_replicas, desired))
    obs = sim.obs
    if obs.enabled and desired != pool.last_desired:
        # Decision series: one point per *change* of the clamped target, so
        # the gauge reads as the autoscaler's step function, not a per-pass
        # heartbeat.
        obs.gauge(now_ms, "autoscaler_target", desired, pool=pool.obs_name)
        pool.last_desired = desired
    active = pool.active
    provisioned = len(active) + len(pool.boots)
    if desired > provisioned:
        delay = max(float(autoscaler.provision_delay_ms), 1e-6)
        for _ in range(desired - provisioned):
            pool.boots.append(sim.events.push(now_ms + delay, boot_kind, pool))
    elif desired < len(active):
        for event in pool.boots:
            sim.events.cancel(event)
        pool.boots.clear()
        fleet = pool.fleet
        for entry in sorted(active,
                            key=_negative_replica_id)[:len(active) - desired]:
            fleet.drain(entry, now_ms)
            pool.draining += 1
        pool.refresh_active()


def _negative_replica_id(entry: Any) -> int:
    return -entry.replica_id


def pool_is_static(autoscaler: Any, pool: PoolState, min_replicas: int,
                   max_replicas: int) -> bool:
    """True when :func:`scale_pool` is provably a no-op for the entire run.

    With the exact ``FixedAutoscaler`` policy (stateless, side-effect free,
    always proposing the current size) and a starting fleet inside the
    replica band, every evaluation would return ``desired == provisioned``
    and membership can never change — so the runners skip the per-pass
    autoscaler consult entirely.  Subclasses and every other policy keep the
    seed loops' evaluate-every-pass behaviour.
    """
    from repro.serving.autoscaler import FixedAutoscaler
    return (type(autoscaler) is FixedAutoscaler
            and min_replicas <= len(pool.active) <= max_replicas)
