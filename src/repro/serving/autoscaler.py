"""Pluggable cluster autoscalers: grow/shrink the fleet from load signals.

An :class:`Autoscaler` is evaluated by the cluster event loop **on the global
clock**: after every admission wave the loop asks for the desired number of
active replicas, clamps it to the cluster's ``[min_replicas, max_replicas]``
band, and applies the decision through the fleet lifecycle — scale-out
provisions a new replica after ``provision_delay_ms`` (machines don't boot
instantly), scale-in *drains* the newest replica (it finishes queued and
in-flight work but receives no new dispatches; see
:class:`~repro.serving.fleet.FleetState`).

Policies
--------
``none``
    Fixed fleet — always keep the current size.  The default, and the exact
    PR 1 behaviour.
``reactive``
    Queue-depth / SLO-headroom hysteresis.  Scale out when the mean jobs in
    system per replica crosses a high watermark (or, with an SLO configured,
    when even the least-loaded replica's expected wait eats the SLO headroom);
    scale in below a low watermark.  A cooldown between actions plus the
    watermark gap provides the hysteresis that stops flapping.
``predictive``
    Arrival-rate EWMA.  Folds admissions into an exponentially weighted
    estimate of the arrival rate and provisions
    ``ceil(rate / (per_replica_capacity * target_utilization))`` replicas,
    where capacity comes from the replicas' own latency profiles.  Leads the
    queue signal: it scales on the *cause* (arrivals) instead of the
    *symptom* (queueing).

Observability
-------------
Scaling decisions are visible without touching the policies: every clamped
target the event loop applies is emitted as the ``autoscaler_target`` gauge
(de-duplicated — one sample per *change* of target, tagged with the pool it
sizes), and the ``fleet_size``/``active_replicas`` gauges show the fleet
actually following it after ``provision_delay_ms`` and drains.  See
:meth:`repro.serving.kernel.SimPlatform.scale_pool` and
:mod:`repro.obs`.
"""

from __future__ import annotations

import abc
import math
from typing import Optional, Sequence, Union

__all__ = ["Autoscaler", "FixedAutoscaler", "ReactiveAutoscaler",
           "PredictiveAutoscaler", "build_autoscaler",
           "canonical_autoscaler_name", "AUTOSCALER_NAMES"]


class Autoscaler(abc.ABC):
    """Sizing policy: how many replicas should be active right now?"""

    name: str = "abstract"
    #: delay between a scale-out decision and the replica coming online.
    provision_delay_ms: float = 0.0
    #: replica band of the owning platform (None until ``set_bounds``); lets
    #: stateful policies recognise proposals the platform would clamp to a
    #: no-op, so they don't burn their cooldown on them.
    _min_replicas: Optional[int] = None
    _max_replicas: Optional[int] = None

    def reset(self) -> None:
        """Clear decision state before a fresh run (default: nothing)."""

    def set_bounds(self, min_replicas: Optional[int],
                   max_replicas: Optional[int]) -> None:
        """Tell the policy the platform's replica band.

        The run loop calls this once per run (after :meth:`reset`).  Policies
        constructed and evaluated standalone — without a platform — keep the
        historical behaviour of treating every proposal as actionable.
        """
        self._min_replicas = min_replicas
        self._max_replicas = max_replicas

    def _clamp(self, desired: int) -> int:
        """Project a proposal onto the platform band (identity without one)."""
        if self._min_replicas is not None and desired < self._min_replicas:
            desired = self._min_replicas
        if self._max_replicas is not None and desired > self._max_replicas:
            desired = self._max_replicas
        return desired

    def observe_admitted(self, count: int, now_ms: float) -> None:
        """Feed one admission wave (``count`` arrivals at ``now_ms``)."""

    @abc.abstractmethod
    def desired_replicas(self, now_ms: float, replicas: Sequence) -> int:
        """Desired number of ACTIVE replicas given the live handles.

        ``replicas`` holds the active :class:`~repro.serving.fleet.ReplicaHandle`
        views; the cluster clamps the returned value to its replica band, so
        policies may return any non-negative integer.
        """


class FixedAutoscaler(Autoscaler):
    """No scaling: the fleet keeps whatever size it currently has."""

    name = "none"

    def desired_replicas(self, now_ms: float, replicas: Sequence) -> int:
        return len(replicas)


class ReactiveAutoscaler(Autoscaler):
    """Queue-depth / SLO-headroom hysteresis with cooldown.

    Parameters
    ----------
    scale_out_load:
        High watermark on mean jobs in system per active replica.
    scale_in_load:
        Low watermark; the gap to ``scale_out_load`` is the hysteresis band.
    slo_ms / slo_headroom:
        Optional SLO pressure signal: scale out when even the least-loaded
        replica's expected wait exceeds ``slo_headroom * slo_ms`` (queueing is
        about to eat the entire latency budget).
    cooldown_ms:
        Minimum time between consecutive scaling actions.
    provision_delay_ms:
        Boot time of a scaled-out replica.
    step:
        Replicas added/removed per action.
    """

    name = "reactive"

    def __init__(self, scale_out_load: float = 4.0, scale_in_load: float = 0.5,
                 slo_ms: Optional[float] = None, slo_headroom: float = 0.8,
                 cooldown_ms: float = 2000.0, provision_delay_ms: float = 250.0,
                 step: int = 1) -> None:
        if scale_in_load >= scale_out_load:
            raise ValueError(f"scale_in_load ({scale_in_load}) must be below "
                             f"scale_out_load ({scale_out_load}) for hysteresis")
        if cooldown_ms < 0 or provision_delay_ms < 0:
            raise ValueError("cooldown_ms and provision_delay_ms must be >= 0")
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        self.scale_out_load = float(scale_out_load)
        self.scale_in_load = float(scale_in_load)
        self.slo_ms = None if slo_ms is None else float(slo_ms)
        self.slo_headroom = float(slo_headroom)
        self.cooldown_ms = float(cooldown_ms)
        self.provision_delay_ms = float(provision_delay_ms)
        self.step = int(step)
        self._last_action_ms = -math.inf

    def reset(self) -> None:
        self._last_action_ms = -math.inf

    def desired_replicas(self, now_ms: float, replicas: Sequence) -> int:
        n = len(replicas)
        if n == 0:
            return 1
        if now_ms - self._last_action_ms < self.cooldown_ms:
            return n
        mean_load = sum(h.jobs_in_system(now_ms) for h in replicas) / n
        overloaded = mean_load > self.scale_out_load
        if not overloaded and self.slo_ms is not None:
            # Even the best replica would queue a new arrival past the SLO
            # headroom: the fleet is too small regardless of queue counts.
            best_wait = min(h.work_left_ms(now_ms) for h in replicas)
            overloaded = best_wait > self.slo_headroom * self.slo_ms
        if overloaded:
            desired = n + self.step
            # Only a proposal the platform can act on costs a cooldown: at
            # the max-replica boundary the clamp turns it into a no-op, and
            # stamping there would delay the next genuine action.
            if self._clamp(desired) != n:
                self._last_action_ms = now_ms
            return desired
        if mean_load < self.scale_in_load:
            desired = n - self.step
            if self._clamp(desired) != n:
                self._last_action_ms = now_ms
            return desired
        return n


class PredictiveAutoscaler(Autoscaler):
    """Provision from an EWMA of the arrival rate (scale on cause, not symptom).

    Admissions are folded into per-``window_ms`` rate samples smoothed with
    factor ``alpha``; the desired size is the smallest fleet that serves the
    estimated rate at ``target_utilization``, using per-replica capacity read
    from the replicas' latency profiles (or ``service_time_ms`` as a
    fallback for profile-less platforms).
    """

    name = "predictive"

    def __init__(self, alpha: float = 0.3, window_ms: float = 1000.0,
                 target_utilization: float = 0.75,
                 service_time_ms: Optional[float] = None,
                 cooldown_ms: float = 2000.0,
                 provision_delay_ms: float = 250.0) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if window_ms <= 0:
            raise ValueError(f"window_ms must be positive, got {window_ms}")
        if not 0.0 < target_utilization <= 1.0:
            raise ValueError(f"target_utilization must be in (0, 1], "
                             f"got {target_utilization}")
        if cooldown_ms < 0 or provision_delay_ms < 0:
            raise ValueError("cooldown_ms and provision_delay_ms must be >= 0")
        self.alpha = float(alpha)
        self.window_ms = float(window_ms)
        self.target_utilization = float(target_utilization)
        self.service_time_ms = None if service_time_ms is None else float(service_time_ms)
        self.cooldown_ms = float(cooldown_ms)
        self.provision_delay_ms = float(provision_delay_ms)
        self.reset()

    def reset(self) -> None:
        self._ewma_qps: Optional[float] = None
        self._window_start_ms: Optional[float] = None
        self._window_count = 0
        self._last_action_ms = -math.inf

    def observe_admitted(self, count: int, now_ms: float) -> None:
        if self._window_start_ms is None:
            self._window_start_ms = now_ms
        self._fold_to(now_ms)
        self._window_count += count

    def _fold_to(self, now_ms: float) -> None:
        # Fold every full window between the last sample and now (idle windows
        # contribute zero-rate samples, so the estimate decays during lulls).
        if self._window_start_ms is None:
            return
        while now_ms - self._window_start_ms >= self.window_ms:
            rate_qps = 1000.0 * self._window_count / self.window_ms
            self._ewma_qps = rate_qps if self._ewma_qps is None else \
                self.alpha * rate_qps + (1.0 - self.alpha) * self._ewma_qps
            self._window_count = 0
            self._window_start_ms += self.window_ms

    def _per_replica_qps(self, replicas: Sequence) -> Optional[float]:
        rates = []
        for handle in replicas:
            full = handle.platform.max_batch_size
            batch_ms = handle.platform.predicted_batch_time_ms(full)
            if batch_ms is None:
                if self.service_time_ms is None:
                    continue
                batch_ms = self.service_time_ms / handle.profile.speed
                full = 1
            if batch_ms > 0:
                rates.append(1000.0 * full / batch_ms)
        if not rates:
            return None
        return sum(rates) / len(rates)

    def desired_replicas(self, now_ms: float, replicas: Sequence) -> int:
        n = len(replicas)
        if n == 0:
            return 1
        # The run loop only calls observe_admitted on admission waves, so an
        # arrival lull would otherwise freeze the estimate at its last value;
        # fold the elapsed idle windows here too so the rate genuinely decays
        # and the fleet scales in during troughs.
        self._fold_to(now_ms)
        if self._ewma_qps is None or now_ms - self._last_action_ms < self.cooldown_ms:
            return n
        capacity = self._per_replica_qps(replicas)
        if capacity is None or capacity <= 0:
            return n
        desired = max(1, math.ceil(self._ewma_qps
                                   / (capacity * self.target_utilization)))
        if self._clamp(desired) != n:
            self._last_action_ms = now_ms
        return desired


_AUTOSCALERS = {
    "none": lambda: FixedAutoscaler(),
    "reactive": lambda: ReactiveAutoscaler(),
    "predictive": lambda: PredictiveAutoscaler(),
}

_ALIASES = {
    "off": "none",
    "fixed": "none",
    "static": "none",
    "queue": "reactive",
    "ewma": "predictive",
}

AUTOSCALER_NAMES = tuple(sorted(_AUTOSCALERS))


def canonical_autoscaler_name(name: Union[str, Autoscaler]) -> str:
    """Resolve an autoscaler name or alias to its canonical registry key.

    Raises :class:`ValueError` naming the offending value when the name is
    unknown — shared by ``build_autoscaler``, the cluster spec and the CLI so
    every layer reports the same error.
    """
    if isinstance(name, Autoscaler):
        return name.name
    key = str(name).lower().replace("-", "_")
    key = _ALIASES.get(key, key)
    if key not in _AUTOSCALERS:
        raise ValueError(f"unknown autoscaler {name!r}; "
                         f"choose from {AUTOSCALER_NAMES}")
    return key


def build_autoscaler(name: Union[str, Autoscaler, None], **kwargs) -> Autoscaler:
    """Construct an autoscaler by name (``none``, ``reactive``, ``predictive``).

    ``None`` selects the fixed policy; instances pass through unchanged.
    Keyword arguments are forwarded to the policy constructor.
    """
    if name is None:
        name = "none"
    if isinstance(name, Autoscaler):
        return name
    key = canonical_autoscaler_name(name)
    if kwargs:
        factory = {"none": FixedAutoscaler, "reactive": ReactiveAutoscaler,
                   "predictive": PredictiveAutoscaler}[key]
        return factory(**kwargs)
    return _AUTOSCALERS[key]()
